#!/usr/bin/env sh
# Collates every committed BENCH_PR*.json host-performance artifact into
# the cross-PR trajectory table (pass --json for the collated JSON form).
# scripts/bench.sh writes one artifact per PR; this charts them — together
# they close ROADMAP's "host performance tracked across PRs" item. The
# output depends only on the committed artifacts, so reruns are
# byte-identical and check.sh smoke-tests one.
#
# Usage: scripts/bench_history.sh [--json]
set -eu

cd "$(dirname "$0")/.."

cargo run --offline --quiet --release -p ptstore-bench --bin bench_history -- "$@"
