#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline: the workspace
# vendors its few dependencies as path crates under third_party/.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo doc (-D warnings) =="
# Our crates only — the vendored third_party crates are not held to our
# documentation bar.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --quiet \
    -p ptstore-core -p ptstore-mem -p ptstore-mmu -p ptstore-isa \
    -p ptstore-kernel -p ptstore-trace -p ptstore-workloads \
    -p ptstore-attacks -p ptstore-hwcost -p ptstore-bench -p ptstore

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== smoke: 2-hart security battery =="
cargo run --offline --quiet -p ptstore-bench --bin reproduce -- --quick --harts 2 security \
    | grep -q "PTStore (full design) blocks every attack"

echo "All checks passed."
