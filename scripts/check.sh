#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline: the workspace
# vendors its few dependencies as path crates under third_party/.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --offline --workspace -q

echo "All checks passed."
