#!/usr/bin/env sh
# The CI gate, runnable locally. Everything is offline: the workspace
# vendors its few dependencies as path crates under third_party/.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo doc (-D warnings) =="
# Our crates only — the vendored third_party crates are not held to our
# documentation bar.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --quiet \
    -p ptstore-core -p ptstore-mem -p ptstore-mmu -p ptstore-isa \
    -p ptstore-kernel -p ptstore-trace -p ptstore-workloads \
    -p ptstore-attacks -p ptstore-fault -p ptstore-hwcost \
    -p ptstore-bench -p ptstore -p ptstore-lint -p ptstore-modelcheck

echo "== ptstore-lint: secure-access discipline =="
cargo run --offline --quiet -p ptstore-lint -- --format human

echo "== ptstore-lint: JSON output is deterministic =="
cargo run --offline --quiet -p ptstore-lint -- --format json > target/lint-a.json || true
cargo run --offline --quiet -p ptstore-lint -- --format json > target/lint-b.json || true
cmp target/lint-a.json target/lint-b.json
rm -f target/lint-a.json target/lint-b.json

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== smoke: 2-hart security battery =="
cargo run --offline --quiet -p ptstore-bench --bin reproduce -- --quick --harts 2 security \
    | grep -q "PTStore (full design) blocks every attack"

echo "== smoke: sv48 security battery (scheme-independent verdicts) =="
cargo run --offline --quiet -p ptstore-bench --bin reproduce -- --quick --scheme sv48 security \
    | grep -q "PTStore (full design) blocks every attack"

echo "== fast-path differential tests (cycle identity) =="
cargo test --offline -q -p ptstore-mmu --test tlb_fastpath_properties
cargo test --offline -q -p ptstore-core --test pmp_fastpath_properties
cargo test --offline -q -p ptstore-workloads --test fastpath_differential
cargo test --offline -q -p ptstore-attacks --test fastpath_attacks

echo "== scheme differential (sv39 goldens + sv48/sv57 verdict identity) =="
cargo test --offline -q -p ptstore-workloads --test scheme_differential

echo "== smoke: parallel runner determinism =="
cargo build --offline --quiet --release -p ptstore-bench --bin reproduce
./target/release/reproduce --quick ltp > target/ltp-1job.txt
./target/release/reproduce --quick --jobs 4 ltp > target/ltp-4job.txt
cmp target/ltp-1job.txt target/ltp-4job.txt
rm -f target/ltp-1job.txt target/ltp-4job.txt

echo "== smoke: threaded-hart determinism (2 harts x 2 host threads) =="
# Hart loops on real OS threads must reproduce the single-threaded run
# byte-for-byte: verdicts, stats, and trace attribution all flow through
# the logical-time turnstile, so host thread count may change only wall
# clock. The full quick suite runs both ways and the outputs are cmp'd.
./target/release/reproduce --quick --harts 2 --host-threads 1 all > target/thr-1.txt
./target/release/reproduce --quick --harts 2 --host-threads 2 all > target/thr-2.txt
cmp target/thr-1.txt target/thr-2.txt
rm -f target/thr-1.txt target/thr-2.txt

echo "== smoke: c1m multi-tenant churn (deterministic, batching wins) =="
# The c1m report is fully modeled — no wall time in the output — so a
# rerun must be byte-identical, the batched rows must appear, and the
# in-process drain-policy sweep must report identical TLB digests.
./target/release/reproduce --quick c1m > target/c1m-a.txt
./target/release/reproduce --quick --jobs 4 c1m > target/c1m-b.txt
cmp target/c1m-a.txt target/c1m-b.txt
grep -q "CFI+PTStore batched" target/c1m-a.txt
grep -q "tlb-digest-identical=yes" target/c1m-a.txt
rm -f target/c1m-a.txt target/c1m-b.txt

echo "== policy differential: boundary vs watermark (state byte-identical) =="
# Drain policies are pure placement: a boundary run and a watermark run
# may move IPI rounds around, but every fork-stress row's post-run TLB
# digest — and the whole table below the headers — must be identical.
./target/release/reproduce --quick forkstress --drain-policy boundary \
    | grep "0x" > target/pol-boundary.txt
./target/release/reproduce --quick forkstress --drain-policy watermark:4 \
    | grep "0x" > target/pol-watermark.txt
cmp target/pol-boundary.txt target/pol-watermark.txt
rm -f target/pol-boundary.txt target/pol-watermark.txt

echo "== smoke: fixed-seed fuzz campaign (deterministic, contained) =="
# The 70-fault round-robin covers all nine classes, including the PR 9
# drain-machinery pair; drain-drop must land (and stay contained) on
# every rerun byte-for-byte.
./target/release/reproduce fuzz --seed 1 --faults 70 > target/fuzz-a.txt
./target/release/reproduce fuzz --seed 1 --faults 70 > target/fuzz-b.txt
cmp target/fuzz-a.txt target/fuzz-b.txt
grep -q "invariant-violated     : 0" target/fuzz-a.txt
grep -q "drain-drop" target/fuzz-a.txt
grep -q "watermark-skip" target/fuzz-a.txt
rm -f target/fuzz-a.txt target/fuzz-b.txt

echo "== modelcheck: jobs determinism at a mid bound (byte-identical) =="
# The bounded search report prints no timing, host, or thread-count
# information, so a sequential run and a 4-job run of the same search must
# compare byte-for-byte — the same `cmp` discipline as the parallel runner.
./target/release/reproduce modelcheck --depth 4 > target/mc-a.txt
./target/release/reproduce modelcheck --depth 4 --jobs 4 > target/mc-b.txt
cmp target/mc-a.txt target/mc-b.txt
grep -q ": VERIFIED" target/mc-a.txt
rm -f target/mc-a.txt target/mc-b.txt

echo "== modelcheck: default bound (>= 10^4 deduped states, 0 violations) =="
# The acceptance floor: the default depth-5 search over the full op
# alphabet explores at least ten thousand deduped states and every one of
# them satisfies every invariant.
./target/release/reproduce modelcheck --jobs 4 > target/mc-full.txt
grep -q ": VERIFIED" target/mc-full.txt
STATES=$(sed -n 's/^  states explored  : \([0-9]*\) .*/\1/p' target/mc-full.txt)
[ "$STATES" -ge 10000 ]
rm -f target/mc-full.txt

echo "== modelcheck: ablation counterexample (minimal, replayable) =="
# Removing the PMP S-bit check must flip the verdict and print the shrunk
# one-op attack trace with the containment violation it lands.
./target/release/reproduce modelcheck --depth 2 --ops mmap,fork,pte-flip \
    --ablate pmp_s_bit_check > target/mc-abl.txt
grep -q ": FALSIFIED" target/mc-abl.txt
grep -q "counterexample (1 ops" target/mc-abl.txt
grep -q "attack:pte-flip" target/mc-abl.txt
grep -q "PtPageOutsideRegion" target/mc-abl.txt
rm -f target/mc-abl.txt

echo "== bench_history: BENCH_PR*.json trajectory collation =="
# The collator depends only on the committed artifacts, so two runs are
# byte-identical and the table must reach the newest artifact.
scripts/bench_history.sh > target/hist-a.txt
scripts/bench_history.sh > target/hist-b.txt
cmp target/hist-a.txt target/hist-b.txt
grep -q "PR9" target/hist-a.txt
rm -f target/hist-a.txt target/hist-b.txt
if command -v python3 > /dev/null 2>&1; then
    scripts/bench_history.sh --json | python3 -m json.tool > /dev/null
fi

echo "== host-performance harness (BENCH_PR9.json) =="
# Jobs pinned to 4 so CI regenerates the same configuration the
# committed artifact records (the pool clamps to the host's cores).
scripts/bench.sh 4
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool BENCH_PR9.json > /dev/null
fi

echo "All checks passed."
