#!/usr/bin/env sh
# Host-performance harness for the fast-path work: times `reproduce
# --quick all` with the memoizations off and on (and with a parallel
# worker pool), then writes the numbers to BENCH_PR3.json at the repo
# root. Modeled cycles are pinned elsewhere (the differential tests);
# this script measures wall-clock only.
#
# Usage: scripts/bench.sh [jobs]   (default jobs: nproc)
set -eu

cd "$(dirname "$0")/.."

JOBS="${1:-$( (nproc || sysctl -n hw.ncpu || echo 2) 2>/dev/null )}"
OUT="BENCH_PR3.json"
BIN="target/release/reproduce"

echo "== build (release) =="
cargo build --offline --release --quiet -p ptstore-bench --bin reproduce

# Milliseconds since epoch; /usr/bin/time is not in the container.
now_ms() {
    echo $(( $(date +%s%N) / 1000000 ))
}

# time_run <label> <args...>: runs the binary three times, echoes the
# best elapsed ms (minimum is the standard noise-robust statistic for
# wall-clock benchmarks).
time_run() {
    label="$1"
    shift
    best=""
    for _ in 1 2 3; do
        start=$(now_ms)
        "$BIN" "$@" > /dev/null
        end=$(now_ms)
        elapsed=$((end - start))
        if [ -z "$best" ] || [ "$elapsed" -lt "$best" ]; then
            best=$elapsed
        fi
    done
    echo "  $label: ${best} ms" >&2
    echo "$best"
}

echo "== timing reproduce --quick all =="
SLOW_MS=$(time_run "fast paths off, 1 job " --quick --no-fast-path all)
FAST_MS=$(time_run "fast paths on,  1 job " --quick all)
PAR_MS=$(time_run "fast paths on,  $JOBS jobs" --quick --jobs "$JOBS" all)

# Baseline: the commit just before this optimization pass, built in a
# throw-away worktree. Runtime-toggleable memoizations are captured by
# --no-fast-path above; this additionally captures the unconditional host
# work (physical-memory layout, frame hashing, cycle-counter layout,
# no-copy I/O), which --no-fast-path cannot switch off.
BASELINE_REF="${BENCH_BASELINE_REF:-84f0649}"
BASE_MS=null
if git rev-parse --verify --quiet "$BASELINE_REF^{commit}" > /dev/null 2>&1; then
    WT=".bench-baseline"
    git worktree remove --force "$WT" > /dev/null 2>&1 || true
    if git worktree add --detach "$WT" "$BASELINE_REF" > /dev/null 2>&1; then
        echo "== building baseline $BASELINE_REF =="
        if (cd "$WT" && CARGO_TARGET_DIR=target cargo build --offline \
                --release --quiet -p ptstore-bench --bin reproduce); then
            BASE_BIN_SAVE="$BIN"
            BIN="$WT/target/release/reproduce"
            BASE_MS=$(time_run "baseline $BASELINE_REF   " --quick all)
            BIN="$BASE_BIN_SAVE"
        else
            echo "  (baseline build failed; skipping)" >&2
        fi
        git worktree remove --force "$WT" > /dev/null 2>&1 || true
    fi
else
    echo "  (baseline ref $BASELINE_REF not found; skipping)" >&2
fi

echo "== per-experiment timings (fast paths on, 1 job) =="
EXPERIMENTS="table1 table2 table3 hwdetail ltp fig4 forkstress fig5 fig6 fig7 security smp"
EXP_JSON=""
for exp in $EXPERIMENTS; do
    ms=$(time_run "$exp" --quick "$exp")
    EXP_JSON="${EXP_JSON}${EXP_JSON:+, }\"$exp\": $ms"
done

# Integer-permille speedups, rendered as fixed-point (avoids awk/bc).
ratio() {
    if [ "$2" -gt 0 ]; then
        permille=$((1000 * $1 / $2))
        echo "$((permille / 1000)).$(printf '%03d' $((permille % 1000)))"
    else
        echo "0.000"
    fi
}
FAST_SPEEDUP=$(ratio "$SLOW_MS" "$FAST_MS")
JOBS_SPEEDUP=$(ratio "$FAST_MS" "$PAR_MS")
TOTAL_SPEEDUP=$(ratio "$SLOW_MS" "$PAR_MS")
if [ "$BASE_MS" != null ]; then
    VS_BASELINE=$(ratio "$BASE_MS" "$FAST_MS")
else
    VS_BASELINE=null
fi

cat > "$OUT" <<EOF
{
  "wall_ms": $PAR_MS,
  "jobs": $JOBS,
  "quick_all_ms": {
    "baseline_${BASELINE_REF}_1job": $BASE_MS,
    "no_fast_path_1job": $SLOW_MS,
    "fast_path_1job": $FAST_MS,
    "fast_path_${JOBS}jobs": $PAR_MS
  },
  "speedup": {
    "vs_baseline": $VS_BASELINE,
    "fast_path_1job": $FAST_SPEEDUP,
    "jobs": $JOBS_SPEEDUP,
    "total": $TOTAL_SPEEDUP
  },
  "experiments": { $EXP_JSON }
}
EOF

echo "== $OUT =="
cat "$OUT"
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$OUT" > /dev/null
    echo "($OUT parses as JSON)"
fi
echo "speedup: vs baseline ${VS_BASELINE}x, fast paths ${FAST_SPEEDUP}x, --jobs $JOBS ${JOBS_SPEEDUP}x"
