#!/usr/bin/env sh
# Host-performance harness: times `reproduce --quick all` single-threaded
# and through the shared worker pool, the SMP experiment at 1/2/4 harts
# with hart loops on 1 vs 2 real OS threads, and the C1M multi-tenant
# churn experiment (now a drain-policy sweep: native + eager + one
# batched row per policy; c1m runs only when named explicitly, so `all`
# stays the same work as the pre-c1m baseline binary and the suite
# comparison is like-for-like). The quick shape is timed alongside the
# CI-budgeted --medium trajectory shape (150x8x50), giving BENCH_PR9.json
# a connections-per-host-second trajectory toward the paper's
# one-million-connection run. Results land in BENCH_PR9.json at the repo
# root. Modeled cycles are pinned elsewhere (the differential tests and
# the check.sh cmp gate); this script measures wall-clock only. The c1m
# report prints no wall time by design (check.sh cmp-gates its reruns),
# so its throughput in connections per host second is computed here,
# outside the deterministic output; the report's drain-policy sweep line
# (per-policy queue peaks, digest identity) is lifted into the JSON.
#
# The shared CI container jitters by ~10% on multi-second timescales,
# so baseline-vs-current comparisons alternate the two binaries within
# one measurement loop and take each side's minimum — timing them in
# separate phases lets host drift masquerade as a code delta.
#
# Usage: scripts/bench.sh [jobs]   (default jobs: nproc)
set -eu

cd "$(dirname "$0")/.."

JOBS="${1:-$( (nproc || sysctl -n hw.ncpu || echo 2) 2>/dev/null )}"
OUT="BENCH_PR9.json"
BIN="target/release/reproduce"
# Rounds per timing loop; min-of-N on both binaries. Override with
# BENCH_ROUNDS when the container is jittery and the minimum needs more
# samples to converge.
ROUNDS="${BENCH_ROUNDS:-8}"

echo "== build (release) =="
cargo build --offline --release --quiet -p ptstore-bench --bin reproduce

# Milliseconds since epoch; /usr/bin/time is not in the container.
now_ms() {
    echo $(( $(date +%s%N) / 1000000 ))
}

one_run_ms() {
    bin="$1"
    shift
    start=$(now_ms)
    "$bin" "$@" > /dev/null
    end=$(now_ms)
    echo $((end - start))
}

# time_run <label> <args...>: times $BIN over $ROUNDS runs, echoes the
# minimum elapsed ms.
time_run() {
    label="$1"
    shift
    best=""
    for _ in $(seq "$ROUNDS"); do
        elapsed=$(one_run_ms "$BIN" "$@")
        if [ -z "$best" ] || [ "$elapsed" -lt "$best" ]; then
            best=$elapsed
        fi
    done
    echo "  $label: ${best} ms" >&2
    echo "$best"
}

# min_ms <current-best-or-empty> <candidate>: running minimum.
min_ms() {
    if [ -z "$1" ] || [ "$2" -lt "$1" ]; then
        echo "$2"
    else
        echo "$1"
    fi
}

# Baseline: the commit just before this PR, built in a throw-away
# worktree. It drains deferred shootdowns at security boundaries only
# (no policy knob), so baseline-vs-now at the same --jobs count is the
# honest measure of this PR's host-side work.
BASELINE_REF="${BENCH_BASELINE_REF:-b867a14}"
BASE_BIN=""
WT=".bench-baseline"
if git rev-parse --verify --quiet "$BASELINE_REF^{commit}" > /dev/null 2>&1; then
    git worktree remove --force "$WT" > /dev/null 2>&1 || true
    if git worktree add --detach "$WT" "$BASELINE_REF" > /dev/null 2>&1; then
        echo "== building baseline $BASELINE_REF =="
        if (cd "$WT" && CARGO_TARGET_DIR=target cargo build --offline \
                --release --quiet -p ptstore-bench --bin reproduce); then
            BASE_BIN="$WT/target/release/reproduce"
        else
            echo "  (baseline build failed; skipping)" >&2
        fi
    fi
else
    echo "  (baseline ref $BASELINE_REF not found; skipping)" >&2
fi

# All four quick-suite configurations rotate within ONE loop so each
# minimum is drawn from the same stretch of host time — separate phases
# let container drift masquerade as a code delta.
BASE_SINGLE_MS=""
BASE_JOBS_MS=""
SINGLE_MS=""
JOBS_MS=""
echo "== timing reproduce --quick all =="
for _ in $(seq "$ROUNDS"); do
    if [ -n "$BASE_BIN" ]; then
        BASE_SINGLE_MS=$(min_ms "$BASE_SINGLE_MS" "$(one_run_ms "$BASE_BIN" --quick all)")
        BASE_JOBS_MS=$(min_ms "$BASE_JOBS_MS" "$(one_run_ms "$BASE_BIN" --quick --jobs "$JOBS" all)")
    fi
    SINGLE_MS=$(min_ms "$SINGLE_MS" "$(one_run_ms "$BIN" --quick all)")
    JOBS_MS=$(min_ms "$JOBS_MS" "$(one_run_ms "$BIN" --quick --jobs "$JOBS" all)")
done
BASE_SINGLE_MS="${BASE_SINGLE_MS:-null}"
BASE_JOBS_MS="${BASE_JOBS_MS:-null}"
echo "  baseline: 1 job ${BASE_SINGLE_MS} ms, $JOBS jobs ${BASE_JOBS_MS} ms" >&2
echo "  current:  1 job ${SINGLE_MS} ms, $JOBS jobs ${JOBS_MS} ms" >&2

# C1M throughput: the experiment itself prints only modeled values;
# host wall time (and hence connections per host second, across the
# five sweep rows: native + eager + three batched policies) is measured
# here. The quick shape serves 1 800 connections per row, the medium
# trajectory shape 60 000 — together they chart connections-per-host-
# second on the road to the paper's one-million-connection run.
echo "== timing reproduce --quick c1m =="
C1M_MS=$(time_run "c1m quick" --quick c1m)
C1M_CONNECTIONS=$((5 * 1800))
if [ "$C1M_MS" -gt 0 ]; then
    C1M_CONN_PER_SEC=$((C1M_CONNECTIONS * 1000 / C1M_MS))
else
    C1M_CONN_PER_SEC=null
fi
echo "  c1m: ${C1M_CONNECTIONS} connections in ${C1M_MS} ms (${C1M_CONN_PER_SEC}/s)" >&2

# The drain-policy sweep line from the deterministic report, lifted
# verbatim into the JSON artifact (queue peaks and digest identity are
# modeled, so one capture run is enough).
C1M_SWEEP=$("$BIN" --quick c1m | grep "^drain-policy sweep:" || echo "")
echo "  $C1M_SWEEP" >&2

# Medium trajectory shape: 33x the quick connection count per row.
echo "== timing reproduce --medium c1m =="
C1M_MED_MS=$(time_run "c1m medium" --medium c1m)
C1M_MED_CONNECTIONS=$((5 * 60000))
if [ "$C1M_MED_MS" -gt 0 ]; then
    C1M_MED_CONN_PER_SEC=$((C1M_MED_CONNECTIONS * 1000 / C1M_MED_MS))
else
    C1M_MED_CONN_PER_SEC=null
fi
echo "  c1m medium: ${C1M_MED_CONNECTIONS} connections in ${C1M_MED_MS} ms (${C1M_MED_CONN_PER_SEC}/s)" >&2

echo "== timing reproduce --quick smp: harts x host threads =="
SMP_JSON=""
for H in 1 2 4; do
    for T in 1 2; do
        ms=$(time_run "harts $H, host threads $T" --quick --harts "$H" --host-threads "$T" smp)
        SMP_JSON="${SMP_JSON}${SMP_JSON:+, }\"harts${H}_threads${T}\": $ms"
    done
done

git worktree remove --force "$WT" > /dev/null 2>&1 || true

# Integer-permille speedups, rendered as fixed-point (avoids awk/bc).
ratio() {
    if [ "$1" = null ] || [ "$2" = null ]; then
        echo null
    elif [ "$2" -gt 0 ]; then
        permille=$((1000 * $1 / $2))
        echo "$((permille / 1000)).$(printf '%03d' $((permille % 1000)))"
    else
        echo "0.000"
    fi
}
JOBS_SPEEDUP=$(ratio "$SINGLE_MS" "$JOBS_MS")
THREADED_SPEEDUP=$(ratio "$BASE_JOBS_MS" "$JOBS_MS")
SINGLE_SPEEDUP=$(ratio "$BASE_SINGLE_MS" "$SINGLE_MS")

cat > "$OUT" <<EOF
{
  "wall_ms": $JOBS_MS,
  "jobs": $JOBS,
  "quick_all_ms": {
    "baseline_${BASELINE_REF}_1job": $BASE_SINGLE_MS,
    "baseline_${BASELINE_REF}_${JOBS}jobs": $BASE_JOBS_MS,
    "single_1job": $SINGLE_MS,
    "pooled_${JOBS}jobs": $JOBS_MS
  },
  "smp_quick_ms": { $SMP_JSON },
  "c1m_quick": {
    "wall_ms": $C1M_MS,
    "connections": $C1M_CONNECTIONS,
    "connections_per_host_sec": $C1M_CONN_PER_SEC
  },
  "c1m_medium": {
    "wall_ms": $C1M_MED_MS,
    "connections": $C1M_MED_CONNECTIONS,
    "connections_per_host_sec": $C1M_MED_CONN_PER_SEC
  },
  "drain_policy_sweep": "$C1M_SWEEP",
  "speedup": {
    "threaded_quick_suite": $THREADED_SPEEDUP,
    "single_vs_baseline": $SINGLE_SPEEDUP,
    "jobs": $JOBS_SPEEDUP
  }
}
EOF

echo "== $OUT =="
cat "$OUT"
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$OUT" > /dev/null
    echo "($OUT parses as JSON)"
fi
echo "speedup: threaded quick suite ${THREADED_SPEEDUP}x vs baseline $BASELINE_REF, single ${SINGLE_SPEEDUP}x, --jobs $JOBS ${JOBS_SPEEDUP}x"
