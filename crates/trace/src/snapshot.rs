//! The uniform stats-snapshot trait.
//!
//! Every stats block in the workspace (`AccessStats` in `ptstore-mem`,
//! `TlbStats` in `ptstore-mmu`, `KernelStats` in `ptstore-kernel`,
//! [`TraceCounters`](crate::TraceCounters) here) implements this trait, so
//! benches and the trace layer can diff any of them the same way instead
//! of each type growing its own `since` method.

/// Monotonic counter blocks that can be snapshotted and diffed.
pub trait Snapshot: Clone {
    /// A copy of the current values (the "earlier" side of a later
    /// [`delta`](Snapshot::delta)).
    fn snapshot(&self) -> Self {
        self.clone()
    }

    /// The change since `earlier`. Gauge-like fields (current/peak levels)
    /// pass through unchanged; monotonic counters subtract.
    fn delta(&self, earlier: &Self) -> Self;
}
