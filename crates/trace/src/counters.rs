//! Always-on per-layer counters.
//!
//! Counters are updated for every emitted event even when the ring buffer
//! has wrapped, so they summarise the *whole* run while the ring holds the
//! most recent window.

use serde::{Deserialize, Serialize};

use crate::event::{TokenOp, TraceEvent};
use crate::json::JsonWriter;
use crate::snapshot::Snapshot;

/// Event totals per layer, plus denial breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCounters {
    /// PMP adjudications (every physical access under enforcement).
    pub pmp_checks: u64,
    /// PMP denials — the S-bit or bounds check firing.
    pub pmp_denials: u64,
    /// Bus read transactions.
    pub bus_reads: u64,
    /// Bus write transactions.
    pub bus_writes: u64,
    /// Bus instruction fetches.
    pub bus_fetches: u64,
    /// Individual page-table-walk levels fetched.
    pub ptw_steps: u64,
    /// Walks refused because the table lay outside the secure region.
    pub ptw_origin_rejections: u64,
    /// TLB lookups that hit.
    pub tlb_hits: u64,
    /// TLB lookups that missed (and walked).
    pub tlb_misses: u64,
    /// Local TLB flushes (page- or ASID-scoped).
    pub tlb_flushes: u64,
    /// Cross-hart shootdown rounds.
    pub tlb_shootdowns: u64,
    /// Token issue/validate/clear operations.
    pub token_ops: u64,
    /// Token validations that failed.
    pub token_rejections: u64,
    /// Syscall entries.
    pub syscalls: u64,
    /// Secure-region grow/shrink/move events.
    pub region_moves: u64,
    /// Faults injected by the campaign driver.
    pub faults_injected: u64,
    /// Faults injected into IPI/shootdown handling.
    pub ipi_faults: u64,
    /// Invariant-oracle sweeps.
    pub invariant_checks: u64,
    /// Total violations those sweeps reported.
    pub invariant_violations: u64,
}

impl TraceCounters {
    /// Applies one event to the totals.
    pub fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::PmpCheck { verdict, .. } => {
                self.pmp_checks += 1;
                if verdict.is_denied() {
                    self.pmp_denials += 1;
                }
            }
            TraceEvent::BusRead { .. } => self.bus_reads += 1,
            TraceEvent::BusWrite { .. } => self.bus_writes += 1,
            TraceEvent::BusFetch { .. } => self.bus_fetches += 1,
            TraceEvent::PtwStep { .. } => self.ptw_steps += 1,
            TraceEvent::PtwOriginRejected { .. } => self.ptw_origin_rejections += 1,
            TraceEvent::TlbHit { .. } => self.tlb_hits += 1,
            TraceEvent::TlbMiss { .. } => self.tlb_misses += 1,
            TraceEvent::TlbFlush { .. } => self.tlb_flushes += 1,
            TraceEvent::TlbShootdown { .. } => self.tlb_shootdowns += 1,
            TraceEvent::Token { op, ok, .. } => {
                self.token_ops += 1;
                if !ok && *op == TokenOp::Validate {
                    self.token_rejections += 1;
                }
            }
            TraceEvent::SyscallEnter { .. } => self.syscalls += 1,
            TraceEvent::SyscallExit { .. } => {}
            TraceEvent::RegionMove { .. } => self.region_moves += 1,
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            TraceEvent::IpiFault { .. } => self.ipi_faults += 1,
            TraceEvent::InvariantCheck { violations, .. } => {
                self.invariant_checks += 1;
                self.invariant_violations += u64::from(*violations);
            }
        }
    }

    /// Total events counted across all layers.
    pub fn total(&self) -> u64 {
        self.pmp_checks
            + self.bus_reads
            + self.bus_writes
            + self.bus_fetches
            + self.ptw_steps
            + self.ptw_origin_rejections
            + self.tlb_hits
            + self.tlb_misses
            + self.tlb_flushes
            + self.tlb_shootdowns
            + self.token_ops
            + self.syscalls
            + self.region_moves
            + self.faults_injected
            + self.ipi_faults
            + self.invariant_checks
    }

    /// Serialises the counters as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.num_field("pmp_checks", self.pmp_checks);
        w.num_field("pmp_denials", self.pmp_denials);
        w.num_field("bus_reads", self.bus_reads);
        w.num_field("bus_writes", self.bus_writes);
        w.num_field("bus_fetches", self.bus_fetches);
        w.num_field("ptw_steps", self.ptw_steps);
        w.num_field("ptw_origin_rejections", self.ptw_origin_rejections);
        w.num_field("tlb_hits", self.tlb_hits);
        w.num_field("tlb_misses", self.tlb_misses);
        w.num_field("tlb_flushes", self.tlb_flushes);
        w.num_field("tlb_shootdowns", self.tlb_shootdowns);
        w.num_field("token_ops", self.token_ops);
        w.num_field("token_rejections", self.token_rejections);
        w.num_field("syscalls", self.syscalls);
        w.num_field("region_moves", self.region_moves);
        w.num_field("faults_injected", self.faults_injected);
        w.num_field("ipi_faults", self.ipi_faults);
        w.num_field("invariant_checks", self.invariant_checks);
        w.num_field("invariant_violations", self.invariant_violations);
        w.finish()
    }
}

impl Snapshot for TraceCounters {
    fn delta(&self, earlier: &Self) -> Self {
        Self {
            pmp_checks: self.pmp_checks - earlier.pmp_checks,
            pmp_denials: self.pmp_denials - earlier.pmp_denials,
            bus_reads: self.bus_reads - earlier.bus_reads,
            bus_writes: self.bus_writes - earlier.bus_writes,
            bus_fetches: self.bus_fetches - earlier.bus_fetches,
            ptw_steps: self.ptw_steps - earlier.ptw_steps,
            ptw_origin_rejections: self.ptw_origin_rejections - earlier.ptw_origin_rejections,
            tlb_hits: self.tlb_hits - earlier.tlb_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
            tlb_flushes: self.tlb_flushes - earlier.tlb_flushes,
            tlb_shootdowns: self.tlb_shootdowns - earlier.tlb_shootdowns,
            token_ops: self.token_ops - earlier.token_ops,
            token_rejections: self.token_rejections - earlier.token_rejections,
            syscalls: self.syscalls - earlier.syscalls,
            region_moves: self.region_moves - earlier.region_moves,
            faults_injected: self.faults_injected - earlier.faults_injected,
            ipi_faults: self.ipi_faults - earlier.ipi_faults,
            invariant_checks: self.invariant_checks - earlier.invariant_checks,
            invariant_violations: self.invariant_violations - earlier.invariant_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Access, Chan, Verdict};

    #[test]
    fn records_and_deltas() {
        let mut c = TraceCounters::default();
        c.record(&TraceEvent::PmpCheck {
            addr: 0,
            kind: Access::Read,
            channel: Chan::Regular,
            entry: None,
            verdict: Verdict::Allowed,
        });
        c.record(&TraceEvent::PmpCheck {
            addr: 0,
            kind: Access::Write,
            channel: Chan::Regular,
            entry: Some(1),
            verdict: Verdict::SecureRegionDenied,
        });
        let snap = c.snapshot();
        c.record(&TraceEvent::BusRead {
            addr: 8,
            width: 8,
            channel: Chan::Regular,
        });
        assert_eq!(c.pmp_checks, 2);
        assert_eq!(c.pmp_denials, 1);
        let d = c.delta(&snap);
        assert_eq!(d.pmp_checks, 0);
        assert_eq!(d.bus_reads, 1);
        assert_eq!(c.total(), 3);
    }
}
