//! # ptstore-trace — cross-layer decision tracing
//!
//! The paper's security argument rests on *where* each access was decided:
//! which PMP entry matched, which channel the access used, where a
//! page-table walk fetched from, and which check finally rejected an
//! attack. This crate is the forensic layer that keeps that provenance.
//!
//! It deliberately sits at the **bottom** of the workspace dependency
//! graph (it depends on nothing but the serde markers), so every other
//! layer — `ptstore-core`'s PMP, `ptstore-mem`'s bus, `ptstore-mmu`'s
//! walker and TLBs, and `ptstore-kernel`'s token/syscall/SBI paths — can
//! hold an optional [`TraceSink`] handle and emit [`TraceEvent`]s through
//! it. Events therefore describe hardware facts in primitive terms
//! (addresses as `u64`, channels/kinds as local tags) rather than
//! referencing upper-layer types.
//!
//! ## Zero overhead when disabled
//!
//! A disabled sink is `Option::None` at every emit site; the only cost is
//! one branch and no allocation. Cycle accounting is never touched:
//! tracing observes the machine, it does not run on it.
//!
//! ## Reading a trace
//!
//! ```
//! use ptstore_trace::{Chan, TraceEvent, TraceSink, Verdict};
//!
//! let sink = TraceSink::new();
//! // (normally the kernel emits; this is what a denied PT write looks like)
//! sink.emit(TraceEvent::PmpCheck {
//!     addr: 0x8000_1000,
//!     kind: ptstore_trace::Access::Write,
//!     channel: Chan::Regular,
//!     entry: Some(1),
//!     verdict: Verdict::SecureRegionDenied,
//! });
//! let events = sink.events();
//! assert_eq!(
//!     events.last().unwrap().rejecting_layer(),
//!     Some(ptstore_trace::RejectingLayer::PmpSBit)
//! );
//! assert_eq!(sink.counters().pmp_denials, 1);
//! ```

#![deny(missing_docs)]

mod counters;
mod event;
pub mod json;
mod sink;
mod snapshot;

pub use counters::TraceCounters;
pub use event::{
    Access, Chan, FaultClass, FlushScope, Layer, RejectingLayer, TlbUnit, TokenOp, TraceEvent,
    Verdict,
};
pub use sink::{TraceBuffer, TraceSink, DEFAULT_CAPACITY};
pub use snapshot::Snapshot;
