//! The shared event sink: bounded ring buffer + counters behind a cheap
//! clonable handle.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::counters::TraceCounters;
use crate::event::TraceEvent;
use crate::json::{array, JsonWriter};

/// Default ring capacity: enough for any attack scenario's full event
/// chain while bounding memory for long traced runs.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The storage behind a [`TraceSink`].
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    counters: TraceCounters,
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
            counters: TraceCounters::default(),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        self.counters.record(&event);
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// A cheap clonable handle every layer can hold.
///
/// All clones share one buffer, so the kernel, bus, MMU, and PMP write one
/// interleaved event stream in program order. Emitting through a `None`
/// handle is a single branch — the zero-overhead-when-disabled guarantee.
#[derive(Debug, Clone)]
pub struct TraceSink {
    buffer: Arc<Mutex<TraceBuffer>>,
}

impl TraceSink {
    /// A sink with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sink keeping at most `capacity` events (counters are unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buffer: Arc::new(Mutex::new(TraceBuffer::with_capacity(capacity))),
        }
    }

    /// Appends one event.
    pub fn emit(&self, event: TraceEvent) {
        self.buffer
            .lock()
            .expect("trace buffer poisoned")
            .push(event);
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buffer
            .lock()
            .expect("trace buffer poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// The run-wide counters.
    pub fn counters(&self) -> TraceCounters {
        self.buffer.lock().expect("trace buffer poisoned").counters
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.buffer
            .lock()
            .expect("trace buffer poisoned")
            .events
            .len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.buffer.lock().expect("trace buffer poisoned").dropped
    }

    /// Clears buffered events and counters (capacity is kept).
    pub fn clear(&self) {
        let mut b = self.buffer.lock().expect("trace buffer poisoned");
        b.events.clear();
        b.dropped = 0;
        b.counters = TraceCounters::default();
    }

    /// The most recent event recording a denial, if any.
    pub fn last_denial(&self) -> Option<TraceEvent> {
        self.buffer
            .lock()
            .expect("trace buffer poisoned")
            .events
            .iter()
            .rev()
            .find(|e| e.is_denial())
            .cloned()
    }

    /// Serialises the full sink state (events + counters + drop count) as
    /// one JSON object.
    pub fn dump_json(&self) -> String {
        let b = self.buffer.lock().expect("trace buffer poisoned");
        let mut w = JsonWriter::new();
        w.num_field("dropped", b.dropped);
        w.raw_field("counters", &b.counters.to_json());
        w.raw_field("events", &array(b.events.iter().map(TraceEvent::to_json)));
        w.finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Access, Chan, Verdict};

    fn read_event(addr: u64) -> TraceEvent {
        TraceEvent::BusRead {
            addr,
            width: 8,
            channel: Chan::Regular,
        }
    }

    #[test]
    fn ring_bounds_and_counts() {
        let sink = TraceSink::with_capacity(4);
        for i in 0..10 {
            sink.emit(read_event(i));
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
        // Counters survive eviction.
        assert_eq!(sink.counters().bus_reads, 10);
        let events = sink.events();
        assert_eq!(events[0], read_event(6), "oldest surviving event");
        assert_eq!(events[3], read_event(9), "newest event");
    }

    #[test]
    fn clones_share_one_stream() {
        let sink = TraceSink::new();
        let other = sink.clone();
        sink.emit(read_event(0));
        other.emit(read_event(1));
        assert_eq!(sink.len(), 2);
        assert_eq!(other.counters().bus_reads, 2);
    }

    #[test]
    fn last_denial_finds_the_final_rejection() {
        let sink = TraceSink::new();
        sink.emit(read_event(0));
        sink.emit(TraceEvent::PmpCheck {
            addr: 0x1000,
            kind: Access::Write,
            channel: Chan::Regular,
            entry: Some(1),
            verdict: Verdict::SecureRegionDenied,
        });
        sink.emit(read_event(1));
        let denial = sink.last_denial().expect("one denial present");
        assert!(matches!(denial, TraceEvent::PmpCheck { .. }));
    }

    #[test]
    fn clear_resets_everything() {
        let sink = TraceSink::with_capacity(2);
        sink.emit(read_event(0));
        sink.emit(read_event(1));
        sink.emit(read_event(2));
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.counters().bus_reads, 0);
    }

    #[test]
    fn dump_json_is_one_object() {
        let sink = TraceSink::new();
        sink.emit(read_event(0x40));
        let j = sink.dump_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"counters\":{"), "{j}");
        assert!(j.contains("\"events\":[{"), "{j}");
    }
}
