//! A tiny hand-rolled JSON object writer.
//!
//! The workspace's serde is an offline marker stub, so the trace layer
//! renders its own JSON. Only the shapes the trace dump needs are
//! supported: flat objects with string / number / hex-string / bool /
//! null fields.

/// Builds one `{...}` object field by field.
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl JsonWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(name);
        self.buf.push_str("\":");
    }

    /// Writes a string field, escaping quotes, backslashes, and controls.
    pub fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        for c in value.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Writes an unsigned-number field.
    pub fn num_field(&mut self, name: &str, value: u64) {
        self.key(name);
        self.buf.push_str(&value.to_string());
    }

    /// Addresses read better in hex; JSON numbers can't carry them, so
    /// they are emitted as `"0x..."` strings.
    pub fn hex_field(&mut self, name: &str, value: u64) {
        self.key(name);
        self.buf.push_str(&format!("\"{value:#x}\""));
    }

    /// Writes a `true`/`false` field.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Writes an explicit `null` field.
    pub fn null_field(&mut self, name: &str) {
        self.key(name);
        self.buf.push_str("null");
    }

    /// Appends a pre-rendered JSON value under `name` (for nesting).
    pub fn raw_field(&mut self, name: &str, json: &str) {
        self.key(name);
        self.buf.push_str(json);
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array(elements: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, e) in elements.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&e);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_shapes() {
        let mut w = JsonWriter::new();
        w.str_field("a", "x\"y");
        w.num_field("b", 7);
        w.hex_field("c", 0xff);
        w.bool_field("d", false);
        w.null_field("e");
        assert_eq!(
            w.finish(),
            r#"{"a":"x\"y","b":7,"c":"0xff","d":false,"e":null}"#
        );
    }

    #[test]
    fn arrays() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array([]), "[]");
    }
}
