//! The typed event vocabulary.
//!
//! Every variant records one hardware- or kernel-level decision in
//! primitive terms so the crate stays a leaf dependency. Each upper layer
//! converts its own types into the local tags ([`Chan`], [`Access`], …) at
//! the emit site.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::json::JsonWriter;

/// Which bus channel an access used (mirror of `ptstore_core::Channel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Chan {
    /// Ordinary load/store/fetch traffic.
    Regular,
    /// The dedicated `ld.pt`/`sd.pt` page-table channel.
    SecurePt,
    /// Hardware page-table-walker fetches.
    Ptw,
}

impl fmt::Display for Chan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Chan::Regular => "regular",
            Chan::SecurePt => "secure-pt",
            Chan::Ptw => "ptw",
        })
    }
}

/// Read / write / execute (mirror of `ptstore_core::AccessKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Execute,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Execute => "execute",
        })
    }
}

/// Outcome of a PMP check (mirror of the `AccessError` cases plus Allow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The access passed every check.
    Allowed,
    /// Regular-channel access inside the secure region: the S-bit fired.
    SecureRegionDenied,
    /// `ld.pt`/`sd.pt` aimed outside the secure region.
    SecureInstructionOutsideRegion,
    /// A PTW fetch left the secure region while `satp.S` was set.
    PtwOutsideRegion,
    /// Ordinary R/W/X permission denial of a matching entry.
    PmpDenied,
}

impl Verdict {
    /// True when the access was rejected.
    pub fn is_denied(self) -> bool {
        self != Verdict::Allowed
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Allowed => "allowed",
            Verdict::SecureRegionDenied => "secure-region-denied",
            Verdict::SecureInstructionOutsideRegion => "secure-instruction-outside-region",
            Verdict::PtwOutsideRegion => "ptw-outside-region",
            Verdict::PmpDenied => "pmp-denied",
        })
    }
}

/// Which TLB a lookup went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TlbUnit {
    /// The instruction TLB.
    Instruction,
    /// The data TLB.
    Data,
}

impl fmt::Display for TlbUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TlbUnit::Instruction => "itlb",
            TlbUnit::Data => "dtlb",
        })
    }
}

/// Scope of a TLB flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushScope {
    /// Every entry.
    All,
    /// One page of one address space.
    Page {
        /// The flushed virtual page number.
        vpn: u64,
        /// The owning address-space identifier.
        asid: u16,
    },
    /// Every entry of one address space.
    Asid {
        /// The flushed address-space identifier.
        asid: u16,
    },
    /// A run of consecutive pages of one address space — a deferred-
    /// shootdown drain coalescing per-page invalidations into one
    /// broadcast.
    Range {
        /// First virtual page number of the run.
        vpn: u64,
        /// Number of consecutive pages flushed.
        pages: u64,
        /// The owning address-space identifier.
        asid: u16,
    },
}

/// A token-lifecycle operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenOp {
    /// A fresh token bound to a PCB/root pair.
    Issue,
    /// A token duplicated for a forked child.
    Copy,
    /// A token slot wiped (process exit).
    Clear,
    /// A token checked before a `satp` switch.
    Validate,
}

impl fmt::Display for TokenOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TokenOp::Issue => "issue",
            TokenOp::Copy => "copy",
            TokenOp::Clear => "clear",
            TokenOp::Validate => "validate",
        })
    }
}

/// The architectural layer an event belongs to (counter bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Layer {
    /// PMP adjudications.
    Pmp,
    /// Bus transactions.
    Bus,
    /// Page-table-walker activity.
    Ptw,
    /// TLB lookups, flushes, and shootdowns.
    Tlb,
    /// Token lifecycle operations.
    Token,
    /// Syscall entry/exit.
    Syscall,
    /// Secure-region boundary moves.
    Region,
    /// Fault-injection events (`ptstore-fault` and the kernel's IPI tap).
    Fault,
    /// Invariant-oracle sweeps (`ptstore-fault`).
    Oracle,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layer::Pmp => "pmp",
            Layer::Bus => "bus",
            Layer::Ptw => "ptw",
            Layer::Tlb => "tlb",
            Layer::Token => "token",
            Layer::Syscall => "syscall",
            Layer::Region => "region",
            Layer::Fault => "fault",
            Layer::Oracle => "oracle",
        })
    }
}

/// The class of an injected fault, shared vocabulary between the
/// `ptstore-fault` injector, the kernel's IPI tap, and trace consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// A bit flip attempted on a page-table entry in the secure region
    /// through the regular channel (the attacker's write primitive).
    PteBitFlip,
    /// An attempted corruption of the PMP secure-region CSRs (modelled as a
    /// rogue SBI `SecureRegionSet` request the firmware must refuse).
    PmpCsrCorrupt,
    /// A corrupted `satp` write pointing the root outside the secure region.
    SatpCorrupt,
    /// A TLB-shootdown IPI silently dropped before reaching its victim.
    IpiDrop,
    /// TLB-shootdown acknowledgements delivered in reversed order.
    IpiReorder,
    /// The PTStore zone drained of free pages mid-workload.
    ZoneExhaust,
    /// A forged page-table pointer written into a PCB (token-forging).
    TokenForge,
    /// A queued remote invalidation silently discarded before its drain:
    /// the batched-shootdown queue loses one `(asid, vpn)` entry, so the
    /// remote TLBs it targeted are never flushed (a missed-drain kernel
    /// bug; on a security boundary the oracle must flag it).
    DrainDrop,
    /// A watermark-triggered *early* drain skipped whole: the queue keeps
    /// its entries past the configured depth until the next mandatory
    /// security-boundary drain delivers them (behaviour-preserving — the
    /// watermark is pure performance placement).
    WatermarkSkip,
}

impl FaultClass {
    /// Every fault class, in campaign order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::PteBitFlip,
        FaultClass::PmpCsrCorrupt,
        FaultClass::SatpCorrupt,
        FaultClass::IpiDrop,
        FaultClass::IpiReorder,
        FaultClass::ZoneExhaust,
        FaultClass::TokenForge,
        FaultClass::DrainDrop,
        FaultClass::WatermarkSkip,
    ];
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::PteBitFlip => "pte-bit-flip",
            FaultClass::PmpCsrCorrupt => "pmp-csr-corrupt",
            FaultClass::SatpCorrupt => "satp-corrupt",
            FaultClass::IpiDrop => "ipi-drop",
            FaultClass::IpiReorder => "ipi-reorder",
            FaultClass::ZoneExhaust => "zone-exhaust",
            FaultClass::TokenForge => "token-forge",
            FaultClass::DrainDrop => "drain-drop",
            FaultClass::WatermarkSkip => "watermark-skip",
        })
    }
}

/// The check that finally rejected an access, in the paper's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectingLayer {
    /// The PMP S-bit: regular-channel access into the secure region.
    PmpSBit,
    /// A dedicated-channel or PTW placement violation caught by the PMP.
    PmpChannel,
    /// The walker's `satp.S` origin check.
    PtwOriginCheck,
    /// Token validation before a `satp` switch.
    TokenValidation,
}

impl fmt::Display for RejectingLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectingLayer::PmpSBit => "pmp-s-bit",
            RejectingLayer::PmpChannel => "pmp-channel",
            RejectingLayer::PtwOriginCheck => "ptw-origin-check",
            RejectingLayer::TokenValidation => "token-validation",
        })
    }
}

/// One traced decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A PMP unit decision. `entry` is the index of the matching PMP entry
    /// (`None` when no entry matched and the default policy applied).
    PmpCheck {
        /// The checked physical address.
        addr: u64,
        /// Read, write, or execute.
        kind: Access,
        /// The channel the access arrived on.
        channel: Chan,
        /// Index of the matching PMP entry, if any.
        entry: Option<u8>,
        /// The decision.
        verdict: Verdict,
    },
    /// A bus read that passed its checks.
    BusRead {
        /// The physical address.
        addr: u64,
        /// Access width in bytes.
        width: u8,
        /// The channel used.
        channel: Chan,
    },
    /// A bus write that passed its checks.
    BusWrite {
        /// The physical address.
        addr: u64,
        /// Access width in bytes.
        width: u8,
        /// The channel used.
        channel: Chan,
    },
    /// An instruction fetch that passed its checks.
    BusFetch {
        /// The physical address.
        addr: u64,
        /// Fetch width in bytes.
        width: u8,
    },
    /// One level of a page-table walk (after the PTE was fetched).
    PtwStep {
        /// The virtual address being translated.
        va: u64,
        /// The walk level (2 = root for Sv39).
        level: u8,
        /// Physical address the PTE was fetched from.
        pte_addr: u64,
        /// The raw PTE bits.
        pte: u64,
    },
    /// The walker's fetch was rejected by the `satp.S` origin check.
    PtwOriginRejected {
        /// The virtual address being translated.
        va: u64,
        /// The out-of-region PTE address the walk tried to fetch.
        pte_addr: u64,
    },
    /// A TLB lookup hit.
    TlbHit {
        /// Instruction or data TLB.
        unit: TlbUnit,
        /// The looked-up virtual page number.
        vpn: u64,
        /// The address-space identifier.
        asid: u16,
        /// The hart performing the lookup.
        hart: u32,
    },
    /// A TLB lookup missed (including permission-mismatch misses).
    TlbMiss {
        /// Instruction or data TLB.
        unit: TlbUnit,
        /// The looked-up virtual page number.
        vpn: u64,
        /// The address-space identifier.
        asid: u16,
        /// The hart performing the lookup.
        hart: u32,
    },
    /// A TLB flush.
    TlbFlush {
        /// Instruction or data TLB.
        unit: TlbUnit,
        /// What the flush covered.
        scope: FlushScope,
        /// The hart whose TLB was flushed.
        hart: u32,
    },
    /// A cross-hart TLB shootdown: `from_hart` broadcast an IPI carrying
    /// `scope` and collected `acks` acknowledgements from the remote harts.
    TlbShootdown {
        /// What the shootdown covered.
        scope: FlushScope,
        /// The initiating hart.
        from_hart: u32,
        /// Acknowledgements collected.
        acks: u32,
    },
    /// A token-lifecycle operation. `ok == false` means the operation
    /// rejected (validation failure / pointer outside the secure region).
    Token {
        /// Which lifecycle step ran.
        op: TokenOp,
        /// The process whose token was touched.
        pid: u64,
        /// Whether the operation passed.
        ok: bool,
    },
    /// Syscall entry.
    SyscallEnter {
        /// The syscall's name.
        name: &'static str,
    },
    /// Syscall exit, with the cycles the call cost end to end.
    SyscallExit {
        /// The syscall's name.
        name: &'static str,
        /// Modeled cycles from entry to exit.
        cycles: u64,
    },
    /// The secure-region boundary moved (dynamic adjustment or initial
    /// installation via SBI).
    RegionMove {
        /// The region base before the move.
        old_base: u64,
        /// The region base after the move.
        new_base: u64,
        /// The (unchanged) region end.
        end: u64,
    },
    /// The `ptstore-fault` injector fired one fault on `hart`.
    FaultInjected {
        /// The injected fault class.
        kind: FaultClass,
        /// The hart the fault landed on.
        hart: u32,
    },
    /// A planted IPI fault perturbed a shootdown broadcast: the IPI to
    /// `victim` was dropped, or the ack collection ran in reversed order.
    IpiFault {
        /// Which IPI perturbation fired.
        kind: FaultClass,
        /// The hart whose IPI was perturbed.
        victim: u32,
    },
    /// One invariant-oracle sweep: `checks` invariants evaluated,
    /// `violations` of them failed.
    InvariantCheck {
        /// Invariants evaluated.
        checks: u32,
        /// How many failed.
        violations: u32,
    },
}

impl TraceEvent {
    /// The counter bucket this event belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            TraceEvent::PmpCheck { .. } => Layer::Pmp,
            TraceEvent::BusRead { .. }
            | TraceEvent::BusWrite { .. }
            | TraceEvent::BusFetch { .. } => Layer::Bus,
            TraceEvent::PtwStep { .. } | TraceEvent::PtwOriginRejected { .. } => Layer::Ptw,
            TraceEvent::TlbHit { .. }
            | TraceEvent::TlbMiss { .. }
            | TraceEvent::TlbFlush { .. }
            | TraceEvent::TlbShootdown { .. } => Layer::Tlb,
            TraceEvent::Token { .. } => Layer::Token,
            TraceEvent::SyscallEnter { .. } | TraceEvent::SyscallExit { .. } => Layer::Syscall,
            TraceEvent::RegionMove { .. } => Layer::Region,
            TraceEvent::FaultInjected { .. } | TraceEvent::IpiFault { .. } => Layer::Fault,
            TraceEvent::InvariantCheck { .. } => Layer::Oracle,
        }
    }

    /// True when this event records a rejected access or operation.
    pub fn is_denial(&self) -> bool {
        self.rejecting_layer().is_some()
    }

    /// When this event records a denial: the check that rejected it, in the
    /// paper's vocabulary (PMP S-bit, PTW origin check, token validation).
    pub fn rejecting_layer(&self) -> Option<RejectingLayer> {
        match self {
            TraceEvent::PmpCheck { verdict, .. } => match verdict {
                Verdict::Allowed => None,
                Verdict::SecureRegionDenied => Some(RejectingLayer::PmpSBit),
                Verdict::PtwOutsideRegion => Some(RejectingLayer::PtwOriginCheck),
                Verdict::SecureInstructionOutsideRegion | Verdict::PmpDenied => {
                    Some(RejectingLayer::PmpChannel)
                }
            },
            TraceEvent::PtwOriginRejected { .. } => Some(RejectingLayer::PtwOriginCheck),
            TraceEvent::Token {
                op: TokenOp::Validate,
                ok: false,
                ..
            } => Some(RejectingLayer::TokenValidation),
            TraceEvent::Token { ok: false, .. } => Some(RejectingLayer::TokenValidation),
            _ => None,
        }
    }

    /// Writes a [`FlushScope`]'s discriminant and operands as JSON fields.
    fn scope_fields(w: &mut JsonWriter, scope: &FlushScope) {
        match scope {
            FlushScope::All => w.str_field("scope", "all"),
            FlushScope::Page { vpn, asid } => {
                w.str_field("scope", "page");
                w.hex_field("vpn", *vpn);
                w.num_field("asid", u64::from(*asid));
            }
            FlushScope::Asid { asid } => {
                w.str_field("scope", "asid");
                w.num_field("asid", u64::from(*asid));
            }
            FlushScope::Range { vpn, pages, asid } => {
                w.str_field("scope", "range");
                w.hex_field("vpn", *vpn);
                w.num_field("pages", *pages);
                w.num_field("asid", u64::from(*asid));
            }
        }
    }

    /// Serialises this event as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        match self {
            TraceEvent::PmpCheck {
                addr,
                kind,
                channel,
                entry,
                verdict,
            } => {
                w.str_field("type", "pmp_check");
                w.hex_field("addr", *addr);
                w.str_field("kind", &kind.to_string());
                w.str_field("channel", &channel.to_string());
                match entry {
                    Some(i) => w.num_field("entry", u64::from(*i)),
                    None => w.null_field("entry"),
                }
                w.str_field("verdict", &verdict.to_string());
            }
            TraceEvent::BusRead {
                addr,
                width,
                channel,
            } => {
                w.str_field("type", "bus_read");
                w.hex_field("addr", *addr);
                w.num_field("width", u64::from(*width));
                w.str_field("channel", &channel.to_string());
            }
            TraceEvent::BusWrite {
                addr,
                width,
                channel,
            } => {
                w.str_field("type", "bus_write");
                w.hex_field("addr", *addr);
                w.num_field("width", u64::from(*width));
                w.str_field("channel", &channel.to_string());
            }
            TraceEvent::BusFetch { addr, width } => {
                w.str_field("type", "bus_fetch");
                w.hex_field("addr", *addr);
                w.num_field("width", u64::from(*width));
            }
            TraceEvent::PtwStep {
                va,
                level,
                pte_addr,
                pte,
            } => {
                w.str_field("type", "ptw_step");
                w.hex_field("va", *va);
                w.num_field("level", u64::from(*level));
                w.hex_field("pte_addr", *pte_addr);
                w.hex_field("pte", *pte);
            }
            TraceEvent::PtwOriginRejected { va, pte_addr } => {
                w.str_field("type", "ptw_origin_rejected");
                w.hex_field("va", *va);
                w.hex_field("pte_addr", *pte_addr);
            }
            TraceEvent::TlbHit {
                unit,
                vpn,
                asid,
                hart,
            } => {
                w.str_field("type", "tlb_hit");
                w.str_field("unit", &unit.to_string());
                w.hex_field("vpn", *vpn);
                w.num_field("asid", u64::from(*asid));
                w.num_field("hart", u64::from(*hart));
            }
            TraceEvent::TlbMiss {
                unit,
                vpn,
                asid,
                hart,
            } => {
                w.str_field("type", "tlb_miss");
                w.str_field("unit", &unit.to_string());
                w.hex_field("vpn", *vpn);
                w.num_field("asid", u64::from(*asid));
                w.num_field("hart", u64::from(*hart));
            }
            TraceEvent::TlbFlush { unit, scope, hart } => {
                w.str_field("type", "tlb_flush");
                w.str_field("unit", &unit.to_string());
                Self::scope_fields(&mut w, scope);
                w.num_field("hart", u64::from(*hart));
            }
            TraceEvent::TlbShootdown {
                scope,
                from_hart,
                acks,
            } => {
                w.str_field("type", "tlb_shootdown");
                Self::scope_fields(&mut w, scope);
                w.num_field("from_hart", u64::from(*from_hart));
                w.num_field("acks", u64::from(*acks));
            }
            TraceEvent::Token { op, pid, ok } => {
                w.str_field("type", "token");
                w.str_field("op", &op.to_string());
                w.num_field("pid", *pid);
                w.bool_field("ok", *ok);
            }
            TraceEvent::SyscallEnter { name } => {
                w.str_field("type", "syscall_enter");
                w.str_field("name", name);
            }
            TraceEvent::SyscallExit { name, cycles } => {
                w.str_field("type", "syscall_exit");
                w.str_field("name", name);
                w.num_field("cycles", *cycles);
            }
            TraceEvent::FaultInjected { kind, hart } => {
                w.str_field("type", "fault_injected");
                w.str_field("kind", &kind.to_string());
                w.num_field("hart", u64::from(*hart));
            }
            TraceEvent::IpiFault { kind, victim } => {
                w.str_field("type", "ipi_fault");
                w.str_field("kind", &kind.to_string());
                w.num_field("victim", u64::from(*victim));
            }
            TraceEvent::InvariantCheck { checks, violations } => {
                w.str_field("type", "invariant_check");
                w.num_field("checks", u64::from(*checks));
                w.num_field("violations", u64::from(*violations));
            }
            TraceEvent::RegionMove {
                old_base,
                new_base,
                end,
            } => {
                w.str_field("type", "region_move");
                w.hex_field("old_base", *old_base);
                w.hex_field("new_base", *new_base);
                w.hex_field("end", *end);
            }
        }
        if let Some(layer) = self.rejecting_layer() {
            w.str_field("rejecting_layer", &layer.to_string());
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denial_attribution_matches_paper_vocabulary() {
        let pmp = TraceEvent::PmpCheck {
            addr: 0x1000,
            kind: Access::Write,
            channel: Chan::Regular,
            entry: Some(1),
            verdict: Verdict::SecureRegionDenied,
        };
        assert_eq!(pmp.rejecting_layer(), Some(RejectingLayer::PmpSBit));

        let ptw = TraceEvent::PtwOriginRejected {
            va: 0xffff_ffc0_0000_0000,
            pte_addr: 0x20_0000,
        };
        assert_eq!(ptw.rejecting_layer(), Some(RejectingLayer::PtwOriginCheck));

        let token = TraceEvent::Token {
            op: TokenOp::Validate,
            pid: 3,
            ok: false,
        };
        assert_eq!(
            token.rejecting_layer(),
            Some(RejectingLayer::TokenValidation)
        );

        let ok = TraceEvent::BusRead {
            addr: 0,
            width: 8,
            channel: Chan::Regular,
        };
        assert_eq!(ok.rejecting_layer(), None);
    }

    #[test]
    fn json_contains_type_and_attribution() {
        let e = TraceEvent::PmpCheck {
            addr: 0xabc,
            kind: Access::Read,
            channel: Chan::Ptw,
            entry: None,
            verdict: Verdict::PtwOutsideRegion,
        };
        let j = e.to_json();
        assert!(j.contains("\"type\":\"pmp_check\""), "{j}");
        assert!(j.contains("\"entry\":null"), "{j}");
        assert!(
            j.contains("\"rejecting_layer\":\"ptw-origin-check\""),
            "{j}"
        );
        assert!(j.contains("\"addr\":\"0xabc\""), "{j}");
    }

    #[test]
    fn shootdown_event_carries_hart_ids() {
        let e = TraceEvent::TlbShootdown {
            scope: FlushScope::Page { vpn: 0x40, asid: 3 },
            from_hart: 1,
            acks: 3,
        };
        assert_eq!(e.layer(), Layer::Tlb);
        assert!(!e.is_denial());
        let j = e.to_json();
        assert!(j.contains("\"type\":\"tlb_shootdown\""), "{j}");
        assert!(j.contains("\"from_hart\":1"), "{j}");
        assert!(j.contains("\"acks\":3"), "{j}");
        assert!(j.contains("\"scope\":\"page\""), "{j}");
    }
}
