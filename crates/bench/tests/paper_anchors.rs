//! The paper's numeric claims, encoded as tests. These run the quick-scale
//! experiments and assert the measured overheads stay inside bands around
//! the published numbers — so any future change that silently breaks the
//! calibration (or the mechanisms behind it) fails CI.
//!
//! Bands are deliberately loose: the claim being guarded is the *shape*
//! (ordering and rough magnitude), not a curve fit.

use ptstore_bench::{
    average_overhead, run_fig4, run_fig5, run_fig6, run_fig7, run_ltp, run_security, run_stress,
    run_table3, Scale,
};
use ptstore_kernel::DefenseMode;

#[test]
fn table3_hardware_overhead_bounds() {
    // Abstract: "<0.92% hardware overheads".
    let rows = run_table3();
    let lut_pct = rows[1].core_lut_pct.expect("overhead");
    let ff_pct = rows[1].core_ff_pct.expect("overhead");
    assert!(lut_pct > 0.0 && lut_pct < 0.92, "core LUT {lut_pct:.3}%");
    assert!(ff_pct > 0.0 && ff_pct < 0.30, "core FF {ff_pct:.3}%");
    // Fmax unaffected (Table III: both ≥ 90 MHz).
    assert!(rows[0].fmax_mhz >= 90.0 && rows[1].fmax_mhz >= 90.0);
}

#[test]
fn ltp_has_zero_deviations() {
    // §V-C: "we compare the outputs of the two runs and do not find any
    // deviation".
    let r = run_ltp(&Scale::quick());
    assert!(r.cases >= 40, "suite size {}", r.cases);
    assert!(r.deviations.is_empty(), "{:#?}", r.deviations);
}

#[test]
fn fork_stress_matches_paper_bands() {
    // §V-D1: 2.84% / 6.83% / 3.77%.
    let rows = run_stress(&Scale::quick());
    let find = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("{label} row"))
    };
    let cfi = find("CFI").overhead_pct;
    let ptstore = find("CFI+PTStore").overhead_pct;
    let adj = find("CFI+PTStore-Adj").overhead_pct;
    assert!((1.5..4.5).contains(&cfi), "CFI {cfi:.2}% vs paper 2.84%");
    assert!(
        (4.5..10.0).contains(&ptstore),
        "CFI+PTStore {ptstore:.2}% vs paper 6.83%"
    );
    assert!((2.5..6.0).contains(&adj), "-Adj {adj:.2}% vs paper 3.77%");
    // Ordering: adjusting > non-adjusting > CFI > 0.
    assert!(ptstore > adj && adj > cfi && cfi > 0.0);
    // Adjustment fired only where the paper says it does.
    assert!(find("CFI+PTStore").result.adjustments > 0);
    assert_eq!(find("CFI+PTStore-Adj").result.adjustments, 0);
    assert_eq!(find("CFI").result.adjustments, 0);
}

#[test]
fn lmbench_shape_holds() {
    // Figure 4: PTStore's cost confined to the fork family; elsewhere ~0.
    let series = run_fig4(&Scale::quick());
    for s in &series {
        let cfi = s.overhead_of("CFI").expect("cfi");
        let both = s.overhead_of("CFI+PTStore").expect("both");
        let ptstore_only = both - cfi;
        if s.benchmark.starts_with("fork") {
            assert!(
                (0.2..3.0).contains(&ptstore_only),
                "{}: fork-family PTStore extra {ptstore_only:.2}%",
                s.benchmark
            );
        } else if s.benchmark.starts_with("ctx switch") {
            // Token validation rides every satp switch — small but real.
            assert!(
                (0.0..2.0).contains(&ptstore_only),
                "{}: ctx-switch PTStore extra {ptstore_only:.2}%",
                s.benchmark
            );
        } else {
            assert!(
                ptstore_only.abs() < 0.6,
                "{}: non-fork PTStore extra {ptstore_only:.2}% should be ~0",
                s.benchmark
            );
        }
    }
}

#[test]
fn spec_is_cpu_bound_small() {
    // Figure 5: <0.91% with CFI, <0.29% PTStore alone.
    let series = run_fig5(&Scale::quick());
    let with_cfi = average_overhead(&series, "CFI+PTStore");
    let cfi_only = average_overhead(&series, "CFI");
    assert!(with_cfi < 0.91, "SPEC CFI+PTStore avg {with_cfi:.3}%");
    assert!(
        (with_cfi - cfi_only).abs() < 0.29,
        "SPEC PTStore-only {:.3}%",
        with_cfi - cfi_only
    );
}

#[test]
fn kernel_bound_macros_within_paper_bounds() {
    // Figures 6-7: <8.18% including CFI; PTStore alone <0.86%.
    for series in [run_fig6(&Scale::quick()), run_fig7(&Scale::quick())] {
        for s in &series {
            let both = s.overhead_of("CFI+PTStore").expect("both");
            let cfi = s.overhead_of("CFI").expect("cfi");
            assert!(
                both < 12.0,
                "{}: {both:.2}% way past the paper's band",
                s.benchmark
            );
            let ptstore_only = both - cfi;
            assert!(
                ptstore_only < 0.86,
                "{}: PTStore alone {ptstore_only:.3}% (paper <0.86%)",
                s.benchmark
            );
            assert!(
                cfi > 0.5,
                "{}: kernel-bound workloads must show CFI",
                s.benchmark
            );
        }
    }
}

#[test]
fn security_matrix_headline() {
    // §V-E: PTStore defeats everything; every baseline loses something.
    let matrix = run_security();
    assert!(matrix
        .iter()
        .filter(|r| r.defense == DefenseMode::PtStore && r.tokens)
        .all(|r| !r.outcome.attacker_won()));
    for defense in [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
    ] {
        assert!(
            matrix
                .iter()
                .filter(|r| r.defense == defense)
                .any(|r| r.outcome.attacker_won()),
            "{defense} should lose at least one attack"
        );
    }
}
