//! The bench crate's shared fan-out pool.
//!
//! Every `par_map` call in the harness funnels through [`fan_out`], which
//! fixes the two ways the old per-call-site pools lost wall-clock time:
//!
//! * **Oversubscription** — `reproduce --jobs N` fanned out the experiment
//!   list *and* each experiment fanned out its (benchmark × config) grid,
//!   so a host with `c` cores could end up carrying `N × N` runnable
//!   threads. [`fan_out`] marks its worker threads with a thread-local
//!   flag; a nested call from inside a worker runs inline on that worker,
//!   keeping the process at one pool's worth of threads total.
//! * **Phantom parallelism** — a `--jobs` count above the host's core
//!   count only adds scheduler churn. [`fan_out`] clamps the worker count
//!   to `std::thread::available_parallelism()`.
//!
//! The pool is deliberately free of raw atomics (the `atomics-confinement`
//! lint confines those to the kernel's process table): the work index is a
//! mutex-guarded counter, which at experiment granularity — each item
//! boots and runs a whole kernel — costs nothing measurable.

use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    /// True on threads spawned by [`fan_out`]; nested calls see it and run
    /// inline instead of spawning a second pool.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The host's usable core count (at least 1).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `requested` jobs clamped to the host's core count: the widest fan-out
/// that buys real parallelism.
pub fn effective_jobs(requested: usize) -> usize {
    requested.clamp(1, host_cores())
}

/// Applies `f` to every item on up to `jobs` pool threads (clamped to the
/// host's cores), returning results in input order. Runs inline — no
/// threads at all — when `jobs <= 1`, when there is at most one item, or
/// when called from inside another `fan_out` (nested fan-outs share the
/// outer pool's thread instead of oversubscribing the host).
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn fan_out<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let jobs = effective_jobs(jobs);
    if jobs <= 1 || n <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().map(f).collect();
    }
    let next = Mutex::new(0usize);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = {
                        let mut g = next.lock().expect("work index");
                        let i = *g;
                        *g += 1;
                        i
                    };
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *results[i].lock().expect("result slot") = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("worker filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(fan_out(jobs, &items, |&i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        // The inner fan_out must not spawn: its items run on the outer
        // worker's thread, so the inner call sees IN_POOL set and every
        // inner item reports the same thread id as its outer item.
        let outer: Vec<u64> = (0..4).collect();
        let pairs = fan_out(4, &outer, |&o| {
            let tid = std::thread::current().id();
            let inner: Vec<u64> = (0..3).collect();
            let tids = fan_out(4, &inner, |_| std::thread::current().id());
            (o, tids.into_iter().all(|t| t == tid))
        });
        assert_eq!(pairs.len(), 4);
        for (o, inline) in pairs {
            assert!(inline, "item {o}: nested call escaped the outer worker");
        }
    }

    #[test]
    fn clamps_to_host_cores() {
        assert!(effective_jobs(0) >= 1);
        assert!(effective_jobs(10_000) <= host_cores());
        assert_eq!(effective_jobs(1), 1);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(fan_out(4, &[] as &[u64], |&i| i), Vec::<u64>::new());
        assert_eq!(fan_out(4, &[9u64], |&i| i + 1), vec![10]);
    }
}
