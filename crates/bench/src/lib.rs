//! # ptstore-bench
//!
//! Shared drivers behind the `reproduce` binary and the Criterion benches:
//! one function per table/figure of the paper, each returning structured
//! results so callers can print, assert, or benchmark them.

pub mod experiments;
pub mod par;
pub mod pool;

pub use experiments::*;
pub use par::par_map;
pub use pool::{effective_jobs, fan_out, host_cores};
pub use ptstore_workloads::{Measurement, OverheadSeries};
