//! Experiment drivers, one per paper table/figure.

use ptstore_attacks::{
    security_matrix, security_matrix_traced, security_matrix_with_harts, AttackReport,
    TracedAttackReport,
};
use ptstore_core::{GIB, MIB};
use ptstore_hwcost::{table3, BoomConfig, Table3Row};
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::fork_stress::{run_fork_stress, stress_configs, ForkStressResult};
use ptstore_workloads::nginx::{run_nginx, NginxParams, RESPONSE_SIZES};
use ptstore_workloads::redis::{run_redis_test, RedisParams, REDIS_TESTS};
use ptstore_workloads::regression::{diff_outputs, run_suite, TestOutput};
use ptstore_workloads::report::{measure, overhead_pct, standard_configs, OverheadSeries};
use ptstore_workloads::smp::{run_fork_stress_smp, run_nginx_smp, run_redis_smp, SmpRunReport};
use ptstore_workloads::spec::{run_spec, SPEC_CINT2006};
use ptstore_workloads::{lmbench, Measurement};

/// Scale knobs: `paper()` matches the publication; `quick()` runs in
/// seconds for CI and Criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Physical memory of the modelled machine.
    pub mem_size: u64,
    /// Initial secure-region size (the paper's 64 MiB default).
    pub secure_size: u64,
    /// LMBench iterations per microbenchmark (paper: 1 000).
    pub lmbench_iters: u64,
    /// Fork-stress process count (paper: 30 000).
    pub stress_procs: u64,
    /// Large-region size for the `-Adj` configuration (paper: 1 GiB).
    pub stress_large_region: u64,
    /// NGINX request count (paper: 10 000).
    pub nginx_requests: u64,
    /// Redis requests per test (paper: 100 000).
    pub redis_requests: u64,
}

impl Scale {
    /// The paper's evaluation scale.
    pub fn paper() -> Self {
        Self {
            mem_size: 4 * GIB,
            secure_size: 64 * MIB,
            lmbench_iters: 1_000,
            stress_procs: 30_000,
            stress_large_region: GIB,
            nginx_requests: 10_000,
            redis_requests: 100_000,
        }
    }

    /// A seconds-scale variant preserving every ratio that matters.
    pub fn quick() -> Self {
        Self {
            mem_size: 512 * MIB,
            secure_size: 8 * MIB,
            lmbench_iters: 100,
            stress_procs: 1_500,
            stress_large_region: 128 * MIB,
            nginx_requests: 1_000,
            redis_requests: 2_000,
        }
    }
}

// ---------------------------------------------------------------------
// Table I — lines of code
// ---------------------------------------------------------------------

/// One Table I row: a PTStore component and its size in this repository.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Component (paper wording).
    pub component: &'static str,
    /// Implementation language in the paper.
    pub paper_language: &'static str,
    /// The paper's total LoC for the component.
    pub paper_loc: u64,
    /// Crates/modules implementing the equivalent here.
    pub our_location: &'static str,
    /// Our measured non-blank LoC.
    pub our_loc: u64,
}

fn count_loc(paths: &[&str]) -> u64 {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut total = 0u64;
    for rel in paths {
        let p = root.join(rel);
        if let Ok(content) = std::fs::read_to_string(&p) {
            total += content.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        }
    }
    total
}

/// Regenerates Table I: the paper's per-component LoC next to this
/// reproduction's equivalents (whole files implementing the mechanism, so
/// the counts are naturally larger than a kernel patch).
pub fn table1() -> Vec<LocRow> {
    vec![
        LocRow {
            component: "RISC-V Processor",
            paper_language: "Chisel",
            paper_loc: 58,
            our_location: "ptstore-core (pmp/policy) + ptstore-mmu (walker) + ptstore-isa (cpu)",
            our_loc: count_loc(&[
                "crates/core/src/pmp.rs",
                "crates/core/src/policy.rs",
                "crates/mmu/src/walker.rs",
                "crates/isa/src/cpu.rs",
            ]),
        },
        LocRow {
            component: "LLVM Back-end",
            paper_language: "C++ and TableGen",
            paper_loc: 15,
            our_location: "ptstore-isa (encode/decode)",
            our_loc: count_loc(&["crates/isa/src/encode.rs", "crates/isa/src/decode.rs"]),
        },
        LocRow {
            component: "Linux Kernel",
            paper_language: "C",
            paper_loc: 1_405,
            our_location: "ptstore-kernel",
            our_loc: count_loc(&[
                "crates/kernel/src/kernel.rs",
                "crates/kernel/src/zones.rs",
                "crates/kernel/src/slab.rs",
                "crates/kernel/src/proc_mgmt.rs",
                "crates/kernel/src/syscall.rs",
            ]),
        },
    ]
}

// ---------------------------------------------------------------------
// Table II / Table III — configuration and hardware cost
// ---------------------------------------------------------------------

/// The prototype configuration rows of Table II.
pub fn table2() -> Vec<(&'static str, String)> {
    let boom = BoomConfig::small_boom();
    vec![
        (
            "ISA Extensions",
            "RV64IMAC with M, S, and U modes".to_string(),
        ),
        ("BOOM Config", "SmallBooms".to_string()),
        ("Caches", "16KiB 4-way L1I$, 16KiB 4-way L1D$".to_string()),
        (
            "TLBs",
            format!(
                "{}-entry I-TLB, {}-entry D-TLB",
                boom.itlb_entries, boom.dtlb_entries
            ),
        ),
        (
            "Peripherals",
            "Xilinx MIG (4GiB DDR3), AXI Ethernet, 64KiB Boot ROM".to_string(),
        ),
    ]
}

/// Regenerates Table III.
pub fn run_table3() -> [Table3Row; 2] {
    table3(&BoomConfig::small_boom())
}

// ---------------------------------------------------------------------
// §V-C — LTP regression
// ---------------------------------------------------------------------

/// Result of the LTP-style regression diff.
#[derive(Debug, Clone)]
pub struct LtpResult {
    /// Number of test cases run per kernel.
    pub cases: usize,
    /// Outputs from the original (CFI) kernel.
    pub original: Vec<TestOutput>,
    /// Deviations between original and PTStore kernels (empty = pass).
    pub deviations: Vec<String>,
}

/// Runs the regression suite on the original and modified kernels and diffs
/// the outputs (paper §V-C).
pub fn run_ltp(scale: &Scale) -> LtpResult {
    let mk = |cfg: KernelConfig| {
        let scale = *scale;
        move || {
            let cfg = cfg
                .to_builder()
                .mem_size(scale.mem_size)
                .initial_secure_size(scale.secure_size.min(scale.mem_size / 4))
                .build()
                .expect("valid scale geometry");
            Kernel::boot(cfg).expect("boot")
        }
    };
    let original = run_suite(mk(KernelConfig::cfi()));
    let modified = run_suite(mk(KernelConfig::cfi_ptstore()));
    let deviations = diff_outputs(&original, &modified);
    LtpResult {
        cases: original.len(),
        original,
        deviations,
    }
}

// ---------------------------------------------------------------------
// Figure 4 — LMBench
// ---------------------------------------------------------------------

/// Runs every Figure 4 microbenchmark across baseline/CFI/CFI+PTStore.
pub fn run_fig4(scale: &Scale) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    lmbench::MICROBENCHMARKS
        .iter()
        .map(|name| {
            measure(name, &configs, |k| {
                lmbench::run(name, k, scale.lmbench_iters)
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// §V-D1 — fork stress
// ---------------------------------------------------------------------

/// One fork-stress configuration's results.
#[derive(Debug, Clone)]
pub struct StressRow {
    /// Configuration label.
    pub label: String,
    /// Raw results.
    pub result: ForkStressResult,
    /// Overhead versus the no-CFI baseline, percent.
    pub overhead_pct: f64,
}

/// Runs the §V-D1 stress at the given scale across the four configurations.
pub fn run_stress(scale: &Scale) -> Vec<StressRow> {
    // The small-region configuration is sized so adjustments must fire, as
    // the paper's 64 MiB does for 30 000 processes.
    let small_region = (scale.stress_procs * 6 * ptstore_core::PAGE_SIZE / 10)
        .clamp(MIB, scale.mem_size / 8)
        .next_power_of_two()
        / 2;
    let configs = stress_configs(scale.mem_size, small_region, scale.stress_large_region);
    let mut rows = Vec::new();
    let mut baseline = 0u64;
    for (i, cfg) in configs.iter().enumerate() {
        let mut k = Kernel::boot(*cfg).expect("boot");
        let result = run_fork_stress(&mut k, scale.stress_procs).expect("stress");
        if i == 0 {
            baseline = result.cycles;
        }
        rows.push(StressRow {
            label: cfg.label(),
            result,
            overhead_pct: overhead_pct(result.cycles, baseline),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 5 — SPEC CINT2006
// ---------------------------------------------------------------------

/// Runs every SPEC-shaped benchmark across the three configurations.
pub fn run_fig5(scale: &Scale) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    SPEC_CINT2006
        .iter()
        .map(|p| measure(p.name, &configs, |k| run_spec(k, p)))
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6 — NGINX
// ---------------------------------------------------------------------

/// Runs the NGINX benchmark per response size across the configurations.
pub fn run_fig6(scale: &Scale) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    RESPONSE_SIZES
        .iter()
        .map(|&size| {
            let params = NginxParams {
                requests: scale.nginx_requests,
                concurrency: 100,
                ..NginxParams::paper(size)
            };
            let label = format!("nginx {}KiB", size >> 10);
            measure(&label, &configs, |k| run_nginx(k, &params))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7 — Redis
// ---------------------------------------------------------------------

/// Runs the redis-benchmark command list across the configurations.
pub fn run_fig7(scale: &Scale) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    let params = RedisParams {
        requests: scale.redis_requests,
        connections: 50,
    };
    REDIS_TESTS
        .iter()
        .map(|t| measure(t.name, &configs, |k| run_redis_test(k, t, &params)))
        .collect()
}

// ---------------------------------------------------------------------
// §V-E — security matrix
// ---------------------------------------------------------------------

/// Runs the full attack × defense battery.
pub fn run_security() -> Vec<AttackReport> {
    security_matrix()
}

/// The same battery on an `harts`-way SMP machine: the verdicts must not
/// depend on the hart count.
pub fn run_security_with_harts(harts: usize) -> Vec<AttackReport> {
    security_matrix_with_harts(harts)
}

/// Runs the PTStore rows (full design + tokens-off ablation) with a trace
/// sink attached per cell, capturing each attack's event chain.
pub fn run_security_traced() -> Vec<TracedAttackReport> {
    security_matrix_traced()
}

// ---------------------------------------------------------------------
// SMP scaling — hart-distributed macrobenchmarks
// ---------------------------------------------------------------------

/// One workload measured single-hart and `harts`-way on otherwise
/// identical machines.
#[derive(Debug, Clone)]
pub struct SmpComparison {
    /// Workload name.
    pub workload: String,
    /// The `--harts 1` run (the paper's original machine).
    pub single: SmpRunReport,
    /// The `--harts N` run.
    pub multi: SmpRunReport,
}

impl SmpComparison {
    /// Throughput gain of the SMP run: ops-per-wall-cycle ratio.
    pub fn speedup(&self) -> f64 {
        let base = self.single.ops_per_kilocycle();
        if base == 0.0 {
            0.0
        } else {
            self.multi.ops_per_kilocycle() / base
        }
    }
}

/// Runs the hart-distributed nginx, Redis (GET), and fork-stress drivers
/// on 1-hart and `harts`-hart CFI+PTStore machines.
///
/// # Panics
/// Panics when `harts` is 0 or the kernel fails to boot.
pub fn run_smp(scale: &Scale, harts: usize) -> Vec<SmpComparison> {
    assert!(harts >= 1, "need at least one hart");
    let boot = |h: usize| {
        Kernel::boot(
            KernelConfig::cfi_ptstore()
                .with_mem_size(scale.mem_size)
                .with_initial_secure_size(scale.secure_size.min(scale.mem_size / 4))
                .with_harts(h),
        )
        .expect("smp kernel boots")
    };
    let nginx_params = NginxParams {
        requests: scale.nginx_requests,
        ..NginxParams::paper(4 << 10)
    };
    let redis_params = RedisParams {
        requests: scale.redis_requests,
        connections: 50,
    };
    let redis_get = &REDIS_TESTS[3];
    let mut out = Vec::new();
    type SmpDriver<'a> = Box<dyn Fn(&mut Kernel) -> SmpRunReport + 'a>;
    let pairs: [(&str, SmpDriver); 3] = [
        (
            "nginx 4k",
            Box::new(move |k| run_nginx_smp(k, &nginx_params)),
        ),
        (
            "redis GET",
            Box::new(move |k| run_redis_smp(k, redis_get, &redis_params)),
        ),
        (
            "fork stress",
            Box::new(move |k| run_fork_stress_smp(k, scale.stress_procs.min(2_000))),
        ),
    ];
    for (name, run) in &pairs {
        let mut k1 = boot(1);
        let single = run(&mut k1);
        let mut kn = boot(harts);
        let multi = run(&mut kn);
        out.push(SmpComparison {
            workload: (*name).to_string(),
            single,
            multi,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Summary helpers
// ---------------------------------------------------------------------

/// Geometric-mean-ish summary used in the paper's prose: the average
/// overhead of `label` across a set of series.
pub fn average_overhead(series: &[OverheadSeries], label: &str) -> f64 {
    let values: Vec<f64> = series.iter().filter_map(|s| s.overhead_of(label)).collect();
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Extracts the measurement with the given label from a series.
pub fn entry_of<'a>(series: &'a OverheadSeries, label: &str) -> Option<&'a Measurement> {
    series.entries.iter().find(|m| m.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_real_code() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.our_loc > r.paper_loc,
                "{}: full reimplementation is larger",
                r.component
            );
        }
    }

    #[test]
    fn table3_rows_regenerate() {
        let rows = run_table3();
        assert_eq!(rows[1].core_lut - rows[0].core_lut, 508);
    }

    #[test]
    fn ltp_passes_at_quick_scale() {
        let r = run_ltp(&Scale::quick());
        assert!(r.cases >= 30);
        assert!(r.deviations.is_empty(), "{:#?}", r.deviations);
    }

    #[test]
    fn average_overhead_math() {
        let mk = |pct: f64| OverheadSeries {
            benchmark: "b".into(),
            entries: vec![Measurement {
                label: "CFI".into(),
                cycles: 100,
                overhead_pct: pct,
            }],
        };
        let series = vec![mk(2.0), mk(4.0)];
        assert_eq!(average_overhead(&series, "CFI"), 3.0);
        assert_eq!(average_overhead(&series, "missing"), 0.0);
    }
}
