//! Experiment drivers, one per paper table/figure.

use ptstore_attacks::{
    security_matrix, security_matrix_traced, security_matrix_with, security_matrix_with_harts,
    AttackReport, TracedAttackReport,
};
use ptstore_core::{GIB, MIB};
use ptstore_hwcost::{table3, BoomConfig, Table3Row};
use ptstore_kernel::{DrainPolicy, Kernel, KernelConfig, DEFAULT_WATERMARK_DEPTH};
use ptstore_workloads::c1m::{run_c1m, tlb_digest, C1mParams, C1mResult};
use ptstore_workloads::fork_stress::{run_fork_stress, stress_configs, ForkStressResult};
use ptstore_workloads::nginx::{run_nginx, NginxParams, RESPONSE_SIZES};
use ptstore_workloads::redis::{run_redis_test, RedisParams, REDIS_TESTS};
use ptstore_workloads::regression::{diff_outputs, run_suite, TestOutput};
use ptstore_workloads::report::{overhead_pct, standard_configs, OverheadSeries};
use ptstore_workloads::smp::{run_fork_stress_smp, run_nginx_smp, run_redis_smp, SmpRunReport};
use ptstore_workloads::spec::{run_spec, SPEC_CINT2006};
use ptstore_workloads::{lmbench, Measurement};

use crate::par::par_map;

/// Scale knobs: `paper()` matches the publication; `quick()` runs in
/// seconds for CI and Criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Physical memory of the modelled machine.
    pub mem_size: u64,
    /// Initial secure-region size (the paper's 64 MiB default).
    pub secure_size: u64,
    /// LMBench iterations per microbenchmark (paper: 1 000).
    pub lmbench_iters: u64,
    /// Fork-stress process count (paper: 30 000).
    pub stress_procs: u64,
    /// Large-region size for the `-Adj` configuration (paper: 1 GiB).
    pub stress_large_region: u64,
    /// NGINX request count (paper: 10 000).
    pub nginx_requests: u64,
    /// Redis requests per test (paper: 100 000).
    pub redis_requests: u64,
    /// C1M tenant slots across the machine (paper shape: 500).
    pub c1m_tenants: u64,
    /// C1M churn rounds per tenant slot (paper shape: 20).
    pub c1m_rounds: u64,
    /// C1M connections per tenant generation (paper shape: 100 — one
    /// million connections total).
    pub c1m_requests: u64,
}

impl Scale {
    /// The paper's evaluation scale.
    pub fn paper() -> Self {
        Self {
            mem_size: 4 * GIB,
            secure_size: 64 * MIB,
            lmbench_iters: 1_000,
            stress_procs: 30_000,
            stress_large_region: GIB,
            nginx_requests: 10_000,
            redis_requests: 100_000,
            c1m_tenants: 500,
            c1m_rounds: 20,
            c1m_requests: 100,
        }
    }

    /// A seconds-scale variant preserving every ratio that matters.
    pub fn quick() -> Self {
        Self {
            mem_size: 512 * MIB,
            secure_size: 8 * MIB,
            lmbench_iters: 100,
            stress_procs: 1_500,
            stress_large_region: 128 * MIB,
            nginx_requests: 1_000,
            redis_requests: 2_000,
            c1m_tenants: 30,
            c1m_rounds: 4,
            c1m_requests: 15,
        }
    }

    /// The CI-budgeted C1M trajectory shape (`reproduce c1m --medium`):
    /// 150 tenant slots × 8 churn rounds × 50 connections = 60 000
    /// connections per configuration — an order of magnitude past `quick`
    /// while staying minutes-scale, so `bench.sh` can track a
    /// connections-per-second trajectory toward the paper's one-million
    /// shape. Non-C1M knobs stay at the quick scale.
    pub fn medium() -> Self {
        Self {
            c1m_tenants: 150,
            c1m_rounds: 8,
            c1m_requests: 50,
            ..Self::quick()
        }
    }
}

// ---------------------------------------------------------------------
// Table I — lines of code
// ---------------------------------------------------------------------

/// One Table I row: a PTStore component and its size in this repository.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Component (paper wording).
    pub component: &'static str,
    /// Implementation language in the paper.
    pub paper_language: &'static str,
    /// The paper's total LoC for the component.
    pub paper_loc: u64,
    /// Crates/modules implementing the equivalent here.
    pub our_location: &'static str,
    /// Our measured non-blank LoC.
    pub our_loc: u64,
}

fn count_loc(paths: &[&str]) -> u64 {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut total = 0u64;
    for rel in paths {
        let p = root.join(rel);
        if let Ok(content) = std::fs::read_to_string(&p) {
            total += content.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        }
    }
    total
}

/// Regenerates Table I: the paper's per-component LoC next to this
/// reproduction's equivalents (whole files implementing the mechanism, so
/// the counts are naturally larger than a kernel patch).
pub fn table1() -> Vec<LocRow> {
    vec![
        LocRow {
            component: "RISC-V Processor",
            paper_language: "Chisel",
            paper_loc: 58,
            our_location: "ptstore-core (pmp/policy) + ptstore-mmu (walker) + ptstore-isa (cpu)",
            our_loc: count_loc(&[
                "crates/core/src/pmp.rs",
                "crates/core/src/policy.rs",
                "crates/mmu/src/walker.rs",
                "crates/isa/src/cpu.rs",
            ]),
        },
        LocRow {
            component: "LLVM Back-end",
            paper_language: "C++ and TableGen",
            paper_loc: 15,
            our_location: "ptstore-isa (encode/decode)",
            our_loc: count_loc(&["crates/isa/src/encode.rs", "crates/isa/src/decode.rs"]),
        },
        LocRow {
            component: "Linux Kernel",
            paper_language: "C",
            paper_loc: 1_405,
            our_location: "ptstore-kernel",
            our_loc: count_loc(&[
                "crates/kernel/src/kernel.rs",
                "crates/kernel/src/zones.rs",
                "crates/kernel/src/slab.rs",
                "crates/kernel/src/proc_mgmt.rs",
                "crates/kernel/src/syscall.rs",
            ]),
        },
    ]
}

// ---------------------------------------------------------------------
// Table II / Table III — configuration and hardware cost
// ---------------------------------------------------------------------

/// The prototype configuration rows of Table II.
pub fn table2() -> Vec<(&'static str, String)> {
    let boom = BoomConfig::small_boom();
    vec![
        (
            "ISA Extensions",
            "RV64IMAC with M, S, and U modes".to_string(),
        ),
        ("BOOM Config", "SmallBooms".to_string()),
        ("Caches", "16KiB 4-way L1I$, 16KiB 4-way L1D$".to_string()),
        (
            "TLBs",
            format!(
                "{}-entry I-TLB, {}-entry D-TLB",
                boom.itlb_entries, boom.dtlb_entries
            ),
        ),
        (
            "Peripherals",
            "Xilinx MIG (4GiB DDR3), AXI Ethernet, 64KiB Boot ROM".to_string(),
        ),
    ]
}

/// Regenerates Table III.
pub fn run_table3() -> [Table3Row; 2] {
    table3(&BoomConfig::small_boom())
}

// ---------------------------------------------------------------------
// §V-C — LTP regression
// ---------------------------------------------------------------------

/// Result of the LTP-style regression diff.
#[derive(Debug, Clone)]
pub struct LtpResult {
    /// Number of test cases run per kernel.
    pub cases: usize,
    /// Outputs from the original (CFI) kernel.
    pub original: Vec<TestOutput>,
    /// Deviations between original and PTStore kernels (empty = pass).
    pub deviations: Vec<String>,
}

/// Runs the regression suite on the original and modified kernels and diffs
/// the outputs (paper §V-C).
pub fn run_ltp(scale: &Scale) -> LtpResult {
    run_ltp_jobs(scale, 1)
}

/// [`run_ltp`] with the two kernels' suites run on up to `jobs` threads.
pub fn run_ltp_jobs(scale: &Scale, jobs: usize) -> LtpResult {
    let mk = |cfg: KernelConfig| {
        let scale = *scale;
        move || {
            let cfg = cfg
                .to_builder()
                .mem_size(scale.mem_size)
                .initial_secure_size(scale.secure_size.min(scale.mem_size / 4))
                .build()
                .expect("valid scale geometry");
            Kernel::boot(cfg).expect("boot")
        }
    };
    let configs = [KernelConfig::cfi(), KernelConfig::cfi_ptstore()];
    let mut suites = par_map(jobs, &configs, |cfg| run_suite(mk(*cfg)));
    let modified = suites.pop().expect("two suites");
    let original = suites.pop().expect("two suites");
    let deviations = diff_outputs(&original, &modified);
    LtpResult {
        cases: original.len(),
        original,
        deviations,
    }
}

// ---------------------------------------------------------------------
// Grid measurement — shared per-point fan-out
// ---------------------------------------------------------------------

/// Measures a (benchmark × configuration) grid with up to `jobs` points in
/// flight. Every point boots a fresh kernel, so points are independent and
/// the assembled series are identical at any job count; the first
/// configuration of each series is its baseline, as in
/// [`measure`](ptstore_workloads::report::measure).
fn measure_grid<B: Sync>(
    jobs: usize,
    configs: &[KernelConfig],
    benches: &[B],
    name: impl Fn(&B) -> String,
    run: impl Fn(&B, &mut Kernel) -> u64 + Sync,
) -> Vec<OverheadSeries> {
    assert!(!configs.is_empty(), "need at least a baseline config");
    let points: Vec<(usize, usize)> = (0..benches.len())
        .flat_map(|b| (0..configs.len()).map(move |c| (b, c)))
        .collect();
    let cycles = par_map(jobs, &points, |&(b, c)| {
        let mut k = Kernel::boot(configs[c]).expect("kernel boots");
        run(&benches[b], &mut k)
    });
    benches
        .iter()
        .enumerate()
        .map(|(b, bench)| {
            let baseline = cycles[b * configs.len()];
            OverheadSeries {
                benchmark: name(bench),
                entries: configs
                    .iter()
                    .enumerate()
                    .map(|(c, cfg)| {
                        let cy = cycles[b * configs.len() + c];
                        Measurement {
                            label: cfg.label(),
                            cycles: cy,
                            overhead_pct: overhead_pct(cy, baseline),
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 4 — LMBench
// ---------------------------------------------------------------------

/// Runs every Figure 4 microbenchmark across baseline/CFI/CFI+PTStore.
pub fn run_fig4(scale: &Scale) -> Vec<OverheadSeries> {
    run_fig4_jobs(scale, 1)
}

/// [`run_fig4`] with up to `jobs` (benchmark × config) points in flight.
pub fn run_fig4_jobs(scale: &Scale, jobs: usize) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    measure_grid(
        jobs,
        &configs,
        &lmbench::MICROBENCHMARKS,
        |name: &&str| name.to_string(),
        |name, k| lmbench::run(name, k, scale.lmbench_iters),
    )
}

// ---------------------------------------------------------------------
// §V-D1 — fork stress
// ---------------------------------------------------------------------

/// One fork-stress configuration's results.
#[derive(Debug, Clone)]
pub struct StressRow {
    /// Configuration label.
    pub label: String,
    /// Raw results.
    pub result: ForkStressResult,
    /// Overhead versus the no-CFI baseline, percent.
    pub overhead_pct: f64,
    /// Post-run TLB fingerprint ([`tlb_digest`]): drain policies may only
    /// move IPI rounds around, never the final translation state, so this
    /// value must not depend on the `--drain-policy` flag.
    pub tlb_digest: u64,
}

/// Runs the §V-D1 stress at the given scale across the four configurations.
pub fn run_stress(scale: &Scale) -> Vec<StressRow> {
    run_stress_jobs(scale, 1)
}

/// [`run_stress`] with up to `jobs` configurations in flight. The baseline
/// is still the first configuration's result; each point boots a fresh
/// kernel, so the rows are identical at any job count.
pub fn run_stress_jobs(scale: &Scale, jobs: usize) -> Vec<StressRow> {
    run_stress_policy_jobs(scale, jobs, None)
}

/// [`run_stress_jobs`] with an explicit drain policy: when `policy` is
/// given, the two PTStore rows run with deferred shootdowns on under that
/// policy (`reproduce forkstress --drain-policy …`). Early drains are pure
/// placement, so every row's [`StressRow::tlb_digest`] is identical across
/// policies — the `check.sh` policy-differential gate compares them.
pub fn run_stress_policy_jobs(
    scale: &Scale,
    jobs: usize,
    policy: Option<DrainPolicy>,
) -> Vec<StressRow> {
    // The small-region configuration is sized so adjustments must fire, as
    // the paper's 64 MiB does for 30 000 processes.
    let small_region = (scale.stress_procs * 6 * ptstore_core::PAGE_SIZE / 10)
        .clamp(MIB, scale.mem_size / 8)
        .next_power_of_two()
        / 2;
    let mut configs = stress_configs(scale.mem_size, small_region, scale.stress_large_region);
    if let Some(p) = policy {
        // A drain queue only exists with a remote TLB to shoot down, so the
        // policy run boots 2-hart machines (every row, to keep the overhead
        // baseline comparable); only the PTStore rows get the deferred
        // machinery — the knob is meaningless without a secure region.
        for (i, cfg) in configs.iter_mut().enumerate() {
            *cfg = cfg.with_harts(2);
            if i >= 2 {
                *cfg = cfg.with_deferred_shootdowns(true).with_drain_policy(p);
            }
        }
    }
    let results = par_map(jobs, &configs, |cfg| {
        let mut k = Kernel::boot(*cfg).expect("boot");
        let result = run_fork_stress(&mut k, scale.stress_procs).expect("stress");
        (cfg.label(), result, tlb_digest(&k))
    });
    let baseline = results[0].1.cycles;
    results
        .into_iter()
        .map(|(label, result, tlb_digest)| {
            let overhead_pct = overhead_pct(result.cycles, baseline);
            StressRow {
                label,
                result,
                overhead_pct,
                tlb_digest,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 5 — SPEC CINT2006
// ---------------------------------------------------------------------

/// Runs every SPEC-shaped benchmark across the three configurations.
pub fn run_fig5(scale: &Scale) -> Vec<OverheadSeries> {
    run_fig5_jobs(scale, 1)
}

/// [`run_fig5`] with up to `jobs` (benchmark × config) points in flight.
pub fn run_fig5_jobs(scale: &Scale, jobs: usize) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    measure_grid(
        jobs,
        &configs,
        &SPEC_CINT2006,
        |p: &ptstore_workloads::spec::SpecProfile| p.name.to_string(),
        |p, k| run_spec(k, p),
    )
}

// ---------------------------------------------------------------------
// Figure 6 — NGINX
// ---------------------------------------------------------------------

/// Runs the NGINX benchmark per response size across the configurations.
pub fn run_fig6(scale: &Scale) -> Vec<OverheadSeries> {
    run_fig6_jobs(scale, 1)
}

/// [`run_fig6`] with up to `jobs` (benchmark × config) points in flight.
pub fn run_fig6_jobs(scale: &Scale, jobs: usize) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    measure_grid(
        jobs,
        &configs,
        &RESPONSE_SIZES,
        |size: &u64| format!("nginx {}KiB", size >> 10),
        |&size, k| {
            let params = NginxParams {
                requests: scale.nginx_requests,
                concurrency: 100,
                ..NginxParams::paper(size)
            };
            run_nginx(k, &params)
        },
    )
}

// ---------------------------------------------------------------------
// Figure 7 — Redis
// ---------------------------------------------------------------------

/// Runs the redis-benchmark command list across the configurations.
pub fn run_fig7(scale: &Scale) -> Vec<OverheadSeries> {
    run_fig7_jobs(scale, 1)
}

/// [`run_fig7`] with up to `jobs` (benchmark × config) points in flight.
pub fn run_fig7_jobs(scale: &Scale, jobs: usize) -> Vec<OverheadSeries> {
    let configs = standard_configs(scale.mem_size, scale.secure_size.min(scale.mem_size / 4));
    let params = RedisParams {
        requests: scale.redis_requests,
        connections: 50,
    };
    measure_grid(
        jobs,
        &configs,
        &REDIS_TESTS,
        |t: &ptstore_workloads::redis::RedisTest| t.name.to_string(),
        |t, k| run_redis_test(k, t, &params),
    )
}

// ---------------------------------------------------------------------
// §V-E — security matrix
// ---------------------------------------------------------------------

/// Runs the full attack × defense battery.
pub fn run_security() -> Vec<AttackReport> {
    security_matrix()
}

/// The same battery on an `harts`-way SMP machine: the verdicts must not
/// depend on the hart count.
pub fn run_security_with_harts(harts: usize) -> Vec<AttackReport> {
    security_matrix_with_harts(harts)
}

/// The battery under an explicit paging scheme: the verdicts must not
/// depend on the walk depth either (`reproduce security --scheme sv48`).
pub fn run_security_with(harts: usize, scheme: ptstore_core::PagingScheme) -> Vec<AttackReport> {
    security_matrix_with(harts, scheme)
}

/// Runs the PTStore rows (full design + tokens-off ablation) with a trace
/// sink attached per cell, capturing each attack's event chain.
pub fn run_security_traced() -> Vec<TracedAttackReport> {
    security_matrix_traced()
}

// ---------------------------------------------------------------------
// SMP scaling — hart-distributed macrobenchmarks
// ---------------------------------------------------------------------

/// One workload measured single-hart and `harts`-way on otherwise
/// identical machines.
#[derive(Debug, Clone)]
pub struct SmpComparison {
    /// Workload name.
    pub workload: String,
    /// The `--harts 1` run (the paper's original machine).
    pub single: SmpRunReport,
    /// The `--harts N` run.
    pub multi: SmpRunReport,
}

impl SmpComparison {
    /// Throughput gain of the SMP run: ops-per-wall-cycle ratio.
    pub fn speedup(&self) -> f64 {
        let base = self.single.ops_per_kilocycle();
        if base == 0.0 {
            0.0
        } else {
            self.multi.ops_per_kilocycle() / base
        }
    }
}

/// Runs the hart-distributed nginx, Redis (GET), and fork-stress drivers
/// on 1-hart and `harts`-hart CFI+PTStore machines.
///
/// # Panics
/// Panics when `harts` is 0 or the kernel fails to boot.
pub fn run_smp(scale: &Scale, harts: usize) -> Vec<SmpComparison> {
    run_smp_jobs(scale, harts, 1)
}

/// [`run_smp`] with up to `jobs` (workload × hart-count) points in flight.
pub fn run_smp_jobs(scale: &Scale, harts: usize, jobs: usize) -> Vec<SmpComparison> {
    assert!(harts >= 1, "need at least one hart");
    let boot = |h: usize| {
        Kernel::boot(
            KernelConfig::cfi_ptstore()
                .with_mem_size(scale.mem_size)
                .with_initial_secure_size(scale.secure_size.min(scale.mem_size / 4))
                .with_harts(h),
        )
        .expect("smp kernel boots")
    };
    let nginx_params = NginxParams {
        requests: scale.nginx_requests,
        ..NginxParams::paper(4 << 10)
    };
    let redis_params = RedisParams {
        requests: scale.redis_requests,
        connections: 50,
    };
    let redis_get = &REDIS_TESTS[3];
    let names = ["nginx 4k", "redis GET", "fork stress"];
    // One point per (workload, hart count); each boots a fresh machine.
    let points: Vec<(usize, usize)> = (0..names.len())
        .flat_map(|w| [(w, 1), (w, harts)])
        .collect();
    let reports: Vec<SmpRunReport> = par_map(jobs, &points, |&(w, h)| {
        let mut k = boot(h);
        match w {
            0 => run_nginx_smp(&mut k, &nginx_params),
            1 => run_redis_smp(&mut k, redis_get, &redis_params),
            _ => run_fork_stress_smp(&mut k, scale.stress_procs.min(2_000)),
        }
    });
    names
        .iter()
        .enumerate()
        .map(|(w, name)| SmpComparison {
            workload: (*name).to_string(),
            single: reports[2 * w].clone(),
            multi: reports[2 * w + 1].clone(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// C1M — multi-tenant macro workload
// ---------------------------------------------------------------------

/// One C1M configuration row.
#[derive(Debug, Clone)]
pub struct C1mRow {
    /// Configuration label.
    pub label: String,
    /// The run's modeled results.
    pub result: C1mResult,
    /// Wall-cycle overhead versus the first (native) row, percent —
    /// negative when a row beats the baseline.
    pub overhead_pct: f64,
}

/// The batched-row drain policies the full C1M sweep walks, in display
/// order: the PR 8 default, a depth-capped watermark, and the paranoid
/// ASID-hygiene variant.
pub fn sweep_policies() -> [DrainPolicy; 3] {
    [
        DrainPolicy::Boundary,
        DrainPolicy::Watermark {
            depth: DEFAULT_WATERMARK_DEPTH,
        },
        DrainPolicy::AsidRecycle,
    ]
}

/// Runs the C1M workload on native, eager CFI+PTStore, and batched
/// (deferred shootdowns + allocation magazines) CFI+PTStore machines —
/// the batched rows are the ones the PR 8 fast paths must pull below
/// eager, swept across every drain policy.
pub fn run_c1m_bench(scale: &Scale, harts: usize) -> Vec<C1mRow> {
    run_c1m_bench_jobs(scale, harts, 1)
}

/// [`run_c1m_bench`] with up to `jobs` configurations in flight; sweeps
/// the batched row over every [`sweep_policies`] drain policy.
pub fn run_c1m_bench_jobs(scale: &Scale, harts: usize, jobs: usize) -> Vec<C1mRow> {
    run_c1m_sweep_jobs(scale, harts, jobs, None)
}

/// The C1M driver: a native row, an eager CFI+PTStore row, and one
/// batched (deferred shootdowns + allocation magazines) row per drain
/// policy — every [`sweep_policies`] policy when `policy` is `None`, or
/// exactly the requested one (`reproduce c1m --drain-policy …`). Each row
/// boots a fresh kernel, so rows are identical at any job count. The
/// machine always has ≥ 2 harts: with one hart there is no remote TLB to
/// shoot down, batching is (by design) a no-op, and every policy is inert.
pub fn run_c1m_sweep_jobs(
    scale: &Scale,
    harts: usize,
    jobs: usize,
    policy: Option<DrainPolicy>,
) -> Vec<C1mRow> {
    let harts = harts.max(2);
    let p = C1mParams {
        tenants: scale.c1m_tenants,
        churn_rounds: scale.c1m_rounds,
        requests_per_tenant: scale.c1m_requests,
        ..C1mParams::paper()
    };
    let geometry = |cfg: KernelConfig| {
        cfg.to_builder()
            .mem_size(scale.mem_size)
            .initial_secure_size(scale.secure_size.min(scale.mem_size / 4))
            .harts(harts)
            .build()
            .expect("valid c1m geometry")
    };
    let batched: Vec<DrainPolicy> = match policy {
        Some(one) => vec![one],
        None => sweep_policies().to_vec(),
    };
    let mut configs = vec![
        ("Native".to_string(), geometry(KernelConfig::baseline())),
        (
            "CFI+PTStore eager".to_string(),
            geometry(KernelConfig::cfi_ptstore()),
        ),
    ];
    for pol in batched {
        configs.push((
            format!("CFI+PTStore batched/{pol}"),
            geometry(
                KernelConfig::cfi_ptstore()
                    .with_deferred_shootdowns(true)
                    .with_alloc_magazines(true)
                    .with_drain_policy(pol),
            ),
        ));
    }
    let results = par_map(jobs, &configs, |(label, cfg)| {
        let mut k = Kernel::boot(*cfg).expect("c1m kernel boots");
        (label.clone(), run_c1m(&mut k, &p))
    });
    let baseline = results[0].1.report.wall_cycles;
    results
        .into_iter()
        .map(|(label, result)| {
            let overhead_pct = overhead_pct(result.report.wall_cycles, baseline);
            C1mRow {
                label,
                result,
                overhead_pct,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Summary helpers
// ---------------------------------------------------------------------

/// Geometric-mean-ish summary used in the paper's prose: the average
/// overhead of `label` across a set of series.
pub fn average_overhead(series: &[OverheadSeries], label: &str) -> f64 {
    let values: Vec<f64> = series.iter().filter_map(|s| s.overhead_of(label)).collect();
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Extracts the measurement with the given label from a series.
pub fn entry_of<'a>(series: &'a OverheadSeries, label: &str) -> Option<&'a Measurement> {
    series.entries.iter().find(|m| m.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_real_code() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.our_loc > r.paper_loc,
                "{}: full reimplementation is larger",
                r.component
            );
        }
    }

    #[test]
    fn table3_rows_regenerate() {
        let rows = run_table3();
        assert_eq!(rows[1].core_lut - rows[0].core_lut, 508);
    }

    #[test]
    fn ltp_passes_at_quick_scale() {
        let r = run_ltp(&Scale::quick());
        assert!(r.cases >= 30);
        assert!(r.deviations.is_empty(), "{:#?}", r.deviations);
    }

    #[test]
    fn average_overhead_math() {
        let mk = |pct: f64| OverheadSeries {
            benchmark: "b".into(),
            entries: vec![Measurement {
                label: "CFI".into(),
                cycles: 100,
                overhead_pct: pct,
            }],
        };
        let series = vec![mk(2.0), mk(4.0)];
        assert_eq!(average_overhead(&series, "CFI"), 3.0);
        assert_eq!(average_overhead(&series, "missing"), 0.0);
    }
}
