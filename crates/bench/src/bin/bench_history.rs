//! Collates the committed `BENCH_PR*.json` host-performance artifacts into
//! one trajectory table (or collated JSON with `--json`).
//!
//! ```text
//! bench_history [--dir <path>] [--json]
//! ```
//!
//! Each PR's `scripts/bench.sh` run leaves a `BENCH_PR<N>.json` at the repo
//! root recording host wall-clock for the quick suite, the SMP grid, and
//! (since PR 8) the C1M churn workload. This binary reads every such
//! artifact in `--dir` (default: the current directory), orders them by PR
//! number, and prints the cross-PR trajectory — the "charting" half of the
//! performance-tracking story, with `scripts/bench.sh` as the measuring
//! half. Output is fully determined by the artifact files: no timestamps,
//! no host information, so reruns are byte-identical and `check.sh` can
//! smoke-test it.
//!
//! The artifacts' schemas drifted as the harness grew (PR 3 predates the
//! pooled runner and C1M), so missing fields print as `-` rather than
//! failing: the table is a union of what each PR measured. JSON parsing is
//! hand-rolled below — the workspace deliberately vendors no JSON
//! dependency, and the subset these artifacts use (objects, strings,
//! numbers) is small.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value — just the subset the bench artifacts use.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered, matching the artifact layout.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` on an object.
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// `a.b.c` chained lookup returning a number.
    fn num_at(&self, path: &[&str]) -> Option<f64> {
        let mut v = self;
        for key in path {
            v = v.get(key)?;
        }
        v.num()
    }
}

/// Recursive-descent parser over the artifact bytes.
struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .s
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                got => return Err(format!("expected ',' or '}}', got {:?}", got as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                got => return Err(format!("expected ',' or ']', got {:?}", got as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .s
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .s
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.s[start..self.pos]).expect("ascii");
        text.parse()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Parses a whole artifact, requiring nothing but trailing whitespace after
/// the top-level value.
fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// One PR's artifact, reduced to the trajectory columns.
struct Row {
    pr: u64,
    file: String,
    jobs: Option<f64>,
    wall_ms: Option<f64>,
    single_ms: Option<f64>,
    c1m_quick_cps: Option<f64>,
    c1m_medium_cps: Option<f64>,
    jobs_speedup: Option<f64>,
    vs_baseline: Option<f64>,
}

impl Row {
    fn from_json(pr: u64, file: String, v: &Json) -> Row {
        let quick = v.get("quick_all_ms");
        // PR 3 predates the single/pooled naming; its own-binary 1-job time
        // is the fast-path configuration it shipped.
        let single_ms = quick
            .and_then(|q| q.get("single_1job").or_else(|| q.get("fast_path_1job")))
            .and_then(Json::num);
        let speed = v.get("speedup");
        // The suite-level PR-over-baseline speedup was renamed between
        // PR 3 ("total") and the pooled harness ("threaded_quick_suite").
        let vs_baseline = speed
            .and_then(|s| s.get("threaded_quick_suite").or_else(|| s.get("total")))
            .and_then(Json::num);
        Row {
            pr,
            file,
            jobs: v.num_at(&["jobs"]),
            wall_ms: v.num_at(&["wall_ms"]),
            single_ms,
            c1m_quick_cps: v.num_at(&["c1m_quick", "connections_per_host_sec"]),
            c1m_medium_cps: v.num_at(&["c1m_medium", "connections_per_host_sec"]),
            jobs_speedup: speed.and_then(|s| s.get("jobs")).and_then(Json::num),
            vs_baseline,
        }
    }
}

/// `-` for a missing column, integer rendering for counts.
fn int_cell(v: Option<f64>) -> String {
    v.map(|n| format!("{n:.0}")).unwrap_or_else(|| "-".into())
}

/// `-` for a missing column, fixed-point for ratios.
fn ratio_cell(v: Option<f64>) -> String {
    v.map(|n| format!("{n:.3}x")).unwrap_or_else(|| "-".into())
}

/// JSON rendering of an optional number (null when absent).
fn json_num(v: Option<f64>) -> String {
    match v {
        Some(n) if n.fract() == 0.0 => format!("{n:.0}"),
        Some(n) => format!("{n}"),
        None => "null".into(),
    }
}

fn main() {
    let mut dir = String::from(".");
    let mut as_json = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => match it.next() {
                Some(d) => dir = d.clone(),
                None => die("--dir requires a value"),
            },
            "--json" => as_json = true,
            "--help" | "-h" => {
                eprintln!("usage: bench_history [--dir <path>] [--json]");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    // BTreeMap keys the rows by PR number, so the trajectory reads in
    // merge order whatever order the directory listing produced.
    let mut rows: BTreeMap<u64, Row> = BTreeMap::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => die(&format!("cannot read {dir:?}: {e}")),
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(pr) = name
            .strip_prefix("BENCH_PR")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let text = match std::fs::read_to_string(entry.path()) {
            Ok(t) => t,
            Err(e) => die(&format!("cannot read {name}: {e}")),
        };
        match parse(&text) {
            Ok(v) => {
                rows.insert(pr, Row::from_json(pr, name, &v));
            }
            Err(e) => die(&format!("{name}: {e}")),
        }
    }
    if rows.is_empty() {
        die(&format!("no BENCH_PR*.json artifacts found in {dir:?}"));
    }

    if as_json {
        print!("{}", render_json(&rows));
    } else {
        print!("{}", render_table(&rows));
    }
}

/// The human-readable trajectory table.
fn render_table(rows: &BTreeMap<u64, Row>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "host-performance trajectory ({} artifacts; scripts/bench.sh measures, this collates)",
        rows.len()
    );
    let _ = writeln!(
        out,
        "{:<6} {:>5} {:>9} {:>10} {:>12} {:>13} {:>9} {:>12}",
        "PR",
        "jobs",
        "wall ms",
        "single ms",
        "c1m conn/s",
        "c1m-med c/s",
        "jobs spd",
        "vs baseline"
    );
    for row in rows.values() {
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>9} {:>10} {:>12} {:>13} {:>9} {:>12}",
            format!("PR{}", row.pr),
            int_cell(row.jobs),
            int_cell(row.wall_ms),
            int_cell(row.single_ms),
            int_cell(row.c1m_quick_cps),
            int_cell(row.c1m_medium_cps),
            ratio_cell(row.jobs_speedup),
            ratio_cell(row.vs_baseline),
        );
    }
    // The headline trajectory: C1M throughput across the PRs that measured
    // it, charting progress toward the paper's one-million-connection run.
    let cps: Vec<String> = rows
        .values()
        .filter_map(|r| {
            r.c1m_medium_cps
                .or(r.c1m_quick_cps)
                .map(|n| format!("{n:.0}"))
        })
        .collect();
    if !cps.is_empty() {
        let _ = writeln!(out, "c1m connections-per-host-second: {}", cps.join(" -> "));
    }
    out
}

/// The collated machine-readable artifact.
fn render_json(rows: &BTreeMap<u64, Row>) -> String {
    let mut out = String::from("{\n  \"history\": [\n");
    for (i, row) in rows.values().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"pr\": {}, \"file\": \"{}\", \"jobs\": {}, \"wall_ms\": {}, \
             \"single_ms\": {}, \"c1m_quick_conn_per_sec\": {}, \
             \"c1m_medium_conn_per_sec\": {}, \"jobs_speedup\": {}, \
             \"vs_baseline_speedup\": {} }}{sep}",
            row.pr,
            row.file,
            json_num(row.jobs),
            json_num(row.wall_ms),
            json_num(row.single_ms),
            json_num(row.c1m_quick_cps),
            json_num(row.c1m_medium_cps),
            json_num(row.jobs_speedup),
            json_num(row.vs_baseline),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Rejects the invocation with a clear error (exit 2).
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
