//! Regenerates every table and figure of the PTStore paper from the models.
//!
//! ```text
//! reproduce [--quick] [--harts N] [--csv <dir>] [--trace <file>] \
//!     [table1|table2|table3|hwdetail|ltp|fig4|forkstress|fig5|fig6|fig7|security|smp|all]
//! ```
//!
//! `--quick` runs scaled-down workloads (seconds); the default uses the
//! paper's parameters (30 000 processes, 100 000 Redis requests, ...).
//! `--csv <dir>` additionally writes each figure's data series as CSV for
//! external plotting.
//! `--trace <file>` re-runs the PTStore security rows with a trace sink
//! attached and writes each cell's full event chain (JSON array, one
//! object per cell with counters and per-event rejecting-layer
//! attribution) to `file`.
//! `--harts N` boots N-hart machines: the security battery reruns every
//! cell on the SMP machine, and the `smp` experiment compares
//! hart-distributed nginx/redis/fork-stress throughput against one hart.

use ptstore_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    set_csv_dir(csv_dir);
    let trace_file = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let harts: usize = args
        .iter()
        .position(|a| a == "--harts")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--harts takes a positive integer"))
        .unwrap_or(1);
    let mut skip_next = false;
    let what = args
        .iter()
        .find(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" || *a == "--trace" || *a == "--harts" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let all = what == "all";
    if all || what == "table1" {
        print_table1();
    }
    if all || what == "table2" {
        print_table2();
    }
    if all || what == "table3" {
        print_table3();
    }
    if all || what == "hwdetail" {
        print_hwdetail();
    }
    if all || what == "ltp" {
        print_ltp(&scale);
    }
    if all || what == "fig4" {
        print_fig4(&scale);
    }
    if all || what == "forkstress" {
        print_stress(&scale);
    }
    if all || what == "fig5" {
        print_fig5(&scale);
    }
    if all || what == "fig6" {
        print_fig6(&scale);
    }
    if all || what == "fig7" {
        print_fig7(&scale);
    }
    if all || what == "security" {
        print_security(trace_file.as_deref(), harts);
    }
    if all || what == "smp" {
        print_smp(&scale, harts);
    }
    if !all
        && ![
            "table1",
            "table2",
            "table3",
            "hwdetail",
            "ltp",
            "fig4",
            "forkstress",
            "fig5",
            "fig6",
            "fig7",
            "security",
            "smp",
        ]
        .contains(&what.as_str())
    {
        eprintln!("unknown experiment {what:?}");
        eprintln!("usage: reproduce [--quick] [--harts N] [--csv <dir>] [--trace <file>] [table1|table2|table3|hwdetail|ltp|fig4|forkstress|fig5|fig6|fig7|security|smp|all]");
        std::process::exit(2);
    }
}

use std::sync::OnceLock;

static CSV_DIR: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();

fn set_csv_dir(dir: Option<std::path::PathBuf>) {
    let _ = CSV_DIR.set(dir);
}

/// Writes one figure's overhead series as CSV when `--csv` was given.
fn write_series_csv(name: &str, series: &[OverheadSeries]) {
    let Some(Some(dir)) = CSV_DIR.get() else {
        return;
    };
    let mut out = String::from("benchmark,config,cycles,overhead_pct\n");
    for s in series {
        for m in &s.entries {
            out.push_str(&format!(
                "{},{},{},{:.4}\n",
                s.benchmark, m.label, m.cycles, m.overhead_pct
            ));
        }
    }
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, out).expect("write csv");
    println!("(csv written to {})", path.display());
}

fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

fn print_table1() {
    header("Table I: lines of code of each PTStore component");
    println!(
        "{:<18} {:<18} {:>10} {:>10}  Our location",
        "Component", "Paper language", "Paper LoC", "Ours LoC"
    );
    for r in table1() {
        println!(
            "{:<18} {:<18} {:>10} {:>10}  {}",
            r.component, r.paper_language, r.paper_loc, r.our_loc, r.our_location
        );
    }
    println!("(ours are full reimplementations of each subsystem, not patches — see DESIGN.md)");
}

fn print_table2() {
    header("Table II: prototype system configuration");
    for (k, v) in table2() {
        println!("{k:<16} {v}");
    }
}

fn print_table3() {
    header("Table III: hardware resource cost (model) — paper: +0.918% core LUT, +0.258% core FF");
    println!(
        "{:<16} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} | {:>7}",
        "", "coreLUT", "%", "coreFF", "%", "sysLUT", "%", "sysFF", "%", "WSS", "Fmax"
    );
    for row in run_table3() {
        println!("{row}");
    }
}

fn print_hwdetail() {
    header("Table III detail: structural component breakdown");
    let cfg = ptstore_hwcost::BoomConfig::small_boom();
    println!("-- baseline core --");
    for c in cfg.components() {
        println!("  {c}");
    }
    println!("-- PTStore delta (the 58 Chisel lines of Table I, as gates) --");
    for c in ptstore_hwcost::ptstore_delta(cfg.pmp_entries) {
        println!("  {c}");
    }
    println!("-- uncore --");
    for c in ptstore_hwcost::peripherals() {
        println!("  {c}");
    }
    let p = ptstore_hwcost::estimate(&cfg);
    println!("-- dynamic power (normalised; §III-C2 argument) --");
    println!("  baseline core        {:.4}", p.baseline);
    println!(
        "  with PTStore         {:.4}  (+{:.3}%)",
        p.with_ptstore,
        (p.with_ptstore - p.baseline) / p.baseline * 100.0
    );
    println!(
        "  with NPT unit instead {:.4}  (+{:.3}%) — the alternative the paper rejects",
        p.with_npt,
        (p.with_npt - p.baseline) / p.baseline * 100.0
    );
}

fn print_ltp(scale: &Scale) {
    header("§V-C: LTP-style regression (output diff between kernels)");
    let r = run_ltp(scale);
    println!("test cases per kernel : {}", r.cases);
    println!("deviations            : {}", r.deviations.len());
    for d in &r.deviations {
        println!("  DEVIATION: {d}");
    }
    if r.deviations.is_empty() {
        println!("=> no deviation: the PTStore kernel behaves identically (paper: same result)");
    }
}

fn print_series_table(series: &[OverheadSeries]) {
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "benchmark", "CFI %", "CFI+PTStore %", "PTStore-only %"
    );
    for s in series {
        let cfi = s.overhead_of("CFI").unwrap_or(0.0);
        let both = s.overhead_of("CFI+PTStore").unwrap_or(0.0);
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>12.2}",
            s.benchmark,
            cfi,
            both,
            both - cfi
        );
    }
}

fn print_fig4(scale: &Scale) {
    header(&format!(
        "Figure 4: LMBench microbenchmark overheads ({} iterations)",
        scale.lmbench_iters
    ));
    let series = run_fig4(scale);
    print_series_table(&series);
    write_series_csv("fig4_lmbench", &series);
    println!(
        "average: CFI {:.2}%, CFI+PTStore {:.2}% (paper: PTStore adds no significant syscall overhead)",
        average_overhead(&series, "CFI"),
        average_overhead(&series, "CFI+PTStore"),
    );
}

fn print_stress(scale: &Scale) {
    header(&format!(
        "§V-D1: fork stress — {} simultaneous processes (paper: 30,000; 2.84% / 6.83% / 3.77%)",
        scale.stress_procs
    ));
    println!(
        "{:<18} {:>14} {:>10} {:>12} {:>10} {:>14}",
        "config", "cycles", "overhead%", "adjustments", "migrated", "region (MiB)"
    );
    for row in run_stress(scale) {
        println!(
            "{:<18} {:>14} {:>10.2} {:>12} {:>10} {:>14}",
            row.label,
            row.result.cycles,
            row.overhead_pct,
            row.result.adjustments,
            row.result.migrated_pages,
            row.result
                .final_region_size
                .map(|s| (s / (1 << 20)).to_string())
                .unwrap_or_else(|| "-".to_string()),
        );
    }
}

fn print_fig5(scale: &Scale) {
    header("Figure 5: SPEC CINT2006 execution-time overheads (paper: <0.91% CFI+PTStore, <0.29% PTStore alone)");
    let series = run_fig5(scale);
    print_series_table(&series);
    write_series_csv("fig5_spec", &series);
    println!(
        "average: CFI+PTStore {:.3}% (PTStore-only {:.3}%)",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI"),
    );
}

fn print_fig6(scale: &Scale) {
    header(&format!(
        "Figure 6: NGINX overheads — {} requests, 100 concurrent (paper: <8.18% incl. CFI, <0.86% PTStore)",
        scale.nginx_requests
    ));
    let series = run_fig6(scale);
    print_series_table(&series);
    write_series_csv("fig6_nginx", &series);
    println!(
        "average: CFI+PTStore {:.2}%, PTStore-only {:.2}%",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI"),
    );
}

fn print_fig7(scale: &Scale) {
    header(&format!(
        "Figure 7: Redis overheads — {} requests/test, 50 connections (paper: <8.18% incl. CFI, <0.86% PTStore)",
        scale.redis_requests
    ));
    let series = run_fig7(scale);
    print_series_table(&series);
    write_series_csv("fig7_redis", &series);
    println!(
        "average: CFI+PTStore {:.2}%, PTStore-only {:.2}%",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI"),
    );
}

fn print_security(trace_file: Option<&std::path::Path>, harts: usize) {
    if harts > 1 {
        header(&format!(
            "§V-E: security matrix (attack × defense; fresh {harts}-hart kernel per cell)"
        ));
    } else {
        header("§V-E: security matrix (attack × defense; fresh kernel per cell)");
    }
    for report in run_security_with_harts(harts) {
        let tokens = if report.tokens { "" } else { " [tokens off]" };
        println!("{report}{tokens}");
    }
    println!("=> PTStore (full design) blocks every attack; see EXPERIMENTS.md");

    let Some(path) = trace_file else { return };
    println!();
    println!("-- traced PTStore rows (which check stopped each attack) --");
    let cells = run_security_traced();
    for cell in &cells {
        let tokens = if cell.report.tokens {
            ""
        } else {
            " [tokens off]"
        };
        let layer = cell
            .rejecting_layer()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".to_string());
        let c = &cell.counters;
        println!(
            "{:<20}{:<14} -> {:<18} ({} events: {} pmp checks/{} denied, {} ptw steps/{} rejected, {} token ops/{} rejected)",
            cell.report.attack.to_string(),
            tokens,
            layer,
            cell.events.len(),
            c.pmp_checks,
            c.pmp_denials,
            c.ptw_steps,
            c.ptw_origin_rejections,
            c.token_ops,
            c.token_rejections,
        );
    }
    let mut json = String::from("[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&cell.to_json());
    }
    json.push(']');
    match std::fs::write(path, json) {
        Ok(()) => println!("(trace written to {})", path.display()),
        Err(e) => eprintln!("error: cannot write trace file {}: {e}", path.display()),
    }
}

fn print_smp(scale: &Scale, harts: usize) {
    // `reproduce smp` without --harts compares against a 4-hart machine.
    let harts = if harts > 1 { harts } else { 4 };
    header(&format!(
        "SMP scaling: hart-distributed workloads, 1 vs {harts} harts (CFI+PTStore)"
    ));
    let rows = run_smp(scale, harts);
    println!(
        "{:<14} {:>14} {:>14} {:>9} {:>12} {:>10}",
        "workload", "1-hart ops/kc", "N-hart ops/kc", "speedup", "shootdowns", "IPIs"
    );
    for r in &rows {
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>8.2}x {:>12} {:>10}",
            r.workload,
            r.single.ops_per_kilocycle(),
            r.multi.ops_per_kilocycle(),
            r.speedup(),
            r.multi.tlb_shootdowns,
            r.multi.shootdown_ipis,
        );
        let util: Vec<String> = r
            .multi
            .per_hart
            .iter()
            .map(|h| format!("hart{} {:>5.1}%", h.hart, h.utilization * 100.0))
            .collect();
        println!("{:<14} per-hart utilization: {}", "", util.join("  "));
    }
    println!(
        "=> ops per modeled cycle must rise with the hart count; shootdown IPIs are the price"
    );
}
