//! Regenerates every table and figure of the PTStore paper from the models.
//!
//! ```text
//! reproduce [--quick] [--harts N] [--jobs N] [--host-threads N] [--no-fast-path] \
//!     [--csv <dir>] [--trace <file>] [--scheme sv39|sv48|sv57] \
//!     [--drain-policy boundary|watermark[:D]|asid-recycle] [--medium] \
//!     [table1|table2|table3|hwdetail|ltp|fig4|forkstress|fig5|fig6|fig7|security|smp|c1m|all]
//! reproduce fuzz [--seed S] [--faults N] [--harts H] [--quick] [--scheme sv39|sv48|sv57]
//! reproduce modelcheck [--depth N] [--ops k1,k2,...] [--ablate <check>] [--harts H] \
//!     [--jobs N] [--quick] [--scheme sv39|sv48|sv57] \
//!     [--drain-policy boundary|watermark[:D]|asid-recycle]
//! ```
//!
//! `--quick` runs scaled-down workloads (seconds); the default uses the
//! paper's parameters (30 000 processes, 100 000 Redis requests, ...).
//! `--jobs N` runs independent experiments — and the independent
//! (benchmark × config) points inside each — on up to N scoped threads
//! (clamped to the host's cores; nested fan-outs share one pool).
//! Every point boots a fresh deterministic kernel, so reports are merged
//! back in a fixed order and the output is byte-identical at any job count.
//! `--host-threads N` carries each SMP machine's hart loops on up to N
//! real OS threads through the logical-time turnstile; modeled cycles,
//! stats, and every report byte are identical at any value (the property
//! `check.sh` gates on), so the flag trades only wall-clock time.
//! `--no-fast-path` disables the host-side memoizations (PMP page cache,
//! micro-TLB); modeled results are identical, only wall-clock changes.
//! `--csv <dir>` additionally writes each figure's data series as CSV for
//! external plotting.
//! `--trace <file>` re-runs the PTStore security rows with a trace sink
//! attached and writes each cell's full event chain (JSON array, one
//! object per cell with counters and per-event rejecting-layer
//! attribution) to `file`.
//! `--harts N` boots N-hart machines: the security battery reruns every
//! cell on the SMP machine, the `smp` experiment compares
//! hart-distributed nginx/redis/fork-stress throughput against one hart,
//! and the `c1m` multi-tenant churn experiment runs its fleet on N harts
//! (minimum 2 — with one hart there is no remote TLB to shoot down).
//! `c1m` must be named explicitly — `all` is the paper-reproduction
//! suite and keeps its wall-clock comparable across commits; bench.sh
//! times c1m in a separate section of BENCH_PR9.json.
//! `--drain-policy boundary|watermark[:D]|asid-recycle` (c1m and
//! forkstress only) pins the batched rows to one deferred-shootdown
//! drain policy instead of sweeping all three; security-boundary and
//! ASID-reuse drains stay mandatory under every policy, so the reported
//! TLB digests must not move with this flag (`check.sh` gates on that).
//! `--medium` (c1m only, incompatible with `--quick`) selects the
//! CI-budgeted 150×8×50 C1M trajectory shape bench.sh tracks
//! connections-per-second on.
//!
//! `fuzz` runs the ptstore-fault campaign: `--faults N` seeded runs
//! (default 70), each injecting one fault drawn round-robin from the
//! nine fault classes, classified as detected-and-contained / benign /
//! invariant-violated. `--seed S` (default 1) fixes the campaign seed —
//! the report is byte-identical across invocations. `--harts H` defaults
//! to 2 here so the IPI fault classes have a victim hart. With `--quick`
//! the campaign runs the invariant oracle after every workload operation
//! (paranoid mode). `fuzz` is not part of `all`; run it explicitly.
//! `--scheme sv39|sv48|sv57` boots every kernel of the `security` battery,
//! `fuzz` campaign, or `modelcheck` search under that RISC-V paging scheme
//! (default sv39). The verdicts are scheme-independent — PTStore's checks
//! fire on physical addresses and credentials, not on walk depth — which
//! the scheme-differential test suite asserts.
//!
//! `modelcheck` runs the ptstore-modelcheck bounded exhaustive search: BFS
//! over every interleaving of the deterministic op alphabet up to `--depth`
//! ops (default 5), deduping states by canonical hash and running the
//! invariant oracle on each. With all defenses on the verdict must be
//! VERIFIED (0 violations in every reachable state); `--ablate
//! pmp_s_bit_check|ptw_origin_check|token_checks` disables one check and
//! must print FALSIFIED with a minimal replayable counterexample trace.
//! `--ops` restricts the alphabet to a comma-separated list of op families,
//! `--harts` sizes the miniature machine (default 2), `--quick` lowers the
//! default depth to 3, and `--jobs` fans frontier expansion out across host
//! threads — the report is byte-identical at any job count (check.sh `cmp`s
//! two runs). Like `fuzz` and `c1m`, `modelcheck` is not part of `all`.
//! Flags that cannot apply to the selected experiment (for example
//! `--seed` without `fuzz`, or `--jobs`/`--trace`/`--csv` with `fuzz`)
//! are rejected rather than silently ignored.

use std::fmt::Write as _;

use ptstore_bench::*;
use ptstore_fault::CampaignConfig;

/// Appends one line to a report buffer (writing to a `String` is
/// infallible).
macro_rules! w {
    ($($t:tt)*) => { let _ = writeln!($($t)*); };
}

const EXPERIMENTS: [&str; 13] = [
    "table1",
    "table2",
    "table3",
    "hwdetail",
    "ltp",
    "fig4",
    "forkstress",
    "fig5",
    "fig6",
    "fig7",
    "security",
    "smp",
    "c1m",
];

/// Prints the usage synopsis to stderr.
fn usage() {
    eprintln!(
        "usage: reproduce [--quick] [--medium] [--harts N] [--jobs N] [--host-threads N] [--no-fast-path] [--csv <dir>] [--trace <file>] [--scheme sv39|sv48|sv57] [--drain-policy boundary|watermark[:D]|asid-recycle] [{}|all]",
        EXPERIMENTS.join("|")
    );
    eprintln!(
        "       reproduce fuzz [--seed S] [--faults N] [--harts H] [--quick] [--scheme sv39|sv48|sv57]"
    );
    eprintln!(
        "       reproduce modelcheck [--depth N] [--ops k1,k2,...] [--ablate pmp_s_bit_check|ptw_origin_check|token_checks] [--harts H] [--jobs N] [--quick] [--scheme sv39|sv48|sv57] [--drain-policy boundary|watermark[:D]|asid-recycle]"
    );
    eprintln!("run `reproduce --help` for what each flag does");
}

/// Rejects the invocation with a clear error (exit 2).
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2);
}

/// Consumes the value of `--flag <value>`, failing loudly when missing.
fn take_value<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> &'a str {
    match it.next() {
        Some(v) if !v.starts_with("--") => v,
        _ => die(&format!("{flag} requires a value")),
    }
}

/// Parses a positive integer flag value.
fn take_number<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> T {
    let v = take_value(it, flag);
    match v.parse() {
        Ok(n) => n,
        Err(_) => die(&format!("{flag} takes a non-negative integer, got {v:?}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut medium = false;
    let mut no_fast_path = false;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut trace_file: Option<std::path::PathBuf> = None;
    let mut harts: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut host_threads: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut faults: Option<u64> = None;
    let mut scheme: Option<ptstore_core::PagingScheme> = None;
    let mut drain_policy: Option<ptstore_kernel::DrainPolicy> = None;
    let mut depth: Option<u32> = None;
    let mut ops: Option<Vec<ptstore_modelcheck::OpKind>> = None;
    let mut ablate: Option<ptstore_modelcheck::Ablation> = None;
    let mut what: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--medium" => medium = true,
            "--no-fast-path" => no_fast_path = true,
            "--csv" => csv_dir = Some(std::path::PathBuf::from(take_value(&mut it, "--csv"))),
            "--trace" => {
                trace_file = Some(std::path::PathBuf::from(take_value(&mut it, "--trace")));
            }
            "--harts" => harts = Some(take_number(&mut it, "--harts")),
            "--jobs" => jobs = Some(take_number(&mut it, "--jobs")),
            "--host-threads" => host_threads = Some(take_number(&mut it, "--host-threads")),
            "--seed" => seed = Some(take_number(&mut it, "--seed")),
            "--faults" => faults = Some(take_number(&mut it, "--faults")),
            "--scheme" => {
                let v = take_value(&mut it, "--scheme");
                scheme = match v.parse() {
                    Ok(s) => Some(s),
                    Err(_) => die(&format!(
                        "unknown paging scheme {v:?}: --scheme takes sv39, sv48, or sv57"
                    )),
                };
            }
            "--drain-policy" => {
                let v = take_value(&mut it, "--drain-policy");
                drain_policy = match v.parse() {
                    Ok(p) => Some(p),
                    Err(e) => die(&format!("{e}")),
                };
            }
            "--depth" => depth = Some(take_number(&mut it, "--depth")),
            "--ops" => {
                let v = take_value(&mut it, "--ops");
                ops = match ptstore_modelcheck::parse_op_kinds(v) {
                    Ok(kinds) if !kinds.is_empty() => Some(kinds),
                    Ok(_) => die("--ops takes a non-empty comma-separated op list"),
                    Err(e) => die(&e),
                };
            }
            "--ablate" => {
                let v = take_value(&mut it, "--ablate");
                ablate = match v.parse() {
                    Ok(a) => Some(a),
                    Err(e) => die(&e),
                };
            }
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag:?}")),
            exp => {
                if let Some(first) = &what {
                    die(&format!(
                        "at most one experiment may be selected, got {first:?} and {exp:?}"
                    ));
                }
                what = Some(exp.to_string());
            }
        }
    }

    let what = what.unwrap_or_else(|| "all".to_string());
    if what != "all"
        && what != "fuzz"
        && what != "modelcheck"
        && !EXPERIMENTS.contains(&what.as_str())
    {
        die(&format!("unknown experiment {what:?}"));
    }
    if harts == Some(0) {
        die("--harts takes a positive integer");
    }
    if jobs == Some(0) {
        die("--jobs takes a positive integer");
    }
    if host_threads == Some(0) {
        die("--host-threads takes a positive integer");
    }
    if depth == Some(0) {
        die("--depth takes a positive integer");
    }
    if let Some(n) = host_threads {
        ptstore_kernel::exec::set_host_threads(n);
    }
    // Flags whose experiment cannot use them are contradictions, not
    // defaults to silently fall back on.
    if what != "fuzz" {
        if seed.is_some() {
            die(&format!(
                "--seed only applies to the fuzz experiment, not {what:?}"
            ));
        }
        if faults.is_some() {
            die(&format!(
                "--faults only applies to the fuzz experiment, not {what:?}"
            ));
        }
    } else {
        if jobs.is_some() {
            die("--jobs does not apply to fuzz: campaign runs are sequential by design (the report is seed-deterministic)");
        }
        if trace_file.is_some() {
            die("--trace only applies to the security experiment, not fuzz");
        }
        if csv_dir.is_some() {
            die("--csv only applies to the figure experiments, not fuzz");
        }
    }
    if what != "modelcheck" {
        if depth.is_some() {
            die(&format!(
                "--depth only applies to the modelcheck experiment, not {what:?}"
            ));
        }
        if ops.is_some() {
            die(&format!(
                "--ops only applies to the modelcheck experiment, not {what:?}"
            ));
        }
        if ablate.is_some() {
            die(&format!(
                "--ablate only applies to the modelcheck experiment, not {what:?} \
                 (the fuzz campaign's ablations are part of its fault classes)"
            ));
        }
    } else {
        if trace_file.is_some() {
            die("--trace only applies to the security experiment, not modelcheck");
        }
        if csv_dir.is_some() {
            die("--csv only applies to the figure experiments, not modelcheck");
        }
        if medium {
            die("--medium is the CI-budgeted c1m trajectory shape; it does not apply to modelcheck (use --depth)");
        }
    }
    if trace_file.is_some() && what != "all" && what != "security" {
        die(&format!(
            "--trace only applies to the security experiment, not {what:?}"
        ));
    }
    if scheme.is_some() && what != "security" && what != "fuzz" && what != "modelcheck" {
        die(&format!(
            "--scheme only applies to the security, fuzz, and modelcheck experiments, not {what:?} \
             (the performance figures are calibrated against the sv39 goldens)"
        ));
    }
    const CSV_EXPERIMENTS: [&str; 5] = ["all", "fig4", "fig5", "fig6", "fig7"];
    if csv_dir.is_some() && !CSV_EXPERIMENTS.contains(&what.as_str()) {
        die(&format!(
            "--csv only applies to the figure experiments (fig4|fig5|fig6|fig7), not {what:?}"
        ));
    }
    if drain_policy.is_some() && what != "c1m" && what != "forkstress" && what != "modelcheck" {
        die(&format!(
            "--drain-policy only applies to the c1m, forkstress, and modelcheck experiments, \
             not {what:?} \
             (the other experiments run eager shootdowns, where no drain queue exists)"
        ));
    }
    if medium {
        if quick {
            die("--medium and --quick are contradictory: pick one scale");
        }
        if what != "c1m" {
            die(&format!(
                "--medium is the CI-budgeted c1m trajectory shape; it does not apply to {what:?}"
            ));
        }
    }

    let scale = if medium {
        Scale::medium()
    } else if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    if no_fast_path {
        ptstore_core::fastpath::set_default(false);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    set_csv_dir(csv_dir);

    if what == "fuzz" {
        // `--harts` defaults to 2 for fuzz so the IPI-fault classes have a
        // victim hart to target.
        print!(
            "{}",
            report_fuzz(
                seed.unwrap_or(1),
                faults.unwrap_or(70),
                harts.unwrap_or(2),
                quick,
                scheme
            )
        );
        return;
    }
    if what == "modelcheck" {
        let base = ptstore_modelcheck::McConfig::default();
        let mc = ptstore_modelcheck::McConfig {
            // The default bound (depth 5, full alphabet, 2 harts) explores
            // well over 10^4 deduped states — the coverage floor check.sh
            // gates on; --quick trades coverage for a seconds-scale smoke
            // run.
            depth: depth.unwrap_or(if quick { 3 } else { base.depth }),
            kinds: ops.unwrap_or(base.kinds),
            ablate,
            harts: harts.unwrap_or(2),
            scheme: scheme.unwrap_or(base.scheme),
            drain_policy: match drain_policy {
                Some(p) => Some(p),
                None => base.drain_policy,
            },
            jobs: jobs.unwrap_or(1),
            max_states: base.max_states,
        };
        print!("{}", ptstore_modelcheck::explore(&mc).summary());
        return;
    }
    let harts = harts.unwrap_or(1);
    let jobs = jobs.unwrap_or(1);

    // One report builder per experiment, in the fixed output order. Each
    // returns its full report as a string so runs can be fanned out across
    // threads and merged back deterministically.
    type Task<'a> = (&'a str, Box<dyn Fn() -> String + Sync + 'a>);
    let scale = &scale;
    let trace_file = trace_file.as_deref();
    let tasks: Vec<Task> = EXPERIMENTS
        .iter()
        // `all` is the paper-reproduction suite; the c1m macro workload runs
        // only when named explicitly so the suite's wall-clock gate
        // (scripts/bench.sh, BENCH_PR*.json) keeps comparing the same work
        // across commits. bench.sh times c1m in its own section.
        .filter(|name| (what == "all" && **name != "c1m") || what == **name)
        .map(|&name| {
            let task: Box<dyn Fn() -> String + Sync> = match name {
                "table1" => Box::new(report_table1),
                "table2" => Box::new(report_table2),
                "table3" => Box::new(report_table3),
                "hwdetail" => Box::new(report_hwdetail),
                "ltp" => Box::new(move || report_ltp(scale, jobs)),
                "fig4" => Box::new(move || report_fig4(scale, jobs)),
                "forkstress" => Box::new(move || report_stress(scale, jobs, drain_policy)),
                "fig5" => Box::new(move || report_fig5(scale, jobs)),
                "fig6" => Box::new(move || report_fig6(scale, jobs)),
                "fig7" => Box::new(move || report_fig7(scale, jobs)),
                "security" => Box::new(move || report_security(trace_file, harts, scheme)),
                "smp" => Box::new(move || report_smp(scale, harts, jobs)),
                "c1m" => Box::new(move || report_c1m(scale, harts, jobs, drain_policy)),
                _ => unreachable!("EXPERIMENTS is exhaustive"),
            };
            (name, task)
        })
        .collect();

    // Deterministic ordered merge: reports come back in task order no
    // matter which thread finished first.
    for report in par_map(jobs, &tasks, |(_, run)| run()) {
        print!("{report}");
    }
}

use std::sync::OnceLock;

static CSV_DIR: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();

fn set_csv_dir(dir: Option<std::path::PathBuf>) {
    let _ = CSV_DIR.set(dir);
}

/// Writes one figure's overhead series as CSV when `--csv` was given,
/// appending a note to the report.
fn write_series_csv(out: &mut String, name: &str, series: &[OverheadSeries]) {
    let Some(Some(dir)) = CSV_DIR.get() else {
        return;
    };
    let mut csv = String::from("benchmark,config,cycles,overhead_pct\n");
    for s in series {
        for m in &s.entries {
            let _ = writeln!(
                csv,
                "{},{},{},{:.4}",
                s.benchmark, m.label, m.cycles, m.overhead_pct
            );
        }
    }
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, csv).expect("write csv");
    w!(out, "(csv written to {})", path.display());
}

fn header(out: &mut String, title: &str) {
    w!(out);
    w!(
        out,
        "================================================================"
    );
    w!(out, "{title}");
    w!(
        out,
        "================================================================"
    );
}

fn report_table1() -> String {
    let mut out = String::new();
    header(&mut out, "Table I: lines of code of each PTStore component");
    w!(
        out,
        "{:<18} {:<18} {:>10} {:>10}  Our location",
        "Component",
        "Paper language",
        "Paper LoC",
        "Ours LoC"
    );
    for r in table1() {
        w!(
            out,
            "{:<18} {:<18} {:>10} {:>10}  {}",
            r.component,
            r.paper_language,
            r.paper_loc,
            r.our_loc,
            r.our_location
        );
    }
    w!(
        out,
        "(ours are full reimplementations of each subsystem, not patches — see DESIGN.md)"
    );
    out
}

fn report_table2() -> String {
    let mut out = String::new();
    header(&mut out, "Table II: prototype system configuration");
    for (k, v) in table2() {
        w!(out, "{k:<16} {v}");
    }
    out
}

fn report_table3() -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Table III: hardware resource cost (model) — paper: +0.918% core LUT, +0.258% core FF",
    );
    w!(
        out,
        "{:<16} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} | {:>7}",
        "",
        "coreLUT",
        "%",
        "coreFF",
        "%",
        "sysLUT",
        "%",
        "sysFF",
        "%",
        "WSS",
        "Fmax"
    );
    for row in run_table3() {
        w!(out, "{row}");
    }
    out
}

fn report_hwdetail() -> String {
    let mut out = String::new();
    header(&mut out, "Table III detail: structural component breakdown");
    let cfg = ptstore_hwcost::BoomConfig::small_boom();
    w!(out, "-- baseline core --");
    for c in cfg.components() {
        w!(out, "  {c}");
    }
    w!(
        out,
        "-- PTStore delta (the 58 Chisel lines of Table I, as gates) --"
    );
    for c in ptstore_hwcost::ptstore_delta(cfg.pmp_entries) {
        w!(out, "  {c}");
    }
    w!(out, "-- uncore --");
    for c in ptstore_hwcost::peripherals() {
        w!(out, "  {c}");
    }
    let p = ptstore_hwcost::estimate(&cfg);
    w!(out, "-- dynamic power (normalised; §III-C2 argument) --");
    w!(out, "  baseline core        {:.4}", p.baseline);
    w!(
        out,
        "  with PTStore         {:.4}  (+{:.3}%)",
        p.with_ptstore,
        (p.with_ptstore - p.baseline) / p.baseline * 100.0
    );
    w!(
        out,
        "  with NPT unit instead {:.4}  (+{:.3}%) — the alternative the paper rejects",
        p.with_npt,
        (p.with_npt - p.baseline) / p.baseline * 100.0
    );
    out
}

fn report_ltp(scale: &Scale, jobs: usize) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "§V-C: LTP-style regression (output diff between kernels)",
    );
    let r = run_ltp_jobs(scale, jobs);
    w!(out, "test cases per kernel : {}", r.cases);
    w!(out, "deviations            : {}", r.deviations.len());
    for d in &r.deviations {
        w!(out, "  DEVIATION: {d}");
    }
    if r.deviations.is_empty() {
        w!(
            out,
            "=> no deviation: the PTStore kernel behaves identically (paper: same result)"
        );
    }
    out
}

fn series_table(out: &mut String, series: &[OverheadSeries]) {
    w!(
        out,
        "{:<24} {:>12} {:>12} {:>12}",
        "benchmark",
        "CFI %",
        "CFI+PTStore %",
        "PTStore-only %"
    );
    for s in series {
        let cfi = s.overhead_of("CFI").unwrap_or(0.0);
        let both = s.overhead_of("CFI+PTStore").unwrap_or(0.0);
        w!(
            out,
            "{:<24} {:>12.2} {:>12.2} {:>12.2}",
            s.benchmark,
            cfi,
            both,
            both - cfi
        );
    }
}

fn report_fig4(scale: &Scale, jobs: usize) -> String {
    let mut out = String::new();
    header(
        &mut out,
        &format!(
            "Figure 4: LMBench microbenchmark overheads ({} iterations)",
            scale.lmbench_iters
        ),
    );
    let series = run_fig4_jobs(scale, jobs);
    series_table(&mut out, &series);
    write_series_csv(&mut out, "fig4_lmbench", &series);
    w!(
        out,
        "average: CFI {:.2}%, CFI+PTStore {:.2}% (paper: PTStore adds no significant syscall overhead)",
        average_overhead(&series, "CFI"),
        average_overhead(&series, "CFI+PTStore"),
    );
    out
}

fn report_stress(
    scale: &Scale,
    jobs: usize,
    policy: Option<ptstore_kernel::DrainPolicy>,
) -> String {
    let mut out = String::new();
    let under = match policy {
        Some(p) => format!("; deferred shootdowns, drain policy {p}"),
        None => String::new(),
    };
    header(
        &mut out,
        &format!(
            "§V-D1: fork stress — {} simultaneous processes (paper: 30,000; 2.84% / 6.83% / 3.77%{under})",
            scale.stress_procs
        ),
    );
    w!(
        out,
        "{:<18} {:>14} {:>10} {:>12} {:>10} {:>14} {:>18}",
        "config",
        "cycles",
        "overhead%",
        "adjustments",
        "migrated",
        "region (MiB)",
        "tlb digest"
    );
    for row in run_stress_policy_jobs(scale, jobs, policy) {
        w!(
            out,
            "{:<18} {:>14} {:>10.2} {:>12} {:>10} {:>14} {:>#18x}",
            row.label,
            row.result.cycles,
            row.overhead_pct,
            row.result.adjustments,
            row.result.migrated_pages,
            row.result
                .final_region_size
                .map(|s| (s / (1 << 20)).to_string())
                .unwrap_or_else(|| "-".to_string()),
            row.tlb_digest,
        );
    }
    if policy.is_some() {
        w!(
            out,
            "=> drain policies are pure placement: the tlb digest column must be identical \
             for every --drain-policy value (check.sh compares boundary vs watermark)"
        );
    }
    out
}

fn report_fig5(scale: &Scale, jobs: usize) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "Figure 5: SPEC CINT2006 execution-time overheads (paper: <0.91% CFI+PTStore, <0.29% PTStore alone)",
    );
    let series = run_fig5_jobs(scale, jobs);
    series_table(&mut out, &series);
    write_series_csv(&mut out, "fig5_spec", &series);
    w!(
        out,
        "average: CFI+PTStore {:.3}% (PTStore-only {:.3}%)",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI"),
    );
    out
}

fn report_fig6(scale: &Scale, jobs: usize) -> String {
    let mut out = String::new();
    header(
        &mut out,
        &format!(
            "Figure 6: NGINX overheads — {} requests, 100 concurrent (paper: <8.18% incl. CFI, <0.86% PTStore)",
            scale.nginx_requests
        ),
    );
    let series = run_fig6_jobs(scale, jobs);
    series_table(&mut out, &series);
    write_series_csv(&mut out, "fig6_nginx", &series);
    w!(
        out,
        "average: CFI+PTStore {:.2}%, PTStore-only {:.2}%",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI"),
    );
    out
}

fn report_fig7(scale: &Scale, jobs: usize) -> String {
    let mut out = String::new();
    header(
        &mut out,
        &format!(
            "Figure 7: Redis overheads — {} requests/test, 50 connections (paper: <8.18% incl. CFI, <0.86% PTStore)",
            scale.redis_requests
        ),
    );
    let series = run_fig7_jobs(scale, jobs);
    series_table(&mut out, &series);
    write_series_csv(&mut out, "fig7_redis", &series);
    w!(
        out,
        "average: CFI+PTStore {:.2}%, PTStore-only {:.2}%",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI"),
    );
    out
}

fn report_security(
    trace_file: Option<&std::path::Path>,
    harts: usize,
    scheme: Option<ptstore_core::PagingScheme>,
) -> String {
    let mut out = String::new();
    let scheme = scheme.unwrap_or(ptstore_core::PagingScheme::Sv39);
    let under = if scheme == ptstore_core::PagingScheme::Sv39 {
        String::new()
    } else {
        format!(", {} paging", scheme.name())
    };
    if harts > 1 {
        header(
            &mut out,
            &format!(
                "§V-E: security matrix (attack × defense; fresh {harts}-hart kernel per cell{under})"
            ),
        );
    } else {
        header(
            &mut out,
            &format!("§V-E: security matrix (attack × defense; fresh kernel per cell{under})"),
        );
    }
    for report in run_security_with(harts, scheme) {
        let tokens = if report.tokens { "" } else { " [tokens off]" };
        w!(out, "{report}{tokens}");
    }
    w!(
        out,
        "=> PTStore (full design) blocks every attack; see EXPERIMENTS.md"
    );

    let Some(path) = trace_file else { return out };
    w!(out);
    w!(
        out,
        "-- traced PTStore rows (which check stopped each attack) --"
    );
    let cells = run_security_traced();
    for cell in &cells {
        let tokens = if cell.report.tokens {
            ""
        } else {
            " [tokens off]"
        };
        let layer = cell
            .rejecting_layer()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".to_string());
        let c = &cell.counters;
        w!(
            out,
            "{:<20}{:<14} -> {:<18} ({} events: {} pmp checks/{} denied, {} ptw steps/{} rejected, {} token ops/{} rejected)",
            cell.report.attack.to_string(),
            tokens,
            layer,
            cell.events.len(),
            c.pmp_checks,
            c.pmp_denials,
            c.ptw_steps,
            c.ptw_origin_rejections,
            c.token_ops,
            c.token_rejections,
        );
    }
    let mut json = String::from("[");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&cell.to_json());
    }
    json.push(']');
    match std::fs::write(path, json) {
        Ok(()) => {
            w!(out, "(trace written to {})", path.display());
        }
        Err(e) => eprintln!("error: cannot write trace file {}: {e}", path.display()),
    }
    out
}

fn report_fuzz(
    seed: u64,
    faults: u64,
    harts: usize,
    quick: bool,
    scheme: Option<ptstore_core::PagingScheme>,
) -> String {
    let mut out = String::new();
    let under = match scheme {
        Some(s) if s != ptstore_core::PagingScheme::Sv39 => format!(", {} paging", s.name()),
        _ => String::new(),
    };
    header(
        &mut out,
        &format!(
            "Fuzz campaign: {faults} seeded faults across {harts} hart(s) (ptstore-fault{under})"
        ),
    );
    let mut cfg = if quick {
        // Paranoid mode: the invariant oracle runs after every workload
        // operation, not just at the post-injection checkpoints.
        CampaignConfig::quick(seed, faults, harts)
    } else {
        CampaignConfig::new(seed, faults, harts)
    };
    if let Some(s) = scheme {
        cfg.kernel = Some(cfg.kernel_config().with_scheme(s));
    }
    let report = ptstore_fault::run_campaign(&cfg);
    out.push_str(&report.summary());
    w!(
        out,
        "=> every fault is refused by its named layer or provably benign; \
         invariant-violated must be 0 on the full mechanism (see EXPERIMENTS.md)"
    );
    out
}

fn report_smp(scale: &Scale, harts: usize, jobs: usize) -> String {
    let mut out = String::new();
    // `reproduce smp` without --harts compares against a 4-hart machine.
    let harts = if harts > 1 { harts } else { 4 };
    header(
        &mut out,
        &format!("SMP scaling: hart-distributed workloads, 1 vs {harts} harts (CFI+PTStore)"),
    );
    let rows = run_smp_jobs(scale, harts, jobs);
    w!(
        out,
        "{:<14} {:>14} {:>14} {:>9} {:>12} {:>10}",
        "workload",
        "1-hart ops/kc",
        "N-hart ops/kc",
        "speedup",
        "shootdowns",
        "IPIs"
    );
    for r in &rows {
        w!(
            out,
            "{:<14} {:>14.3} {:>14.3} {:>8.2}x {:>12} {:>10}",
            r.workload,
            r.single.ops_per_kilocycle(),
            r.multi.ops_per_kilocycle(),
            r.speedup(),
            r.multi.tlb_shootdowns,
            r.multi.shootdown_ipis,
        );
        let util: Vec<String> = r
            .multi
            .per_hart
            .iter()
            .map(|h| format!("hart{} {:>5.1}%", h.hart, h.utilization * 100.0))
            .collect();
        w!(out, "{:<14} per-hart utilization: {}", "", util.join("  "));
    }
    w!(
        out,
        "=> ops per modeled cycle must rise with the hart count; shootdown IPIs are the price"
    );
    out
}

fn report_c1m(
    scale: &Scale,
    harts: usize,
    jobs: usize,
    policy: Option<ptstore_kernel::DrainPolicy>,
) -> String {
    let mut out = String::new();
    let harts = harts.max(2);
    header(
        &mut out,
        &format!(
            "C1M: multi-tenant churn — {} tenant slots x {} rounds x {} connections \
             ({} connections, {} processes, {} harts)",
            scale.c1m_tenants,
            scale.c1m_rounds,
            scale.c1m_requests,
            scale.c1m_tenants * scale.c1m_rounds * scale.c1m_requests,
            scale.c1m_tenants * scale.c1m_rounds,
            harts
        ),
    );
    w!(
        out,
        "{:<34} {:>14} {:>10} {:>9} {:>11} {:>9} {:>7} {:>10} {:>6} {:>7} {:>7}",
        "config",
        "wall cycles",
        "overhead%",
        "conn/kc",
        "shootdowns",
        "IPIs",
        "drains",
        "coalesced",
        "maxq",
        "early",
        "adjust"
    );
    let rows = run_c1m_sweep_jobs(scale, harts, jobs, policy);
    for row in &rows {
        w!(
            out,
            "{:<34} {:>14} {:>10.2} {:>9.3} {:>11} {:>9} {:>7} {:>10} {:>6} {:>7} {:>7}",
            row.label,
            row.result.report.wall_cycles,
            row.overhead_pct,
            row.result.connections_per_kilocycle(),
            row.result.report.tlb_shootdowns,
            row.result.report.shootdown_ipis,
            row.result.deferred_drains,
            row.result.deferred_pages_coalesced,
            row.result.deferred_queue_peak,
            row.result.watermark_drains + row.result.asid_recycle_drains,
            row.result.adjustments,
        );
    }
    // The machine-greppable policy trade-off line check.sh and bench.sh
    // parse: per-policy queue peaks plus the state-identity verdict.
    let batched: Vec<_> = rows
        .iter()
        .filter(|r| r.label.starts_with("CFI+PTStore batched/"))
        .collect();
    let mut sweep = String::from("drain-policy sweep:");
    for r in &batched {
        let _ = write!(
            sweep,
            " {} maxq={} ipis={}",
            r.label.trim_start_matches("CFI+PTStore batched/"),
            r.result.deferred_queue_peak,
            r.result.report.shootdown_ipis
        );
    }
    let identical = batched
        .windows(2)
        .all(|w| w[0].result.tlb_digest == w[1].result.tlb_digest);
    let _ = write!(
        sweep,
        " tlb-digest-identical={}",
        if identical { "yes" } else { "NO" }
    );
    w!(out, "{sweep}");
    w!(
        out,
        "=> batching (deferred shootdowns + magazines) must cut IPIs and wall cycles versus \
         the eager row; policies only move drain placement — watermark must cap maxq below \
         boundary's with an identical tlb digest. All values are modeled — host wall time \
         is measured by scripts/bench.sh"
    );
    out
}
