//! Deterministic scoped-thread fan-out for independent experiment points.
//!
//! Every experiment point in `reproduce` boots a fresh kernel and is fully
//! deterministic, so points can run on any thread in any order as long as
//! results are merged back in input order. [`par_map`] does exactly that
//! by delegating to the crate's shared pool ([`crate::pool::fan_out`]),
//! which clamps the thread count to the host's cores and runs nested
//! fan-outs inline instead of stacking pools.

use crate::pool;

/// Applies `f` to every item on up to `jobs` pool threads, returning
/// results in input order. With `jobs <= 1` (or a single item) it runs
/// inline with no threads; called from inside another `par_map` it shares
/// the outer pool's worker rather than oversubscribing the host.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    pool::fan_out(jobs, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(jobs, &items, |&i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(4, &[] as &[u64], |&i| i), Vec::<u64>::new());
        assert_eq!(par_map(4, &[9u64], |&i| i + 1), vec![10]);
    }
}
