//! Deterministic scoped-thread fan-out for independent experiment points.
//!
//! Every experiment point in `reproduce` boots a fresh kernel and is fully
//! deterministic, so points can run on any thread in any order as long as
//! results are merged back in input order. [`par_map`] does exactly that:
//! a work-stealing index over `items`, results written to their original
//! positions, `jobs <= 1` degenerating to a plain sequential map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `jobs` scoped threads, returning
/// results in input order. With `jobs <= 1` (or a single item) it runs
/// inline with no threads.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("worker filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(jobs, &items, |&i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(4, &[] as &[u64], |&i| i), Vec::<u64>::new());
        assert_eq!(par_map(4, &[9u64], |&i| i + 1), vec![10]);
    }
}
