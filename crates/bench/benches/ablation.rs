//! Ablation benches for the design choices DESIGN.md calls out:
//! token mechanism on/off, initial secure-region size sweep, and the
//! virtual-isolation baseline's write-window cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ptstore_core::MIB;
use ptstore_kernel::{DefenseMode, Kernel, KernelConfig};
use ptstore_workloads::fork_stress::run_fork_stress;
use ptstore_workloads::lmbench;
use ptstore_workloads::report::overhead_pct;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    // Tokens on/off: context-switch cost delta.
    for tokens in [true, false] {
        let mut cfg = KernelConfig::cfi_ptstore()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB);
        cfg.token_checks = tokens;
        g.bench_with_input(
            BenchmarkId::new("ctx_switch_tokens", tokens),
            &cfg,
            |b, cfg| {
                let mut k = Kernel::boot(*cfg).expect("boot");
                b.iter(|| black_box(lmbench::lat_ctx(&mut k, 4, 64)));
            },
        );
    }

    // Defense-mode comparison on the PT-write-heavy fork path.
    for defense in [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
        DefenseMode::PtStore,
    ] {
        let cfg = KernelConfig::cfi()
            .with_defense(defense)
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB);
        g.bench_with_input(BenchmarkId::new("fork_defense", defense), &cfg, |b, cfg| {
            let mut k = Kernel::boot(*cfg).expect("boot");
            b.iter(|| black_box(lmbench::lat_fork_exit(&mut k, 20)));
        });
    }
    g.finish();

    // Cycle-model ablations, printed once.
    eprintln!("\n-- Ablation: initial secure-region size sweep (300-process stress) --");
    let base_cycles = {
        let mut k = Kernel::boot(KernelConfig::cfi().with_mem_size(512 * MIB)).expect("boot");
        run_fork_stress(&mut k, 300).expect("stress").cycles
    };
    for initial_mib in [1u64, 2, 4, 8, 16, 64] {
        let mut k = Kernel::boot(
            KernelConfig::cfi_ptstore()
                .with_mem_size(512 * MIB)
                .with_initial_secure_size(initial_mib * MIB),
        )
        .expect("boot");
        let r = run_fork_stress(&mut k, 300).expect("stress");
        eprintln!(
            "initial {initial_mib:>3} MiB: overhead {:>6.2}%  adjustments {:>2}",
            overhead_pct(r.cycles, base_cycles),
            r.adjustments
        );
    }

    eprintln!("\n-- Ablation: defense-mode fork cost (cycle model) --");
    let mut base = 0u64;
    for defense in [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
        DefenseMode::PtStore,
    ] {
        let mut k = Kernel::boot(
            KernelConfig::cfi()
                .with_defense(defense)
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot");
        let cycles = lmbench::lat_fork_exit(&mut k, 100);
        if defense == DefenseMode::None {
            base = cycles;
        }
        eprintln!(
            "{defense:<20} fork+exit overhead {:>7.2}%",
            overhead_pct(cycles, base)
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
