//! §V-D1 bench: the fork stress that drives secure-region adjustment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ptstore_bench::{run_stress, Scale};
use ptstore_core::MIB;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::fork_stress::run_fork_stress;

fn bench_fork_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("forkstress");
    g.sample_size(10);
    let configs = [
        ("cfi", KernelConfig::cfi().with_mem_size(512 * MIB)),
        (
            "cfi_ptstore_adjusting",
            KernelConfig::cfi_ptstore()
                .with_mem_size(512 * MIB)
                .with_initial_secure_size(2 * MIB),
        ),
        (
            "cfi_ptstore_no_adjust",
            KernelConfig::cfi_ptstore_no_adjust()
                .with_mem_size(512 * MIB)
                .with_initial_secure_size(64 * MIB),
        ),
    ];
    for (label, cfg) in configs {
        g.bench_with_input(
            BenchmarkId::new("create_teardown_300", label),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut k = Kernel::boot(*cfg).expect("boot");
                    black_box(run_fork_stress(&mut k, 300).expect("stress"))
                });
            },
        );
    }
    g.finish();

    eprintln!("\n-- §V-D1 fork stress (cycle model, quick scale) --");
    for row in run_stress(&Scale::quick()) {
        eprintln!(
            "{:<18} overhead {:>6.2}%  adjustments {:>3}  region {:?} MiB",
            row.label,
            row.overhead_pct,
            row.result.adjustments,
            row.result.final_region_size.map(|s| s >> 20)
        );
    }
}

criterion_group!(benches, bench_fork_stress);
criterion_main!(benches);
