//! Figure 7 bench: the redis-benchmark command mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ptstore_bench::{average_overhead, run_fig7, Scale};
use ptstore_core::MIB;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::redis::{run_redis_test, RedisParams, REDIS_TESTS};

fn bench_redis(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_redis");
    g.sample_size(10);
    let params = RedisParams {
        requests: 500,
        connections: 50,
    };
    // GET (short) and LRANGE_100 (bulk) span the figure's range.
    for test in [&REDIS_TESTS[3], &REDIS_TESTS[12]] {
        g.throughput(Throughput::Elements(params.requests));
        for (label, cfg) in [
            ("baseline", KernelConfig::baseline()),
            ("cfi_ptstore", KernelConfig::cfi_ptstore()),
        ] {
            let cfg = cfg
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB);
            g.bench_with_input(BenchmarkId::new(test.name, label), &cfg, |b, cfg| {
                let mut k = Kernel::boot(*cfg).expect("boot");
                b.iter(|| black_box(run_redis_test(&mut k, test, &params)));
            });
        }
    }
    g.finish();

    let series = run_fig7(&Scale::quick());
    eprintln!("\n-- Figure 7 overheads (cycle model) --");
    for s in &series {
        eprintln!("{s}");
    }
    eprintln!(
        "avg CFI+PTStore {:.2}%; PTStore-only {:.2}% (paper <0.86%)",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI")
    );
}

criterion_group!(benches, bench_redis);
criterion_main!(benches);
