//! Figure 4 bench: LMBench microbenchmarks on baseline/CFI/CFI+PTStore
//! kernels. Criterion measures the simulator's host time; the cycle-model
//! overheads (the paper's metric) are printed at the end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ptstore_bench::{average_overhead, run_fig4, Scale};
use ptstore_core::MIB;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::lmbench;

fn boot(cfg: KernelConfig) -> Kernel {
    Kernel::boot(
        cfg.with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB),
    )
    .expect("boot")
}

fn bench_lmbench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_lmbench");
    g.sample_size(10);
    for name in ["null call", "open/close", "pipe", "fork+exit", "page fault"] {
        for (label, cfg) in [
            ("baseline", KernelConfig::baseline()),
            ("cfi_ptstore", KernelConfig::cfi_ptstore()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name.replace(['/', ' '], "_"), label),
                &cfg,
                |b, cfg| {
                    let mut k = boot(*cfg);
                    b.iter(|| black_box(lmbench::run(name, &mut k, 20)));
                },
            );
        }
    }
    g.finish();

    let series = run_fig4(&Scale::quick());
    eprintln!("\n-- Figure 4 overheads (cycle model, quick scale) --");
    for s in &series {
        eprintln!("{s}");
    }
    eprintln!(
        "avg CFI {:.2}% | avg CFI+PTStore {:.2}%",
        average_overhead(&series, "CFI"),
        average_overhead(&series, "CFI+PTStore")
    );
}

criterion_group!(benches, bench_lmbench);
criterion_main!(benches);
