//! Figure 6 bench: NGINX static-file serving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ptstore_bench::{average_overhead, run_fig6, Scale};
use ptstore_core::MIB;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::nginx::{run_nginx, NginxParams};

fn bench_nginx(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_nginx");
    g.sample_size(10);
    for size_kib in [4u64, 64] {
        let params = NginxParams {
            requests: 200,
            concurrency: 50,
            ..NginxParams::paper(size_kib << 10)
        };
        g.throughput(Throughput::Elements(params.requests));
        for (label, cfg) in [
            ("baseline", KernelConfig::baseline()),
            ("cfi_ptstore", KernelConfig::cfi_ptstore()),
        ] {
            let cfg = cfg
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB);
            g.bench_with_input(
                BenchmarkId::new(format!("{size_kib}KiB"), label),
                &cfg,
                |b, cfg| {
                    let mut k = Kernel::boot(*cfg).expect("boot");
                    b.iter(|| black_box(run_nginx(&mut k, &params)));
                },
            );
        }
    }
    g.finish();

    let series = run_fig6(&Scale::quick());
    eprintln!("\n-- Figure 6 overheads (cycle model) --");
    for s in &series {
        eprintln!("{s}");
    }
    eprintln!(
        "avg CFI+PTStore {:.2}% (paper <8.18% incl. CFI); PTStore-only {:.2}% (paper <0.86%)",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI")
    );
}

criterion_group!(benches, bench_nginx);
criterion_main!(benches);
