//! Table III bench: synthesis + timing model, with/without PTStore.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ptstore_hwcost::{table3, BoomConfig, SystemCost, TimingModel};

fn bench_hwcost(c: &mut Criterion) {
    let cfg = BoomConfig::small_boom();
    let mut g = c.benchmark_group("table3_hwcost");
    g.bench_function("synthesise_baseline", |b| {
        b.iter(|| SystemCost::synthesise(black_box(&cfg), false))
    });
    g.bench_function("synthesise_ptstore", |b| {
        b.iter(|| SystemCost::synthesise(black_box(&cfg), true))
    });
    g.bench_function("implement_timing", |b| {
        b.iter(|| TimingModel::implement(black_box(&cfg), true))
    });
    g.bench_function("full_table3", |b| b.iter(|| table3(black_box(&cfg))));
    g.finish();

    // Print the regenerated table once per bench run.
    eprintln!("\n-- Table III (regenerated) --");
    for row in table3(&cfg) {
        eprintln!("{row}");
    }
}

criterion_group!(benches, bench_hwcost);
criterion_main!(benches);
