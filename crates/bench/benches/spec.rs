//! Figure 5 bench: SPEC CINT2006-shaped workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ptstore_bench::{average_overhead, run_fig5, Scale};
use ptstore_core::MIB;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::spec::{run_spec, SPEC_CINT2006};

fn bench_spec(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_spec");
    g.sample_size(10);
    // Host-time benches over a representative pair (CPU-bound vs page-heavy).
    for p in [
        &SPEC_CINT2006[6], /* libquantum */
        &SPEC_CINT2006[2], /* mcf */
    ] {
        for (label, cfg) in [
            ("baseline", KernelConfig::baseline()),
            ("cfi_ptstore", KernelConfig::cfi_ptstore()),
        ] {
            let cfg = cfg
                .with_mem_size(512 * MIB)
                .with_initial_secure_size(16 * MIB);
            g.bench_with_input(BenchmarkId::new(p.name, label), &cfg, |b, cfg| {
                let mut k = Kernel::boot(*cfg).expect("boot");
                b.iter(|| black_box(run_spec(&mut k, p)));
            });
        }
    }
    g.finish();

    let series = run_fig5(&Scale::quick());
    eprintln!("\n-- Figure 5 overheads (cycle model) --");
    for s in &series {
        eprintln!("{s}");
    }
    eprintln!(
        "avg CFI+PTStore {:.3}% (paper <0.91%); PTStore-only {:.3}% (paper <0.29%)",
        average_overhead(&series, "CFI+PTStore"),
        average_overhead(&series, "CFI+PTStore") - average_overhead(&series, "CFI")
    );
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
