//! Fast-path differential anchors: the host-side memoizations (PMP page
//! cache, micro-TLB, direct-indexed physical memory) must be invisible to
//! the model. With fast paths on or off, every configuration must produce
//! bit-identical cycle totals, sfence counts, and full kernel statistics —
//! at one hart and on the SMP machine, where remote harts service TLB
//! shootdowns during the run.
//!
//! The single-hart goldens here are the *same numbers* as the pre-SMP seed
//! anchors in `smp_differential.rs`, asserted under both settings: the
//! fast paths changed wall-clock only, never modeled cycles.

use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{Kernel, KernelConfig, KernelStats};
use ptstore_workloads::nginx::{run_nginx, NginxParams};
use ptstore_workloads::redis::{run_redis_test, RedisParams, REDIS_TESTS};
use ptstore_workloads::run_fork_stress;

/// The five configurations the paper evaluates, at the attack-battery
/// geometry (256 MiB RAM, 16 MiB initial secure region).
fn configs() -> [(&'static str, KernelConfig); 5] {
    let geom = |c: KernelConfig| {
        c.with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
    };
    [
        ("baseline", geom(KernelConfig::baseline())),
        ("cfi", geom(KernelConfig::cfi())),
        ("cfi_ptstore", geom(KernelConfig::cfi_ptstore())),
        (
            "cfi_ptstore_no_adjust",
            geom(KernelConfig::cfi_ptstore_no_adjust()),
        ),
        ("ptstore_only", geom(KernelConfig::ptstore_only())),
    ]
}

/// The fixed syscall mix of `smp_differential.rs` — every TLB-flush site:
/// fork (ASID fence), COW break, demand paging, mprotect tightening,
/// munmap, plus files/pipes/signals/exec — with the fast paths forced on
/// or off right after boot.
fn syscall_battery(cfg: KernelConfig, fast: bool) -> (u64, KernelStats) {
    let mut k = Kernel::boot(cfg).expect("boot");
    k.set_fast_paths(fast);
    let brk0 = k.procs.get(1).expect("init").brk;
    k.sys_brk(brk0 + 2 * PAGE_SIZE).expect("brk");
    k.sys_touch(VirtAddr::new(brk0), true).expect("touch brk");
    k.sys_touch(VirtAddr::new(brk0 + PAGE_SIZE), true)
        .expect("touch brk2");
    let c1 = k.sys_fork().expect("fork c1");
    let c2 = k.sys_fork().expect("fork c2");
    k.do_switch_to(c1).expect("switch c1");
    k.sys_touch(VirtAddr::new(brk0), true).expect("cow 1");
    k.sys_touch(VirtAddr::new(brk0 + PAGE_SIZE), true)
        .expect("cow 2");
    let va = k.sys_mmap(4 * PAGE_SIZE).expect("mmap");
    for i in 0..4 {
        k.sys_touch(VirtAddr::new(va.as_u64() + i * PAGE_SIZE), true)
            .expect("touch map");
    }
    k.sys_mprotect(va, 2 * PAGE_SIZE, VmPerms::RO)
        .expect("mprotect");
    k.sys_touch(va, false).expect("ro read");
    k.sys_munmap(va, 4 * PAGE_SIZE).expect("munmap");
    let fd = k.sys_open("/tmp/XXX").expect("open");
    k.sys_write(fd, &[0xA5; 48]).expect("write");
    k.sys_close(fd).expect("close");
    let (r, w) = k.sys_pipe().expect("pipe");
    k.sys_write(w, &[1; 16]).expect("pipe write");
    k.sys_read(r, 16).expect("pipe read");
    k.sys_signal_install(7).expect("signal install");
    k.sys_signal_catch(7).expect("signal catch");
    k.sys_exec().expect("exec");
    k.sys_exit(0).expect("exit c1");
    assert_eq!(k.current_pid(), c2, "scheduler picked c2 after c1 exited");
    k.sys_yield().expect("yield");
    k.do_switch_to(c2).expect("switch c2");
    k.sys_exit(0).expect("exit c2");
    k.sys_wait().expect("wait 1");
    k.sys_wait().expect("wait 2");
    (k.cycles.total(), k.stats)
}

/// The pre-SMP seed goldens for the battery at one hart (identical to
/// `smp_differential::GOLDEN_SYSCALLS`).
const GOLDEN_SYSCALLS: [(u64, u64); 5] = [
    (57_943, 22),
    (59_644, 22),
    (61_404, 22),
    (61_404, 22),
    (59_703, 22),
];

#[test]
fn syscall_battery_is_identical_with_fast_paths_off() {
    for harts in [1usize, 2, 4] {
        for (name, cfg) in configs() {
            let cfg = cfg.with_harts(harts);
            let fast = syscall_battery(cfg, true);
            let slow = syscall_battery(cfg, false);
            assert_eq!(
                fast, slow,
                "fast/slow divergence for {name} at {harts} hart(s)"
            );
        }
    }
}

#[test]
fn both_settings_reproduce_the_seed_goldens_at_one_hart() {
    for fast in [true, false] {
        for ((name, cfg), (cycles, sfences)) in configs().iter().zip(GOLDEN_SYSCALLS) {
            let (got_cycles, stats) = syscall_battery(*cfg, fast);
            assert_eq!(
                (got_cycles, stats.sfences),
                (cycles, sfences),
                "{name} (fast={fast}) diverged from the pre-SMP seed golden"
            );
        }
    }
}

/// The fork stress drives `adjust_secure_region` — repeated PMP secure-
/// region rewrites, the hardest case for the epoch-tagged match cache.
#[test]
fn fork_stress_adjustment_path_is_identical() {
    for harts in [1usize, 2, 4] {
        let cfg = KernelConfig::cfi_ptstore()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
            .with_harts(harts);
        let run = |fast: bool| {
            let mut k = Kernel::boot(cfg).expect("boot");
            k.set_fast_paths(fast);
            let result = run_fork_stress(&mut k, 256).expect("stress");
            (result, k.cycles.total(), k.stats)
        };
        assert_eq!(
            run(true),
            run(false),
            "fork-stress divergence at {harts} hart(s)"
        );
    }
}

#[test]
fn macro_workload_drivers_are_identical() {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(16 * MIB);
    let run = |fast: bool| {
        let mut k = Kernel::boot(cfg).expect("boot");
        k.set_fast_paths(fast);
        let nginx = run_nginx(&mut k, &NginxParams::quick(4 << 10));
        let nginx_stats = k.stats;

        let mut k = Kernel::boot(cfg).expect("boot");
        k.set_fast_paths(fast);
        let redis = run_redis_test(
            &mut k,
            &REDIS_TESTS[3],
            &RedisParams {
                requests: 200,
                connections: 10,
            },
        );
        (nginx, nginx_stats, redis, k.stats)
    };
    assert_eq!(run(true), run(false), "macro workload drivers diverged");
}
