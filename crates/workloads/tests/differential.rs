//! Differential property testing: the §V-C claim, generalised. For *any*
//! randomly generated syscall workload, every kernel configuration (baseline,
//! CFI, PT-Rand, virtual isolation, PTStore) must produce byte-identical
//! observable behaviour — the defenses may only change *cycles*, never
//! *semantics*. Token validation must never fire on legitimate work.

use proptest::prelude::*;
use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::{DefenseMode, Kernel, KernelConfig};

/// One step of a random workload. Pid/fd/address operands are indices into
/// the live sets, so any sequence is meaningful.
#[derive(Debug, Clone)]
enum Op {
    Fork,
    ExitCurrent {
        code: i32,
    },
    SwitchTo {
        idx: usize,
    },
    Wait,
    Clone,
    Mmap {
        pages: u64,
    },
    TouchMapped {
        region_idx: usize,
        page: u64,
        write: bool,
    },
    Munmap {
        region_idx: usize,
    },
    Brk {
        pages: u64,
    },
    OpenRead {
        bytes: u64,
    },
    WriteTmp {
        bytes: usize,
    },
    Pipe,
    PipeRoundTrip {
        bytes: usize,
    },
    Signal {
        sig: usize,
    },
    Yield,
    Exec,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Fork),
        2 => (0i32..100).prop_map(|code| Op::ExitCurrent { code }),
        3 => (0usize..8).prop_map(|idx| Op::SwitchTo { idx }),
        2 => Just(Op::Wait),
        1 => Just(Op::Clone),
        3 => (1u64..5).prop_map(|pages| Op::Mmap { pages }),
        4 => ((0usize..4), (0u64..5), any::<bool>())
            .prop_map(|(region_idx, page, write)| Op::TouchMapped { region_idx, page, write }),
        1 => (0usize..4).prop_map(|region_idx| Op::Munmap { region_idx }),
        2 => (1u64..6).prop_map(|pages| Op::Brk { pages }),
        2 => (1u64..32).prop_map(|bytes| Op::OpenRead { bytes }),
        2 => (1usize..64).prop_map(|bytes| Op::WriteTmp { bytes }),
        1 => Just(Op::Pipe),
        2 => (1usize..32).prop_map(|bytes| Op::PipeRoundTrip { bytes }),
        1 => (1usize..31).prop_map(|sig| Op::Signal { sig }),
        2 => Just(Op::Yield),
        1 => Just(Op::Exec),
    ]
}

/// Runs the workload on one kernel, producing a deterministic observation
/// trace.
fn run_workload(defense: DefenseMode, cfi: bool, ops: &[Op]) -> (Vec<String>, u64) {
    let mut cfg = KernelConfig::baseline()
        .with_defense(defense)
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(8 * MIB);
    cfg.cfi = cfi;
    cfg.adjust_chunk = MIB;
    let mut k = Kernel::boot(cfg).expect("boot");
    let mut trace = Vec::new();
    let mut live_pids = vec![1u32];
    let mut regions: Vec<(u64 /*va*/, u64 /*pages*/)> = Vec::new();
    let mut pipes: Vec<(i32, i32)> = Vec::new();

    let obs = |r: Result<String, ptstore_kernel::KernelError>| match r {
        Ok(s) => s,
        Err(e) => format!("ERR {e}"),
    };

    for op in ops {
        let line = match op {
            Op::Fork => obs(k.sys_fork().map(|pid| {
                live_pids.push(pid);
                format!("fork={pid}")
            })),
            Op::ExitCurrent { code } => {
                let cur = k.current_pid();
                if cur == 1 {
                    "skip-exit-init".to_string()
                } else {
                    live_pids.retain(|&p| p != cur);
                    obs(k.sys_exit(*code).map(|()| format!("exit({code})")))
                }
            }
            Op::SwitchTo { idx } => {
                let target = live_pids[idx % live_pids.len()];
                obs(k.do_switch_to(target).map(|()| format!("switch={target}")))
            }
            Op::Wait => obs(k.sys_wait().map(|(pid, code)| format!("wait={pid}/{code}"))),
            Op::Clone => obs(k.sys_clone_thread().map(|tid| {
                live_pids.push(tid);
                format!("clone={tid}")
            })),
            Op::Mmap { pages } => obs(k.sys_mmap(pages * PAGE_SIZE).map(|va| {
                regions.push((va.as_u64(), *pages));
                format!("mmap={va}")
            })),
            Op::TouchMapped {
                region_idx,
                page,
                write,
            } => {
                if regions.is_empty() {
                    "skip-touch".to_string()
                } else {
                    let (va, pages) = regions[region_idx % regions.len()];
                    let target = VirtAddr::new(va + (page % pages) * PAGE_SIZE);
                    obs(k
                        .sys_touch(target, *write)
                        .map(|()| format!("touch={target}")))
                }
            }
            Op::Munmap { region_idx } => {
                if regions.is_empty() {
                    "skip-munmap".to_string()
                } else {
                    let (va, pages) = regions.swap_remove(*region_idx % regions.len());
                    obs(k
                        .sys_munmap(VirtAddr::new(va), pages * PAGE_SIZE)
                        .map(|()| format!("munmap={va:#x}")))
                }
            }
            Op::Brk { pages } => {
                let cur = k
                    .procs
                    .get(k.mm_owner_of(k.current_pid()))
                    .expect("cur")
                    .brk;
                obs(k
                    .sys_brk(cur + pages * PAGE_SIZE)
                    .map(|b| format!("brk={b:#x}")))
            }
            Op::OpenRead { bytes } => obs((|| {
                let fd = k.sys_open("/etc/passwd")?;
                let data = k.sys_read(fd, *bytes)?;
                k.sys_close(fd)?;
                Ok(format!("read={}", data.len()))
            })()),
            Op::WriteTmp { bytes } => obs((|| {
                let fd = k.sys_open("/tmp/XXX")?;
                let n = k.sys_write(fd, &vec![0xA5u8; *bytes])?;
                k.sys_close(fd)?;
                Ok(format!("wrote={n}"))
            })()),
            Op::Pipe => obs(k.sys_pipe().map(|(r, w)| {
                pipes.push((r, w));
                format!("pipe={r}/{w}")
            })),
            Op::PipeRoundTrip { bytes } => {
                if pipes.is_empty() {
                    "skip-pipe".to_string()
                } else {
                    let (r, w) = pipes[0];
                    obs((|| {
                        let sent = k.sys_write(w, &vec![1u8; *bytes])?;
                        let got = k.sys_read(r, sent)?;
                        Ok(format!("pipe-rt={}", got.len()))
                    })())
                }
            }
            Op::Signal { sig } => obs((|| {
                k.sys_signal_install(*sig)?;
                k.sys_signal_catch(*sig)?;
                Ok(format!("sig={sig}"))
            })()),
            Op::Yield => obs(k.sys_yield().map(|()| "yield".to_string())),
            Op::Exec => {
                // Exec clears the mapped regions of the current mm.
                let mm = k.mm_owner_of(k.current_pid());
                if mm == k.current_pid() {
                    regions.clear();
                    obs(k.sys_exec().map(|()| "exec".to_string()))
                } else {
                    "skip-exec-thread".to_string()
                }
            }
        };
        trace.push(line);
    }
    (trace, k.stats.token_failures)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship differential property: all five configurations observe
    /// exactly the same behaviour on any random workload, and PTStore's
    /// defenses never fire on legitimate work.
    #[test]
    fn all_defenses_are_semantically_transparent(
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let (reference, _) = run_workload(DefenseMode::None, false, &ops);
        for (defense, cfi) in [
            (DefenseMode::None, true),
            (DefenseMode::PtRand, true),
            (DefenseMode::VirtualIsolation, true),
            (DefenseMode::PtStore, true),
        ] {
            let (trace, token_failures) = run_workload(defense, cfi, &ops);
            prop_assert_eq!(
                &trace, &reference,
                "defense {} diverged from baseline", defense
            );
            prop_assert_eq!(token_failures, 0, "{}: token check fired on legitimate work", defense);
        }
    }
}
