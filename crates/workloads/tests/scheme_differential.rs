//! Scheme-differential anchors: the generic paging API (Sv39/Sv48/Sv57
//! behind `PagingMetaData`/`GenericPte`) must change *walk depth only*,
//! never behavior the mechanism promises about.
//!
//! Three claims, each asserted here:
//!
//! 1. **Security verdicts are scheme-independent.** The full attack ×
//!    defense battery renders byte-identical verdict text under every
//!    scheme, at 1, 2, and 4 harts — PTStore's checks fire on physical
//!    addresses and credentials, not on how many levels the walk has.
//! 2. **Sv39 cycle totals are the seed goldens.** Making the walker
//!    generic must not move a single cycle on the default scheme.
//! 3. **Workloads see identical behavior, deeper schemes only pay walk
//!    cycles.** The syscall battery performs the same work (same syscall
//!    and sfence counts) under every scheme; Sv48/Sv57 cost strictly more
//!    cycles than Sv39 (one/two extra levels per hardware walk).

use ptstore_attacks::security_matrix_with;
use ptstore_core::{PagingScheme, VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{Kernel, KernelConfig, KernelStats};
use ptstore_workloads::run_huge_page;

// ---------------------------------------------------------------------
// 1. Attack battery: byte-identical verdicts across schemes and harts
// ---------------------------------------------------------------------

/// The whole matrix rendered as one verdict string (the same lines
/// `reproduce security` prints).
fn matrix_text(harts: usize, scheme: PagingScheme) -> String {
    security_matrix_with(harts, scheme)
        .iter()
        .map(|r| {
            let tokens = if r.tokens { "" } else { " [tokens off]" };
            format!("{r}{tokens}\n")
        })
        .collect()
}

#[test]
fn security_verdicts_are_byte_identical_across_schemes() {
    for harts in [1usize, 2, 4] {
        let sv39 = matrix_text(harts, PagingScheme::Sv39);
        for scheme in [PagingScheme::Sv48, PagingScheme::Sv57] {
            assert_eq!(
                sv39,
                matrix_text(harts, scheme),
                "verdicts diverged between sv39 and {} at {harts} hart(s)",
                scheme.name()
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2 + 3. Syscall battery: Sv39 goldens hold; other schemes do the same
// work for strictly more walk cycles
// ---------------------------------------------------------------------

/// The five configurations of `fastpath_differential.rs`, same geometry.
fn configs() -> [(&'static str, KernelConfig); 5] {
    let geom = |c: KernelConfig| {
        c.with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
    };
    [
        ("baseline", geom(KernelConfig::baseline())),
        ("cfi", geom(KernelConfig::cfi())),
        ("cfi_ptstore", geom(KernelConfig::cfi_ptstore())),
        (
            "cfi_ptstore_no_adjust",
            geom(KernelConfig::cfi_ptstore_no_adjust()),
        ),
        ("ptstore_only", geom(KernelConfig::ptstore_only())),
    ]
}

/// The fixed syscall mix of `fastpath_differential.rs`, parameterised by
/// paging scheme.
fn syscall_battery(cfg: KernelConfig, scheme: PagingScheme) -> (u64, KernelStats) {
    let mut k = Kernel::boot(cfg.with_scheme(scheme)).expect("boot");
    let brk0 = k.procs.get(1).expect("init").brk;
    k.sys_brk(brk0 + 2 * PAGE_SIZE).expect("brk");
    k.sys_touch(VirtAddr::new(brk0), true).expect("touch brk");
    k.sys_touch(VirtAddr::new(brk0 + PAGE_SIZE), true)
        .expect("touch brk2");
    let c1 = k.sys_fork().expect("fork c1");
    let c2 = k.sys_fork().expect("fork c2");
    k.do_switch_to(c1).expect("switch c1");
    k.sys_touch(VirtAddr::new(brk0), true).expect("cow 1");
    k.sys_touch(VirtAddr::new(brk0 + PAGE_SIZE), true)
        .expect("cow 2");
    let va = k.sys_mmap(4 * PAGE_SIZE).expect("mmap");
    for i in 0..4 {
        k.sys_touch(VirtAddr::new(va.as_u64() + i * PAGE_SIZE), true)
            .expect("touch map");
    }
    k.sys_mprotect(va, 2 * PAGE_SIZE, VmPerms::RO)
        .expect("mprotect");
    k.sys_touch(va, false).expect("ro read");
    k.sys_munmap(va, 4 * PAGE_SIZE).expect("munmap");
    let fd = k.sys_open("/tmp/XXX").expect("open");
    k.sys_write(fd, &[0xA5; 48]).expect("write");
    k.sys_close(fd).expect("close");
    let (r, w) = k.sys_pipe().expect("pipe");
    k.sys_write(w, &[1; 16]).expect("pipe write");
    k.sys_read(r, 16).expect("pipe read");
    k.sys_signal_install(7).expect("signal install");
    k.sys_signal_catch(7).expect("signal catch");
    k.sys_exec().expect("exec");
    k.sys_exit(0).expect("exit c1");
    assert_eq!(k.current_pid(), c2, "scheduler picked c2 after c1 exited");
    k.sys_yield().expect("yield");
    k.do_switch_to(c2).expect("switch c2");
    k.sys_exit(0).expect("exit c2");
    k.sys_wait().expect("wait 1");
    k.sys_wait().expect("wait 2");
    (k.cycles.total(), k.stats)
}

/// The pre-SMP seed goldens (identical to `fastpath_differential.rs` and
/// `smp_differential.rs`): making the walker scheme-generic must not move
/// one Sv39 cycle.
const GOLDEN_SYSCALLS: [(u64, u64); 5] = [
    (57_943, 22),
    (59_644, 22),
    (61_404, 22),
    (61_404, 22),
    (59_703, 22),
];

#[test]
fn sv39_battery_still_reproduces_the_seed_goldens() {
    for ((name, cfg), (cycles, sfences)) in configs().iter().zip(GOLDEN_SYSCALLS) {
        let (got_cycles, stats) = syscall_battery(*cfg, PagingScheme::Sv39);
        assert_eq!(
            (got_cycles, stats.sfences),
            (cycles, sfences),
            "{name} diverged from the pre-generic-paging seed golden"
        );
    }
}

#[test]
fn battery_does_identical_work_under_every_scheme() {
    for harts in [1usize, 2, 4] {
        for (name, cfg) in configs() {
            let cfg = cfg.with_harts(harts);
            let (sv39_cycles, sv39_stats) = syscall_battery(cfg, PagingScheme::Sv39);
            let mut prev = sv39_cycles;
            for scheme in [PagingScheme::Sv48, PagingScheme::Sv57] {
                let (cycles, stats) = syscall_battery(cfg, scheme);
                // Same work: every kernel statistic matches — syscalls,
                // sfences, faults, CoW breaks, token checks. Only cycle
                // totals and page-table page counts may move (deeper
                // schemes allocate extra intermediate tables, and each of
                // those pages is zero-checked on allocation).
                let depth_free = |mut s: KernelStats| {
                    s.pt_pages_live = 0;
                    s.pt_pages_peak = 0;
                    s.zero_checks = 0;
                    s
                };
                assert_eq!(
                    depth_free(stats),
                    depth_free(sv39_stats),
                    "{name}: kernel stats diverged under {} at {harts} hart(s)",
                    scheme.name()
                );
                assert!(
                    stats.pt_pages_peak > sv39_stats.pt_pages_peak,
                    "{name}: {} should need more tables than sv39",
                    scheme.name()
                );
                assert!(
                    cycles > prev,
                    "{name}: {} must pay for its extra walk level at {harts} hart(s) \
                     ({cycles} vs {prev})",
                    scheme.name()
                );
                prev = cycles;
            }
        }
    }
}

#[test]
fn battery_is_deterministic_under_every_scheme() {
    for scheme in PagingScheme::ALL {
        let cfg = configs()[2].1; // cfi_ptstore
        assert_eq!(
            syscall_battery(cfg, scheme),
            syscall_battery(cfg, scheme),
            "{} battery not run-to-run deterministic",
            scheme.name()
        );
    }
}

// ---------------------------------------------------------------------
// Huge-page lifecycle across schemes and harts
// ---------------------------------------------------------------------

#[test]
fn huge_page_lifecycle_is_scheme_and_hart_invariant_in_work() {
    for harts in [1usize, 2, 4] {
        for scheme in PagingScheme::ALL {
            let cfg = KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB)
                .with_harts(harts)
                .with_scheme(scheme);
            let run = || {
                let mut k = Kernel::boot(cfg).expect("boot");
                let r = run_huge_page(&mut k, 2).expect("lifecycle");
                (r, k.stats)
            };
            let (first, stats) = run();
            assert_eq!(
                first.touched_pages,
                12,
                "{} at {harts} hart(s): lifecycle work changed",
                scheme.name()
            );
            assert_eq!(
                (first, stats),
                run(),
                "{} at {harts} hart(s): lifecycle not deterministic",
                scheme.name()
            );
        }
    }
}
