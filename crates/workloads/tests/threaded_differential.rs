//! Threaded-execution differential: carrying hart serve loops on real OS
//! threads must not move a single modeled number.
//!
//! The logical-time turnstile (`ptstore_kernel::exec::run_turns`) promises
//! that a hart-distributed run is byte-identical at any host thread count.
//! This suite pins that promise the strong way: for every workload, at
//! harts ∈ {1, 2, 4}, the full `SmpRunReport`, the kernel's complete
//! `KernelStats`, and every hart's cycle total from a threaded run
//! (2 and 4 host threads) must equal the single-threaded run exactly —
//! `assert_eq!`, not a tolerance. `check.sh` gates the same property at
//! process level with a `cmp` of `reproduce` output.

use ptstore_core::MIB;
use ptstore_kernel::{Kernel, KernelConfig, KernelStats};
use ptstore_workloads::nginx::NginxParams;
use ptstore_workloads::redis::{RedisParams, REDIS_TESTS};
use ptstore_workloads::{
    run_fork_stress_smp_threads, run_nginx_smp_threads, run_redis_smp_threads, SmpRunReport,
};

fn boot(harts: usize) -> Kernel {
    Kernel::boot(
        KernelConfig::cfi_ptstore()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
            .with_harts(harts),
    )
    .expect("boot")
}

/// One run's complete observable outcome: the report, every kernel
/// counter, and the per-hart cycle totals.
#[derive(Debug, PartialEq)]
struct Outcome {
    report: SmpRunReport,
    stats: KernelStats,
    hart_cycles: Vec<u64>,
}

fn outcome(k: Kernel, report: SmpRunReport) -> Outcome {
    Outcome {
        report,
        stats: k.stats,
        hart_cycles: k.harts.iter().map(|h| h.cycles.total()).collect(),
    }
}

fn sweep(name: &str, run: impl Fn(&mut Kernel, usize) -> SmpRunReport) {
    for harts in [1usize, 2, 4] {
        let mut k = boot(harts);
        let r = run(&mut k, 1);
        let single = outcome(k, r);
        for threads in [2usize, 4] {
            let mut k = boot(harts);
            let r = run(&mut k, threads);
            let threaded = outcome(k, r);
            assert_eq!(
                threaded, single,
                "{name}: harts={harts} diverged at {threads} host threads"
            );
        }
    }
}

#[test]
fn nginx_is_thread_count_invariant() {
    let p = NginxParams::quick(4 << 10);
    sweep("nginx", |k, threads| run_nginx_smp_threads(k, &p, threads));
}

#[test]
fn redis_is_thread_count_invariant() {
    let p = RedisParams::quick();
    sweep("redis", |k, threads| {
        run_redis_smp_threads(k, &REDIS_TESTS[3], &p, threads)
    });
}

#[test]
fn fork_stress_is_thread_count_invariant() {
    sweep("fork_stress", |k, threads| {
        run_fork_stress_smp_threads(k, 24, threads)
    });
}
