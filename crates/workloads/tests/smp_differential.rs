//! SMP differential anchors: a single-hart kernel must be cycle-identical
//! to the pre-SMP seed. The golden totals below were captured from the
//! single-hart model *before* the `Hart` refactor landed; every
//! configuration must keep reproducing them exactly at `harts = 1`, so the
//! paper's performance anchors (Figures 4-7, §V-D1) stay valid.
//!
//! The model is fully deterministic (seeded RNG, ordered maps), so exact
//! equality — not a tolerance — is the right assertion.

use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_workloads::nginx::{run_nginx, NginxParams};
use ptstore_workloads::redis::{run_redis_test, RedisParams, REDIS_TESTS};
use ptstore_workloads::run_fork_stress;

/// The five configurations the paper evaluates, at the attack-battery
/// geometry (256 MiB RAM, 16 MiB initial secure region).
fn configs() -> [(&'static str, KernelConfig); 5] {
    let geom = |c: KernelConfig| {
        c.with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
    };
    [
        ("baseline", geom(KernelConfig::baseline())),
        ("cfi", geom(KernelConfig::cfi())),
        ("cfi_ptstore", geom(KernelConfig::cfi_ptstore())),
        (
            "cfi_ptstore_no_adjust",
            geom(KernelConfig::cfi_ptstore_no_adjust()),
        ),
        ("ptstore_only", geom(KernelConfig::ptstore_only())),
    ]
}

/// A fixed syscall mix touching every TLB-flush site: fork (ASID fence),
/// COW break, demand paging, mprotect tightening, munmap, plus the
/// file/pipe/signal paths for good measure.
fn syscall_battery(cfg: KernelConfig) -> (u64, u64) {
    let mut k = Kernel::boot(cfg).expect("boot");
    let brk0 = k.procs.get(1).expect("init").brk;
    k.sys_brk(brk0 + 2 * PAGE_SIZE).expect("brk");
    k.sys_touch(VirtAddr::new(brk0), true).expect("touch brk");
    k.sys_touch(VirtAddr::new(brk0 + PAGE_SIZE), true)
        .expect("touch brk2");
    let c1 = k.sys_fork().expect("fork c1");
    let c2 = k.sys_fork().expect("fork c2");
    k.do_switch_to(c1).expect("switch c1");
    // COW break: the child rewrites the inherited heap pages.
    k.sys_touch(VirtAddr::new(brk0), true).expect("cow 1");
    k.sys_touch(VirtAddr::new(brk0 + PAGE_SIZE), true)
        .expect("cow 2");
    // Demand paging + mprotect + munmap.
    let va = k.sys_mmap(4 * PAGE_SIZE).expect("mmap");
    for i in 0..4 {
        k.sys_touch(VirtAddr::new(va.as_u64() + i * PAGE_SIZE), true)
            .expect("touch map");
    }
    k.sys_mprotect(va, 2 * PAGE_SIZE, VmPerms::RO)
        .expect("mprotect");
    k.sys_touch(va, false).expect("ro read");
    k.sys_munmap(va, 4 * PAGE_SIZE).expect("munmap");
    // Files, pipes, signals, yield, exec.
    let fd = k.sys_open("/tmp/XXX").expect("open");
    k.sys_write(fd, &[0xA5; 48]).expect("write");
    k.sys_close(fd).expect("close");
    let (r, w) = k.sys_pipe().expect("pipe");
    k.sys_write(w, &[1; 16]).expect("pipe write");
    k.sys_read(r, 16).expect("pipe read");
    k.sys_signal_install(7).expect("signal install");
    k.sys_signal_catch(7).expect("signal catch");
    k.sys_exec().expect("exec");
    // Exit c1; the scheduler picks c2, which yields back to init.
    k.sys_exit(0).expect("exit c1");
    assert_eq!(k.current_pid(), c2, "scheduler picked c2 after c1 exited");
    k.sys_yield().expect("yield");
    k.do_switch_to(c2).expect("switch c2");
    k.sys_exit(0).expect("exit c2");
    k.sys_wait().expect("wait 1");
    k.sys_wait().expect("wait 2");
    (k.cycles.total(), k.stats.sfences)
}

/// Golden `(cycles, sfences)` per configuration for [`syscall_battery`],
/// captured pre-refactor.
const GOLDEN_SYSCALLS: [(u64, u64); 5] = [
    (57_943, 22),
    (59_644, 22),
    (61_404, 22),
    (61_404, 22),
    (59_703, 22),
];

/// Golden cycle totals for the quick workload drivers (nginx 4 KiB, redis
/// GET, fork-stress 64) under `cfi_ptstore`, captured pre-refactor.
const GOLDEN_WORKLOADS: [u64; 3] = [7_025_863, 652_179, 900_670];

#[test]
fn harts1_syscall_battery_is_cycle_identical_to_seed() {
    let actual: Vec<(String, (u64, u64))> = configs()
        .iter()
        .map(|(name, cfg)| (name.to_string(), syscall_battery(*cfg)))
        .collect();
    let golden: Vec<(String, (u64, u64))> = configs()
        .iter()
        .zip(GOLDEN_SYSCALLS)
        .map(|((name, _), g)| (name.to_string(), g))
        .collect();
    assert_eq!(
        actual, golden,
        "single-hart cycle totals diverged from the pre-SMP seed"
    );
}

#[test]
fn harts1_workload_drivers_are_cycle_identical_to_seed() {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(16 * MIB);

    let mut k = Kernel::boot(cfg).expect("boot");
    let nginx = run_nginx(&mut k, &NginxParams::quick(4 << 10));

    let mut k = Kernel::boot(cfg).expect("boot");
    let get = &REDIS_TESTS[3];
    let redis = run_redis_test(
        &mut k,
        get,
        &RedisParams {
            requests: 200,
            connections: 10,
        },
    );

    let mut k = Kernel::boot(cfg).expect("boot");
    let stress = run_fork_stress(&mut k, 64).expect("stress").cycles;

    assert_eq!(
        [nginx, redis, stress],
        GOLDEN_WORKLOADS,
        "quick workload driver totals diverged from the pre-SMP seed"
    );
}
