//! The Redis 6.2.6 benchmark of Figure 7: the standard `redis-benchmark`
//! test list, 100 000 requests per test, 50 parallel connections.
//!
//! The server is modelled as a single-threaded event loop (as Redis is):
//! each request costs a recv, command execution in user mode (with data
//! sizes per command), and a send. Kernel time dominates for the short
//! commands — exactly why the paper classes Redis as kernel-intensive.

use ptstore_kernel::{CostKind, Kernel};
use serde::{Deserialize, Serialize};

use crate::report::timed;

/// One redis-benchmark test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedisTest {
    /// Test name as `redis-benchmark` prints it.
    pub name: &'static str,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Response payload bytes.
    pub response_bytes: u64,
    /// User-mode cycles to execute the command.
    pub user_cycles: u64,
}

/// The standard test list (paper Figure 7).
pub const REDIS_TESTS: [RedisTest; 14] = [
    RedisTest {
        name: "PING_INLINE",
        request_bytes: 14,
        response_bytes: 7,
        user_cycles: 900,
    },
    RedisTest {
        name: "PING_MBULK",
        request_bytes: 14,
        response_bytes: 7,
        user_cycles: 850,
    },
    RedisTest {
        name: "SET",
        request_bytes: 46,
        response_bytes: 5,
        user_cycles: 1_700,
    },
    RedisTest {
        name: "GET",
        request_bytes: 31,
        response_bytes: 10,
        user_cycles: 1_350,
    },
    RedisTest {
        name: "INCR",
        request_bytes: 28,
        response_bytes: 6,
        user_cycles: 1_400,
    },
    RedisTest {
        name: "LPUSH",
        request_bytes: 42,
        response_bytes: 6,
        user_cycles: 1_900,
    },
    RedisTest {
        name: "RPUSH",
        request_bytes: 42,
        response_bytes: 6,
        user_cycles: 1_850,
    },
    RedisTest {
        name: "LPOP",
        request_bytes: 27,
        response_bytes: 10,
        user_cycles: 1_750,
    },
    RedisTest {
        name: "RPOP",
        request_bytes: 27,
        response_bytes: 10,
        user_cycles: 1_700,
    },
    RedisTest {
        name: "SADD",
        request_bytes: 40,
        response_bytes: 6,
        user_cycles: 1_800,
    },
    RedisTest {
        name: "HSET",
        request_bytes: 52,
        response_bytes: 6,
        user_cycles: 1_950,
    },
    RedisTest {
        name: "SPOP",
        request_bytes: 27,
        response_bytes: 10,
        user_cycles: 1_650,
    },
    RedisTest {
        name: "LRANGE_100",
        request_bytes: 36,
        response_bytes: 1_400,
        user_cycles: 9_500,
    },
    RedisTest {
        name: "MSET (10 keys)",
        request_bytes: 300,
        response_bytes: 5,
        user_cycles: 6_200,
    },
];

/// Benchmark parameters (paper: 100 000 requests, 50 connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedisParams {
    /// Requests per test.
    pub requests: u64,
    /// Parallel connections.
    pub connections: u64,
}

impl RedisParams {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Self {
            requests: 100_000,
            connections: 50,
        }
    }

    /// A scaled-down variant for unit tests.
    pub fn quick() -> Self {
        Self {
            requests: 1_000,
            connections: 50,
        }
    }
}

/// Runs one test to completion, returning total cycles.
///
/// # Panics
/// Panics on kernel errors.
pub fn run_redis_test(k: &mut Kernel, test: &RedisTest, p: &RedisParams) -> u64 {
    timed(k, |k| serve_requests(k, test, p, p.requests))
}

/// One single-threaded Redis instance serving exactly `requests` requests
/// on the current process. The SMP driver shards the keyspace and runs one
/// instance per hart (Redis cluster mode).
pub(crate) fn serve_requests(k: &mut Kernel, test: &RedisTest, p: &RedisParams, requests: u64) {
    {
        // Persistent connections: accept once per connection.
        let socks: Vec<i32> = (0..p.connections)
            .map(|_| k.sys_accept(0).expect("accept"))
            .collect();
        let mut done = 0u64;
        let mut since_rehash = 0u64;
        'outer: loop {
            // One event-loop turn over the connection set.
            k.sys_select(p.connections).expect("select");
            // Allocator/dict churn: redis recycles zmalloc arenas and
            // rehashes dicts, exercising map/fault/unmap — the page-table
            // path PTStore instruments. Bounded (steady-state heap).
            since_rehash += p.connections;
            if since_rehash >= 64 {
                since_rehash = 0;
                let arena = k.sys_mmap(2 * ptstore_core::PAGE_SIZE).expect("arena mmap");
                for i in 0..2 {
                    k.sys_touch(
                        ptstore_core::VirtAddr::new(arena.as_u64() + i * ptstore_core::PAGE_SIZE),
                        true,
                    )
                    .expect("arena touch");
                }
                k.sys_munmap(arena, 2 * ptstore_core::PAGE_SIZE)
                    .expect("arena munmap");
            }
            for &s in &socks {
                if done >= requests {
                    break 'outer;
                }
                // Request arrives on the socket.
                let _ = k.sockets_feed(s, test.request_bytes);
                k.sys_recv(s, test.request_bytes).expect("recv");
                k.charge(CostKind::User, test.user_cycles);
                k.sys_send(s, test.response_bytes).expect("send");
                done += 1;
            }
        }
        for s in socks {
            k.sys_close(s).expect("close");
        }
    }
}

/// Runs the full test list, returning (test name, cycles) rows.
pub fn run_redis_suite(k: &mut Kernel, p: &RedisParams) -> Vec<(&'static str, u64)> {
    REDIS_TESTS
        .iter()
        .map(|t| (t.name, run_redis_test(k, t, p)))
        .collect()
}

/// Feeds `bytes` into an accepted socket's receive queue (the benchmark
/// client side). Lives here as an extension trait-style helper.
trait SocketFeed {
    fn sockets_feed(&mut self, fd: i32, bytes: u64) -> Option<()>;
}

impl SocketFeed for Kernel {
    fn sockets_feed(&mut self, fd: i32, bytes: u64) -> Option<()> {
        use ptstore_kernel::process::FdEntry;
        let id = match self.procs.get(self.current_pid())?.fds.get(fd)? {
            FdEntry::Socket { id } => *id,
            _ => return None,
        };
        self.socket_push_rx(id, bytes);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{measure, standard_configs};
    use ptstore_core::MIB;

    #[test]
    fn suite_runs_and_costs_scale_with_payload() {
        let mut k = ptstore_kernel::Kernel::boot(
            ptstore_kernel::KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot");
        let p = RedisParams {
            requests: 200,
            connections: 10,
        };
        let rows = run_redis_suite(&mut k, &p);
        assert_eq!(rows.len(), REDIS_TESTS.len());
        let ping = rows
            .iter()
            .find(|(n, _)| *n == "PING_INLINE")
            .expect("ping")
            .1;
        let lrange = rows
            .iter()
            .find(|(n, _)| *n == "LRANGE_100")
            .expect("lrange")
            .1;
        assert!(lrange > ping, "bulk replies cost more");
    }

    #[test]
    fn redis_overheads_match_figure7_shape() {
        let configs = standard_configs(256 * MIB, 16 * MIB);
        let test = &REDIS_TESTS[3]; // GET
        let p = RedisParams::quick();
        let series = measure("redis GET", &configs, |k| run_redis_test(k, test, &p));
        let cfi = series.overhead_of("CFI").expect("present");
        let both = series.overhead_of("CFI+PTStore").expect("present");
        assert!(cfi > 1.0, "redis is kernel-bound: CFI {cfi:.2}%");
        let extra = both - cfi;
        assert!(
            (-0.2..1.5).contains(&extra),
            "PTStore extra small: {extra:.3}%"
        );
    }
}
