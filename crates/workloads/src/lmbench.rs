//! The LMBench 3.0-a9 microbenchmarks of Figure 4.
//!
//! Each driver reproduces what the corresponding `lat_*` program does to the
//! kernel, and is run `iterations` times (the paper runs each 1 000 times
//! and reports average relative overheads).

use ptstore_core::{VirtAddr, PAGE_SIZE};

use ptstore_kernel::Kernel;

use crate::report::timed;

/// The microbenchmarks of Figure 4, in display order.
pub const MICROBENCHMARKS: [&str; 17] = [
    "null call",
    "read",
    "write",
    "stat",
    "fstat",
    "open/close",
    "select",
    "sig inst",
    "sig hndl",
    "pipe",
    "fork+exit",
    "fork+exec",
    "mmap",
    "page fault",
    "prot fault",
    "ctx switch 2p",
    "ctx switch 16p",
];

/// Runs one named microbenchmark for `iters` iterations, returning cycles.
///
/// # Panics
/// Panics on unknown names or kernel errors (the benchmarks run on healthy
/// kernels).
pub fn run(name: &str, k: &mut Kernel, iters: u64) -> u64 {
    match name {
        "null call" => lat_null(k, iters),
        "read" => lat_read(k, iters),
        "write" => lat_write(k, iters),
        "stat" => lat_stat(k, iters),
        "fstat" => lat_fstat(k, iters),
        "open/close" => lat_open_close(k, iters),
        "select" => lat_select(k, iters),
        "sig inst" => lat_sig_install(k, iters),
        "sig hndl" => lat_sig_catch(k, iters),
        "pipe" => lat_pipe(k, iters),
        "fork+exit" => lat_fork_exit(k, iters),
        "fork+exec" => lat_fork_exec(k, iters),
        "mmap" => lat_mmap(k, iters),
        "page fault" => lat_pagefault(k, iters),
        "prot fault" => lat_protfault(k, iters),
        "ctx switch 2p" => lat_ctx(k, 2, iters),
        "ctx switch 16p" => lat_ctx(k, 16, iters),
        other => panic!("unknown microbenchmark {other}"),
    }
}

/// `lat_syscall null`: getppid in a loop.
pub fn lat_null(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_null().expect("null");
        }
    })
}

/// `lat_syscall read`: 1-byte reads of /dev/zero (the byte is never
/// looked at — length-only on the host, identical modeled charges).
pub fn lat_read(k: &mut Kernel, iters: u64) -> u64 {
    let fd = k.sys_open("/dev/zero").expect("open");
    let c = timed(k, |k| {
        for _ in 0..iters {
            k.sys_read_discard(fd, 1).expect("read");
        }
    });
    k.sys_close(fd).expect("close");
    c
}

/// `lat_syscall write`: 1-byte writes to /dev/null (console).
pub fn lat_write(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_write_discard(1, 1).expect("write");
        }
    })
}

/// `lat_syscall stat`.
pub fn lat_stat(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_stat("/etc/passwd").expect("stat");
        }
    })
}

/// `lat_syscall fstat`.
pub fn lat_fstat(k: &mut Kernel, iters: u64) -> u64 {
    let fd = k.sys_open("/etc/passwd").expect("open");
    let c = timed(k, |k| {
        for _ in 0..iters {
            k.sys_fstat(fd).expect("fstat");
        }
    });
    k.sys_close(fd).expect("close");
    c
}

/// `lat_syscall open`: open+close /etc/passwd.
pub fn lat_open_close(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            let fd = k.sys_open("/etc/passwd").expect("open");
            k.sys_close(fd).expect("close");
        }
    })
}

/// `lat_select` on 10 fds.
pub fn lat_select(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_select(10).expect("select");
        }
    })
}

/// `lat_sig install`.
pub fn lat_sig_install(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_signal_install(10).expect("install");
        }
    })
}

/// `lat_sig catch`.
pub fn lat_sig_catch(k: &mut Kernel, iters: u64) -> u64 {
    k.sys_signal_install(10).expect("install");
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_signal_catch(10).expect("catch");
        }
    })
}

/// `lat_pipe`: token passed through a pipe (write+read per round trip;
/// the token is opaque, so both sides run length-only on the host).
pub fn lat_pipe(k: &mut Kernel, iters: u64) -> u64 {
    let (r, w) = k.sys_pipe().expect("pipe");
    let c = timed(k, |k| {
        for _ in 0..iters {
            k.sys_write_discard(w, 1).expect("pipe write");
            k.sys_read_discard(r, 1).expect("pipe read");
        }
    });
    k.sys_close(r).expect("close");
    k.sys_close(w).expect("close");
    c
}

/// `lat_proc fork`: fork + child exit + wait.
pub fn lat_fork_exit(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            let child = k.sys_fork().expect("fork");
            k.do_switch_to(child).expect("switch");
            k.sys_exit(0).expect("exit");
            k.sys_wait().expect("wait");
        }
    })
}

/// `lat_proc exec`: fork + exec + exit + wait.
pub fn lat_fork_exec(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            let child = k.sys_fork().expect("fork");
            k.do_switch_to(child).expect("switch");
            k.sys_exec().expect("exec");
            k.sys_exit(0).expect("exit");
            k.sys_wait().expect("wait");
        }
    })
}

/// `lat_mmap`: map, touch one page, unmap.
pub fn lat_mmap(k: &mut Kernel, iters: u64) -> u64 {
    timed(k, |k| {
        for _ in 0..iters {
            let a = k.sys_mmap(4 * PAGE_SIZE).expect("mmap");
            k.sys_touch(a, true).expect("touch");
            k.sys_munmap(a, 4 * PAGE_SIZE).expect("munmap");
        }
    })
}

/// `lat_pagefault`: demand-fault a fresh page per iteration (the mapping is
/// created before and released after the timed section, so only the fault
/// path is measured and repeated runs do not accumulate state).
pub fn lat_pagefault(k: &mut Kernel, iters: u64) -> u64 {
    let region = k.sys_mmap(iters * PAGE_SIZE).expect("mmap");
    let cycles = timed(k, |k| {
        for i in 0..iters {
            let va = VirtAddr::new(region.as_u64() + i * PAGE_SIZE);
            k.sys_touch(va, true).expect("fault");
        }
    });
    k.sys_munmap(region, iters * PAGE_SIZE).expect("munmap");
    cycles
}

/// `lat_sig prot` analogue: protection-fault latency — write a read-only
/// page, take the fault, flip the protection back and forth with mprotect.
pub fn lat_protfault(k: &mut Kernel, iters: u64) -> u64 {
    use ptstore_kernel::process::VmPerms;
    let addr = k.sys_mmap(PAGE_SIZE).expect("mmap");
    k.sys_touch(addr, true).expect("fault in");
    timed(k, |k| {
        for _ in 0..iters {
            k.sys_mprotect(addr, PAGE_SIZE, VmPerms::RO).expect("ro");
            // The faulting write: rejected by the (fresh) page protection.
            let err = k.sys_touch(addr, true);
            assert!(err.is_err(), "write must protection-fault");
            k.sys_mprotect(addr, PAGE_SIZE, VmPerms::RW).expect("rw");
        }
    })
}

/// Context-switch latency between `nprocs` processes (lat_ctx analogue).
/// The ring is created before and torn down after the timed section, as
/// `lat_ctx` itself does.
pub fn lat_ctx(k: &mut Kernel, nprocs: usize, rounds: u64) -> u64 {
    let parent = k.current_pid();
    let mut pids = vec![parent];
    for _ in 1..nprocs {
        pids.push(k.sys_fork().expect("fork"));
    }
    let cycles = timed(k, |k| {
        for r in 0..rounds {
            let next = pids[(r as usize) % pids.len()];
            if next != k.current_pid() {
                k.do_switch_to(next).expect("switch");
            }
        }
    });
    // Teardown outside the measurement.
    for &child in &pids[1..] {
        k.do_switch_to(child).expect("switch for teardown");
        k.sys_exit(0).expect("exit");
    }
    k.do_switch_to(parent).expect("back to parent");
    for _ in 1..nprocs {
        k.sys_wait().expect("reap");
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{measure, standard_configs};
    use ptstore_core::MIB;
    use ptstore_kernel::{Kernel, KernelConfig};

    fn small() -> Kernel {
        Kernel::boot(
            KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot")
    }

    #[test]
    fn every_microbenchmark_runs() {
        let mut k = small();
        for name in MICROBENCHMARKS {
            let cycles = run(name, &mut k, 5);
            assert!(cycles > 0, "{name} must consume cycles");
        }
    }

    #[test]
    fn fork_benchmarks_do_not_leak_processes() {
        let mut k = small();
        let before = k.procs.len();
        lat_fork_exit(&mut k, 10);
        lat_fork_exec(&mut k, 10);
        assert_eq!(k.procs.len(), before);
    }

    #[test]
    fn cfi_overhead_is_positive_and_moderate() {
        let configs = standard_configs(256 * MIB, 16 * MIB);
        let series = measure("null call", &configs, |k| lat_null(k, 200));
        let cfi = series.overhead_of("CFI").expect("present");
        assert!(cfi > 0.0 && cfi < 20.0, "CFI on null call: {cfi:.2}%");
        // PTStore adds nearly nothing on the null path.
        let both = series.overhead_of("CFI+PTStore").expect("present");
        assert!(
            (both - cfi).abs() < 1.0,
            "PTStore extra on null call should be tiny: {both:.2}% vs {cfi:.2}%"
        );
    }

    #[test]
    fn ptstore_extra_on_fork_is_small() {
        let configs = standard_configs(256 * MIB, 16 * MIB);
        let series = measure("fork+exit", &configs, |k| lat_fork_exit(k, 50));
        let cfi = series.overhead_of("CFI").expect("present");
        let both = series.overhead_of("CFI+PTStore").expect("present");
        assert!(both > 0.0);
        let extra = both - cfi;
        assert!(
            extra > 0.0 && extra < 5.0,
            "PTStore fork extra {extra:.2}% (CFI {cfi:.2}%, both {both:.2}%)"
        );
    }

    #[test]
    fn ctx_switch_runs() {
        let mut k = small();
        let c = lat_ctx(&mut k, 4, 64);
        assert!(c > 0);
        assert!(k.stats.context_switches >= 48);
    }
}

/// `bw_pipe` analogue: stream `total_bytes` through a pipe in 4 KiB chunks,
/// returning cycles (bandwidth = bytes / cycles). The stream is all
/// zeros, so neither side materializes a host buffer.
pub fn bw_pipe(k: &mut Kernel, total_bytes: u64) -> u64 {
    let (r, w) = k.sys_pipe().expect("pipe");
    let c = timed(k, |k| {
        let mut moved = 0u64;
        while moved < total_bytes {
            let n = k.sys_write_discard(w, 4096).expect("write");
            k.sys_read_discard(r, n).expect("read");
            moved += n;
        }
    });
    k.sys_close(r).expect("close");
    k.sys_close(w).expect("close");
    c
}

/// `bw_file_rd` analogue: read a file start to finish in 64 KiB chunks.
pub fn bw_file_rd(k: &mut Kernel, file_bytes: u64) -> u64 {
    k.fs.create("/tmp/bwfile", vec![0x5au8; file_bytes as usize]);
    let fd = k.sys_open("/tmp/bwfile").expect("open");
    let c = timed(k, |k| {
        let mut read = 0u64;
        while read < file_bytes {
            let n = k.sys_read_discard(fd, 64 << 10).expect("read");
            if n == 0 {
                break;
            }
            read += n;
        }
    });
    k.sys_close(fd).expect("close");
    k.fs.unlink("/tmp/bwfile");
    c
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use crate::report::{measure, overhead_pct, standard_configs};
    use ptstore_core::MIB;

    #[test]
    fn bandwidth_scales_with_volume() {
        let mut k = ptstore_kernel::Kernel::boot(
            ptstore_kernel::KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot");
        let small = bw_pipe(&mut k, 64 << 10);
        let big = bw_pipe(&mut k, 512 << 10);
        assert!(big > 4 * small, "8x bytes ≈ 8x cycles: {small} -> {big}");
        let f = bw_file_rd(&mut k, 256 << 10);
        assert!(f > 0);
    }

    #[test]
    fn ptstore_does_not_tax_bandwidth() {
        // Bulk data movement never touches page tables: PTStore-only
        // overhead on bandwidth is ~zero (consistent with Fig. 4's I/O rows).
        let configs = standard_configs(256 * MIB, 16 * MIB);
        let series = measure("bw_pipe", &configs, |k| bw_pipe(k, 256 << 10));
        let cfi = series.overhead_of("CFI").expect("cfi");
        let both = series.overhead_of("CFI+PTStore").expect("both");
        assert!(
            (both - cfi).abs() < 0.2,
            "PTStore on bw: {:.3}%",
            both - cfi
        );
        let _ = overhead_pct(1, 1);
    }
}
