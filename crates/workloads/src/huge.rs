//! Huge-page (2 MiB superpage) lifecycle workload.
//!
//! Exercises the whole secure huge-mapping path end to end: `mmap` of 2 MiB
//! blocks mapped as single level-1 leaves inside the secure page tables,
//! demand-free touches across each span (one TLB span entry covers all 512
//! pages), fork with whole-block CoW sharing, a CoW break that privatises an
//! entire block, an `mprotect` of a sub-range that forces a superpage split
//! back to 4 KiB PTEs, and teardown. Every step goes through the same
//! `sd.pt` channel and token checks as 4 KiB mappings — the point of the
//! generic paging API is that the defense does not care about the leaf level.

use ptstore_core::{AccessKind, VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{Kernel, KernelError};
use serde::{Deserialize, Serialize};

/// Result of one huge-page lifecycle run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HugePageResult {
    /// 2 MiB blocks mapped.
    pub blocks: u64,
    /// Total cycles for the whole lifecycle.
    pub cycles: u64,
    /// Pages touched through the huge mappings.
    pub touched_pages: u64,
    /// sfence.vma operations issued (span flushes + split/CoW flushes).
    pub sfences: u64,
}

/// Maps `blocks` 2 MiB huge blocks, touches them, forks (CoW over whole
/// blocks), breaks CoW on one block from the child, splits another via a
/// partial `mprotect`, then unmaps everything.
///
/// # Errors
/// Propagates kernel errors (e.g. OOM when no order-9 block is free).
pub fn run_huge_page(k: &mut Kernel, blocks: u64) -> Result<HugePageResult, KernelError> {
    assert!(
        blocks >= 2,
        "the lifecycle needs one block to CoW-break and one to split"
    );
    let cycles_before = k.cycles.total();
    let sfences_before = k.stats.sfences;

    // Map and touch: a stride across each block shows one leaf serving many
    // pages (the TLB refills once per span, not once per page).
    let base = k.sys_mmap_huge(blocks * 2 * MIB)?;
    let mut touched = 0u64;
    for b in 0..blocks {
        for page in [0u64, 1, 127, 255, 511] {
            let va = VirtAddr::new(base.as_u64() + b * 2 * MIB + page * PAGE_SIZE);
            k.touch_user(va, AccessKind::Write)?;
            touched += 1;
        }
    }

    // Fork: the child shares every block CoW (one shadow entry per block,
    // no per-page rmap until a split). The child's first write privatises
    // all 2 MiB of block 0 in one break.
    let child = k.sys_fork()?;
    k.do_switch_to(child)?;
    let cow_va = VirtAddr::new(base.as_u64() + 7 * PAGE_SIZE);
    k.touch_user(cow_va, AccessKind::Write)?;
    touched += 1;
    k.sys_exit(0)?;
    k.sys_wait()?;

    // Partial mprotect of block 1: 64 pages of a 512-page span go read-only,
    // so the kernel must split the superpage back into 4 KiB PTEs first.
    let sub = VirtAddr::new(base.as_u64() + 2 * MIB + 16 * PAGE_SIZE);
    k.sys_mprotect(sub, 64 * PAGE_SIZE, VmPerms::RO)?;
    let ro_probe = VirtAddr::new(sub.as_u64());
    assert!(
        k.touch_user(ro_probe, AccessKind::Write).is_err(),
        "split range must be read-only"
    );
    k.touch_user(ro_probe, AccessKind::Read)?;
    touched += 1;

    // Teardown: whole-block unmaps where spans survived, page unmaps where
    // the split left 4 KiB mappings.
    k.sys_munmap(base, blocks * 2 * MIB)?;

    Ok(HugePageResult {
        blocks,
        cycles: k.cycles.since(cycles_before),
        touched_pages: touched,
        sfences: k.stats.sfences - sfences_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::PagingScheme;
    use ptstore_kernel::KernelConfig;

    fn boot(cfg: KernelConfig) -> Kernel {
        Kernel::boot(
            cfg.with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot")
    }

    #[test]
    fn lifecycle_runs_under_every_defense() {
        for cfg in [
            KernelConfig::baseline(),
            KernelConfig::cfi(),
            KernelConfig::cfi_ptstore(),
            KernelConfig::cfi_ptstore_no_adjust(),
        ] {
            let mut k = boot(cfg);
            let r = run_huge_page(&mut k, 2).expect("lifecycle");
            assert_eq!(r.blocks, 2);
            assert!(r.cycles > 0);
            assert_eq!(r.touched_pages, 12);
        }
    }

    #[test]
    fn lifecycle_is_leak_free() {
        let mut k = boot(KernelConfig::cfi_ptstore());
        let free_before = k.normal_free_pages();
        run_huge_page(&mut k, 2).expect("lifecycle");
        k.reclaim_slabs().expect("reclaim");
        let ceded = k
            .secure_region()
            .map(|r| r.size().saturating_sub(16 * MIB) / PAGE_SIZE)
            .unwrap_or(0);
        assert_eq!(k.normal_free_pages() + ceded, free_before);
    }

    #[test]
    fn lifecycle_is_scheme_invariant_in_shape() {
        // The same lifecycle completes under every paging scheme; cycle
        // counts may differ (deeper walks), the work must not.
        for scheme in PagingScheme::ALL {
            let mut k = boot(KernelConfig::cfi_ptstore().with_scheme(scheme));
            let r = run_huge_page(&mut k, 2).expect("lifecycle");
            assert_eq!(r.touched_pages, 12, "{scheme:?}");
        }
    }
}
