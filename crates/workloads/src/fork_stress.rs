//! The §V-D1 fork stress: create many processes *simultaneously* (the paper
//! uses 30 000 — "larger will make the original kernel unstable") so the
//! default 64 MiB secure region must be adjusted repeatedly, then tear all
//! of them down.

use ptstore_kernel::{Kernel, KernelConfig, KernelError, Snapshot};
use serde::{Deserialize, Serialize};

/// Result of one fork-stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForkStressResult {
    /// Processes actually created.
    pub created: u64,
    /// Total cycles for create + teardown.
    pub cycles: u64,
    /// Secure-region adjustments performed.
    pub adjustments: u64,
    /// Pages migrated during adjustments.
    pub migrated_pages: u64,
    /// Final secure-region size in bytes (PTStore mode).
    pub final_region_size: Option<u64>,
    /// Peak live page-table pages.
    pub pt_pages_peak: u64,
}

/// Creates `count` processes at the same time, then exits and reaps them.
///
/// # Errors
/// Propagates kernel errors (e.g. OOM when adjustment is impossible).
pub fn run_fork_stress(k: &mut Kernel, count: u64) -> Result<ForkStressResult, KernelError> {
    let cycles_before = k.cycles.total();
    let stats_before = k.stats;
    let mut children = Vec::with_capacity(count as usize);
    for _ in 0..count {
        children.push(k.sys_fork()?);
    }
    // Teardown: each child runs, exits; parent reaps.
    for &child in &children {
        k.do_switch_to(child)?;
        k.sys_exit(0)?;
    }
    for _ in 0..children.len() {
        k.sys_wait()?;
    }
    let d = k.stats.delta(&stats_before);
    Ok(ForkStressResult {
        created: count,
        cycles: k.cycles.since(cycles_before),
        adjustments: d.adjustments,
        migrated_pages: d.migrated_pages,
        final_region_size: k.secure_region().map(|r| r.size()),
        pt_pages_peak: k.stats.pt_pages_peak,
    })
}

/// The four §V-D1 configurations at a chosen scale: baseline, CFI,
/// CFI+PTStore (64 MiB-equivalent region), CFI+PTStore-Adj (large region,
/// adjustment never fires). `mem_size`/`small_region`/`large_region` are
/// scaled down for tests and up for the paper-scale run.
pub fn stress_configs(mem_size: u64, small_region: u64, large_region: u64) -> [KernelConfig; 4] {
    [
        KernelConfig::baseline().with_mem_size(mem_size),
        KernelConfig::cfi().with_mem_size(mem_size),
        KernelConfig::cfi_ptstore()
            .with_mem_size(mem_size)
            .with_initial_secure_size(small_region),
        KernelConfig::cfi_ptstore_no_adjust()
            .with_mem_size(mem_size)
            .with_initial_secure_size(large_region),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::overhead_pct;
    use ptstore_core::MIB;

    /// A scaled-down §V-D1: 600 processes, 2 MiB initial region vs 64 MiB.
    #[test]
    fn stress_shape_matches_paper() {
        let configs = stress_configs(512 * MIB, 2 * MIB, 64 * MIB);
        let mut results = Vec::new();
        for cfg in configs {
            let mut k = Kernel::boot(cfg).expect("boot");
            let r = run_fork_stress(&mut k, 600).expect("stress");
            results.push((cfg.label(), r));
        }
        let base = results[0].1.cycles;
        let cfi = overhead_pct(results[1].1.cycles, base);
        let ptstore = overhead_pct(results[2].1.cycles, base);
        let ptstore_adj = overhead_pct(results[3].1.cycles, base);

        // Adjustment fired only in the small-region configuration.
        assert_eq!(results[0].1.adjustments, 0);
        assert_eq!(results[1].1.adjustments, 0);
        assert!(results[2].1.adjustments > 0, "64MiB-equivalent must adjust");
        assert_eq!(results[3].1.adjustments, 0, "-Adj never adjusts");

        // Ordering of the paper's 2.84% / 6.83% / 3.77%:
        assert!(cfi > 0.0, "CFI {cfi:.2}%");
        assert!(
            ptstore > ptstore_adj,
            "adjusting config costs more: {ptstore:.2}% vs {ptstore_adj:.2}%"
        );
        assert!(
            ptstore_adj > cfi,
            "PTStore adds over CFI: {ptstore_adj:.2}% vs {cfi:.2}%"
        );
        // Region grew and stayed grown.
        let grown = results[2].1.final_region_size.expect("region");
        assert!(grown > 2 * MIB);
    }

    #[test]
    fn stress_is_leak_free() {
        let mut k = Kernel::boot(
            KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(4 * MIB),
        )
        .expect("boot");
        let free_before = k.normal_free_pages();
        run_fork_stress(&mut k, 100).expect("stress");
        assert_eq!(k.procs.len(), 1, "only init remains");
        // Slab caches retain empty backing pages; release them before
        // accounting.
        k.reclaim_slabs().expect("reclaim");
        // Normal zone may have permanently ceded pages to the secure region;
        // account for that.
        let ceded =
            k.secure_region().unwrap().size().saturating_sub(4 * MIB) / ptstore_core::PAGE_SIZE;
        assert_eq!(k.normal_free_pages() + ceded, free_before);
    }
}
