//! # ptstore-workloads
//!
//! Workload generators reproducing the paper's performance evaluation
//! (§V-D) against the kernel model:
//!
//! * [`lmbench`] — the LMBench 3.0-a9 microbenchmark suite of Figure 4
//!   (syscall/signal/process/VM latencies), 1 000 iterations each;
//! * [`fork_stress`] — the 30 000-process stress of §V-D1 that exercises the
//!   dynamic secure-region adjustment;
//! * [`spec`] — SPEC CINT2006-shaped workloads (Figure 5): compute-bound
//!   programs with per-benchmark kernel-interaction profiles;
//! * [`nginx`] — the NGINX 1.20.1 static-file benchmark of Figure 6
//!   (10 000 requests, 100 concurrent);
//! * [`redis`] — the Redis 6.2.6 `redis-benchmark` command mix of Figure 7
//!   (100 000 requests per test, 50 connections);
//! * [`regression`] — an LTP-style functional suite whose outputs are diffed
//!   between kernel configurations (§V-C);
//! * [`smp`] — hart-distributed variants of the macrobenchmarks: one
//!   worker per hart, per-hart utilization, and shootdown accounting;
//! * [`c1m`] — the C1M multi-tenant macro workload: tenant fleets
//!   fork/serve/exit across the harts, a million connections at paper
//!   scale, driving the batched-shootdown and magazine fast paths;
//! * [`report`] — measurement plumbing: run a workload across kernel
//!   configurations and compute relative overheads.
//!
//! ```
//! use ptstore_core::MIB;
//! use ptstore_workloads::{lmbench, measure};
//! use ptstore_workloads::report::standard_configs;
//!
//! let configs = standard_configs(256 * MIB, 16 * MIB);
//! let series = measure("null call", &configs, |k| lmbench::lat_null(k, 50));
//! assert_eq!(series.entries[0].overhead_pct, 0.0); // baseline
//! assert!(series.overhead_of("CFI").unwrap() > 0.0);
//! ```

pub mod c1m;
pub mod fork_stress;
pub mod huge;
pub mod lmbench;
pub mod nginx;
pub mod redis;
pub mod regression;
pub mod report;
pub mod smp;
pub mod spec;

pub use c1m::{run_c1m, run_c1m_threads, C1mParams, C1mResult};
pub use fork_stress::{run_fork_stress, ForkStressResult};
pub use huge::{run_huge_page, HugePageResult};
pub use report::{measure, overhead_pct, Measurement, OverheadSeries};
pub use smp::{
    run_fork_stress_smp, run_fork_stress_smp_threads, run_nginx_smp, run_nginx_smp_threads,
    run_redis_smp, run_redis_smp_threads, HartShare, SmpRunReport,
};
