//! Measurement plumbing: run one workload across kernel configurations and
//! report relative overheads, as the paper's figures do.

use core::fmt;

use ptstore_kernel::{Kernel, KernelConfig};
use serde::{Deserialize, Serialize};

/// One (configuration, cycles) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Configuration label (`baseline`, `CFI`, `CFI+PTStore`, ...).
    pub label: String,
    /// Cycles the workload took under that configuration.
    pub cycles: u64,
    /// Relative overhead versus the series baseline, percent.
    pub overhead_pct: f64,
}

/// A benchmark's measurements across configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadSeries {
    /// Benchmark name (e.g. `lat_syscall null`).
    pub benchmark: String,
    /// Per-configuration results; the first entry is the baseline.
    pub entries: Vec<Measurement>,
}

impl OverheadSeries {
    /// The overhead of the labelled configuration, if present.
    pub fn overhead_of(&self, label: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|m| m.label == label)
            .map(|m| m.overhead_pct)
    }
}

impl fmt::Display for OverheadSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<24}", self.benchmark)?;
        for m in &self.entries {
            write!(f, " | {}: {:>7.2}%", m.label, m.overhead_pct)?;
        }
        Ok(())
    }
}

/// Relative overhead of `cycles` versus `baseline`, percent.
pub fn overhead_pct(cycles: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (cycles as f64 - baseline as f64) / baseline as f64 * 100.0
}

/// Boots a kernel per configuration, runs `workload` on each, and assembles
/// the overhead series (first configuration is the baseline).
///
/// # Panics
/// Panics when a kernel fails to boot or `configs` is empty.
pub fn measure(
    benchmark: &str,
    configs: &[KernelConfig],
    mut workload: impl FnMut(&mut Kernel) -> u64,
) -> OverheadSeries {
    assert!(!configs.is_empty(), "need at least a baseline config");
    let mut entries = Vec::with_capacity(configs.len());
    let mut baseline = 0u64;
    for (i, cfg) in configs.iter().enumerate() {
        let mut k = Kernel::boot(*cfg).expect("kernel boots");
        let cycles = workload(&mut k);
        if i == 0 {
            baseline = cycles;
        }
        entries.push(Measurement {
            label: cfg.label(),
            cycles,
            overhead_pct: overhead_pct(cycles, baseline),
        });
    }
    OverheadSeries {
        benchmark: benchmark.to_string(),
        entries,
    }
}

/// The three-way comparison used throughout §V-D: no-CFI baseline, CFI, and
/// CFI+PTStore, at the given machine size.
pub fn standard_configs(mem_size: u64, secure_size: u64) -> [KernelConfig; 3] {
    [
        KernelConfig::baseline()
            .with_mem_size(mem_size)
            .with_initial_secure_size(secure_size),
        KernelConfig::cfi()
            .with_mem_size(mem_size)
            .with_initial_secure_size(secure_size),
        KernelConfig::cfi_ptstore()
            .with_mem_size(mem_size)
            .with_initial_secure_size(secure_size),
    ]
}

/// Runs a workload and returns the cycles it consumed (delta around the
/// closure).
pub fn timed(k: &mut Kernel, f: impl FnOnce(&mut Kernel)) -> u64 {
    let before = k.cycles.total();
    f(k);
    k.cycles.since(before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::MIB;

    #[test]
    fn overhead_math() {
        assert_eq!(overhead_pct(110, 100), 10.0);
        assert_eq!(overhead_pct(95, 100), -5.0);
        assert_eq!(overhead_pct(5, 0), 0.0);
    }

    #[test]
    fn measure_produces_labelled_series() {
        let configs = standard_configs(256 * MIB, 16 * MIB);
        let series = measure("nulls", &configs, |k| {
            timed(k, |k| {
                for _ in 0..100 {
                    k.sys_null().expect("null");
                }
            })
        });
        assert_eq!(series.entries.len(), 3);
        assert_eq!(series.entries[0].label, "baseline");
        assert_eq!(series.entries[0].overhead_pct, 0.0);
        assert_eq!(series.entries[1].label, "CFI");
        assert!(series.entries[1].overhead_pct > 0.0, "CFI costs something");
        assert_eq!(series.entries[2].label, "CFI+PTStore");
        assert!(series.overhead_of("CFI").is_some());
        assert!(series.overhead_of("nope").is_none());
        let s = series.to_string();
        assert!(s.contains("CFI+PTStore"));
    }
}
