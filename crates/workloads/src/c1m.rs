//! The C1M multi-tenant macro workload: a server fleet churning through
//! on the order of a million connections while tenants come and go.
//!
//! Each hart hosts a slice of the tenant population. A tenant's lifetime
//! is one churn round: the hart's long-lived supervisor worker forks the
//! tenant, the tenant builds a heap, serves an epoll-style request loop
//! (select / accept / recv / open / fstat / sendfile / close) with
//! connection-pool paging churn and periodic `mprotect` hardening of its
//! session arena, then exits and is reaped — and the next round forks a
//! fresh tenant into the same slot. The aggregate is the page-table
//! stress the paper's §V-D cares about at datacenter shape: tens of
//! thousands of short-lived address spaces, fork/exit storms, demand
//! paging and CoW, secure-region growth, and (on SMP) a torrent of TLB
//! shootdowns — the traffic the deferred-shootdown and allocation-
//! magazine fast paths exist to collapse.
//!
//! Everything reported here is modeled (cycles, counters): the output is
//! byte-identical across reruns at any host thread count, so the harness
//! can diff it. Host wall time is measured outside, by `scripts/bench.sh`.

use ptstore_core::{Fnv1a, VirtAddr, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{exec, CostKind, Kernel, Snapshot};
use serde::{Deserialize, Serialize};

use crate::smp::{self, SmpRunReport};

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct C1mParams {
    /// Concurrent tenant slots across the whole machine.
    pub tenants: u64,
    /// Churn generations: each slot is torn down and re-forked this many
    /// times, so `tenants * churn_rounds` processes live and die.
    pub churn_rounds: u64,
    /// Connections each tenant serves per generation.
    pub requests_per_tenant: u64,
    /// Response body served per connection.
    pub response_bytes: u64,
    /// Tenant heap (session arena) size in pages.
    pub heap_pages: u64,
    /// User cycles per request (parsing, routing, templating).
    pub user_cycles_per_request: u64,
}

impl C1mParams {
    /// The full C1M shape: 10 000 tenant generations serving a million
    /// connections total.
    pub fn paper() -> Self {
        Self {
            tenants: 500,
            churn_rounds: 20,
            requests_per_tenant: 100,
            response_bytes: 4 << 10,
            heap_pages: 16,
            user_cycles_per_request: 5_500,
        }
    }

    /// A scaled-down variant for the quick suite and CI smoke.
    pub fn quick() -> Self {
        Self {
            tenants: 30,
            churn_rounds: 4,
            requests_per_tenant: 15,
            ..Self::paper()
        }
    }

    /// Total connections served over the run.
    pub fn connections(&self) -> u64 {
        self.tenants * self.churn_rounds * self.requests_per_tenant
    }

    /// Total processes forked over the run (excluding per-hart workers).
    pub fn processes(&self) -> u64 {
        self.tenants * self.churn_rounds
    }
}

/// Modeled results of one C1M run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct C1mResult {
    /// The hart-distributed run report (wall cycles = slowest hart).
    pub report: SmpRunReport,
    /// Connections served.
    pub connections: u64,
    /// Tenant processes forked and reaped.
    pub processes: u64,
    /// Secure-region adjustments the tenant churn forced.
    pub adjustments: u64,
    /// Deferred-shootdown drains (0 when the knob is off).
    pub deferred_drains: u64,
    /// Page invalidations those drains coalesced.
    pub deferred_pages_coalesced: u64,
    /// Drains a `Watermark` policy triggered early (0 for other policies).
    pub watermark_drains: u64,
    /// Drains the ASID lifecycle forced (recycled ASIDs, or every
    /// allocation under `AsidRecycle`).
    pub asid_recycle_drains: u64,
    /// High-water mark of any hart's deferred queue depth over the run —
    /// the statistic watermark policies exist to bound.
    pub deferred_queue_peak: u64,
    /// Deterministic digest of every hart's final TLB state (after the
    /// run's last drain). Policies only move *when* drains happen, so this
    /// must be byte-identical across the whole policy sweep.
    pub tlb_digest: u64,
}

impl C1mResult {
    /// Connections per thousand modeled wall cycles.
    pub fn connections_per_kilocycle(&self) -> f64 {
        if self.report.wall_cycles == 0 {
            0.0
        } else {
            self.connections as f64 * 1000.0 / self.report.wall_cycles as f64
        }
    }
}

/// Runs the workload distributed across all harts.
///
/// # Panics
/// Panics on kernel errors (the fleet must run cleanly; OOM means the
/// configuration is too small for the tenant count).
pub fn run_c1m(k: &mut Kernel, p: &C1mParams) -> C1mResult {
    run_c1m_threads(k, p, exec::host_threads())
}

/// [`run_c1m`] with an explicit host thread count (the differential suite
/// sweeps this to prove thread-count invariance).
pub fn run_c1m_threads(k: &mut Kernel, p: &C1mParams, host_threads: usize) -> C1mResult {
    let doc = vec![0x42u8; p.response_bytes as usize];
    k.fs.create("/srv/tenant.bin", doc);
    let stats0 = k.stats;
    let workers = smp::spawn_workers(k).expect("c1m supervisors spawn");
    let worker_pids: Vec<_> = workers.iter().map(|&(pid, _)| pid).collect();
    let shares = smp::partition(p.tenants, k.harts.len());
    let report = smp::run_distributed(k, "c1m", &workers, &shares, host_threads, |k, h, slots| {
        let supervisor = worker_pids[h];
        for _ in 0..p.churn_rounds {
            for _ in 0..slots {
                // The supervisor forks the tenant; the exit path's
                // `pick_next` may land elsewhere (FIFO queue), so hop
                // back to the supervisor before reaping.
                let tenant = k.sys_fork().expect("tenant fork");
                k.do_switch_to(tenant).expect("switch to tenant");
                serve_tenant(k, p);
                k.sys_exit(0).expect("tenant exit");
                if k.current_pid() != supervisor {
                    k.do_switch_to(supervisor).expect("back to supervisor");
                }
                k.sys_wait().expect("reap tenant");
            }
        }
    });
    let d = k.stats.delta(&stats0);
    C1mResult {
        report,
        connections: p.connections(),
        processes: p.processes(),
        adjustments: d.adjustments,
        deferred_drains: d.deferred_drains,
        deferred_pages_coalesced: d.deferred_pages_coalesced,
        watermark_drains: d.watermark_drains,
        asid_recycle_drains: d.asid_recycle_drains,
        deferred_queue_peak: d.deferred_queue_peak,
        tlb_digest: tlb_digest(k),
    }
}

/// FNV-1a over the sorted canonical listing of every hart's TLB entries —
/// a machine-state fingerprint the drain-policy sweep (and `check.sh`'s
/// policy-differential gate) compares across policies: early drains may
/// move IPI rounds around, but the final translation state they leave
/// behind must be identical.
pub fn tlb_digest(k: &Kernel) -> u64 {
    let mut entries = Vec::new();
    for h in &k.harts {
        for e in h.mmu.itlb().entries() {
            entries.push(format!("hart{} itlb {e:?}", h.id));
        }
        for e in h.mmu.dtlb().entries() {
            entries.push(format!("hart{} dtlb {e:?}", h.id));
        }
    }
    entries.sort();
    Fnv1a::hash_lines(&entries)
}

/// One tenant generation: build the session arena, serve the connection
/// loop, periodically harden and churn the paging path.
fn serve_tenant(k: &mut Kernel, p: &C1mParams) {
    const REQUEST_BYTES: u64 = 420; // typical GET + headers
    const BATCH: u64 = 16; // event-loop readiness batch

    // Session arena: demand-faulted heap the request handlers write into.
    let heap_base = k.procs.get(k.current_pid()).expect("tenant").brk;
    k.sys_brk(heap_base + p.heap_pages * PAGE_SIZE)
        .expect("tenant brk");
    for i in 0..p.heap_pages {
        k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
            .expect("tenant heap touch");
    }

    let mut served = 0u64;
    let mut since_pool_churn = 0u64;
    let mut hardened = false;
    while served < p.requests_per_tenant {
        let batch = BATCH.min(p.requests_per_tenant - served);
        k.sys_select(batch).expect("select");
        // Connection-pool churn: request-buffer arenas cycle with the
        // connections, exercising mmap/touch/munmap (and, batched, the
        // deferred shootdown queue).
        since_pool_churn += batch;
        if since_pool_churn >= 32 {
            since_pool_churn = 0;
            let arena = k.sys_mmap(4 * PAGE_SIZE).expect("pool mmap");
            for i in 0..4 {
                k.sys_touch(VirtAddr::new(arena.as_u64() + i * PAGE_SIZE), true)
                    .expect("pool touch");
            }
            k.sys_munmap(arena, 4 * PAGE_SIZE).expect("pool munmap");
            // Config hardening: flip the head of the session arena
            // read-only once warm (and back, so later generations of the
            // loop can rewrite it) — mprotect downgrades are a prime
            // coalescing target.
            let head = VirtAddr::new(heap_base);
            let perms = if hardened { VmPerms::RW } else { VmPerms::RO };
            k.sys_mprotect(head, 2 * PAGE_SIZE, perms)
                .expect("arena mprotect");
            hardened = !hardened;
        }
        for _ in 0..batch {
            let sock = k.sys_accept(REQUEST_BYTES).expect("accept");
            k.sys_recv(sock, REQUEST_BYTES).expect("recv");
            k.charge(CostKind::User, p.user_cycles_per_request);
            let fd = k.sys_open("/srv/tenant.bin").expect("open");
            k.sys_fstat(fd).expect("fstat");
            let mut remaining = p.response_bytes;
            while remaining > 0 {
                let chunk = remaining.min(64 << 10);
                k.sys_read_discard(fd, chunk).expect("read");
                k.sys_send(sock, chunk).expect("send");
                remaining -= chunk;
            }
            k.sys_close(fd).expect("close file");
            k.sys_close(sock).expect("close sock");
        }
        served += batch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::MIB;
    use ptstore_kernel::{DrainPolicy, Kernel, KernelConfig};

    fn boot(harts: usize, batched: bool) -> Kernel {
        boot_policy(harts, batched, DrainPolicy::Boundary)
    }

    fn boot_policy(harts: usize, batched: bool, policy: DrainPolicy) -> Kernel {
        let cfg = KernelConfig::cfi_ptstore()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(8 * MIB)
            .with_harts(harts)
            .with_deferred_shootdowns(batched)
            .with_alloc_magazines(batched)
            .with_drain_policy(policy);
        Kernel::boot(cfg).expect("kernel boots")
    }

    #[test]
    fn quick_run_serves_everything() {
        let p = C1mParams::quick();
        let mut k = boot(2, false);
        let forks0 = k.stats.forks;
        let r = run_c1m(&mut k, &p);
        assert_eq!(r.connections, p.connections());
        // Every tenant generation forked (plus the two per-hart workers).
        assert_eq!(k.stats.forks - forks0, r.processes + 2);
        assert!(r.report.wall_cycles > 0);
        assert!(r.connections_per_kilocycle() > 0.0);
        assert!(k.security_log.is_empty(), "clean run");
    }

    #[test]
    fn batching_cuts_ipis_without_changing_the_work() {
        let p = C1mParams::quick();
        let mut eager = boot(2, false);
        let mut batched = boot(2, true);
        let re = run_c1m(&mut eager, &p);
        let rb = run_c1m(&mut batched, &p);
        // Identical functional story...
        assert_eq!(eager.stats.forks, batched.stats.forks);
        assert_eq!(eager.stats.exits, batched.stats.exits);
        assert_eq!(eager.stats.page_faults, batched.stats.page_faults);
        assert_eq!(re.connections, rb.connections);
        // ...with strictly less shootdown traffic and fewer wall cycles.
        assert!(
            rb.report.shootdown_ipis < re.report.shootdown_ipis,
            "batched {} !< eager {}",
            rb.report.shootdown_ipis,
            re.report.shootdown_ipis
        );
        assert!(rb.deferred_drains > 0);
        assert!(rb.deferred_pages_coalesced > rb.deferred_drains);
        assert!(
            rb.report.wall_cycles < re.report.wall_cycles,
            "batched {} !< eager {}",
            rb.report.wall_cycles,
            re.report.wall_cycles
        );
    }

    #[test]
    fn policy_sweep_is_state_identical_and_watermark_bounds_depth() {
        let p = C1mParams::quick();
        let mut boundary = boot_policy(2, true, DrainPolicy::Boundary);
        let mut watermark = boot_policy(2, true, DrainPolicy::Watermark { depth: 8 });
        let mut recycle = boot_policy(2, true, DrainPolicy::AsidRecycle);
        let rb = run_c1m(&mut boundary, &p);
        let rw = run_c1m(&mut watermark, &p);
        let rr = run_c1m(&mut recycle, &p);
        // Policies move *when* drains happen, never what state they leave:
        // the final TLB fingerprint and the functional story must match.
        assert_eq!(rb.tlb_digest, rw.tlb_digest, "watermark diverged");
        assert_eq!(rb.tlb_digest, rr.tlb_digest, "asid-recycle diverged");
        assert_eq!(rb.connections, rw.connections);
        assert_eq!(boundary.stats.page_faults, watermark.stats.page_faults);
        assert_eq!(boundary.stats.forks, recycle.stats.forks);
        // The watermark strictly bounds the queue-depth high-water mark...
        assert!(
            rw.deferred_queue_peak < rb.deferred_queue_peak,
            "watermark peak {} !< boundary peak {}",
            rw.deferred_queue_peak,
            rb.deferred_queue_peak
        );
        assert_eq!(rw.deferred_queue_peak, 8);
        assert!(rw.watermark_drains > 0);
        assert_eq!(rb.watermark_drains, 0);
        // ...at the price of more drain rounds — the documented trade-off.
        assert!(rw.deferred_drains > rb.deferred_drains);
    }

    #[test]
    fn thread_count_invariant() {
        let p = C1mParams::quick();
        let mut a = boot(2, true);
        let mut b = boot(2, true);
        let ra = run_c1m_threads(&mut a, &p, 1);
        let rb = run_c1m_threads(&mut b, &p, 4);
        assert_eq!(ra, rb, "modeled results depend on host thread count");
        assert_eq!(a.cycles.total(), b.cycles.total());
    }
}
