//! SPEC CINT2006-shaped workloads (Figure 5).
//!
//! The paper runs the integer subset (FPU disabled) with reference inputs;
//! `400.perlbench` is excluded (RISC-V compilation failure). What drives the
//! *relative* overheads in Figure 5 is each benchmark's kernel-interaction
//! profile — syscall rate, paging behaviour, and working-set growth — on top
//! of a dominant user-mode compute time. The profiles below encode published
//! characteristics qualitatively (mcf/omnetpp/xalancbmk page-heavy,
//! libquantum/hmmer almost pure compute) at a scale the simulator executes in
//! milliseconds.

use ptstore_core::{VirtAddr, PAGE_SIZE};
use ptstore_kernel::{CostKind, Kernel};
use serde::{Deserialize, Serialize};

use crate::report::timed;

/// One benchmark's kernel-interaction profile (scaled-down "reference run").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// User-mode compute cycles (the dominant term).
    pub user_cycles: u64,
    /// Total anonymous memory the run touches (pages, drives page faults).
    pub working_set_pages: u64,
    /// read/write/stat-ish syscalls over the run.
    pub syscalls: u64,
    /// brk/mmap growth events.
    pub vm_calls: u64,
}

/// The 11 CINT2006 benchmarks the paper runs (perlbench excluded).
pub const SPEC_CINT2006: [SpecProfile; 11] = [
    SpecProfile {
        name: "401.bzip2",
        user_cycles: 60_000_000,
        working_set_pages: 220,
        syscalls: 260,
        vm_calls: 14,
    },
    SpecProfile {
        name: "403.gcc",
        user_cycles: 48_000_000,
        working_set_pages: 900,
        syscalls: 2_400,
        vm_calls: 160,
    },
    SpecProfile {
        name: "429.mcf",
        user_cycles: 42_000_000,
        working_set_pages: 1_700,
        syscalls: 140,
        vm_calls: 24,
    },
    SpecProfile {
        name: "445.gobmk",
        user_cycles: 55_000_000,
        working_set_pages: 130,
        syscalls: 900,
        vm_calls: 12,
    },
    SpecProfile {
        name: "456.hmmer",
        user_cycles: 62_000_000,
        working_set_pages: 60,
        syscalls: 110,
        vm_calls: 8,
    },
    SpecProfile {
        name: "458.sjeng",
        user_cycles: 58_000_000,
        working_set_pages: 170,
        syscalls: 90,
        vm_calls: 6,
    },
    SpecProfile {
        name: "462.libquantum",
        user_cycles: 64_000_000,
        working_set_pages: 30,
        syscalls: 60,
        vm_calls: 4,
    },
    SpecProfile {
        name: "464.h264ref",
        user_cycles: 57_000_000,
        working_set_pages: 110,
        syscalls: 600,
        vm_calls: 10,
    },
    SpecProfile {
        name: "471.omnetpp",
        user_cycles: 44_000_000,
        working_set_pages: 1_200,
        syscalls: 700,
        vm_calls: 90,
    },
    SpecProfile {
        name: "473.astar",
        user_cycles: 50_000_000,
        working_set_pages: 500,
        syscalls: 120,
        vm_calls: 18,
    },
    SpecProfile {
        name: "483.xalancbmk",
        user_cycles: 46_000_000,
        working_set_pages: 1_000,
        syscalls: 1_800,
        vm_calls: 120,
    },
];

/// Runs one SPEC-shaped benchmark to completion, returning total cycles.
///
/// # Panics
/// Panics on kernel errors — the benchmarks must complete successfully, as
/// they do in the paper ("all the benchmarks complete successfully").
pub fn run_spec(k: &mut Kernel, p: &SpecProfile) -> u64 {
    timed(k, |k| {
        // exec gives the benchmark a clean address space.
        k.sys_exec().expect("exec");
        // The working set: mmap + first-touch page faults spread through the
        // run. Interleave compute with faults/syscalls the way a real run
        // amortises them.
        let region = k
            .sys_mmap(p.working_set_pages * PAGE_SIZE)
            .expect("mmap working set");
        let chunks = 16u64;
        let pages_per_chunk = p.working_set_pages.div_ceil(chunks);
        let sys_per_chunk = p.syscalls / chunks;
        let vm_per_chunk = p.vm_calls.max(1).div_ceil(chunks);
        for c in 0..chunks {
            // User compute slice.
            k.charge(CostKind::User, p.user_cycles / chunks);
            // Fault in this chunk of the working set.
            for i in 0..pages_per_chunk {
                let page = c * pages_per_chunk + i;
                if page >= p.working_set_pages {
                    break;
                }
                k.sys_touch(VirtAddr::new(region.as_u64() + page * PAGE_SIZE), true)
                    .expect("touch");
            }
            // I/O-ish syscalls (input reading, logging) — the log line is
            // never read back, so the write is length-only on the host.
            for _ in 0..sys_per_chunk {
                k.sys_write_discard(1, 4).expect("write");
            }
            for _ in 0..vm_per_chunk {
                let brk = k.procs.get(k.current_pid()).expect("cur").brk;
                k.sys_brk(brk + PAGE_SIZE).expect("brk");
            }
        }
        k.sys_munmap(region, p.working_set_pages * PAGE_SIZE)
            .expect("munmap");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{measure, standard_configs};
    use ptstore_core::MIB;

    #[test]
    fn all_benchmarks_complete() {
        let mut k = ptstore_kernel::Kernel::boot(
            ptstore_kernel::KernelConfig::cfi_ptstore()
                .with_mem_size(512 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot");
        for p in &SPEC_CINT2006 {
            let cycles = run_spec(&mut k, p);
            assert!(cycles > p.user_cycles, "{}: kernel adds time", p.name);
        }
    }

    #[test]
    fn spec_overheads_are_cpu_bound_small() {
        // Figure 5: CFI+PTStore < 0.91 % on CPU-bound benchmarks; PTStore
        // alone < 0.29 %. Check the two extremes of the suite.
        let configs = standard_configs(512 * MIB, 16 * MIB);
        for p in [
            &SPEC_CINT2006[6], /* libquantum */
            &SPEC_CINT2006[2], /* mcf */
        ] {
            let series = measure(p.name, &configs, |k| run_spec(k, p));
            let both = series.overhead_of("CFI+PTStore").expect("present");
            assert!(
                both < 2.0,
                "{} CFI+PTStore overhead {both:.3}% too large for a CPU-bound run",
                p.name
            );
        }
    }
}
