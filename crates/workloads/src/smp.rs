//! SMP workload drivers: distribute the paper's macrobenchmarks across the
//! machine's harts and report per-hart utilization plus shootdown traffic.
//!
//! Hart serve loops are carried on real OS threads through the
//! logical-time turnstile ([`ptstore_kernel::exec::run_turns`]): each
//! hart's turn runs to completion in canonical hart order, so modeled
//! cycles, stats, and trace output are byte-identical at any host thread
//! count. "Parallel" throughput is computed the way a hardware run would
//! observe it: each hart serves its partition of the request stream,
//! per-hart busy cycles come from the hart-private counters, and the
//! wall-clock cycle count of the run is the *maximum* per-hart delta —
//! the harts overlap in time on real silicon. Shootdown IPIs (the cost
//! SMP adds to every mapping change) are charged by the kernel along the
//! way and surface in the report.
//!
//! Workers are referred to by generational [`ProcHandle`]s, never by raw
//! table access: a driver that accidentally reaps its own worker is
//! caught by the handle going stale, not by silently resolving to
//! whatever process reused the slot.

use ptstore_kernel::{exec, Kernel, KernelError, Pid, ProcHandle};
use serde::{Deserialize, Serialize};

use crate::nginx::{self, NginxParams};
use crate::redis::{self, RedisParams, RedisTest};

/// One hart's share of an SMP run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HartShare {
    /// Hart id.
    pub hart: usize,
    /// Operations (requests, forks, ...) this hart performed.
    pub ops: u64,
    /// Busy cycles on this hart during the run.
    pub cycles: u64,
    /// `cycles` as a fraction of the run's wall cycles (1.0 = never idle).
    pub utilization: f64,
}

/// The result of distributing one workload across all harts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmpRunReport {
    /// Workload name.
    pub workload: String,
    /// Hart count the kernel was booted with.
    pub harts: usize,
    /// Total operations completed across all harts.
    pub ops: u64,
    /// Modeled wall-clock cycles: the slowest hart's busy delta.
    pub wall_cycles: u64,
    /// Sum of all harts' busy cycles (wall × harts when perfectly balanced).
    pub busy_cycles: u64,
    /// Per-hart breakdown.
    pub per_hart: Vec<HartShare>,
    /// TLB shootdowns broadcast during the run.
    pub tlb_shootdowns: u64,
    /// Individual remote-hart IPIs those shootdowns sent.
    pub shootdown_ipis: u64,
}

impl SmpRunReport {
    /// Throughput in operations per thousand modeled wall cycles — the
    /// number that must *rise* with the hart count for SMP to pay off.
    pub fn ops_per_kilocycle(&self) -> f64 {
        if self.wall_cycles == 0 {
            0.0
        } else {
            self.ops as f64 * 1000.0 / self.wall_cycles as f64
        }
    }

    /// Mean per-hart utilization over the run.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_hart.is_empty() {
            0.0
        } else {
            self.per_hart.iter().map(|h| h.utilization).sum::<f64>() / self.per_hart.len() as f64
        }
    }
}

/// Splits `total` into one share per hart; earlier harts absorb the
/// remainder so every op is served.
pub(crate) fn partition(total: u64, harts: usize) -> Vec<u64> {
    let base = total / harts as u64;
    let extra = total % harts as u64;
    (0..harts as u64)
        .map(|h| base + u64::from(h < extra))
        .collect()
}

/// Forks one worker process per hart and switches each hart to its worker.
/// Worker `h` runs on hart `h` (hart 0 reuses the spawning process's hart).
/// Returns each worker as a `(pid, handle)` pair; the generational handle
/// is the only reference drivers keep to the worker.
pub(crate) fn spawn_workers(k: &mut Kernel) -> Result<Vec<(Pid, ProcHandle)>, KernelError> {
    let harts = k.harts.len();
    k.set_active_hart(0);
    let pids: Vec<Pid> = (0..harts).map(|_| k.sys_fork()).collect::<Result<_, _>>()?;
    let mut workers = Vec::with_capacity(harts);
    for (h, &w) in pids.iter().enumerate() {
        k.set_active_hart(h);
        k.do_switch_to(w)?;
        let handle = k.proc_handle(w).ok_or(KernelError::NoSuchProcess)?;
        workers.push((w, handle));
    }
    k.set_active_hart(0);
    Ok(workers)
}

/// Runs one hart-distributed workload: `serve(k, hart, share)` performs
/// `share` operations on the already-active hart. Each hart's turn runs
/// on a real OS thread (up to [`exec::host_threads`] of them) through the
/// logical-time turnstile, preserving the canonical hart order exactly.
/// After the run every worker handle must still resolve — a driver that
/// reaped its own worker trips the stale-handle check here.
pub(crate) fn run_distributed(
    k: &mut Kernel,
    workload: &str,
    workers: &[(Pid, ProcHandle)],
    shares: &[u64],
    host_threads: usize,
    serve: impl Fn(&mut Kernel, usize, u64) + Sync,
) -> SmpRunReport {
    let harts = k.harts.len();
    let shootdowns0 = k.stats.tlb_shootdowns;
    let ipis0 = k.stats.shootdown_ipis;
    let before: Vec<u64> = k.harts.iter().map(|h| h.cycles.total()).collect();
    let turns: Vec<(usize, u64)> = shares
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, share)| share > 0)
        .collect();
    exec::run_turns(k, turns.len(), host_threads, |k, t| {
        let (hart, share) = turns[t];
        k.set_active_hart(hart);
        serve(k, hart, share);
    });
    k.set_active_hart(0);
    for &(pid, handle) in workers {
        assert!(
            k.resolve_handle(handle).is_some_and(|p| p.pid == pid),
            "{workload}: worker pid {pid} handle went stale during the run"
        );
    }
    let deltas: Vec<u64> = k
        .harts
        .iter()
        .zip(&before)
        .map(|(h, b)| h.cycles.total() - b)
        .collect();
    let wall_cycles = deltas.iter().copied().max().unwrap_or(0);
    let per_hart = (0..harts)
        .map(|h| HartShare {
            hart: h,
            ops: shares[h],
            cycles: deltas[h],
            utilization: if wall_cycles == 0 {
                0.0
            } else {
                deltas[h] as f64 / wall_cycles as f64
            },
        })
        .collect();
    SmpRunReport {
        workload: workload.to_string(),
        harts,
        ops: shares.iter().sum(),
        wall_cycles,
        busy_cycles: deltas.iter().sum(),
        per_hart,
        tlb_shootdowns: k.stats.tlb_shootdowns - shootdowns0,
        shootdown_ipis: k.stats.shootdown_ipis - ipis0,
    }
}

/// NGINX with one worker per hart (`worker_processes auto`): each worker
/// serves its partition of the request stream.
///
/// # Panics
/// Panics on kernel errors (the server must run cleanly).
pub fn run_nginx_smp(k: &mut Kernel, p: &NginxParams) -> SmpRunReport {
    run_nginx_smp_threads(k, p, exec::host_threads())
}

/// [`run_nginx_smp`] with an explicit host thread count (the differential
/// suite sweeps this to prove thread-count invariance).
pub fn run_nginx_smp_threads(k: &mut Kernel, p: &NginxParams, host_threads: usize) -> SmpRunReport {
    nginx::stage_document(k, p);
    let workers = spawn_workers(k).expect("nginx workers spawn");
    let shares = partition(p.requests, k.harts.len());
    run_distributed(
        k,
        "nginx",
        &workers,
        &shares,
        host_threads,
        |k, _h, share| {
            nginx::serve_requests(k, p, share);
        },
    )
}

/// Redis in cluster mode: one single-threaded instance per hart, the
/// keyspace sharded so each instance serves its partition of the requests.
///
/// # Panics
/// Panics on kernel errors.
pub fn run_redis_smp(k: &mut Kernel, test: &RedisTest, p: &RedisParams) -> SmpRunReport {
    run_redis_smp_threads(k, test, p, exec::host_threads())
}

/// [`run_redis_smp`] with an explicit host thread count.
pub fn run_redis_smp_threads(
    k: &mut Kernel,
    test: &RedisTest,
    p: &RedisParams,
    host_threads: usize,
) -> SmpRunReport {
    let workers = spawn_workers(k).expect("redis instances spawn");
    let shares = partition(p.requests, k.harts.len());
    run_distributed(
        k,
        test.name,
        &workers,
        &shares,
        host_threads,
        |k, _h, share| {
            redis::serve_requests(k, test, p, share);
        },
    )
}

/// The fork stress distributed across harts: each hart's worker creates,
/// runs, and reaps its share of the processes.
///
/// # Panics
/// Panics on kernel errors (OOM means the configuration is too small).
pub fn run_fork_stress_smp(k: &mut Kernel, count: u64) -> SmpRunReport {
    run_fork_stress_smp_threads(k, count, exec::host_threads())
}

/// [`run_fork_stress_smp`] with an explicit host thread count.
pub fn run_fork_stress_smp_threads(
    k: &mut Kernel,
    count: u64,
    host_threads: usize,
) -> SmpRunReport {
    let workers = spawn_workers(k).expect("stress workers spawn");
    let shares = partition(count, k.harts.len());
    run_distributed(
        k,
        "fork_stress",
        &workers,
        &shares,
        host_threads,
        |k, _h, share| {
            let children: Vec<Pid> = (0..share).map(|_| k.sys_fork().expect("fork")).collect();
            for &child in &children {
                k.do_switch_to(child).expect("switch");
                k.sys_exit(0).expect("exit");
            }
            for _ in &children {
                k.sys_wait().expect("wait");
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::MIB;
    use ptstore_kernel::{Kernel, KernelConfig};

    fn boot(harts: usize) -> Kernel {
        Kernel::boot(
            KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB)
                .with_harts(harts),
        )
        .expect("boot")
    }

    #[test]
    fn spawn_workers_returns_live_handles() {
        let mut k = boot(2);
        let workers = spawn_workers(&mut k).expect("spawn");
        assert_eq!(workers.len(), 2);
        for &(pid, handle) in &workers {
            let p = k.resolve_handle(handle).expect("worker handle resolves");
            assert_eq!(p.pid, pid);
        }
        assert_eq!(k.stats.stale_handle_rejects, 0);
    }

    #[test]
    fn partition_covers_every_op() {
        assert_eq!(partition(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(partition(8, 1), vec![8]);
    }

    #[test]
    fn nginx_scales_ops_per_cycle_with_harts() {
        let p = NginxParams::quick(4 << 10);
        let mut k1 = boot(1);
        let r1 = run_nginx_smp(&mut k1, &p);
        let mut k4 = boot(4);
        let r4 = run_nginx_smp(&mut k4, &p);
        assert_eq!(r1.ops, r4.ops);
        assert!(
            r4.ops_per_kilocycle() > r1.ops_per_kilocycle() * 2.0,
            "4 harts must beat 1 by a wide margin: {:.3} vs {:.3}",
            r4.ops_per_kilocycle(),
            r1.ops_per_kilocycle()
        );
        // SMP is not free: the 4-hart run paid for real shootdowns.
        assert!(r4.tlb_shootdowns > 0);
        assert_eq!(r1.tlb_shootdowns, 0);
    }

    #[test]
    fn per_hart_shares_are_balanced() {
        let p = RedisParams::quick();
        let mut k = boot(2);
        let r = run_redis_smp(&mut k, &crate::redis::REDIS_TESTS[3], &p);
        assert_eq!(r.harts, 2);
        assert_eq!(r.per_hart.len(), 2);
        assert_eq!(r.ops, p.requests);
        for h in &r.per_hart {
            assert!(h.cycles > 0, "hart {} did real work", h.hart);
            assert!(h.utilization > 0.5, "balanced shares keep harts busy");
        }
        assert!(r.wall_cycles <= r.busy_cycles);
    }

    #[test]
    fn fork_stress_distributes_and_reaps() {
        let mut k = boot(2);
        let r = run_fork_stress_smp(&mut k, 32);
        assert_eq!(r.ops, 32);
        assert!(r.wall_cycles > 0);
        assert!(k.stats.forks >= 32);
    }
}
