//! An LTP-style functional regression suite (§V-C).
//!
//! The paper runs the Linux Test Project on the original and modified
//! kernels and diffs the outputs ("we compare the outputs of the two runs
//! and do not find any deviation"). This module does the same: a battery of
//! named functional checks, each producing a deterministic output string.
//! [`diff_outputs`] compares two kernels' runs; an empty diff means the
//! PTStore modifications did not change observable kernel behaviour.

use ptstore_core::{VirtAddr, PAGE_SIZE};
use ptstore_kernel::pagetable::USER_HEAP_BASE;
use ptstore_kernel::{Kernel, KernelError};

/// One test's observable output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestOutput {
    /// Test case name (LTP-style).
    pub name: &'static str,
    /// What the test observed, serialised deterministically.
    pub output: String,
}

type TestFn = fn(&mut Kernel) -> String;

fn fmt_res<T: std::fmt::Debug>(r: Result<T, KernelError>) -> String {
    match r {
        Ok(v) => format!("OK {v:?}"),
        Err(e) => format!("ERR {e}"),
    }
}

/// The test battery: each entry is (name, body). Bodies only use the public
/// syscall surface, so they exercise the same paths LTP would.
pub fn test_cases() -> Vec<(&'static str, TestFn)> {
    vec![
        ("getppid01", |k| fmt_res(k.sys_null())),
        ("fork01", |k| {
            let r = k.sys_fork();
            let out = fmt_res(r);
            if let Ok(child) = r {
                let _ = k.do_switch_to(child);
                let _ = k.sys_exit(0);
                let _ = k.sys_wait();
            }
            out
        }),
        ("fork02_pids_increase", |k| {
            let a = k.sys_fork().expect("fork a");
            let b = k.sys_fork().expect("fork b");
            let out = format!("b>a={}", b > a);
            for c in [a, b] {
                let _ = k.do_switch_to(c);
                let _ = k.sys_exit(0);
            }
            let _ = k.sys_wait();
            let _ = k.sys_wait();
            out
        }),
        ("wait01_exit_code", |k| {
            let child = k.sys_fork().expect("fork");
            k.do_switch_to(child).expect("switch");
            k.sys_exit(7).expect("exit");
            fmt_res(k.sys_wait())
        }),
        ("wait02_no_children", |k| fmt_res(k.sys_wait())),
        ("execve01", |k| fmt_res(k.sys_exec())),
        ("open01", |k| fmt_res(k.sys_open("/etc/passwd"))),
        ("open02_enoent", |k| fmt_res(k.sys_open("/does/not/exist"))),
        ("close01_badf", |k| fmt_res(k.sys_close(99))),
        ("read01", |k| {
            let fd = k.sys_open("/etc/passwd").expect("open");
            let out = fmt_res(k.sys_read(fd, 4));
            let _ = k.sys_close(fd);
            out
        }),
        ("read02_offset_advances", |k| {
            let fd = k.sys_open("/etc/passwd").expect("open");
            let a = k.sys_read(fd, 4).expect("read");
            let b = k.sys_read(fd, 4).expect("read");
            let _ = k.sys_close(fd);
            format!("{:?}/{:?}", a, b)
        }),
        ("write01", |k| {
            let fd = k.sys_open("/tmp/XXX").expect("open");
            let out = fmt_res(k.sys_write(fd, b"regression"));
            let _ = k.sys_close(fd);
            out
        }),
        ("write02_read_back", |k| {
            let fd = k.sys_open("/tmp/XXX").expect("open");
            k.sys_write(fd, b"abcdef").expect("write");
            let _ = k.sys_close(fd);
            let fd = k.sys_open("/tmp/XXX").expect("open");
            let out = fmt_res(k.sys_read(fd, 6));
            let _ = k.sys_close(fd);
            out
        }),
        ("stat01", |k| fmt_res(k.sys_stat("/etc/passwd"))),
        ("stat02_enoent", |k| fmt_res(k.sys_stat("/missing"))),
        ("fstat01", |k| {
            let fd = k.sys_open("/etc/passwd").expect("open");
            let out = fmt_res(k.sys_fstat(fd));
            let _ = k.sys_close(fd);
            out
        }),
        ("pipe01_fifo", |k| {
            let (r, w) = k.sys_pipe().expect("pipe");
            k.sys_write(w, b"first").expect("w");
            k.sys_write(w, b"second").expect("w");
            let a = k.sys_read(r, 5).expect("r");
            let b = k.sys_read(r, 6).expect("r");
            let _ = k.sys_close(r);
            let _ = k.sys_close(w);
            format!("{:?}|{:?}", a, b)
        }),
        ("pipe02_would_block", |k| {
            let (r, w) = k.sys_pipe().expect("pipe");
            let out = fmt_res(k.sys_read(r, 1));
            let _ = k.sys_close(r);
            let _ = k.sys_close(w);
            out
        }),
        ("select01", |k| fmt_res(k.sys_select(10))),
        ("signal01_install_catch", |k| {
            k.sys_signal_install(12).expect("install");
            k.sys_signal_catch(12).expect("catch");
            format!(
                "caught={}",
                k.procs.get(k.current_pid()).expect("cur").signals.caught
            )
        }),
        ("signal02_bad_signum", |k| fmt_res(k.sys_signal_install(0))),
        ("signal03_pending_without_handler", |k| {
            k.sys_signal_catch(9).expect("catch");
            format!(
                "pending={:#x}",
                k.procs.get(k.current_pid()).expect("cur").signals.pending
            )
        }),
        ("mmap01_zero_fill", |k| {
            let a = k.sys_mmap(PAGE_SIZE).expect("mmap");
            let v = k.user_read_u64(a).expect("read");
            format!("zero={}", v == 0)
        }),
        ("mmap02_rw", |k| {
            let a = k.sys_mmap(PAGE_SIZE).expect("mmap");
            k.user_write_u64(a, 0x1234_5678).expect("write");
            fmt_res(k.user_read_u64(a))
        }),
        ("munmap01_then_segv", |k| {
            let a = k.sys_mmap(PAGE_SIZE).expect("mmap");
            k.sys_touch(a, true).expect("touch");
            k.sys_munmap(a, PAGE_SIZE).expect("munmap");
            fmt_res(k.sys_touch(a, true))
        }),
        ("brk01_grow", |k| {
            fmt_res(k.sys_brk(USER_HEAP_BASE + 4 * PAGE_SIZE))
        }),
        ("brk02_invalid", |k| fmt_res(k.sys_brk(0x1000))),
        ("pagefault01_demand", |k| {
            k.sys_brk(USER_HEAP_BASE + PAGE_SIZE).expect("brk");
            let before = k.stats.demand_faults;
            k.sys_touch(VirtAddr::new(USER_HEAP_BASE), true)
                .expect("touch");
            format!("faults+={}", k.stats.demand_faults - before)
        }),
        ("pagefault02_segv", |k| {
            fmt_res(k.sys_touch(VirtAddr::new(0x6100_0000), false))
        }),
        ("cow01_fork_write", |k| {
            k.sys_brk(USER_HEAP_BASE + PAGE_SIZE).expect("brk");
            let heap = VirtAddr::new(USER_HEAP_BASE);
            k.user_write_u64(heap, 0xAA).expect("write");
            let child = k.sys_fork().expect("fork");
            k.user_write_u64(heap, 0xBB).expect("parent write");
            k.do_switch_to(child).expect("switch");
            let child_sees = k.user_read_u64(heap).expect("child read");
            k.sys_exit(0).expect("exit");
            let _ = k.sys_wait();
            format!("child_sees={child_sees:#x}")
        }),
        ("sched01_yield", |k| {
            let child = k.sys_fork().expect("fork");
            k.sys_yield().expect("yield");
            let cur = k.current_pid();
            let out = format!("switched={}", cur == child);
            // Clean up regardless of who runs.
            if cur == child {
                k.sys_exit(0).expect("exit");
                let _ = k.sys_wait();
            } else {
                k.do_switch_to(child).expect("switch");
                k.sys_exit(0).expect("exit");
                let _ = k.sys_wait();
            }
            out
        }),
        ("socket01_echo", |k| {
            let s = k.sys_accept(64).expect("accept");
            let got = k.sys_recv(s, 64).expect("recv");
            let sent = k.sys_send(s, 32).expect("send");
            let _ = k.sys_close(s);
            format!("rx={got} tx={sent}")
        }),
        ("fd01_lowest_reuse", |k| {
            let a = k.sys_open("/etc/passwd").expect("open");
            let b = k.sys_open("/etc/passwd").expect("open");
            k.sys_close(a).expect("close");
            let c = k.sys_open("/etc/passwd").expect("open");
            let out = format!("reused={}", a == c);
            let _ = k.sys_close(b);
            let _ = k.sys_close(c);
            out
        }),
        ("mprotect01_ro_blocks_writes", |k| {
            use ptstore_kernel::process::VmPerms;
            let a = k.sys_mmap(PAGE_SIZE).expect("mmap");
            k.sys_touch(a, true).expect("touch");
            k.sys_mprotect(a, PAGE_SIZE, VmPerms::RO).expect("mprotect");
            fmt_res(k.sys_touch(a, true))
        }),
        ("mprotect02_restore", |k| {
            use ptstore_kernel::process::VmPerms;
            let a = k.sys_mmap(PAGE_SIZE).expect("mmap");
            k.sys_touch(a, true).expect("touch");
            k.sys_mprotect(a, PAGE_SIZE, VmPerms::RO).expect("ro");
            k.sys_mprotect(a, PAGE_SIZE, VmPerms::RW).expect("rw");
            fmt_res(k.sys_touch(a, true))
        }),
        ("mprotect03_bad_range", |k| {
            use ptstore_kernel::process::VmPerms;
            fmt_res(k.sys_mprotect(VirtAddr::new(0x6600_0000), PAGE_SIZE, VmPerms::RO))
        }),
        ("clone01_shared_memory", |k| {
            let a = k.sys_mmap(PAGE_SIZE).expect("mmap");
            k.user_write_u64(a, 0x11).expect("write");
            let t = k.sys_clone_thread().expect("clone");
            k.do_switch_to(t).expect("switch");
            k.user_write_u64(a, 0x22).expect("thread write");
            k.sys_exit(0).expect("thread exit");
            k.do_switch_to(1).expect("back");
            let _ = k.sys_wait();
            fmt_res(k.user_read_u64(a))
        }),
        ("clone02_owner_exit_blocked", |k| {
            let _t = k.sys_clone_thread().expect("clone");
            fmt_res(k.sys_exit(0))
        }),
        ("dupfd01_fork_inherits_pipe", |k| {
            let (r, w) = k.sys_pipe().expect("pipe");
            let child = k.sys_fork().expect("fork");
            k.sys_write(w, b"x").expect("write");
            k.do_switch_to(child).expect("switch");
            let got = k.sys_read(r, 1).expect("child read");
            k.sys_exit(0).expect("exit");
            let _ = k.sys_wait();
            format!("{:?}", got)
        }),
        ("munmap01_partial_untouched", |k| {
            // munmap of a range that was never faulted in succeeds silently.
            let a = k.sys_mmap(8 * PAGE_SIZE).expect("mmap");
            fmt_res(k.sys_munmap(a, 8 * PAGE_SIZE))
        }),
        ("select02_scales", |k| {
            let a = k.sys_select(1).expect("sel");
            let b = k.sys_select(100).expect("sel");
            format!("{a}/{b}")
        }),
        ("signal04_install_all", |k| {
            let mut oks = 0;
            for sig in 1..32 {
                if k.sys_signal_install(sig).is_ok() {
                    oks += 1;
                }
            }
            format!("installed={oks}")
        }),
        ("sockets01_drain", |k| {
            let s1 = k.sys_accept(100).expect("accept");
            let first = k.sys_recv(s1, 60).expect("recv");
            let second = k.sys_recv(s1, 60).expect("recv");
            let third = k.sys_recv(s1, 60).expect("recv");
            let _ = k.sys_close(s1);
            format!("{first}/{second}/{third}")
        }),
        ("stat03_size_tracks_writes", |k| {
            k.fs.create("/tmp/grow", vec![]);
            let fd = k.sys_open("/tmp/grow").expect("open");
            k.sys_write(fd, &[0u8; 100]).expect("write");
            k.sys_write(fd, &[0u8; 100]).expect("write");
            let _ = k.sys_close(fd);
            fmt_res(k.sys_stat("/tmp/grow"))
        }),
        ("brk03_shrink_and_regrow", |k| {
            let base = USER_HEAP_BASE;
            k.sys_brk(base + 8 * PAGE_SIZE).expect("grow");
            k.sys_brk(base + 2 * PAGE_SIZE).expect("shrink");
            fmt_res(k.sys_brk(base + 4 * PAGE_SIZE))
        }),
        ("fork03_cow_refcounts", |k| {
            // Grandchild chains stress CoW ref counting.
            k.sys_brk(USER_HEAP_BASE + PAGE_SIZE).expect("brk");
            let heap = VirtAddr::new(USER_HEAP_BASE);
            k.user_write_u64(heap, 1).expect("w");
            let c1 = k.sys_fork().expect("fork");
            k.do_switch_to(c1).expect("switch");
            let c2 = k.sys_fork().expect("fork");
            k.do_switch_to(c2).expect("switch");
            let seen = k.user_read_u64(heap).expect("r");
            k.sys_exit(0).expect("exit c2");
            k.do_switch_to(c1).expect("switch c1");
            let _ = k.sys_wait();
            k.sys_exit(0).expect("exit c1");
            k.do_switch_to(1).expect("switch init");
            let _ = k.sys_wait();
            format!("grandchild_saw={seen}")
        }),
        ("exec02_resets_brk", |k| {
            k.sys_brk(USER_HEAP_BASE + 4 * PAGE_SIZE).expect("grow");
            k.sys_exec().expect("exec");
            format!(
                "brk_reset={}",
                k.procs.get(k.current_pid()).expect("cur").brk == USER_HEAP_BASE
            )
        }),
        ("pipe03_capacity_bound", |k| {
            let (r, w) = k.sys_pipe().expect("pipe");
            let big = vec![0u8; 70_000];
            let n = k.sys_write(w, &big).expect("write");
            let _ = k.sys_close(r);
            let _ = k.sys_close(w);
            format!("accepted={n}")
        }),
    ]
}

/// Runs the whole battery on a fresh kernel per test (LTP isolates cases).
pub fn run_suite(mut fresh_kernel: impl FnMut() -> Kernel) -> Vec<TestOutput> {
    test_cases()
        .into_iter()
        .map(|(name, f)| {
            let mut k = fresh_kernel();
            TestOutput {
                name,
                output: f(&mut k),
            }
        })
        .collect()
}

/// Diffs two runs; returns the names whose outputs deviate.
pub fn diff_outputs(a: &[TestOutput], b: &[TestOutput]) -> Vec<String> {
    let mut deviations = Vec::new();
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name, "suites must align");
        if x.output != y.output {
            deviations.push(format!("{}: {:?} != {:?}", x.name, x.output, y.output));
        }
    }
    deviations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::MIB;
    use ptstore_kernel::KernelConfig;

    fn kernel_with(cfg: KernelConfig) -> Kernel {
        Kernel::boot(
            cfg.with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot")
    }

    #[test]
    fn suite_has_many_cases_and_runs() {
        let outputs = run_suite(|| kernel_with(KernelConfig::cfi_ptstore()));
        assert!(outputs.len() >= 30);
        assert!(outputs.iter().all(|o| !o.output.is_empty()));
    }

    #[test]
    fn no_deviation_between_original_and_ptstore_kernels() {
        // The §V-C result: PTStore does not change observable behaviour.
        let original = run_suite(|| kernel_with(KernelConfig::cfi()));
        let modified = run_suite(|| kernel_with(KernelConfig::cfi_ptstore()));
        let diff = diff_outputs(&original, &modified);
        assert!(diff.is_empty(), "deviations found: {diff:#?}");
    }

    #[test]
    fn diff_detects_real_deviations() {
        let a = vec![TestOutput {
            name: "t",
            output: "1".into(),
        }];
        let b = vec![TestOutput {
            name: "t",
            output: "2".into(),
        }];
        assert_eq!(diff_outputs(&a, &b).len(), 1);
    }
}
