//! The NGINX 1.20.1 benchmark of Figure 6: 10 000 requests total, 100
//! concurrent, static files of varying size served from the ramfs.
//!
//! The model runs the server's event loop faithfully at the syscall level:
//! batches of `select` + per-connection accept/recv/open/fstat/read/send/
//! close. A small per-request user-mode cost stands in for parsing and
//! response assembly.

use ptstore_kernel::{CostKind, Kernel};
use serde::{Deserialize, Serialize};

use crate::report::timed;

/// Response sizes swept in the figure.
pub const RESPONSE_SIZES: [u64; 5] = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10];

/// Benchmark parameters (paper: 10 000 requests, 100 concurrent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NginxParams {
    /// Total requests.
    pub requests: u64,
    /// Concurrent connections per event-loop batch.
    pub concurrency: u64,
    /// Static file size served.
    pub response_bytes: u64,
    /// User cycles per request (parsing, headers).
    pub user_cycles_per_request: u64,
}

impl NginxParams {
    /// The paper's parameters at a given response size.
    pub fn paper(response_bytes: u64) -> Self {
        Self {
            requests: 10_000,
            concurrency: 100,
            response_bytes,
            user_cycles_per_request: 5_500,
        }
    }

    /// A scaled-down variant for unit tests.
    pub fn quick(response_bytes: u64) -> Self {
        Self {
            requests: 500,
            concurrency: 50,
            ..Self::paper(response_bytes)
        }
    }
}

/// Serves the whole benchmark, returning total cycles.
///
/// # Panics
/// Panics on kernel errors (the web server must run cleanly).
pub fn run_nginx(k: &mut Kernel, p: &NginxParams) -> u64 {
    stage_document(k, p);
    timed(k, |k| serve_requests(k, p, p.requests))
}

/// Creates the static document the benchmark serves.
pub(crate) fn stage_document(k: &mut Kernel, p: &NginxParams) {
    let doc = vec![0x41u8; p.response_bytes as usize];
    k.fs.create("/srv/index.html", doc);
}

/// The server's event loop: serves exactly `requests` requests on the
/// current process (one nginx worker). The SMP driver runs one of these
/// per hart.
pub(crate) fn serve_requests(k: &mut Kernel, p: &NginxParams, requests: u64) {
    const REQUEST_BYTES: u64 = 420; // typical GET + headers
    {
        let mut served = 0u64;
        let mut since_pool_growth = 0u64;
        while served < requests {
            let batch = p.concurrency.min(requests - served);
            // One event-loop turn: poll readiness over the live connections.
            k.sys_select(batch).expect("select");
            // Connection-pool churn: nginx grows/releases request-buffer
            // arenas as connections cycle, touching the paging path (this is
            // where PTStore's page-table work shows up in a server).
            since_pool_growth += batch;
            if since_pool_growth >= 32 {
                since_pool_growth = 0;
                let arena = k.sys_mmap(4 * ptstore_core::PAGE_SIZE).expect("pool mmap");
                for i in 0..4 {
                    k.sys_touch(
                        ptstore_core::VirtAddr::new(arena.as_u64() + i * ptstore_core::PAGE_SIZE),
                        true,
                    )
                    .expect("pool touch");
                }
                k.sys_munmap(arena, 4 * ptstore_core::PAGE_SIZE)
                    .expect("pool munmap");
            }
            for _ in 0..batch {
                let sock = k.sys_accept(REQUEST_BYTES).expect("accept");
                k.sys_recv(sock, REQUEST_BYTES).expect("recv");
                k.charge(CostKind::User, p.user_cycles_per_request);
                let fd = k.sys_open("/srv/index.html").expect("open");
                k.sys_fstat(fd).expect("fstat");
                // sendfile-style loop in 64 KiB chunks.
                let mut remaining = p.response_bytes;
                while remaining > 0 {
                    let chunk = remaining.min(64 << 10);
                    k.sys_read_discard(fd, chunk).expect("read");
                    k.sys_send(sock, chunk).expect("send");
                    remaining -= chunk;
                }
                k.sys_close(fd).expect("close file");
                k.sys_close(sock).expect("close sock");
            }
            served += batch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{measure, standard_configs};
    use ptstore_core::MIB;

    #[test]
    fn serves_all_requests() {
        let mut k = ptstore_kernel::Kernel::boot(
            ptstore_kernel::KernelConfig::cfi_ptstore()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot");
        let p = NginxParams::quick(4 << 10);
        let syscalls_before = k.stats.syscalls;
        let cycles = run_nginx(&mut k, &p);
        assert!(cycles > 0);
        // ≥ 8 syscalls per request.
        assert!(k.stats.syscalls - syscalls_before >= p.requests * 8);
    }

    #[test]
    fn kernel_bound_overheads_match_figure6_shape() {
        // Figure 6: CFI dominates (kernel-bound), PTStore adds <0.86 %.
        let configs = standard_configs(256 * MIB, 16 * MIB);
        let p = NginxParams::quick(4 << 10);
        let series = measure("nginx 4k", &configs, |k| run_nginx(k, &p));
        let cfi = series.overhead_of("CFI").expect("present");
        let both = series.overhead_of("CFI+PTStore").expect("present");
        assert!(cfi > 1.0, "nginx is kernel-bound; CFI visible: {cfi:.2}%");
        let ptstore_extra = both - cfi;
        assert!(
            (-0.2..1.5).contains(&ptstore_extra),
            "PTStore extra on nginx should be small: {ptstore_extra:.3}%"
        );
    }

    #[test]
    fn larger_responses_amortise_per_request_costs() {
        let mut k = ptstore_kernel::Kernel::boot(
            ptstore_kernel::KernelConfig::baseline()
                .with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot");
        let small = run_nginx(&mut k, &NginxParams::quick(1 << 10));
        let big = run_nginx(&mut k, &NginxParams::quick(256 << 10));
        assert!(big > small, "more bytes cost more cycles");
    }
}
