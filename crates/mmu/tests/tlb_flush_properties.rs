//! Property tests for the TLB flush operations (`sfence.vma` shapes).
//!
//! The interesting corners are ASID aliasing — the same virtual page cached
//! for several address spaces, where a targeted flush must remove exactly
//! its own key — and flushing at full occupancy, where the freed slot must
//! be reusable without triggering round-robin eviction of an innocent
//! entry.

use proptest::prelude::*;
use ptstore_core::{AccessKind, PhysPageNum, PrivilegeMode, VirtPageNum, PAGE_SIZE};
use ptstore_mmu::{PteFlags, Tlb, TlbEntry};

/// Key space small enough that aliasing and collisions are the common case.
const VPNS: u64 = 4;
const ASIDS: u16 = 3;

fn entry(vpn: u64, asid: u16, global: bool) -> TlbEntry {
    let flags = if global {
        PteFlags::kernel_rw().with(PteFlags::G)
    } else {
        PteFlags::kernel_rw()
    };
    TlbEntry {
        vpn: VirtPageNum::new(vpn),
        asid,
        // Encode the key in the ppn so hits are attributable.
        ppn: PhysPageNum::new(0x1000 + vpn * 0x10 + u64::from(asid)),
        flags,
        page_size: PAGE_SIZE,
    }
}

fn hits(tlb: &mut Tlb, vpn: u64, asid: u16) -> bool {
    tlb.lookup(
        VirtPageNum::new(vpn),
        asid,
        AccessKind::Read,
        PrivilegeMode::Supervisor,
    )
    .is_some()
}

/// The reference model: the de-duplicated surviving entries. `insert`
/// replaces an existing (vpn, asid) mapping, so later inserts win.
fn model(inserts: &[(u64, u16, bool)]) -> Vec<(u64, u16, bool)> {
    let mut out: Vec<(u64, u16, bool)> = Vec::new();
    for &(vpn, asid, global) in inserts {
        out.retain(|&(v, a, _)| !(v == vpn && a == asid));
        out.push((vpn, asid, global));
    }
    out
}

/// What a lookup of (vpn, asid) should find given the surviving entries:
/// an exact ASID match or any global entry for that page.
fn model_hits(entries: &[(u64, u16, bool)], vpn: u64, asid: u16) -> bool {
    entries
        .iter()
        .any(|&(v, a, g)| v == vpn && (a == asid || g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `sfence.vma va, asid` removes exactly its own (vpn, asid) key: the
    /// same page cached under other ASIDs — and other pages of the same
    /// ASID — survive.
    #[test]
    fn flush_page_is_exact_under_asid_aliasing(
        inserts in proptest::collection::vec(
            (0..VPNS, 0..ASIDS, any::<bool>()),
            1..16,
        ),
        target_vpn in 0..VPNS,
        target_asid in 0..ASIDS,
    ) {
        // Big enough that nothing is evicted: the model is exact.
        let mut tlb = Tlb::new((VPNS as usize) * (ASIDS as usize));
        for &(vpn, asid, global) in &inserts {
            tlb.insert(entry(vpn, asid, global));
        }
        prop_assert_eq!(tlb.stats().evictions, 0);

        tlb.flush_page(VirtPageNum::new(target_vpn), target_asid);
        let mut surviving = model(&inserts);
        surviving.retain(|&(v, a, _)| !(v == target_vpn && a == target_asid));

        prop_assert_eq!(tlb.occupancy(), surviving.len());
        for vpn in 0..VPNS {
            for asid in 0..ASIDS {
                prop_assert_eq!(
                    hits(&mut tlb, vpn, asid),
                    model_hits(&surviving, vpn, asid),
                    "lookup ({}, {}) after flush_page({}, {})",
                    vpn, asid, target_vpn, target_asid
                );
            }
        }
    }

    /// `sfence.vma x0, asid` removes every non-global entry of that address
    /// space and nothing else; global entries keep hitting under any ASID.
    #[test]
    fn flush_asid_spares_globals_and_other_spaces(
        inserts in proptest::collection::vec(
            (0..VPNS, 0..ASIDS, any::<bool>()),
            1..16,
        ),
        target_asid in 0..ASIDS,
    ) {
        let mut tlb = Tlb::new((VPNS as usize) * (ASIDS as usize));
        for &(vpn, asid, global) in &inserts {
            tlb.insert(entry(vpn, asid, global));
        }

        tlb.flush_asid(target_asid);
        let mut surviving = model(&inserts);
        surviving.retain(|&(_, a, g)| a != target_asid || g);

        prop_assert_eq!(tlb.occupancy(), surviving.len());
        for vpn in 0..VPNS {
            for asid in 0..ASIDS {
                prop_assert_eq!(
                    hits(&mut tlb, vpn, asid),
                    model_hits(&surviving, vpn, asid),
                    "lookup ({}, {}) after flush_asid({})",
                    vpn, asid, target_asid
                );
            }
        }
    }

    /// Flushing one page of a *full* TLB frees exactly one slot, and the
    /// next insert takes that slot instead of evicting a live entry.
    #[test]
    fn flush_page_at_full_occupancy_frees_one_slot(
        capacity in 2usize..8,
        victim in 0u64..8,
    ) {
        let victim = victim % capacity as u64;
        let mut tlb = Tlb::new(capacity);
        // Distinct vpns, one ASID: fills every slot without replacement.
        for vpn in 0..capacity as u64 {
            tlb.insert(entry(vpn, 1, false));
        }
        prop_assert_eq!(tlb.occupancy(), capacity);
        prop_assert_eq!(tlb.stats().evictions, 0);

        tlb.flush_page(VirtPageNum::new(victim), 1);
        prop_assert_eq!(tlb.occupancy(), capacity - 1);
        prop_assert!(!hits(&mut tlb, victim, 1));

        // Re-inserting fills the hole; everything else still hits and no
        // round-robin eviction fires.
        tlb.insert(entry(victim, 1, false));
        prop_assert_eq!(tlb.occupancy(), capacity);
        prop_assert_eq!(tlb.stats().evictions, 0);
        for vpn in 0..capacity as u64 {
            prop_assert!(hits(&mut tlb, vpn, 1), "vpn {} after refill", vpn);
        }
    }

    /// Flushing an entire ASID at full occupancy leaves the other address
    /// space intact even when every page aliases across the two.
    #[test]
    fn flush_asid_at_full_occupancy_keeps_the_other_space(
        pages in 1usize..4,
    ) {
        // Every vpn cached for both ASIDs: the TLB is exactly full.
        let mut tlb = Tlb::new(pages * 2);
        for vpn in 0..pages as u64 {
            tlb.insert(entry(vpn, 1, false));
            tlb.insert(entry(vpn, 2, false));
        }
        prop_assert_eq!(tlb.occupancy(), pages * 2);

        tlb.flush_asid(1);
        prop_assert_eq!(tlb.occupancy(), pages);
        for vpn in 0..pages as u64 {
            prop_assert!(!hits(&mut tlb, vpn, 1), "asid 1 vpn {} flushed", vpn);
            prop_assert!(hits(&mut tlb, vpn, 2), "asid 2 vpn {} kept", vpn);
        }
    }
}
