//! Differential property tests for the TLB host-side fast path.
//!
//! The direct-mapped micro-TLB in front of the associative scan is a pure
//! host-performance memoization: with it on or off, every lookup must
//! return the same entry, the modeled hit/miss/eviction statistics must be
//! identical, and occupancy must track the same set of live entries. These
//! tests drive a fast and a slow TLB through the same random interleaving
//! of inserts, lookups, and all three sfence flush shapes — including tiny
//! capacities where round-robin eviction (the subtlest invalidation site)
//! fires constantly.

use proptest::prelude::*;
use ptstore_core::{AccessKind, PhysPageNum, PrivilegeMode, VirtPageNum, PAGE_SIZE};
use ptstore_mmu::{PteFlags, Tlb, TlbEntry};

/// Small key space so collisions, aliasing, and micro-slot conflicts
/// (vpns that map to the same direct-mapped slot) are the common case.
const VPNS: u64 = 40;
const ASIDS: u16 = 3;
/// Span (in pages) of the superpage entries mixed into the stream. Small
/// enough that spans overlap and collide inside the key space, large enough
/// to cover several micro-TLB slots.
const HUGE_SPAN: u64 = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert {
        vpn: u64,
        asid: u16,
        global: bool,
        huge: bool,
    },
    Lookup {
        vpn: u64,
        asid: u16,
    },
    FlushPage {
        vpn: u64,
        asid: u16,
    },
    FlushAsid {
        asid: u16,
    },
    FlushAll,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..VPNS, 0..ASIDS, any::<bool>(), any::<bool>())
            .prop_map(|(vpn, asid, global, huge)| Op::Insert { vpn, asid, global, huge }),
        8 => (0..VPNS, 0..ASIDS).prop_map(|(vpn, asid)| Op::Lookup { vpn, asid }),
        2 => (0..VPNS, 0..ASIDS).prop_map(|(vpn, asid)| Op::FlushPage { vpn, asid }),
        1 => (0..ASIDS).prop_map(|asid| Op::FlushAsid { asid }),
        1 => Just(Op::FlushAll),
    ]
}

fn entry(vpn: u64, asid: u16, global: bool, huge: bool) -> TlbEntry {
    let flags = if global {
        PteFlags::kernel_rw().with(PteFlags::G)
    } else {
        PteFlags::kernel_rw()
    };
    // Superpage entries store span-aligned bases, like the MMU refill path.
    let vpn = if huge { vpn & !(HUGE_SPAN - 1) } else { vpn };
    TlbEntry {
        vpn: VirtPageNum::new(vpn),
        asid,
        // Encode the key in the ppn so a stale micro-TLB hit for the wrong
        // key would be visible in the returned entry, not just in timing.
        ppn: PhysPageNum::new(0x4000 + vpn * 0x10 + u64::from(asid)),
        flags,
        page_size: if huge {
            HUGE_SPAN * PAGE_SIZE
        } else {
            PAGE_SIZE
        },
    }
}

fn apply(tlb: &mut Tlb, op: Op) -> Option<TlbEntry> {
    match op {
        Op::Insert {
            vpn,
            asid,
            global,
            huge,
        } => {
            tlb.insert(entry(vpn, asid, global, huge));
            None
        }
        Op::Lookup { vpn, asid } => tlb.lookup(
            VirtPageNum::new(vpn),
            asid,
            AccessKind::Read,
            PrivilegeMode::Supervisor,
        ),
        Op::FlushPage { vpn, asid } => {
            tlb.flush_page(VirtPageNum::new(vpn), asid);
            None
        }
        Op::FlushAsid { asid } => {
            tlb.flush_asid(asid);
            None
        }
        Op::FlushAll => {
            tlb.flush_all();
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fast-path and slow-path TLBs agree on every lookup result, every
    /// statistic, and the final occupancy across arbitrary interleavings
    /// of inserts, lookups, and flushes — at capacities small enough that
    /// round-robin eviction constantly recycles slots.
    #[test]
    fn micro_tlb_never_diverges_from_scan(
        capacity in 2usize..10,
        ops in proptest::collection::vec(arb_op(), 1..80),
    ) {
        let mut fast = Tlb::new(capacity);
        fast.set_fast_path(true);
        let mut slow = Tlb::new(capacity);
        slow.set_fast_path(false);
        prop_assert!(fast.fast_path());
        prop_assert!(!slow.fast_path());

        for (i, &op) in ops.iter().enumerate() {
            let a = apply(&mut fast, op);
            let b = apply(&mut slow, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged", i, op);
            prop_assert_eq!(
                fast.stats(), slow.stats(),
                "stats diverged after op {} = {:?}", i, op
            );
            prop_assert_eq!(
                fast.occupancy(), slow.occupancy(),
                "occupancy diverged after op {} = {:?}", i, op
            );
        }

        // Sweep the whole key space at the end: any stale micro entry the
        // random lookups missed surfaces here.
        for vpn in 0..VPNS {
            for asid in 0..ASIDS {
                let a = apply(&mut fast, Op::Lookup { vpn, asid });
                let b = apply(&mut slow, Op::Lookup { vpn, asid });
                prop_assert_eq!(a, b, "final sweep ({}, {}) diverged", vpn, asid);
            }
        }
        prop_assert_eq!(fast.stats(), slow.stats());
    }

    /// Toggling the fast path mid-stream (as `Kernel::set_fast_paths` does
    /// after boot) never desynchronizes the two: a TLB that flips modes at
    /// an arbitrary point still matches an always-slow reference.
    #[test]
    fn toggling_fast_path_midstream_is_safe(
        ops in proptest::collection::vec(arb_op(), 2..60),
        toggle_at in 0usize..60,
        enable in any::<bool>(),
    ) {
        let mut toggled = Tlb::new(4);
        let mut reference = Tlb::new(4);
        reference.set_fast_path(false);

        for (i, &op) in ops.iter().enumerate() {
            if i == toggle_at % ops.len() {
                toggled.set_fast_path(enable);
            }
            let a = apply(&mut toggled, op);
            let b = apply(&mut reference, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged after toggle", i, op);
            prop_assert_eq!(toggled.stats(), reference.stats());
        }
    }
}
