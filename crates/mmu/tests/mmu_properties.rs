//! Property tests: the TLB is a transparent cache (translation results with
//! a TLB in front must equal raw walker results), and the walker composes
//! mappings correctly.

use proptest::prelude::*;
use ptstore_core::{
    AccessContext, AccessKind, Channel, PagingScheme, PhysAddr, PhysPageNum, PrivilegeMode,
    SecureRegion, VirtAddr, MIB, PAGE_SIZE,
};
use ptstore_mem::Bus;
use ptstore_mmu::{Mmu, PageTableWalker, Pte, PteFlags, Satp};

/// Builds a machine with a secure region and a root table in it.
fn machine() -> (Bus, SecureRegion, PhysAddr) {
    let mut bus = Bus::new(256 * MIB);
    let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB).unwrap();
    bus.install_secure_region(&region).unwrap();
    let root = region.base();
    (bus, region, root)
}

/// Maps `va -> ppn` with a full 3-level chain inside the secure region,
/// using table pages at deterministic offsets per (va) to avoid collisions.
fn map_page(
    bus: &mut Bus,
    region: &SecureRegion,
    root: PhysAddr,
    idx: u64,
    va: VirtAddr,
    ppn: PhysPageNum,
    flags: PteFlags,
) {
    let ctx = AccessContext::supervisor(true);
    let l1 = region.base() + (1 + idx * 2) * PAGE_SIZE;
    let l0 = region.base() + (2 + idx * 2) * PAGE_SIZE;
    // Only install the intermediate entries if the slots are still empty, so
    // multiple mappings in the same run stay consistent for distinct vpn2.
    let root_slot = root + va.vpn_slice(2) * 8;
    let cur = bus.read::<u64>(root_slot, Channel::SecurePt, ctx).unwrap();
    let l1 = if Pte::from_bits(cur).is_table() {
        Pte::from_bits(cur).phys_addr()
    } else {
        bus.write::<u64>(
            root_slot,
            Pte::table(PhysPageNum::from(l1)).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        l1
    };
    let l1_slot = l1 + va.vpn_slice(1) * 8;
    let cur = bus.read::<u64>(l1_slot, Channel::SecurePt, ctx).unwrap();
    let l0 = if Pte::from_bits(cur).is_table() {
        Pte::from_bits(cur).phys_addr()
    } else {
        bus.write::<u64>(
            l1_slot,
            Pte::table(PhysPageNum::from(l0)).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        l0
    };
    bus.write::<u64>(
        l0 + va.vpn_slice(0) * 8,
        Pte::leaf(ppn, flags).bits(),
        Channel::SecurePt,
        ctx,
    )
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any user page mapping, translation through the MMU (TLB + walker,
    /// any access order) equals the raw walker result, byte for byte.
    #[test]
    fn tlb_is_transparent(
        vpns in proptest::collection::btree_set(1u64..(1 << 20), 1..12),
        offsets in proptest::collection::vec(0u64..PAGE_SIZE, 1..12),
    ) {
        let (mut bus, region, root) = machine();
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 3, true);
        let vpns: Vec<u64> = vpns.into_iter().collect();
        for (i, &vpn) in vpns.iter().enumerate() {
            let va = VirtAddr::new(vpn << 12);
            map_page(
                &mut bus,
                &region,
                root,
                i as u64,
                va,
                PhysPageNum::new(0x1000 + i as u64),
                PteFlags::user_rw(),
            );
        }
        let mut mmu = Mmu::new();
        mmu.satp = satp;
        let walker = PageTableWalker::new();
        // Access each page several times, interleaved, comparing MMU vs
        // walker each time.
        for round in 0..3 {
            for (i, &vpn) in vpns.iter().enumerate() {
                let off = offsets[(i + round) % offsets.len()];
                let va = VirtAddr::new((vpn << 12) + off);
                let via_mmu = mmu
                    .translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
                    .expect("mapped")
                    .pa();
                let via_walker = walker
                    .translate(&mut bus, satp, va, AccessKind::Read, PrivilegeMode::User)
                    .expect("mapped")
                    .pa;
                prop_assert_eq!(via_mmu, via_walker, "va {}", va);
            }
        }
        // With ≤ 8 distinct pages the D-TLB should be serving hits by now.
        if vpns.len() <= 8 {
            prop_assert!(mmu.dtlb_stats().hits > 0);
        }
    }

    /// Unmapped or permission-violating accesses fault identically through
    /// the TLB path and the raw walker.
    #[test]
    fn faults_are_consistent(vpn in 1u64..(1 << 20), write in any::<bool>()) {
        let (mut bus, region, root) = machine();
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 3, true);
        let va = VirtAddr::new(vpn << 12);
        // Map read-only.
        map_page(&mut bus, &region, root, 0, va, PhysPageNum::new(0x1000), PteFlags::user_ro());
        let mut mmu = Mmu::new();
        mmu.satp = satp;
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let via_mmu = mmu.translate_data(&mut bus, va, kind, PrivilegeMode::User);
        let via_walker =
            PageTableWalker::new().translate(&mut bus, satp, va, kind, PrivilegeMode::User);
        prop_assert_eq!(via_mmu.is_ok(), via_walker.is_ok());
        if write {
            prop_assert!(via_mmu.is_err(), "read-only page rejects writes");
        }
        // A wholly unmapped address faults in both.
        let other = VirtAddr::new(((vpn ^ 1) << 12) | 0x8);
        prop_assert!(mmu
            .translate_data(&mut bus, other, AccessKind::Read, PrivilegeMode::User)
            .is_err());
    }

    /// satp.S taints every walk: whatever the mapping, tables outside the
    /// secure region are rejected iff the bit is set.
    #[test]
    fn satp_s_gates_origin(vpn in 1u64..(1 << 20), s_bit in any::<bool>()) {
        let mut bus = Bus::new(256 * MIB);
        let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB).unwrap();
        bus.install_secure_region(&region).unwrap();
        // Root table in NORMAL memory (an injected table).
        let root = PhysAddr::new(8 * MIB);
        let ctx = AccessContext::supervisor(false);
        let va = VirtAddr::new(vpn << 12);
        // 1 GiB identity superpage covering the va (ppn aligned).
        let gib_ppn = (va.as_u64() >> 30) << 18;
        bus.write::<u64>(
            root + va.vpn_slice(2) * 8,
            Pte::leaf(PhysPageNum::new(gib_ppn), PteFlags::user_rw()).bits(),
            Channel::Regular,
            ctx,
        )
        .unwrap();
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, s_bit);
        let out = PageTableWalker::new().translate(
            &mut bus,
            satp,
            va,
            AccessKind::Read,
            PrivilegeMode::User,
        );
        prop_assert_eq!(out.is_err(), s_bit, "satp.S={} should gate the walk", s_bit);
    }
}
