//! The `satp` CSR with PTStore's S-bit extension.
//!
//! Standard RV64 `satp` layout: `MODE[63:60] | ASID[59:44] | PPN[43:0]`.
//! PTStore adds an **S-bit** telling the walker whether the secure-region
//! origin check is armed (paper §IV-A1): it is off during early boot (the
//! region does not exist yet) and switched on once the kernel has moved all
//! page tables into the secure region. The paper does not pin down which bit
//! encodes S; this model repurposes the top ASID bit (bit 59), shrinking the
//! usable ASID space to 15 bits — documented as a model choice.

use core::fmt;

use ptstore_core::{PhysAddr, PhysPageNum};
use serde::{Deserialize, Serialize};

const MODE_SHIFT: u64 = 60;
const MODE_BARE: u64 = 0;
const MODE_SV39: u64 = 8;
const S_BIT: u64 = 1 << 59;
const ASID_SHIFT: u64 = 44;
const ASID_MASK: u64 = 0x7fff; // 15 bits after the S-bit carve-out
const PPN_MASK: u64 = (1 << 44) - 1;

/// A decoded `satp` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Satp {
    /// Sv39 translation enabled (false = Bare mode).
    pub sv39: bool,
    /// PTStore: the walker secure-region check is armed.
    pub s_bit: bool,
    /// Address-space identifier (15 bits in this model).
    pub asid: u16,
    /// Root page-table physical page number.
    pub root_ppn: PhysPageNum,
}

impl Satp {
    /// Bare mode: no translation (M-mode boot state).
    pub const fn bare() -> Self {
        Self {
            sv39: false,
            s_bit: false,
            asid: 0,
            root_ppn: PhysPageNum::new(0),
        }
    }

    /// Sv39 translation rooted at `root_ppn`.
    pub const fn sv39(root_ppn: PhysPageNum, asid: u16, s_bit: bool) -> Self {
        Self {
            sv39: true,
            s_bit,
            asid,
            root_ppn,
        }
    }

    /// Physical address of the root page table.
    pub const fn root_addr(&self) -> PhysAddr {
        self.root_ppn.base_addr()
    }

    /// Encodes to the raw CSR value.
    pub fn to_bits(self) -> u64 {
        let mode = if self.sv39 { MODE_SV39 } else { MODE_BARE };
        (mode << MODE_SHIFT)
            | (if self.s_bit { S_BIT } else { 0 })
            | (((self.asid as u64) & ASID_MASK) << ASID_SHIFT)
            | (self.root_ppn.as_u64() & PPN_MASK)
    }

    /// Decodes from the raw CSR value. Unknown modes decode as Bare.
    pub fn from_bits(bits: u64) -> Self {
        let mode = bits >> MODE_SHIFT;
        Self {
            sv39: mode == MODE_SV39,
            s_bit: bits & S_BIT != 0,
            asid: ((bits >> ASID_SHIFT) & ASID_MASK) as u16,
            root_ppn: PhysPageNum::new(bits & PPN_MASK),
        }
    }
}

impl fmt::Display for Satp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sv39 {
            write!(
                f,
                "sv39 root={} asid={} s={}",
                self.root_ppn,
                self.asid,
                if self.s_bit { 1 } else { 0 }
            )
        } else {
            f.write_str("bare")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let s = Satp::sv39(PhysPageNum::new(0xFC123), 0x1abc, true);
        let decoded = Satp::from_bits(s.to_bits());
        assert_eq!(decoded, s);
        assert!(decoded.s_bit);
        assert_eq!(decoded.asid, 0x1abc);
    }

    #[test]
    fn bare_round_trip() {
        assert_eq!(Satp::from_bits(Satp::bare().to_bits()), Satp::bare());
    }

    #[test]
    fn s_bit_independent_of_asid() {
        let without = Satp::sv39(PhysPageNum::new(1), 0x7fff, false);
        let with = Satp::sv39(PhysPageNum::new(1), 0x7fff, true);
        assert_ne!(without.to_bits(), with.to_bits());
        assert_eq!(Satp::from_bits(without.to_bits()).asid, 0x7fff);
        assert_eq!(Satp::from_bits(with.to_bits()).asid, 0x7fff);
    }

    #[test]
    fn root_addr() {
        let s = Satp::sv39(PhysPageNum::new(0x1000), 0, false);
        assert_eq!(s.root_addr(), PhysAddr::new(0x1000 << 12));
    }

    #[test]
    fn unknown_mode_is_bare() {
        let bits = 5u64 << MODE_SHIFT;
        assert!(!Satp::from_bits(bits).sv39);
    }
}
