//! The `satp` CSR with PTStore's S-bit extension.
//!
//! Standard RV64 `satp` layout: `MODE[63:60] | ASID[59:44] | PPN[43:0]`.
//! The MODE field selects the paging scheme — 0 Bare, 8 Sv39, 9 Sv48,
//! 10 Sv57 ([`PagingScheme`]) — and this model encodes/decodes all three.
//! PTStore adds an **S-bit** telling the walker whether the secure-region
//! origin check is armed (paper §IV-A1): it is off during early boot (the
//! region does not exist yet) and switched on once the kernel has moved all
//! page tables into the secure region. The paper does not pin down which bit
//! encodes S; this model repurposes the top ASID bit (bit 59), shrinking the
//! usable ASID space to 15 bits — documented as a model choice.

use core::fmt;

use ptstore_core::{PagingScheme, PhysAddr, PhysPageNum};
use serde::{Deserialize, Serialize};

const MODE_SHIFT: u64 = 60;
const MODE_BARE: u64 = 0;
const S_BIT: u64 = 1 << 59;
const ASID_SHIFT: u64 = 44;
const ASID_MASK: u64 = 0x7fff; // 15 bits after the S-bit carve-out
const PPN_MASK: u64 = (1 << 44) - 1;

/// A decoded `satp` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Satp {
    /// The active translation scheme; `None` is Bare mode.
    pub scheme: Option<PagingScheme>,
    /// PTStore: the walker secure-region check is armed.
    pub s_bit: bool,
    /// Address-space identifier (15 bits in this model).
    pub asid: u16,
    /// Root page-table physical page number.
    pub root_ppn: PhysPageNum,
}

impl Satp {
    /// Bare mode: no translation (M-mode boot state).
    pub const fn bare() -> Self {
        Self {
            scheme: None,
            s_bit: false,
            asid: 0,
            root_ppn: PhysPageNum::new(0),
        }
    }

    /// Translation under `scheme`, rooted at `root_ppn`.
    pub const fn new(scheme: PagingScheme, root_ppn: PhysPageNum, asid: u16, s_bit: bool) -> Self {
        Self {
            scheme: Some(scheme),
            s_bit,
            asid,
            root_ppn,
        }
    }

    /// True when translation is enabled (any scheme; false = Bare).
    pub const fn translating(&self) -> bool {
        self.scheme.is_some()
    }

    /// Physical address of the root page table.
    pub const fn root_addr(&self) -> PhysAddr {
        self.root_ppn.base_addr()
    }

    /// Encodes to the raw CSR value.
    pub fn to_bits(self) -> u64 {
        let mode = self.scheme.map_or(MODE_BARE, PagingScheme::satp_mode);
        (mode << MODE_SHIFT)
            | (if self.s_bit { S_BIT } else { 0 })
            | (((self.asid as u64) & ASID_MASK) << ASID_SHIFT)
            | (self.root_ppn.as_u64() & PPN_MASK)
    }

    /// Decodes from the raw CSR value. Unknown modes decode as Bare.
    pub fn from_bits(bits: u64) -> Self {
        Self {
            scheme: PagingScheme::from_satp_mode(bits >> MODE_SHIFT),
            s_bit: bits & S_BIT != 0,
            asid: ((bits >> ASID_SHIFT) & ASID_MASK) as u16,
            root_ppn: PhysPageNum::new(bits & PPN_MASK),
        }
    }
}

impl fmt::Display for Satp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.scheme {
            Some(scheme) => write!(
                f,
                "{scheme} root={} asid={} s={}",
                self.root_ppn,
                self.asid,
                if self.s_bit { 1 } else { 0 }
            ),
            None => f.write_str("bare"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for scheme in PagingScheme::ALL {
            let s = Satp::new(scheme, PhysPageNum::new(0xFC123), 0x1abc, true);
            let decoded = Satp::from_bits(s.to_bits());
            assert_eq!(decoded, s, "{scheme}");
            assert!(decoded.s_bit);
            assert_eq!(decoded.asid, 0x1abc);
            assert_eq!(decoded.scheme, Some(scheme));
        }
    }

    #[test]
    fn mode_field_encodes_the_scheme() {
        let bits =
            |scheme| Satp::new(scheme, PhysPageNum::new(1), 0, false).to_bits() >> MODE_SHIFT;
        assert_eq!(bits(PagingScheme::Sv39), 8);
        assert_eq!(bits(PagingScheme::Sv48), 9);
        assert_eq!(bits(PagingScheme::Sv57), 10);
        assert_eq!(Satp::bare().to_bits() >> MODE_SHIFT, 0);
    }

    #[test]
    fn bare_round_trip() {
        assert_eq!(Satp::from_bits(Satp::bare().to_bits()), Satp::bare());
        assert!(!Satp::bare().translating());
    }

    #[test]
    fn s_bit_independent_of_asid() {
        let without = Satp::new(PagingScheme::Sv39, PhysPageNum::new(1), 0x7fff, false);
        let with = Satp::new(PagingScheme::Sv39, PhysPageNum::new(1), 0x7fff, true);
        assert_ne!(without.to_bits(), with.to_bits());
        assert_eq!(Satp::from_bits(without.to_bits()).asid, 0x7fff);
        assert_eq!(Satp::from_bits(with.to_bits()).asid, 0x7fff);
    }

    #[test]
    fn root_addr() {
        let s = Satp::new(PagingScheme::Sv48, PhysPageNum::new(0x1000), 0, false);
        assert_eq!(s.root_addr(), PhysAddr::new(0x1000 << 12));
    }

    #[test]
    fn unknown_mode_is_bare() {
        let bits = 5u64 << MODE_SHIFT;
        assert_eq!(Satp::from_bits(bits).scheme, None);
    }

    #[test]
    fn displays_scheme_name() {
        let s = Satp::new(PagingScheme::Sv57, PhysPageNum::new(2), 7, true);
        assert_eq!(s.to_string(), "sv57 root=0x2 asid=7 s=1");
        assert_eq!(Satp::bare().to_string(), "bare");
    }
}
