//! Translation lookaside buffers.
//!
//! The prototype core has a 32-entry I-TLB and an 8-entry D-TLB (paper
//! Table II). Entries cache the leaf PTE's physical page and *permissions*;
//! a hit is validated against the cached permissions only. That is exactly
//! the surface the TLB-inconsistency attack of §V-E5 exploits — a stale
//! writable entry lets software keep writing a page whose PTE was already
//! tightened — and the reason PTStore's physical-address PMP check matters:
//! it still intercepts the access after the (stale) translation.

use ptstore_core::{AccessKind, PhysPageNum, PrivilegeMode, VirtPageNum, PAGE_SIZE};
use ptstore_trace::{FlushScope, Snapshot, TlbUnit, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use crate::pte::PteFlags;

/// One cached translation. A superpage leaf is cached as a single entry
/// spanning `page_size / 4 KiB` consecutive pages (`vpn`/`ppn` hold the
/// span-aligned bases), so one 2 MiB mapping costs one slot, not 512.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbEntry {
    /// Virtual page (span-aligned base for superpage entries).
    pub vpn: VirtPageNum,
    /// Address-space identifier the entry belongs to.
    pub asid: u16,
    /// Cached physical page (span-aligned base for superpage entries).
    pub ppn: PhysPageNum,
    /// Cached leaf permissions.
    pub flags: PteFlags,
    /// Size of the cached leaf in bytes (4 KiB, 2 MiB, 1 GiB, ...).
    pub page_size: u64,
}

impl TlbEntry {
    /// Number of 4 KiB pages this entry spans (1 for a base-page entry).
    pub fn span_pages(&self) -> u64 {
        self.page_size / PAGE_SIZE
    }

    /// True when `vpn` falls inside this entry's span.
    pub fn covers(&self, vpn: VirtPageNum) -> bool {
        vpn.as_u64().wrapping_sub(self.vpn.as_u64()) < self.span_pages()
    }

    /// The physical page backing `vpn` (which must be covered).
    pub fn ppn_for(&self, vpn: VirtPageNum) -> PhysPageNum {
        PhysPageNum::new(self.ppn.as_u64() + (vpn.as_u64() - self.vpn.as_u64()))
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity replacement.
    pub evictions: u64,
    /// Flush operations served.
    pub flushes: u64,
}

impl Snapshot for TlbStats {
    fn delta(&self, earlier: &Self) -> Self {
        TlbStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            flushes: self.flushes - earlier.flushes,
        }
    }
}

/// Slots in the direct-mapped micro-TLB fronting the associative scan.
const MICRO_TLB_SLOTS: usize = 16;

/// One micro-TLB slot: the memoized result of the associative scan for a
/// specific `(vpn, asid)` key.
#[derive(Debug, Clone, Copy)]
struct MicroEntry {
    vpn: VirtPageNum,
    asid: u16,
    entry: TlbEntry,
}

/// A fully associative TLB with round-robin replacement.
///
/// A small direct-mapped micro-TLB (host-side only) fronts the associative
/// scan: it memoizes the scan result per `(vpn, asid)` and is conservatively
/// invalidated by every mutation — insert, eviction, and all three flush
/// scopes — so a micro hit returns exactly what the scan would. Modeled
/// behaviour (hit/miss accounting, trace events, returned entries) is
/// identical with the fast path on or off.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    next_victim: usize,
    /// Live-entry count, maintained incrementally (== the number of `Some`
    /// slots in `entries` at all times).
    live: usize,
    micro: [Option<MicroEntry>; MICRO_TLB_SLOTS],
    fast_path: bool,
    stats: TlbStats,
    unit: TlbUnit,
    /// Owning hart, stamped into trace events (0 on single-hart machines).
    hart: u32,
    trace: Option<TraceSink>,
}

impl Tlb {
    /// A TLB with `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_unit(capacity, TlbUnit::Data)
    }

    /// A TLB with `capacity` entries, tagged as `unit` in trace events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_unit(capacity: usize, unit: TlbUnit) -> Self {
        assert!(capacity > 0, "tlb capacity must be non-zero");
        Self {
            entries: vec![None; capacity],
            next_victim: 0,
            live: 0,
            micro: [None; MICRO_TLB_SLOTS],
            fast_path: ptstore_core::fastpath::default_enabled(),
            stats: TlbStats::default(),
            unit,
            hart: 0,
            trace: None,
        }
    }

    /// Enables or disables the micro-TLB fast path. Purely a host-side
    /// speed switch: lookups, stats, and trace events are identical either
    /// way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
        self.micro = [None; MICRO_TLB_SLOTS];
    }

    /// Whether the micro-TLB fast path is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    #[inline]
    fn micro_index(vpn: VirtPageNum) -> usize {
        (vpn.as_u64() as usize) & (MICRO_TLB_SLOTS - 1)
    }

    /// Drops any memoized scan result for `vpn` (any ASID sharing its slot).
    #[inline]
    fn micro_invalidate_vpn(&mut self, vpn: VirtPageNum) {
        self.micro[Self::micro_index(vpn)] = None;
    }

    #[inline]
    fn micro_invalidate_all(&mut self) {
        self.micro = [None; MICRO_TLB_SLOTS];
    }

    /// Tags this TLB's trace events with the owning hart's id.
    pub fn set_hart(&mut self, hart: u32) {
        self.hart = hart;
    }

    /// Attaches (or detaches) a trace sink for hit/miss/flush events.
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.trace = sink;
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Looks up `vpn` for `asid`; on a hit, validates `kind`/`mode` against
    /// the *cached* flags and returns the entry. Global entries match any
    /// ASID. A permission mismatch on a hit reports the entry anyway — the
    /// caller decides whether that is a page fault (hardware re-walks on
    /// permission faults; the model treats cached-deny as a miss so the
    /// walker gives the authoritative answer).
    pub fn lookup(
        &mut self,
        vpn: VirtPageNum,
        asid: u16,
        kind: AccessKind,
        mode: PrivilegeMode,
    ) -> Option<TlbEntry> {
        let found = if self.fast_path {
            let idx = Self::micro_index(vpn);
            match self.micro[idx] {
                Some(m) if m.vpn == vpn && m.asid == asid => Some(m.entry),
                _ => {
                    let found = self.scan(vpn, asid);
                    if let Some(entry) = found {
                        self.micro[idx] = Some(MicroEntry { vpn, asid, entry });
                    }
                    found
                }
            }
        } else {
            self.scan(vpn, asid)
        };
        match found {
            Some(e) if Self::permits(e.flags, kind, mode) => {
                self.stats.hits += 1;
                if let Some(sink) = &self.trace {
                    sink.emit(TraceEvent::TlbHit {
                        unit: self.unit,
                        vpn: vpn.as_u64(),
                        asid,
                        hart: self.hart,
                    });
                }
                Some(e)
            }
            _ => {
                self.stats.misses += 1;
                if let Some(sink) = &self.trace {
                    sink.emit(TraceEvent::TlbMiss {
                        unit: self.unit,
                        vpn: vpn.as_u64(),
                        asid,
                        hart: self.hart,
                    });
                }
                None
            }
        }
    }

    /// The associative scan behind [`Self::lookup`]: first slot whose entry
    /// covers `vpn` in this address space (or globally). Superpage entries
    /// match every page in their span.
    #[inline]
    fn scan(&self, vpn: VirtPageNum, asid: u16) -> Option<TlbEntry> {
        self.entries
            .iter()
            .flatten()
            .copied()
            .find(|e| e.covers(vpn) && (e.asid == asid || e.flags.global()))
    }

    fn permits(flags: PteFlags, kind: AccessKind, mode: PrivilegeMode) -> bool {
        let rwx = match kind {
            AccessKind::Read => flags.readable(),
            AccessKind::Write => flags.writable(),
            AccessKind::Execute => flags.executable(),
        };
        let priv_ok = match mode {
            PrivilegeMode::User => flags.user(),
            PrivilegeMode::Supervisor => !(flags.user() && kind == AccessKind::Execute),
            PrivilegeMode::Machine => true,
        };
        rwx && priv_ok
    }

    /// Drops memoized scan results affected by a mutation of `entry`: the
    /// single slot for a base-page entry, everything for a superpage entry
    /// (whose span may be memoized under any covered vpn).
    #[inline]
    fn micro_invalidate_entry(&mut self, entry: &TlbEntry) {
        if entry.span_pages() == 1 {
            self.micro_invalidate_vpn(entry.vpn);
        } else {
            self.micro_invalidate_all();
        }
    }

    /// Inserts (or replaces) a translation.
    pub fn insert(&mut self, entry: TlbEntry) {
        // The scan result for the covered vpns changes whatever branch we
        // take.
        self.micro_invalidate_entry(&entry);
        // Replace an existing mapping of the same (vpn, asid) first.
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|s| matches!(s, Some(e) if e.vpn == entry.vpn && e.asid == entry.asid))
        {
            *slot = Some(entry);
            return;
        }
        if let Some(slot) = self.entries.iter_mut().find(|s| s.is_none()) {
            *slot = Some(entry);
            self.live += 1;
            return;
        }
        // Round-robin eviction.
        if let Some(victim) = self.entries[self.next_victim] {
            self.micro_invalidate_entry(&victim);
        }
        self.entries[self.next_victim] = Some(entry);
        self.next_victim = (self.next_victim + 1) % self.entries.len();
        self.stats.evictions += 1;
    }

    /// `sfence.vma x0, x0`: flush everything.
    pub fn flush_all(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.live = 0;
        self.micro_invalidate_all();
        self.stats.flushes += 1;
        self.emit_flush(FlushScope::All);
    }

    /// `sfence.vma va, asid`: flush one page of one address space. A
    /// superpage entry covering `vpn` is flushed whole, as on hardware.
    pub fn flush_page(&mut self, vpn: VirtPageNum, asid: u16) {
        let mut flushed_superpage = false;
        for slot in self.entries.iter_mut() {
            if matches!(slot, Some(e) if e.covers(vpn) && e.asid == asid) {
                flushed_superpage |= slot.unwrap().span_pages() > 1;
                *slot = None;
                self.live -= 1;
            }
        }
        if flushed_superpage {
            self.micro_invalidate_all();
        } else {
            self.micro_invalidate_vpn(vpn);
        }
        self.stats.flushes += 1;
        self.emit_flush(FlushScope::Page {
            vpn: vpn.as_u64(),
            asid,
        });
    }

    /// `sfence.vma x0, asid`: flush one address space (non-global entries).
    pub fn flush_asid(&mut self, asid: u16) {
        for slot in self.entries.iter_mut() {
            if matches!(slot, Some(e) if e.asid == asid && !e.flags.global()) {
                *slot = None;
                self.live -= 1;
            }
        }
        self.micro_invalidate_all();
        self.stats.flushes += 1;
        self.emit_flush(FlushScope::Asid { asid });
    }

    fn emit_flush(&self, scope: FlushScope) {
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::TlbFlush {
                unit: self.unit,
                scope,
                hart: self.hart,
            });
        }
    }

    /// Iterates over the live entries (diagnostics / invariant oracle).
    /// Order is slot order; no accounting is touched.
    pub fn entries(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.iter().flatten()
    }

    /// Number of live entries (diagnostics), maintained incrementally.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(self.live, self.entries.iter().flatten().count());
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64, asid: u16, ppn: u64, flags: PteFlags) -> TlbEntry {
        TlbEntry {
            vpn: VirtPageNum::new(vpn),
            asid,
            ppn: PhysPageNum::new(ppn),
            flags,
            page_size: PAGE_SIZE,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(5, 1, 100, PteFlags::user_rw()));
        let hit = tlb
            .lookup(
                VirtPageNum::new(5),
                1,
                AccessKind::Read,
                PrivilegeMode::User,
            )
            .unwrap();
        assert_eq!(hit.ppn, PhysPageNum::new(100));
        assert!(tlb
            .lookup(
                VirtPageNum::new(6),
                1,
                AccessKind::Read,
                PrivilegeMode::User
            )
            .is_none());
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn asid_isolation_and_global() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(5, 1, 100, PteFlags::user_rw()));
        tlb.insert(entry(7, 1, 200, PteFlags::kernel_rw().with(PteFlags::G)));
        // Other ASID misses the private entry...
        assert!(tlb
            .lookup(
                VirtPageNum::new(5),
                2,
                AccessKind::Read,
                PrivilegeMode::User
            )
            .is_none());
        // ...but hits the global one.
        assert!(tlb
            .lookup(
                VirtPageNum::new(7),
                2,
                AccessKind::Read,
                PrivilegeMode::Supervisor
            )
            .is_some());
    }

    #[test]
    fn permission_mismatch_is_miss() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(5, 1, 100, PteFlags::user_ro()));
        assert!(tlb
            .lookup(
                VirtPageNum::new(5),
                1,
                AccessKind::Write,
                PrivilegeMode::User
            )
            .is_none());
        // Kernel page invisible to user.
        tlb.insert(entry(6, 1, 101, PteFlags::kernel_rw()));
        assert!(tlb
            .lookup(
                VirtPageNum::new(6),
                1,
                AccessKind::Read,
                PrivilegeMode::User
            )
            .is_none());
        // Supervisor cannot execute user pages.
        tlb.insert(entry(7, 1, 102, PteFlags::user_rx()));
        assert!(tlb
            .lookup(
                VirtPageNum::new(7),
                1,
                AccessKind::Execute,
                PrivilegeMode::Supervisor
            )
            .is_none());
    }

    #[test]
    fn stale_entry_survives_without_flush() {
        // The TLB-inconsistency surface: the PTE was tightened but no
        // sfence.vma was issued, so writes keep hitting.
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(5, 1, 100, PteFlags::user_rw()));
        // (PTE in memory now changed to read-only — TLB does not know.)
        assert!(tlb
            .lookup(
                VirtPageNum::new(5),
                1,
                AccessKind::Write,
                PrivilegeMode::User
            )
            .is_some());
        // After the fence the stale entry is gone.
        tlb.flush_page(VirtPageNum::new(5), 1);
        assert!(tlb
            .lookup(
                VirtPageNum::new(5),
                1,
                AccessKind::Write,
                PrivilegeMode::User
            )
            .is_none());
    }

    #[test]
    fn replacement_is_bounded() {
        let mut tlb = Tlb::new(2);
        for i in 0..10 {
            tlb.insert(entry(i, 1, i + 100, PteFlags::user_rw()));
        }
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.stats().evictions, 8);
    }

    #[test]
    fn insert_replaces_same_vpn() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(5, 1, 100, PteFlags::user_rw()));
        tlb.insert(entry(5, 1, 999, PteFlags::user_rw()));
        assert_eq!(tlb.occupancy(), 1);
        let hit = tlb
            .lookup(
                VirtPageNum::new(5),
                1,
                AccessKind::Read,
                PrivilegeMode::User,
            )
            .unwrap();
        assert_eq!(hit.ppn, PhysPageNum::new(999));
    }

    #[test]
    fn flush_asid_spares_globals() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 1, 100, PteFlags::user_rw()));
        tlb.insert(entry(2, 1, 200, PteFlags::kernel_rw().with(PteFlags::G)));
        tlb.flush_asid(1);
        assert_eq!(tlb.occupancy(), 1);
        assert!(tlb
            .lookup(
                VirtPageNum::new(2),
                1,
                AccessKind::Read,
                PrivilegeMode::Supervisor
            )
            .is_some());
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 1, 100, PteFlags::user_rw()));
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn superpage_entry_covers_its_span() {
        let mut tlb = Tlb::new(4);
        // One 2 MiB entry: vpn/ppn bases 512-aligned, spanning 512 pages.
        let huge = TlbEntry {
            vpn: VirtPageNum::new(0x200),
            asid: 1,
            ppn: PhysPageNum::new(0x4000),
            flags: PteFlags::user_rw(),
            page_size: 512 * PAGE_SIZE,
        };
        tlb.insert(huge);
        // Any page in the span hits, with the right offset applied.
        let hit = tlb
            .lookup(
                VirtPageNum::new(0x200 + 17),
                1,
                AccessKind::Read,
                PrivilegeMode::User,
            )
            .unwrap();
        assert_eq!(
            hit.ppn_for(VirtPageNum::new(0x200 + 17)),
            PhysPageNum::new(0x4000 + 17)
        );
        // One page past the span misses.
        assert!(tlb
            .lookup(
                VirtPageNum::new(0x200 + 512),
                1,
                AccessKind::Read,
                PrivilegeMode::User
            )
            .is_none());
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn flushing_any_covered_page_drops_the_superpage() {
        let mut tlb = Tlb::new(4);
        let huge = TlbEntry {
            vpn: VirtPageNum::new(0x200),
            asid: 1,
            ppn: PhysPageNum::new(0x4000),
            flags: PteFlags::user_rw(),
            page_size: 512 * PAGE_SIZE,
        };
        tlb.insert(huge);
        // Warm the micro-TLB under a non-base vpn, then flush via another.
        tlb.lookup(
            VirtPageNum::new(0x200 + 3),
            1,
            AccessKind::Read,
            PrivilegeMode::User,
        )
        .unwrap();
        tlb.flush_page(VirtPageNum::new(0x200 + 100), 1);
        assert_eq!(tlb.occupancy(), 0);
        assert!(tlb
            .lookup(
                VirtPageNum::new(0x200 + 3),
                1,
                AccessKind::Read,
                PrivilegeMode::User
            )
            .is_none());
    }
}
