//! # ptstore-mmu
//!
//! The Sv39 memory-management unit of the PTStore machine model:
//!
//! * [`pte::Pte`] — RV64 Sv39 page-table entries;
//! * [`satp::Satp`] — the `satp` CSR extended with PTStore's **S-bit**
//!   (paper §IV-A1) that arms the walker's secure-region origin check;
//! * [`walker::PageTableWalker`] — the hardware page-table walker. Every
//!   page-table fetch goes through the memory bus on the
//!   [`Channel::Ptw`](ptstore_core::Channel) channel, so when `satp.S` is
//!   set, a fetch outside the secure region raises an access fault — this is
//!   what defeats PT-Injection;
//! * [`tlb::Tlb`] — the I/D TLBs (32-/8-entry per paper Table II). TLB hits
//!   use *cached* permissions, faithfully reproducing the TLB-inconsistency
//!   attack surface of §V-E5; PTStore still blocks those attacks because the
//!   PMP check happens on the physical access itself.
//! * [`mmu::Mmu`] — TLBs + walker behind one `translate` entry point with
//!   hit/miss statistics.
//!
//! ```
//! use ptstore_mmu::Satp;
//! use ptstore_core::PhysPageNum;
//!
//! // The satp CSR round-trips with the PTStore S-bit intact.
//! let satp = Satp::sv39(PhysPageNum::new(0x80000), 3, true);
//! assert!(Satp::from_bits(satp.to_bits()).s_bit);
//! ```

#![deny(missing_docs)]

pub mod mmu;
pub mod pte;
pub mod satp;
pub mod tlb;
pub mod walker;

pub use mmu::{Mmu, TranslationOutcome};
pub use pte::{Pte, PteFlags};
pub use ptstore_trace::Snapshot;
pub use satp::Satp;
pub use tlb::{Tlb, TlbEntry, TlbStats};
pub use walker::{PageTableWalker, TranslateError, WalkOutcome};
