//! # ptstore-mmu
//!
//! The memory-management unit of the PTStore machine model, generic over
//! the RV64 paging scheme (Sv39/Sv48/Sv57, selected by the `satp` MODE
//! field — see [`ptstore_core::PagingScheme`]):
//!
//! * [`pte::Pte`] — RV64 page-table entries (one format across schemes),
//!   behind the [`pte::GenericPte`] trait the walker is parameterized on;
//! * [`satp::Satp`] — the `satp` CSR extended with PTStore's **S-bit**
//!   (paper §IV-A1) that arms the walker's secure-region origin check;
//! * [`walker::PageTableWalker`] — the hardware page-table walker, looping
//!   over the active scheme's levels with superpage early-exit. Every
//!   page-table fetch goes through the memory bus on the
//!   [`Channel::Ptw`](ptstore_core::Channel) channel, so when `satp.S` is
//!   set, a fetch outside the secure region raises an access fault — this is
//!   what defeats PT-Injection;
//! * [`tlb::Tlb`] — the I/D TLBs (32-/8-entry per paper Table II), caching
//!   superpage leaves as single span entries. TLB hits use *cached*
//!   permissions, faithfully reproducing the TLB-inconsistency
//!   attack surface of §V-E5; PTStore still blocks those attacks because the
//!   PMP check happens on the physical access itself.
//! * [`mmu::Mmu`] — TLBs + walker behind one `translate` entry point with
//!   hit/miss statistics.
//!
//! ```
//! use ptstore_mmu::Satp;
//! use ptstore_core::{PagingScheme, PhysPageNum};
//!
//! // The satp CSR round-trips with the mode and PTStore S-bit intact.
//! let satp = Satp::new(PagingScheme::Sv48, PhysPageNum::new(0x80000), 3, true);
//! let decoded = Satp::from_bits(satp.to_bits());
//! assert_eq!(decoded.scheme, Some(PagingScheme::Sv48));
//! assert!(decoded.s_bit);
//! ```

#![deny(missing_docs)]

pub mod mmu;
pub mod pte;
pub mod satp;
pub mod tlb;
pub mod walker;

pub use mmu::{Mmu, TranslationOutcome};
pub use pte::{GenericPte, Pte, PteFlags};
pub use ptstore_trace::Snapshot;
pub use satp::Satp;
pub use tlb::{Tlb, TlbEntry, TlbStats};
pub use walker::{PageTableWalker, TranslateError, WalkOutcome};
