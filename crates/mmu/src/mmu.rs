//! The MMU front-end: TLB lookup, walk on miss, refill.

use ptstore_core::{AccessKind, PhysAddr, PrivilegeMode, VirtAddr, VirtPageNum, PAGE_SIZE};
use ptstore_trace::{TlbUnit, TraceSink};
use serde::{Deserialize, Serialize};

use ptstore_mem::Bus;

use crate::satp::Satp;
use crate::tlb::{Tlb, TlbEntry, TlbStats};
use crate::walker::{PageTableWalker, TranslateError, WalkOutcome};

/// How a translation was served — the cycle model charges differently for
/// hits and walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslationOutcome {
    /// Served from the TLB.
    TlbHit {
        /// Translated physical address.
        pa: PhysAddr,
    },
    /// Served by a page-table walk of `fetches` levels.
    Walk {
        /// Translated physical address.
        pa: PhysAddr,
        /// Number of page-table fetches performed.
        fetches: u32,
    },
}

impl TranslationOutcome {
    /// The translated physical address.
    pub fn pa(&self) -> PhysAddr {
        match *self {
            TranslationOutcome::TlbHit { pa } | TranslationOutcome::Walk { pa, .. } => pa,
        }
    }

    /// True when served from the TLB.
    pub fn is_hit(&self) -> bool {
        matches!(self, TranslationOutcome::TlbHit { .. })
    }
}

/// The memory-management unit: split I/D TLBs in front of the shared walker.
///
/// Prototype geometry (paper Table II): 32-entry I-TLB, 8-entry D-TLB.
#[derive(Debug, Clone)]
pub struct Mmu {
    itlb: Tlb,
    dtlb: Tlb,
    walker: PageTableWalker,
    /// Current `satp` (owned by the hart; updated on `switch_mm`).
    pub satp: Satp,
    /// Id of the owning hart (0 on single-hart machines).
    hart_id: usize,
}

impl Default for Mmu {
    fn default() -> Self {
        Self::new()
    }
}

impl Mmu {
    /// An MMU with the prototype's TLB geometry and translation off.
    pub fn new() -> Self {
        Self::with_tlb_sizes(32, 8)
    }

    /// An MMU with custom TLB sizes (for ablation experiments).
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn with_tlb_sizes(itlb: usize, dtlb: usize) -> Self {
        Self {
            itlb: Tlb::with_unit(itlb, TlbUnit::Instruction),
            dtlb: Tlb::with_unit(dtlb, TlbUnit::Data),
            walker: PageTableWalker::new(),
            satp: Satp::bare(),
            hart_id: 0,
        }
    }

    /// Attaches (or detaches) a trace sink on both TLBs. Walk-step events are
    /// emitted through the bus's sink, so attach the same sink there.
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.itlb.set_trace_sink(sink.clone());
        self.dtlb.set_trace_sink(sink);
    }

    /// Attributes this MMU (TLB events and walker fetches) to `hart`.
    pub fn set_hart_id(&mut self, hart: usize) {
        self.hart_id = hart;
        self.itlb.set_hart(hart as u32);
        self.dtlb.set_hart(hart as u32);
        self.walker.set_hart(hart);
    }

    /// The hart this MMU belongs to.
    pub fn hart_id(&self) -> usize {
        self.hart_id
    }

    /// Translates a data access.
    ///
    /// # Errors
    /// See [`PageTableWalker::translate`].
    pub fn translate_data(
        &mut self,
        bus: &mut Bus,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivilegeMode,
    ) -> Result<TranslationOutcome, TranslateError> {
        Self::translate_in(&mut self.dtlb, &self.walker, self.satp, bus, va, kind, mode)
    }

    /// Translates an instruction fetch.
    ///
    /// # Errors
    /// See [`PageTableWalker::translate`].
    pub fn translate_fetch(
        &mut self,
        bus: &mut Bus,
        va: VirtAddr,
        mode: PrivilegeMode,
    ) -> Result<TranslationOutcome, TranslateError> {
        Self::translate_in(
            &mut self.itlb,
            &self.walker,
            self.satp,
            bus,
            va,
            AccessKind::Execute,
            mode,
        )
    }

    fn translate_in(
        tlb: &mut Tlb,
        walker: &PageTableWalker,
        satp: Satp,
        bus: &mut Bus,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivilegeMode,
    ) -> Result<TranslationOutcome, TranslateError> {
        if !satp.translating() || mode == PrivilegeMode::Machine {
            return Ok(TranslationOutcome::TlbHit {
                pa: PhysAddr::new(va.as_u64()),
            });
        }
        let vpn = VirtPageNum::from(va);
        if let Some(e) = tlb.lookup(vpn, satp.asid, kind, mode) {
            return Ok(TranslationOutcome::TlbHit {
                pa: PhysAddr::new(e.ppn_for(vpn).base_addr().as_u64() + va.page_offset()),
            });
        }
        let WalkOutcome {
            pa,
            flags,
            fetches,
            page_size,
        } = walker.translate(bus, satp, va, kind, mode)?;
        // Refill at leaf granularity: one entry covers the whole superpage
        // span (vpn/ppn stored span-aligned; the walker has already checked
        // the leaf's alignment).
        let span_pages = page_size / PAGE_SIZE;
        tlb.insert(TlbEntry {
            vpn: VirtPageNum::new(vpn.as_u64() & !(span_pages - 1)),
            asid: satp.asid,
            ppn: ptstore_core::PhysPageNum::new((pa.as_u64() >> 12) & !(span_pages - 1)),
            flags,
            page_size,
        });
        Ok(TranslationOutcome::Walk { pa, fetches })
    }

    /// Enables or disables the micro-TLB fast path on both TLBs. Purely a
    /// host-side speed switch: modeled behaviour is identical either way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.itlb.set_fast_path(enabled);
        self.dtlb.set_fast_path(enabled);
    }

    /// `sfence.vma x0, x0` over both TLBs.
    pub fn sfence_all(&mut self) {
        self.itlb.flush_all();
        self.dtlb.flush_all();
    }

    /// `sfence.vma va, asid` over both TLBs.
    pub fn sfence_page(&mut self, va: VirtAddr, asid: u16) {
        let vpn = VirtPageNum::from(va);
        self.itlb.flush_page(vpn, asid);
        self.dtlb.flush_page(vpn, asid);
    }

    /// `sfence.vma x0, asid` over both TLBs.
    pub fn sfence_asid(&mut self, asid: u16) {
        self.itlb.flush_asid(asid);
        self.dtlb.flush_asid(asid);
    }

    /// I-TLB statistics.
    pub fn itlb_stats(&self) -> TlbStats {
        self.itlb.stats()
    }

    /// D-TLB statistics.
    pub fn dtlb_stats(&self) -> TlbStats {
        self.dtlb.stats()
    }

    /// Direct D-TLB access for fault-injection experiments (the
    /// TLB-inconsistency attack of paper §V-E5 plants a stale entry here).
    pub fn dtlb_mut(&mut self) -> &mut Tlb {
        &mut self.dtlb
    }

    /// Read-only I-TLB view (invariant oracle / diagnostics).
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// Read-only D-TLB view (invariant oracle / diagnostics).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// Direct I-TLB access for fault-injection experiments.
    pub fn itlb_mut(&mut self) -> &mut Tlb {
        &mut self.itlb
    }
}

const _: () = {
    // The D-TLB granularity assumption baked into refill.
    assert!(PAGE_SIZE == 4096);
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::{Pte, PteFlags};
    use ptstore_core::{AccessContext, Channel, PagingScheme, PhysPageNum, SecureRegion, MIB};

    fn machine() -> (Bus, Mmu, SecureRegion) {
        let mut bus = Bus::new(256 * MIB);
        let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB).unwrap();
        bus.install_secure_region(&region).unwrap();
        (bus, Mmu::new(), region)
    }

    fn map(
        bus: &mut Bus,
        region: &SecureRegion,
        va: VirtAddr,
        data_ppn: u64,
        flags: PteFlags,
    ) -> Satp {
        let ctx = AccessContext::supervisor(true);
        let root = region.base();
        let l1 = region.base() + PAGE_SIZE;
        let l0 = region.base() + 2 * PAGE_SIZE;
        bus.write::<u64>(
            root + va.vpn_slice(2) * 8,
            Pte::table(PhysPageNum::from(l1)).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        bus.write::<u64>(
            l1 + va.vpn_slice(1) * 8,
            Pte::table(PhysPageNum::from(l0)).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        bus.write::<u64>(
            l0 + va.vpn_slice(0) * 8,
            Pte::leaf(PhysPageNum::new(data_ppn), flags).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true)
    }

    #[test]
    fn miss_then_hit() {
        let (mut bus, mut mmu, region) = machine();
        let va = VirtAddr::new(0x4000_0123);
        mmu.satp = map(&mut bus, &region, va, 0x100, PteFlags::user_rw());
        let first = mmu
            .translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert!(!first.is_hit());
        assert_eq!(first.pa(), PhysAddr::new((0x100 << 12) | 0x123));
        let second = mmu
            .translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert!(second.is_hit());
        assert_eq!(second.pa(), first.pa());
        assert_eq!(mmu.dtlb_stats().hits, 1);
        assert_eq!(mmu.dtlb_stats().misses, 1);
    }

    #[test]
    fn sfence_forces_rewalk() {
        let (mut bus, mut mmu, region) = machine();
        let va = VirtAddr::new(0x4000_0000);
        mmu.satp = map(&mut bus, &region, va, 0x100, PteFlags::user_rw());
        mmu.translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        mmu.sfence_all();
        let after = mmu
            .translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert!(!after.is_hit());
    }

    #[test]
    fn stale_tlb_translation_still_hits_pmp() {
        // The §V-E5 scenario: a stale writable D-TLB entry points at a page
        // that has since been absorbed into the secure region. The stale
        // translation succeeds — but the physical write faults in the PMP.
        let (mut bus, mut mmu, region) = machine();
        let va = VirtAddr::new(0x5000_0000);
        let victim_page = (region.base() - PAGE_SIZE).as_u64() >> 12;
        mmu.satp = map(&mut bus, &region, va, victim_page, PteFlags::user_rw());
        let out = mmu
            .translate_data(&mut bus, va, AccessKind::Write, PrivilegeMode::User)
            .unwrap();
        // Kernel now grows the secure region over the victim page WITHOUT
        // flushing the TLB (the modelled bug).
        let grown = region.grow_down(PAGE_SIZE).unwrap();
        bus.update_secure_region(&grown).unwrap();
        // Stale translation still hits...
        let stale = mmu
            .translate_data(&mut bus, va, AccessKind::Write, PrivilegeMode::User)
            .unwrap();
        assert!(stale.is_hit());
        assert_eq!(stale.pa(), out.pa());
        // ...but the physical store is refused: PTStore checks physical
        // addresses, not virtual mappings.
        let ctx = AccessContext::user(true);
        assert!(bus
            .write::<u64>(stale.pa(), 0xbad, Channel::Regular, ctx)
            .is_err());
    }

    #[test]
    fn machine_mode_bypasses_translation() {
        let (mut bus, mut mmu, _region) = machine();
        mmu.satp = Satp::new(PagingScheme::Sv39, PhysPageNum::new(0x999), 1, true);
        let out = mmu
            .translate_data(
                &mut bus,
                VirtAddr::new(0x42),
                AccessKind::Read,
                PrivilegeMode::Machine,
            )
            .unwrap();
        assert_eq!(out.pa(), PhysAddr::new(0x42));
    }

    #[test]
    fn huge_page_refill_covers_the_span() {
        let (mut bus, mut mmu, region) = machine();
        let ctx = AccessContext::supervisor(true);
        // Root -> level-1 leaf: a single 2 MiB page at VA 0x4000_0000.
        let root = region.base();
        let l1 = region.base() + PAGE_SIZE;
        let va = VirtAddr::new(0x4000_0000);
        bus.write::<u64>(
            root + va.vpn_slice(2) * 8,
            Pte::table(PhysPageNum::from(l1)).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        bus.write::<u64>(
            l1 + va.vpn_slice(1) * 8,
            Pte::leaf(PhysPageNum::new(0x400), PteFlags::user_rw()).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        mmu.satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true);
        let first = mmu
            .translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert!(!first.is_hit());
        // A different 4 KiB page inside the same 2 MiB leaf hits the one
        // cached span entry.
        let other = VirtAddr::new(0x4000_0000 + 37 * PAGE_SIZE + 0x10);
        let second = mmu
            .translate_data(&mut bus, other, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert!(second.is_hit());
        assert_eq!(
            second.pa(),
            PhysAddr::new((0x400 << 12) + 37 * PAGE_SIZE + 0x10)
        );
    }

    #[test]
    fn itlb_and_dtlb_are_separate() {
        let (mut bus, mut mmu, region) = machine();
        let va = VirtAddr::new(0x4000_0000);
        mmu.satp = map(&mut bus, &region, va, 0x100, PteFlags::user_rx());
        mmu.translate_fetch(&mut bus, va, PrivilegeMode::User)
            .unwrap();
        assert_eq!(mmu.itlb_stats().misses, 1);
        assert_eq!(mmu.dtlb_stats().misses, 0);
        // A data read of the same page misses the D-TLB separately.
        mmu.translate_data(&mut bus, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert_eq!(mmu.dtlb_stats().misses, 1);
    }
}
