//! The hardware page-table walker with the PTStore origin check.
//!
//! Every page-table fetch is a bus access on [`ptstore_core::Channel::Ptw`]. When the
//! `satp.S` bit is armed, the PMP refuses walker fetches outside the secure
//! region, so an attacker who redirects a page-table pointer at a crafted
//! table in normal memory gets an access fault instead of a translation —
//! the PT-Injection defense (paper Fig. 1 ⑤, §III-C2).

use core::fmt;

use ptstore_core::{
    AccessContext, AccessError, AccessKind, PhysAddr, PrivilegeMode, VirtAddr, PAGE_SIZE,
};
use ptstore_mem::Bus;
use ptstore_trace::TraceEvent;
use serde::{Deserialize, Serialize};

use crate::pte::{GenericPte, Pte, PteFlags};
use crate::satp::Satp;

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslateError {
    /// The classic page fault: invalid entry, permission mismatch, or
    /// malformed superpage.
    PageFault {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The kind of access that faulted.
        kind: AccessKind,
    },
    /// The walk itself was refused by the PMP — with `satp.S` armed this is
    /// PTStore rejecting a page table outside the secure region.
    AccessFault(AccessError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::PageFault { va, kind } => write!(f, "page fault on {kind} at {va}"),
            TranslateError::AccessFault(e) => write!(f, "walker access fault: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<AccessError> for TranslateError {
    fn from(e: AccessError) -> Self {
        TranslateError::AccessFault(e)
    }
}

/// A successful walk: the physical address plus what the walk cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkOutcome {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Flags of the leaf PTE (cached into the TLB).
    pub flags: PteFlags,
    /// Number of page-table fetches performed (1..=levels of the scheme:
    /// up to 3 for Sv39, 4 for Sv48, 5 for Sv57).
    pub fetches: u32,
    /// Page size of the leaf in bytes (4 KiB, 2 MiB, 1 GiB, ...).
    pub page_size: u64,
}

/// The scheme-generic walker: the active [`PagingScheme`] is read from the
/// `satp` MODE field each walk, exactly as hardware does. The model runs
/// with `SUM=1` (supervisor may read/write user pages — the kernel copies
/// syscall buffers directly) and without `MXR`; both simplifications are
/// noted here for fidelity.
///
/// [`PagingScheme`]: ptstore_core::PagingScheme
///
/// The walker holds no translation state; the only field is the id of the
/// hart it walks for, stamped into the access contexts of its PTE fetches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageTableWalker {
    hart: usize,
}

impl PageTableWalker {
    /// A new walker for hart 0.
    pub const fn new() -> Self {
        Self { hart: 0 }
    }

    /// Attributes subsequent walks to `hart`.
    pub fn set_hart(&mut self, hart: usize) {
        self.hart = hart;
    }

    /// Translates `va` for an access of `kind` in `mode`, updating PTE A/D
    /// bits as real hardware does.
    ///
    /// # Errors
    /// [`TranslateError::PageFault`] on invalid/insufficient mappings;
    /// [`TranslateError::AccessFault`] when a page-table fetch is denied by
    /// the PMP (the PTStore origin check).
    pub fn translate(
        &self,
        bus: &mut Bus,
        satp: Satp,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivilegeMode,
    ) -> Result<WalkOutcome, TranslateError> {
        self.translate_with::<Pte>(bus, satp, va, kind, mode)
    }

    /// [`translate`](Self::translate) with an explicit PTE encoding. The
    /// walk is scheme-generic: the number of levels and the canonical-form
    /// check come from `satp.scheme`, and a leaf at level *n* maps a
    /// `512^n`-page superpage.
    ///
    /// # Errors
    /// Same as [`translate`](Self::translate).
    pub fn translate_with<P: GenericPte>(
        &self,
        bus: &mut Bus,
        satp: Satp,
        va: VirtAddr,
        kind: AccessKind,
        mode: PrivilegeMode,
    ) -> Result<WalkOutcome, TranslateError> {
        let scheme = match satp.scheme {
            Some(scheme) if mode != PrivilegeMode::Machine => scheme,
            // Bare (or M-mode, which ignores translation): identity mapping.
            _ => {
                return Ok(WalkOutcome {
                    pa: PhysAddr::new(va.as_u64()),
                    flags: PteFlags::from_bits(0xff),
                    fetches: 0,
                    page_size: PAGE_SIZE,
                });
            }
        };
        if !scheme.is_canonical(va) {
            return Err(TranslateError::PageFault { va, kind });
        }

        let ctx = AccessContext {
            mode,
            satp_s: satp.s_bit,
            hart: self.hart,
        };
        let mut table = satp.root_addr();
        let mut fetches = 0u32;
        #[allow(clippy::explicit_counter_loop)] // `fetches` counts bus ops, not iterations
        for level in (0..scheme.levels()).rev() {
            let pte_addr = table + va.vpn_slice(level) * 8;
            let raw = match bus.read::<u64>(pte_addr, ptstore_core::Channel::Ptw, ctx) {
                Ok(raw) => raw,
                Err(e) => {
                    if matches!(e, AccessError::PtwOutsideRegion { .. }) {
                        if let Some(sink) = bus.trace_sink() {
                            sink.emit(TraceEvent::PtwOriginRejected {
                                va: va.as_u64(),
                                pte_addr: pte_addr.as_u64(),
                            });
                        }
                    }
                    return Err(e.into());
                }
            };
            if let Some(sink) = bus.trace_sink() {
                sink.emit(TraceEvent::PtwStep {
                    va: va.as_u64(),
                    level: level as u8,
                    pte_addr: pte_addr.as_u64(),
                    pte: raw,
                });
            }
            fetches += 1;
            let pte = P::from_bits(raw);
            if !pte.is_valid() {
                return Err(TranslateError::PageFault { va, kind });
            }
            if pte.is_leaf() {
                Self::check_leaf_perms(pte.flags(), kind, mode, va)?;
                // Superpage PPN alignment check.
                let span_pages = 1u64 << (9 * level);
                if !pte.ppn().as_u64().is_multiple_of(span_pages) {
                    return Err(TranslateError::PageFault { va, kind });
                }
                // A/D update through the walker's own (checked) channel.
                let mut new_flags = PteFlags::A;
                if kind == AccessKind::Write {
                    new_flags |= PteFlags::D;
                }
                if pte.flags().bits() & new_flags != new_flags {
                    bus.write::<u64>(
                        pte_addr,
                        pte.with_flags(new_flags).bits(),
                        ptstore_core::Channel::Ptw,
                        ctx,
                    )?;
                }
                let page_size = PAGE_SIZE * span_pages;
                let offset = va.as_u64() & (page_size - 1);
                return Ok(WalkOutcome {
                    pa: PhysAddr::new(pte.ppn().base_addr().as_u64() + offset),
                    flags: pte.flags(),
                    fetches,
                    page_size,
                });
            }
            // Non-leaf: descend.
            if level == 0 {
                return Err(TranslateError::PageFault { va, kind });
            }
            table = pte.ppn().base_addr();
        }
        unreachable!("loop always returns");
    }

    fn check_leaf_perms(
        flags: PteFlags,
        kind: AccessKind,
        mode: PrivilegeMode,
        va: VirtAddr,
    ) -> Result<(), TranslateError> {
        let fault = || TranslateError::PageFault { va, kind };
        let allowed = match kind {
            AccessKind::Read => flags.readable(),
            AccessKind::Write => flags.writable(),
            AccessKind::Execute => flags.executable(),
        };
        if !allowed {
            return Err(fault());
        }
        match mode {
            PrivilegeMode::User => {
                if !flags.user() {
                    return Err(fault());
                }
            }
            PrivilegeMode::Supervisor => {
                // SUM=1 for data; supervisor never executes user pages.
                if flags.user() && kind == AccessKind::Execute {
                    return Err(fault());
                }
            }
            PrivilegeMode::Machine => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::{Channel, PagingScheme, PhysPageNum, SecureRegion, MIB};

    /// Builds a table chain for `scheme` mapping `va -> data_ppn` with a leaf
    /// at `leaf_level`, using one page per level starting at `base`.
    // Test fixture spelling out every level of one mapping beats a builder.
    #[allow(clippy::too_many_arguments)]
    fn build_chain(
        bus: &mut Bus,
        scheme: PagingScheme,
        base: PhysAddr,
        va: VirtAddr,
        data_ppn: PhysPageNum,
        flags: PteFlags,
        leaf_level: usize,
        ctx: AccessContext,
    ) {
        let mut table = base;
        for level in ((leaf_level + 1)..scheme.levels()).rev() {
            let next = table + PAGE_SIZE;
            bus.write::<u64>(
                table + va.vpn_slice(level) * 8,
                Pte::table(PhysPageNum::from(next)).bits(),
                Channel::SecurePt,
                ctx,
            )
            .unwrap();
            table = next;
        }
        bus.write::<u64>(
            table + va.vpn_slice(leaf_level) * 8,
            Pte::leaf(data_ppn, flags).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
    }

    /// Builds a 3-level table mapping `va -> data_ppn` inside `table_base`,
    /// writing PTEs through the given channel.
    // Test fixture spelling out every level of one mapping beats a builder.
    #[allow(clippy::too_many_arguments)]
    fn build_mapping(
        bus: &mut Bus,
        root: PhysAddr,
        l1: PhysAddr,
        l0: PhysAddr,
        va: VirtAddr,
        data_ppn: PhysPageNum,
        flags: PteFlags,
        channel: Channel,
        ctx: AccessContext,
    ) {
        let root_slot = root + va.vpn_slice(2) * 8;
        let l1_slot = l1 + va.vpn_slice(1) * 8;
        let l0_slot = l0 + va.vpn_slice(0) * 8;
        bus.write::<u64>(
            root_slot,
            Pte::table(PhysPageNum::from(l1)).bits(),
            channel,
            ctx,
        )
        .unwrap();
        bus.write::<u64>(
            l1_slot,
            Pte::table(PhysPageNum::from(l0)).bits(),
            channel,
            ctx,
        )
        .unwrap();
        bus.write::<u64>(l0_slot, Pte::leaf(data_ppn, flags).bits(), channel, ctx)
            .unwrap();
    }

    fn secured_bus() -> (Bus, SecureRegion) {
        let mut bus = Bus::new(256 * MIB);
        let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB).unwrap();
        bus.install_secure_region(&region).unwrap();
        (bus, region)
    }

    #[test]
    fn walk_inside_secure_region_succeeds() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let root = region.base();
        let l1 = region.base() + PAGE_SIZE;
        let l0 = region.base() + 2 * PAGE_SIZE;
        let va = VirtAddr::new(0x4000_1000);
        let data = PhysPageNum::new(0x100);
        build_mapping(
            &mut bus,
            root,
            l1,
            l0,
            va,
            data,
            PteFlags::user_rw(),
            Channel::SecurePt,
            ctx,
        );

        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true);
        let out = PageTableWalker::new()
            .translate(&mut bus, satp, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert_eq!(out.pa, PhysAddr::new(0x100 << 12));
        assert_eq!(out.fetches, 3);
        assert_eq!(out.page_size, PAGE_SIZE);
    }

    #[test]
    fn injected_table_outside_region_is_refused() {
        let (mut bus, _region) = secured_bus();
        // Attacker crafts a "page table" in normal memory.
        let fake_root = PhysAddr::new(4 * MIB);
        let ctx_plain = AccessContext::supervisor(false);
        bus.write::<u64>(
            fake_root,
            Pte::leaf(PhysPageNum::new(0), PteFlags::user_rw()).bits(),
            Channel::Regular,
            ctx_plain,
        )
        .unwrap();

        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(fake_root), 1, true);
        let err = PageTableWalker::new()
            .translate(
                &mut bus,
                satp,
                VirtAddr::new(0),
                AccessKind::Read,
                PrivilegeMode::User,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            TranslateError::AccessFault(AccessError::PtwOutsideRegion { .. })
        ));
    }

    #[test]
    fn same_injection_succeeds_without_ptstore() {
        // Baseline machine: no satp.S. The injected table is happily used —
        // this is the attack PTStore closes.
        let mut bus = Bus::new(64 * MIB);
        let fake_root = PhysAddr::new(4 * MIB);
        let ctx = AccessContext::supervisor(false);
        // Identity-ish 1 GiB superpage leaf at VPN2=0: ppn must be 1GiB-aligned.
        bus.write::<u64>(
            fake_root,
            Pte::leaf(PhysPageNum::new(0), PteFlags::user_rw()).bits(),
            Channel::Regular,
            ctx,
        )
        .unwrap();
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(fake_root), 1, false);
        let out = PageTableWalker::new()
            .translate(
                &mut bus,
                satp,
                VirtAddr::new(0x1234),
                AccessKind::Read,
                PrivilegeMode::User,
            )
            .unwrap();
        assert_eq!(out.pa, PhysAddr::new(0x1234));
        assert_eq!(out.page_size, ptstore_core::GIB);
    }

    #[test]
    fn permission_checks() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let root = region.base();
        let l1 = region.base() + PAGE_SIZE;
        let l0 = region.base() + 2 * PAGE_SIZE;
        let va = VirtAddr::new(0x4000_0000);
        // Kernel-only RW page.
        build_mapping(
            &mut bus,
            root,
            l1,
            l0,
            va,
            PhysPageNum::new(0x200),
            PteFlags::kernel_rw(),
            Channel::SecurePt,
            ctx,
        );
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true);
        let w = PageTableWalker::new();
        // User access to a kernel page faults.
        assert!(matches!(
            w.translate(&mut bus, satp, va, AccessKind::Read, PrivilegeMode::User),
            Err(TranslateError::PageFault { .. })
        ));
        // Supervisor read/write fine; execute denied (no X).
        w.translate(
            &mut bus,
            satp,
            va,
            AccessKind::Write,
            PrivilegeMode::Supervisor,
        )
        .unwrap();
        assert!(w
            .translate(
                &mut bus,
                satp,
                va,
                AccessKind::Execute,
                PrivilegeMode::Supervisor
            )
            .is_err());
    }

    #[test]
    fn ad_bits_are_set_by_hardware() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let root = region.base();
        let l1 = region.base() + PAGE_SIZE;
        let l0 = region.base() + 2 * PAGE_SIZE;
        let va = VirtAddr::new(0x4000_0000);
        // Leaf without A/D.
        let flags = PteFlags::from_bits(PteFlags::V | PteFlags::R | PteFlags::W | PteFlags::U);
        build_mapping(
            &mut bus,
            root,
            l1,
            l0,
            va,
            PhysPageNum::new(0x300),
            flags,
            Channel::SecurePt,
            ctx,
        );
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true);
        PageTableWalker::new()
            .translate(&mut bus, satp, va, AccessKind::Write, PrivilegeMode::User)
            .unwrap();
        let leaf_raw = bus
            .read::<u64>(l0 + va.vpn_slice(0) * 8, Channel::SecurePt, ctx)
            .unwrap();
        let leaf = Pte::from_bits(leaf_raw);
        assert!(leaf.flags().accessed());
        assert!(leaf.flags().dirty());
    }

    #[test]
    fn invalid_and_noncanonical_fault() {
        let (mut bus, region) = secured_bus();
        let satp = Satp::new(
            PagingScheme::Sv39,
            PhysPageNum::from(region.base()),
            1,
            true,
        );
        let w = PageTableWalker::new();
        // Empty root: invalid entry.
        assert!(matches!(
            w.translate(
                &mut bus,
                satp,
                VirtAddr::new(0x1000),
                AccessKind::Read,
                PrivilegeMode::User
            ),
            Err(TranslateError::PageFault { .. })
        ));
        // Non-canonical address.
        assert!(matches!(
            w.translate(
                &mut bus,
                satp,
                VirtAddr::new(0x0000_8000_0000_0000),
                AccessKind::Read,
                PrivilegeMode::User
            ),
            Err(TranslateError::PageFault { .. })
        ));
    }

    #[test]
    fn bare_mode_is_identity() {
        let mut bus = Bus::new(16 * MIB);
        let out = PageTableWalker::new()
            .translate(
                &mut bus,
                Satp::bare(),
                VirtAddr::new(0x1234),
                AccessKind::Read,
                PrivilegeMode::Machine,
            )
            .unwrap();
        assert_eq!(out.pa, PhysAddr::new(0x1234));
        assert_eq!(out.fetches, 0);
    }

    #[test]
    fn misaligned_superpage_faults() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let root = region.base();
        // 1 GiB leaf at level 2 with a PPN that is not 512*512-aligned.
        bus.write::<u64>(
            root,
            Pte::leaf(PhysPageNum::new(3), PteFlags::user_rw()).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true);
        assert!(matches!(
            PageTableWalker::new().translate(
                &mut bus,
                satp,
                VirtAddr::new(0),
                AccessKind::Read,
                PrivilegeMode::User
            ),
            Err(TranslateError::PageFault { .. })
        ));
    }

    #[test]
    fn deeper_schemes_walk_more_levels() {
        for (scheme, expected_fetches) in [
            (PagingScheme::Sv39, 3u32),
            (PagingScheme::Sv48, 4),
            (PagingScheme::Sv57, 5),
        ] {
            let (mut bus, region) = secured_bus();
            let ctx = AccessContext::supervisor(true);
            let va = VirtAddr::new(0x4000_1000);
            build_chain(
                &mut bus,
                scheme,
                region.base(),
                va,
                PhysPageNum::new(0x100),
                PteFlags::user_rw(),
                0,
                ctx,
            );
            let satp = Satp::new(scheme, PhysPageNum::from(region.base()), 1, true);
            let out = PageTableWalker::new()
                .translate(&mut bus, satp, va, AccessKind::Read, PrivilegeMode::User)
                .unwrap();
            assert_eq!(out.pa, PhysAddr::new(0x100_000), "{scheme}");
            assert_eq!(out.fetches, expected_fetches, "{scheme}");
            assert_eq!(out.page_size, PAGE_SIZE, "{scheme}");
        }
    }

    #[test]
    fn canonical_form_tracks_the_scheme() {
        // Bit 38 set with zero upper bits: non-canonical under Sv39,
        // perfectly canonical under Sv48/Sv57.
        let va = VirtAddr::new(0x0000_0040_0000_0000);
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        build_chain(
            &mut bus,
            PagingScheme::Sv48,
            region.base(),
            va,
            PhysPageNum::new(0x200),
            PteFlags::user_rw(),
            0,
            ctx,
        );
        let root = PhysPageNum::from(region.base());
        let sv48 = Satp::new(PagingScheme::Sv48, root, 1, true);
        let out = PageTableWalker::new()
            .translate(&mut bus, sv48, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap();
        assert_eq!(out.pa, PhysAddr::new(0x200_000));
        // The same address under Sv39 faults before any fetch.
        let sv39 = Satp::new(PagingScheme::Sv39, root, 1, true);
        assert!(matches!(
            PageTableWalker::new().translate(
                &mut bus,
                sv39,
                va,
                AccessKind::Read,
                PrivilegeMode::User
            ),
            Err(TranslateError::PageFault { .. })
        ));
    }

    #[test]
    fn two_mib_leaf_early_exits() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let va = VirtAddr::new(0x4020_1000);
        // Level-1 leaf: PPN must be 512-page aligned.
        build_chain(
            &mut bus,
            PagingScheme::Sv39,
            region.base(),
            va,
            PhysPageNum::new(0x200),
            PteFlags::user_rw(),
            1,
            ctx,
        );
        let satp = Satp::new(
            PagingScheme::Sv39,
            PhysPageNum::from(region.base()),
            1,
            true,
        );
        let out = PageTableWalker::new()
            .translate(&mut bus, satp, va, AccessKind::Write, PrivilegeMode::User)
            .unwrap();
        assert_eq!(out.fetches, 2);
        assert_eq!(out.page_size, 2 * MIB);
        // PA = superpage base + offset within the 2 MiB span.
        assert_eq!(out.pa, PhysAddr::new((0x200 << 12) + 0x1000));
    }

    #[test]
    fn huge_leaf_outside_region_is_refused_when_armed() {
        // The origin check applies to the walk that *finds* a huge leaf just
        // as it does for 4 KiB chains: the table holding the 2 MiB leaf
        // lives outside the secure region, so the fetch is rejected.
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let va = VirtAddr::new(0x4020_0000);
        // Root (inside region) points at an attacker table outside it.
        let fake_l1 = PhysAddr::new(4 * MIB);
        bus.write::<u64>(
            region.base() + va.vpn_slice(2) * 8,
            Pte::table(PhysPageNum::from(fake_l1)).bits(),
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        let ctx_plain = AccessContext::supervisor(false);
        bus.write::<u64>(
            fake_l1 + va.vpn_slice(1) * 8,
            Pte::leaf(PhysPageNum::new(0x200), PteFlags::user_rw()).bits(),
            Channel::Regular,
            ctx_plain,
        )
        .unwrap();
        let satp = Satp::new(
            PagingScheme::Sv39,
            PhysPageNum::from(region.base()),
            1,
            true,
        );
        let err = PageTableWalker::new()
            .translate(&mut bus, satp, va, AccessKind::Read, PrivilegeMode::User)
            .unwrap_err();
        assert!(matches!(
            err,
            TranslateError::AccessFault(AccessError::PtwOutsideRegion { .. })
        ));
    }
}
