//! RV64 page-table entries.
//!
//! Sv39, Sv48 and Sv57 share one 64-bit entry format (`PPN[53:10] |
//! flags[7:0]`); only the number of levels differs. The [`GenericPte`] trait
//! is the walker's view of an entry, letting alternative encodings (e.g. a
//! tagged research PTE) plug into [`PageTableWalker::translate_with`]
//! without touching the walk logic.
//!
//! [`PageTableWalker::translate_with`]: crate::walker::PageTableWalker::translate_with

use core::fmt;

use ptstore_core::{PhysAddr, PhysPageNum};
use serde::{Deserialize, Serialize};

/// The low-byte flag bits of an RV64 PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PteFlags(u8);

impl PteFlags {
    /// Valid (present).
    pub const V: u8 = 1 << 0;
    /// Readable.
    pub const R: u8 = 1 << 1;
    /// Writable.
    pub const W: u8 = 1 << 2;
    /// Executable.
    pub const X: u8 = 1 << 3;
    /// User-accessible.
    pub const U: u8 = 1 << 4;
    /// Global mapping.
    pub const G: u8 = 1 << 5;
    /// Accessed.
    pub const A: u8 = 1 << 6;
    /// Dirty.
    pub const D: u8 = 1 << 7;

    /// Empty flag set.
    pub const fn new() -> Self {
        Self(0)
    }

    /// From a raw bit pattern.
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits)
    }

    /// Raw bit pattern.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Valid bit set?
    pub const fn valid(self) -> bool {
        self.0 & Self::V != 0
    }

    /// Readable?
    pub const fn readable(self) -> bool {
        self.0 & Self::R != 0
    }

    /// Writable?
    pub const fn writable(self) -> bool {
        self.0 & Self::W != 0
    }

    /// Executable?
    pub const fn executable(self) -> bool {
        self.0 & Self::X != 0
    }

    /// User-accessible?
    pub const fn user(self) -> bool {
        self.0 & Self::U != 0
    }

    /// Global?
    pub const fn global(self) -> bool {
        self.0 & Self::G != 0
    }

    /// Accessed?
    pub const fn accessed(self) -> bool {
        self.0 & Self::A != 0
    }

    /// Dirty?
    pub const fn dirty(self) -> bool {
        self.0 & Self::D != 0
    }

    /// Leaf entries have at least one of R/W/X; pointers to next-level
    /// tables have none.
    pub const fn is_leaf(self) -> bool {
        self.0 & (Self::R | Self::W | Self::X) != 0
    }

    /// Returns a copy with extra bits set.
    pub const fn with(self, bits: u8) -> Self {
        Self(self.0 | bits)
    }

    /// Returns a copy with bits cleared.
    pub const fn without(self, bits: u8) -> Self {
        Self(self.0 & !bits)
    }

    /// Kernel read/write data leaf flags (`V|R|W|A|D`, supervisor-only).
    pub const fn kernel_rw() -> Self {
        Self(Self::V | Self::R | Self::W | Self::A | Self::D)
    }

    /// Kernel read/execute code leaf flags.
    pub const fn kernel_rx() -> Self {
        Self(Self::V | Self::R | Self::X | Self::A | Self::D)
    }

    /// User read/write data leaf flags.
    pub const fn user_rw() -> Self {
        Self(Self::V | Self::R | Self::W | Self::U | Self::A | Self::D)
    }

    /// User read/execute code leaf flags.
    pub const fn user_rx() -> Self {
        Self(Self::V | Self::R | Self::X | Self::U | Self::A | Self::D)
    }

    /// User read-only data leaf flags (e.g. copy-on-write pages).
    pub const fn user_ro() -> Self {
        Self(Self::V | Self::R | Self::U | Self::A)
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (bit, ch) in [
            (Self::D, 'd'),
            (Self::A, 'a'),
            (Self::G, 'g'),
            (Self::U, 'u'),
            (Self::X, 'x'),
            (Self::W, 'w'),
            (Self::R, 'r'),
            (Self::V, 'v'),
        ] {
            write!(f, "{}", if self.0 & bit != 0 { ch } else { '-' })?;
        }
        Ok(())
    }
}

/// The walker's view of a 64-bit page-table entry.
///
/// Implemented by [`Pte`] (the standard RV64 encoding). The flag *semantics*
/// are fixed by the privileged spec — an implementor may change how bits are
/// stored in memory, not what V/R/W/X/U/A/D mean — so the trait decodes to
/// the shared [`PteFlags`] type.
pub trait GenericPte: Copy + fmt::Debug {
    /// Decodes an entry from its raw 64-bit memory representation.
    fn from_bits(bits: u64) -> Self;
    /// The raw 64-bit memory representation.
    fn bits(self) -> u64;
    /// The physical page number this entry points at.
    fn ppn(self) -> PhysPageNum;
    /// The decoded flag byte.
    fn flags(self) -> PteFlags;
    /// Valid bit set?
    fn is_valid(self) -> bool;
    /// Valid leaf (maps memory rather than pointing at a next-level table)?
    fn is_leaf(self) -> bool;
    /// Returns a copy with the given flag bits ORed in (A/D updates).
    fn with_flags(self, bits: u8) -> Self;
}

/// One 64-bit RV64 page-table entry: `PPN[53:10] | flags[7:0]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Pte(u64);

impl Pte {
    /// The invalid (zero) entry.
    pub const fn invalid() -> Self {
        Self(0)
    }

    /// From the raw 64-bit memory representation.
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// Raw 64-bit memory representation.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// A leaf entry mapping `ppn` with `flags`.
    pub const fn leaf(ppn: PhysPageNum, flags: PteFlags) -> Self {
        Self((ppn.as_u64() << 10) | flags.bits() as u64)
    }

    /// A non-leaf entry pointing at the next-level table in `ppn`.
    pub const fn table(ppn: PhysPageNum) -> Self {
        Self((ppn.as_u64() << 10) | PteFlags::V as u64)
    }

    /// The flag byte.
    pub const fn flags(self) -> PteFlags {
        PteFlags::from_bits(self.0 as u8)
    }

    /// The physical page number field.
    pub const fn ppn(self) -> PhysPageNum {
        PhysPageNum::new((self.0 >> 10) & ((1 << 44) - 1))
    }

    /// The physical address of the page this entry points at.
    pub const fn phys_addr(self) -> PhysAddr {
        PhysAddr::new(self.ppn().as_u64() << 12)
    }

    /// Valid bit set?
    pub const fn is_valid(self) -> bool {
        self.flags().valid()
    }

    /// Valid leaf?
    pub const fn is_leaf(self) -> bool {
        self.is_valid() && self.flags().is_leaf()
    }

    /// Valid pointer to a next-level table?
    pub const fn is_table(self) -> bool {
        self.is_valid() && !self.flags().is_leaf()
    }

    /// Returns a copy with the given flag bits ORed in (A/D updates).
    pub const fn with_flags(self, bits: u8) -> Self {
        Self(self.0 | bits as u64)
    }
}

impl GenericPte for Pte {
    fn from_bits(bits: u64) -> Self {
        Pte::from_bits(bits)
    }
    fn bits(self) -> u64 {
        Pte::bits(self)
    }
    fn ppn(self) -> PhysPageNum {
        Pte::ppn(self)
    }
    fn flags(self) -> PteFlags {
        Pte::flags(self)
    }
    fn is_valid(self) -> bool {
        Pte::is_valid(self)
    }
    fn is_leaf(self) -> bool {
        Pte::is_leaf(self)
    }
    fn with_flags(self, bits: u8) -> Self {
        Pte::with_flags(self, bits)
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pte{{ppn={} {}}}", self.ppn(), self.flags())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let ppn = PhysPageNum::new(0x12345);
        let pte = Pte::leaf(ppn, PteFlags::user_rw());
        assert!(pte.is_valid());
        assert!(pte.is_leaf());
        assert!(!pte.is_table());
        assert_eq!(pte.ppn(), ppn);
        assert_eq!(pte.phys_addr(), PhysAddr::new(0x12345 << 12));
        assert!(pte.flags().user());
        assert!(pte.flags().writable());
        assert!(!pte.flags().executable());
    }

    #[test]
    fn table_entry_is_not_leaf() {
        let pte = Pte::table(PhysPageNum::new(7));
        assert!(pte.is_valid());
        assert!(pte.is_table());
        assert!(!pte.is_leaf());
    }

    #[test]
    fn invalid_entry() {
        let pte = Pte::invalid();
        assert!(!pte.is_valid());
        assert!(!pte.is_leaf());
        assert!(!pte.is_table());
    }

    #[test]
    fn token_fields_are_invalid_ptes() {
        // Paper §V-E2: 8-byte-aligned pointers have V=0 when read as PTEs.
        for ptr in [0xFC12_3000u64, 0x8000_0040, 0xFFFF_FFF8] {
            assert!(!Pte::from_bits(ptr).is_valid());
        }
    }

    #[test]
    fn ad_update_preserves_ppn() {
        let pte = Pte::leaf(
            PhysPageNum::new(99),
            PteFlags::from_bits(PteFlags::V | PteFlags::R),
        );
        let updated = pte.with_flags(PteFlags::A | PteFlags::D);
        assert_eq!(updated.ppn(), pte.ppn());
        assert!(updated.flags().accessed());
        assert!(updated.flags().dirty());
    }

    #[test]
    fn generic_pte_agrees_with_inherent_methods() {
        fn via_trait<P: GenericPte>(bits: u64) -> (u64, u64, u8, bool, bool) {
            let p = P::from_bits(bits);
            (
                p.bits(),
                p.ppn().as_u64(),
                p.flags().bits(),
                p.is_valid(),
                p.is_leaf(),
            )
        }
        let pte = Pte::leaf(PhysPageNum::new(0x4567), PteFlags::user_rw());
        assert_eq!(
            via_trait::<Pte>(pte.bits()),
            (
                pte.bits(),
                pte.ppn().as_u64(),
                pte.flags().bits(),
                true,
                true
            )
        );
        let upd = GenericPte::with_flags(Pte::from_bits(PteFlags::V as u64), PteFlags::A);
        assert!(upd.flags().accessed());
    }

    #[test]
    fn flag_display_shape() {
        assert_eq!(PteFlags::user_rw().to_string(), "da-u-wrv");
        assert_eq!(PteFlags::kernel_rx().to_string(), "da--x-rv");
    }
}
