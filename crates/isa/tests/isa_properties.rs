//! Property tests: encode/decode is a bijection over the supported
//! instruction space, and the ALU implements RV64 semantics.

use proptest::prelude::*;
use ptstore_isa::inst::AmoOp;
use ptstore_isa::{decode, encode, AluOp, BranchOp, Inst, LoadOp, StoreOp};

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn arb_i_imm() -> impl Strategy<Value = i64> {
    -2048i64..=2047
}

fn arb_b_off() -> impl Strategy<Value = i64> {
    (-2048i64..=2046).prop_map(|x| x * 2)
}

fn arb_j_off() -> impl Strategy<Value = i64> {
    (-(1i64 << 19)..(1i64 << 19) - 1).prop_map(|x| x * 2)
}

fn arb_load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::B),
        Just(LoadOp::H),
        Just(LoadOp::W),
        Just(LoadOp::D),
        Just(LoadOp::Bu),
        Just(LoadOp::Hu),
        Just(LoadOp::Wu),
    ]
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        Just(StoreOp::B),
        Just(StoreOp::H),
        Just(StoreOp::W),
        Just(StoreOp::D)
    ]
}

fn arb_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ]
}

fn arb_alu_rr() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (
            arb_reg(),
            (-(1i64 << 19)..(1i64 << 19)).prop_map(|x| x << 12)
        )
            .prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (arb_reg(), arb_j_off()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (arb_branch_op(), arb_reg(), arb_reg(), arb_b_off()).prop_map(|(op, rs1, rs2, offset)| {
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            }
        }),
        (arb_load_op(), arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(op, rd, rs1, offset)| {
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            }
        }),
        (arb_store_op(), arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(op, rs1, rs2, offset)| {
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            }
        }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, offset)| Inst::LdPt {
            rd,
            rs1,
            offset
        }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rs1, rs2, offset)| Inst::SdPt {
            rs1,
            rs2,
            offset
        }),
        (arb_alu_rr(), arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_map(
            |(op, rd, rs1, rs2, word)| Inst::Op {
                op,
                rd,
                rs1,
                rs2,
                word
            }
        ),
        (arb_amo_op(), arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_map(
            |(op, rd, rs1, rs2, word)| Inst::Amo {
                op,
                rd,
                rs1,
                rs2: if op == AmoOp::Lr { 0 } else { rs2 },
                word,
            },
        ),
    ]
}

fn arb_amo_op() -> impl Strategy<Value = AmoOp> {
    prop_oneof![
        Just(AmoOp::Lr),
        Just(AmoOp::Sc),
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// decode(encode(i)) == i for the whole supported space, including the
    /// PTStore custom instructions.
    #[test]
    fn encode_decode_bijection(inst in arb_inst()) {
        let word = encode(inst);
        prop_assert_eq!(decode(word), Some(inst), "word {:#010x}", word);
    }

    /// No regular RV64 opcode decodes to a PTStore instruction and vice
    /// versa — the custom-opcode space is disjoint (§IV-A1: "they have
    /// different opcodes").
    #[test]
    fn ptstore_opcodes_are_disjoint(inst in arb_inst()) {
        let word = encode(inst);
        let is_custom = matches!(inst, Inst::LdPt { .. } | Inst::SdPt { .. });
        let opcode = word & 0x7f;
        if is_custom {
            prop_assert!(opcode == 0b000_1011 || opcode == 0b010_1011);
        } else {
            prop_assert!(opcode != 0b000_1011 && opcode != 0b010_1011);
        }
    }
}

mod alu_semantics {
    use super::*;
    use ptstore_core::MIB;
    use ptstore_isa::SimMachine;

    /// Runs `op rd, rs1, rs2` on the interpreter and returns rd.
    fn run_alu(op: AluOp, a: u64, b: u64, word: bool) -> u64 {
        let mut m = SimMachine::new(16 * MIB);
        m.load_program(
            0x1000,
            &[
                Inst::Op {
                    op,
                    rd: 10,
                    rs1: 5,
                    rs2: 6,
                    word,
                },
                Inst::Wfi,
            ],
        );
        m.cpu.set_reg(5, a);
        m.cpu.set_reg(6, b);
        m.cpu.pc = 0x1000;
        m.run(10).expect("runs");
        m.cpu.reg(10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The interpreter's ALU matches Rust's own 64-bit semantics.
        #[test]
        fn alu_matches_reference(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(run_alu(AluOp::Add, a, b, false), a.wrapping_add(b));
            prop_assert_eq!(run_alu(AluOp::Sub, a, b, false), a.wrapping_sub(b));
            prop_assert_eq!(run_alu(AluOp::Xor, a, b, false), a ^ b);
            prop_assert_eq!(run_alu(AluOp::Or, a, b, false), a | b);
            prop_assert_eq!(run_alu(AluOp::And, a, b, false), a & b);
            prop_assert_eq!(run_alu(AluOp::Sll, a, b, false), a << (b & 0x3f));
            prop_assert_eq!(run_alu(AluOp::Srl, a, b, false), a >> (b & 0x3f));
            prop_assert_eq!(
                run_alu(AluOp::Sra, a, b, false),
                ((a as i64) >> (b & 0x3f)) as u64
            );
            prop_assert_eq!(run_alu(AluOp::Slt, a, b, false), ((a as i64) < (b as i64)) as u64);
            prop_assert_eq!(run_alu(AluOp::Sltu, a, b, false), (a < b) as u64);
            prop_assert_eq!(run_alu(AluOp::Mul, a, b, false), a.wrapping_mul(b));
        }

        /// Word-form ops sign-extend their 32-bit results (RV64 `*w`).
        #[test]
        fn word_ops_sign_extend(a in any::<u64>(), b in any::<u64>()) {
            let addw = run_alu(AluOp::Add, a, b, true);
            prop_assert_eq!(addw, (a.wrapping_add(b) as u32) as i32 as i64 as u64);
            let subw = run_alu(AluOp::Sub, a, b, true);
            prop_assert_eq!(subw, (a.wrapping_sub(b) as u32) as i32 as i64 as u64);
            let sllw = run_alu(AluOp::Sll, a, b, true);
            prop_assert_eq!(sllw, (((a as u32) << (b & 0x1f)) as i32) as i64 as u64);
        }

        /// RISC-V division edge semantics: x/0 = -1, x%0 = x.
        #[test]
        fn division_by_zero(a in any::<u64>()) {
            prop_assert_eq!(run_alu(AluOp::Div, a, 0, false), u64::MAX);
            prop_assert_eq!(run_alu(AluOp::Divu, a, 0, false), u64::MAX);
            prop_assert_eq!(run_alu(AluOp::Rem, a, 0, false), a);
            prop_assert_eq!(run_alu(AluOp::Remu, a, 0, false), a);
        }
    }
}
