//! Executing mixed compressed/full instruction streams: the fetch unit must
//! handle 2-byte alignment, variable lengths, and C↔I interleaving.

// Binary literals are grouped by instruction field, not even digit blocks.
#![allow(clippy::unusual_byte_groupings)]

use ptstore_core::{PhysAddr, MIB};
use ptstore_isa::{encode, AluOp, Inst, SimMachine, TrapCause};

/// Writes a raw 16-bit parcel at `addr`.
fn put16(m: &mut SimMachine, addr: u64, parcel: u16) {
    m.bus
        .mem_unchecked()
        .write_u8(PhysAddr::new(addr), parcel as u8)
        .expect("in range");
    m.bus
        .mem_unchecked()
        .write_u8(PhysAddr::new(addr + 1), (parcel >> 8) as u8)
        .expect("in range");
}

/// Writes a full 32-bit instruction as two parcels.
fn put32(m: &mut SimMachine, addr: u64, word: u32) {
    put16(m, addr, word as u16);
    put16(m, addr + 2, (word >> 16) as u16);
}

#[test]
fn compressed_program_executes() {
    let mut m = SimMachine::new(16 * MIB);
    let mut pc = 0x1000u64;
    // c.li a0, 5        (0b010_0_01010_00101_01)
    put16(&mut m, pc, 0b010_0_01010_00101_01);
    pc += 2;
    // c.addi a0, 3      (imm=3)
    put16(&mut m, pc, 0b000_0_01010_00011_01);
    pc += 2;
    // c.slli a0, 4
    put16(&mut m, pc, 0b000_0_01010_00100_10);
    pc += 2;
    // wfi (full width)
    put32(&mut m, pc, encode(Inst::Wfi));
    m.cpu.pc = 0x1000;
    assert_eq!(m.run(10).expect("runs"), None);
    assert_eq!(m.cpu.reg(10), (5 + 3) << 4);
    assert_eq!(m.cpu.instret, 4);
}

#[test]
fn mixed_widths_and_two_byte_aligned_full_instruction() {
    let mut m = SimMachine::new(16 * MIB);
    // c.li a0, 1 at 0x1000 (2 bytes), then a FULL addi at 0x1002 — the
    // 4-byte instruction sits at 2-byte alignment, as RVC permits.
    put16(&mut m, 0x1000, 0b010_0_01010_00001_01);
    put32(
        &mut m,
        0x1002,
        encode(Inst::OpImm {
            op: AluOp::Add,
            rd: 10,
            rs1: 10,
            imm: 41,
            word: false,
        }),
    );
    put32(&mut m, 0x1006, encode(Inst::Wfi));
    m.cpu.pc = 0x1000;
    assert_eq!(m.run(10).expect("runs"), None);
    assert_eq!(m.cpu.reg(10), 42);
}

#[test]
fn compressed_jump_links_pc_plus_two() {
    let mut m = SimMachine::new(16 * MIB);
    // c.jalr a0 at 0x1000: jumps to a0, ra = 0x1002.
    m.cpu.set_reg(10, 0x2000);
    put16(&mut m, 0x1000, 0b100_1_01010_00000_10);
    put32(&mut m, 0x2000, encode(Inst::Wfi));
    m.cpu.pc = 0x1000;
    assert_eq!(m.run(10).expect("runs"), None);
    assert_eq!(m.cpu.reg(1), 0x1002, "c.jalr links pc+2");
    assert_eq!(m.cpu.pc, 0x2004);
}

#[test]
fn compressed_branch_taken_and_not() {
    let mut m = SimMachine::new(16 * MIB);
    // c.beqz a0, +6 at 0x1000 (a0 = 0 -> taken). offset 6: imm[2]=1 ->
    // bit4=1? mapping: bit4=imm[2], bit3=imm[1]. 6 = imm[2]|imm[1] = 110 ->
    // imm[2]=1 (bit4), imm[1]=1 (bit3).
    put16(&mut m, 0x1000, 0b110_0_00_010_00110_01);
    // Fall-through path: c.li a0, 9 ; wfi
    put16(&mut m, 0x1002, 0b010_0_01010_01001_01);
    put32(&mut m, 0x1004, encode(Inst::Wfi));
    // Taken path at 0x1006: wfi with a0 untouched.
    put32(&mut m, 0x1006, encode(Inst::Wfi));
    m.cpu.pc = 0x1000;
    assert_eq!(m.run(10).expect("runs"), None);
    assert_eq!(m.cpu.reg(10), 0, "branch taken, skip the li");
    assert_eq!(m.cpu.pc, 0x100a);

    // Not taken: a0 != 0.
    let mut m2 = SimMachine::new(16 * MIB);
    m2.cpu.set_reg(10, 1);
    put16(&mut m2, 0x1000, 0b110_0_00_010_00110_01);
    put16(&mut m2, 0x1002, 0b010_0_01010_01001_01); // c.li a0, 9
    put32(&mut m2, 0x1004, encode(Inst::Wfi));
    m2.cpu.pc = 0x1000;
    assert_eq!(m2.run(10).expect("runs"), None);
    assert_eq!(m2.cpu.reg(10), 9, "fall through executes the li");
}

#[test]
fn illegal_compressed_word_traps() {
    let mut m = SimMachine::new(16 * MIB);
    put16(&mut m, 0x1000, 0); // defined illegal
    m.cpu.pc = 0x1000;
    let trap = m.run(10).expect("runs").expect("trap");
    assert_eq!(trap.cause, TrapCause::IllegalInstruction);
}

#[test]
fn c_memory_ops_work() {
    let mut m = SimMachine::new(16 * MIB);
    // a0 (x10) = 0x2000 base; a1 (x11) = value.
    m.cpu.set_reg(10, 0x2000);
    m.cpu.set_reg(11, 0xfeed);
    // c.sd a1, 8(a0): funct3=111, uimm8 -> bit10, rs1'=a0=010, rs2'=a1=011
    put16(&mut m, 0x1000, 0b111_001_010_0_0_011_00);
    // c.ld a2, 8(a0): rd'=a2=100
    put16(&mut m, 0x1002, 0b011_001_010_0_0_100_00);
    put32(&mut m, 0x1004, encode(Inst::Wfi));
    m.cpu.pc = 0x1000;
    assert_eq!(m.run(10).expect("runs"), None);
    assert_eq!(m.cpu.reg(12), 0xfeed);
}
