//! Sstc supervisor-timer tests: arming, delivery, masking, re-arming, and a
//! small preemptive loop driven entirely by executed instructions.

use ptstore_core::{PrivilegeMode, MIB};
use ptstore_isa::csr::{addr, interrupt, status};
use ptstore_isa::{AluOp, CsrOp, Inst, SimMachine, TrapCause};

fn machine() -> SimMachine {
    SimMachine::new(32 * MIB)
}

#[test]
fn timer_fires_when_armed_and_enabled() {
    let mut m = machine();
    // S-mode code that just increments a0 forever.
    m.load_program(
        0x1000,
        &[
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                imm: 1,
                word: false,
            },
            Inst::Jal { rd: 0, offset: -4 },
        ],
    );
    // Handler at 0x4000: just wfi.
    m.load_program(0x4000, &[Inst::Wfi]);
    m.cpu.mode = PrivilegeMode::Supervisor;
    m.cpu.pc = 0x1000;
    m.cpu.csrs.write_raw(addr::STVEC, 0x4000);
    m.cpu.csrs.write_raw(addr::SIE, interrupt::STI);
    m.cpu.csrs.write_raw(addr::SSTATUS, status::SIE);
    m.cpu.csrs.write_raw(addr::STIMECMP, 10);

    let traps = m.run_through_traps(100).expect("runs");
    assert_eq!(traps.len(), 1);
    assert_eq!(traps[0].cause, TrapCause::SupervisorTimerInterrupt);
    assert!(traps[0].cause.is_interrupt());
    // scause has the interrupt bit.
    assert_eq!(
        m.cpu.csrs.read_raw(addr::SCAUSE),
        interrupt::CAUSE_INTERRUPT | interrupt::CAUSE_S_TIMER
    );
    // The loop made progress before being interrupted (~10 instructions).
    assert!(
        m.cpu.reg(10) >= 4 && m.cpu.reg(10) <= 10,
        "a0 = {}",
        m.cpu.reg(10)
    );
    // sepc points back into the loop for resumption.
    let sepc = m.cpu.csrs.read_raw(addr::SEPC);
    assert!((0x1000..0x1008).contains(&sepc));
}

#[test]
fn masked_timer_does_not_fire() {
    for (sie_csr, sstatus) in [
        (0, status::SIE),    // STIE clear
        (interrupt::STI, 0), // global SIE clear in S-mode
    ] {
        let mut m = machine();
        m.load_program(
            0x1000,
            &[
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: 10,
                    rs1: 10,
                    imm: 1,
                    word: false,
                },
                Inst::Wfi,
            ],
        );
        m.cpu.mode = PrivilegeMode::Supervisor;
        m.cpu.pc = 0x1000;
        m.cpu.csrs.write_raw(addr::STVEC, 0x4000);
        m.cpu.csrs.write_raw(addr::SIE, sie_csr);
        m.cpu.csrs.write_raw(addr::SSTATUS, sstatus);
        m.cpu.csrs.write_raw(addr::STIMECMP, 1);
        let traps = m.run_through_traps(10).expect("runs");
        assert!(traps.is_empty(), "masked interrupt fired: {traps:?}");
        // Pending bit is set even though delivery is masked.
        assert_ne!(m.cpu.csrs.read_raw(addr::SIP) & interrupt::STI, 0);
    }
}

#[test]
fn user_mode_is_always_interruptible() {
    // In U-mode, S-interrupts fire regardless of sstatus.SIE.
    let mut m = machine();
    m.load_program(
        0x1000,
        &[
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                imm: 1,
                word: false,
            },
            Inst::Jal { rd: 0, offset: -4 },
        ],
    );
    m.load_program(0x4000, &[Inst::Wfi]);
    m.cpu.mode = PrivilegeMode::User;
    m.cpu.pc = 0x1000;
    m.cpu.csrs.write_raw(addr::STVEC, 0x4000);
    m.cpu.csrs.write_raw(addr::SIE, interrupt::STI);
    m.cpu.csrs.write_raw(addr::SSTATUS, 0); // SIE clear — irrelevant from U
    m.cpu.csrs.write_raw(addr::STIMECMP, 5);
    let traps = m.run_through_traps(50).expect("runs");
    assert_eq!(traps.len(), 1);
    assert_eq!(m.cpu.mode, PrivilegeMode::Supervisor);
    // SPP recorded U.
    assert_eq!(m.cpu.csrs.read_raw(addr::SSTATUS) & status::SPP, 0);
}

#[test]
fn preemptive_tick_loop() {
    // A handler that re-arms stimecmp and srets — a miniature preemptive
    // kernel tick, fully guest-driven.
    let mut m = machine();
    // Main loop (S-mode): a0 += 1 forever.
    m.load_program(
        0x1000,
        &[
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                imm: 1,
                word: false,
            },
            Inst::Jal { rd: 0, offset: -4 },
        ],
    );
    // Tick handler: a1 += 1; stimecmp = time + 20; sret.
    // (t0 = scratch; reads the time shadow CSR.)
    m.load_program(
        0x4000,
        &[
            Inst::OpImm {
                op: AluOp::Add,
                rd: 11,
                rs1: 11,
                imm: 1,
                word: false,
            },
            Inst::Csr {
                op: CsrOp::ReadSet,
                rd: 5,
                rs1: 0,
                csr: addr::TIME,
                imm_form: false,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 5,
                imm: 20,
                word: false,
            },
            Inst::Csr {
                op: CsrOp::ReadWrite,
                rd: 0,
                rs1: 5,
                csr: addr::STIMECMP,
                imm_form: false,
            },
            Inst::Sret,
        ],
    );
    m.cpu.mode = PrivilegeMode::Supervisor;
    m.cpu.pc = 0x1000;
    m.cpu.csrs.write_raw(addr::STVEC, 0x4000);
    m.cpu.csrs.write_raw(addr::SIE, interrupt::STI);
    m.cpu.csrs.write_raw(addr::SSTATUS, status::SIE);
    m.cpu.csrs.write_raw(addr::STIMECMP, 10);

    let traps = m.run_through_traps(400).expect("runs");
    // Several ticks landed, and the main loop kept making progress between
    // them (sret restores SIE from SPIE).
    assert!(traps.len() >= 5, "ticks: {}", traps.len());
    assert!(traps
        .iter()
        .all(|t| t.cause == TrapCause::SupervisorTimerInterrupt));
    assert_eq!(m.cpu.reg(11), traps.len() as u64, "a1 counts ticks");
    assert!(
        m.cpu.reg(10) > 20,
        "main loop progressed: {}",
        m.cpu.reg(10)
    );
}

#[test]
fn rearming_above_time_clears_pending() {
    let mut m = machine();
    m.load_program(0x1000, &[Inst::Wfi]);
    m.cpu.mode = PrivilegeMode::Supervisor;
    m.cpu.pc = 0x1000;
    m.cpu.csrs.write_raw(addr::STIMECMP, 1);
    m.cpu.instret = 50;
    // No SIE: pending sets but nothing fires.
    m.run_through_traps(3).expect("runs");
    assert_ne!(m.cpu.csrs.read_raw(addr::SIP) & interrupt::STI, 0);
    // Re-arm far in the future: pending clears on the next step.
    m.cpu.csrs.write_raw(addr::STIMECMP, 1_000_000);
    m.cpu.pc = 0x1000;
    m.run_through_traps(3).expect("runs");
    assert_eq!(m.cpu.csrs.read_raw(addr::SIP) & interrupt::STI, 0);
}
