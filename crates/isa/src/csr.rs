//! The control-and-status-register file.
//!
//! PTStore touches two CSRs: each `pmpcfg` entry gains the **S-bit** (bit 5
//! of its configuration byte) and `satp` gains an **S-bit** arming the
//! walker's secure-region check (paper §IV-A1). Both are plain bits here; the
//! semantics live in [`ptstore_core::PmpUnit`] and
//! [`ptstore_mmu::Satp`], which the CPU synchronises after CSR writes.

use std::collections::HashMap;

use ptstore_core::PrivilegeMode;

/// Well-known CSR addresses used by the model.
pub mod addr {
    /// Supervisor status.
    pub const SSTATUS: u16 = 0x100;
    /// Supervisor trap vector.
    pub const STVEC: u16 = 0x105;
    /// Supervisor scratch.
    pub const SSCRATCH: u16 = 0x140;
    /// Supervisor exception PC.
    pub const SEPC: u16 = 0x141;
    /// Supervisor trap cause.
    pub const SCAUSE: u16 = 0x142;
    /// Supervisor trap value.
    pub const STVAL: u16 = 0x143;
    /// Supervisor interrupt enable.
    pub const SIE: u16 = 0x104;
    /// Supervisor interrupt pending.
    pub const SIP: u16 = 0x144;
    /// Supervisor timer compare (the Sstc extension; 0 = disarmed in this
    /// model, as the reset value is unspecified by the spec).
    pub const STIMECMP: u16 = 0x14D;
    /// Address translation and protection — carries the PTStore S-bit.
    pub const SATP: u16 = 0x180;
    /// Machine status.
    pub const MSTATUS: u16 = 0x300;
    /// Machine ISA.
    pub const MISA: u16 = 0x301;
    /// Machine exception delegation.
    pub const MEDELEG: u16 = 0x302;
    /// Machine interrupt delegation.
    pub const MIDELEG: u16 = 0x303;
    /// Machine trap vector.
    pub const MTVEC: u16 = 0x305;
    /// Machine scratch.
    pub const MSCRATCH: u16 = 0x340;
    /// Machine exception PC.
    pub const MEPC: u16 = 0x341;
    /// Machine trap cause.
    pub const MCAUSE: u16 = 0x342;
    /// Machine trap value.
    pub const MTVAL: u16 = 0x343;
    /// PMP configuration 0 (packs 8 entry bytes, each with the PTStore
    /// S-bit at bit 5).
    pub const PMPCFG0: u16 = 0x3A0;
    /// First PMP address register (entries 0–7 follow consecutively).
    pub const PMPADDR0: u16 = 0x3B0;
    /// Cycle counter (read-only shadow).
    pub const CYCLE: u16 = 0xC00;
    /// Timer (read-only shadow).
    pub const TIME: u16 = 0xC01;
    /// Instructions-retired counter (read-only shadow).
    pub const INSTRET: u16 = 0xC02;
}

/// `mstatus`/`sstatus` bit positions used by the trap logic.
pub mod status {
    /// Supervisor interrupt enable.
    pub const SIE: u64 = 1 << 1;
    /// Machine interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Supervisor previous interrupt enable.
    pub const SPIE: u64 = 1 << 5;
    /// Machine previous interrupt enable.
    pub const MPIE: u64 = 1 << 7;
    /// Supervisor previous privilege (1 bit).
    pub const SPP: u64 = 1 << 8;
    /// Machine previous privilege (2 bits).
    pub const MPP_SHIFT: u64 = 11;
    /// Machine previous privilege mask.
    pub const MPP_MASK: u64 = 0b11 << MPP_SHIFT;
}

/// `sie`/`sip` bit positions.
pub mod interrupt {
    /// Supervisor timer interrupt (STIE/STIP).
    pub const STI: u64 = 1 << 5;
    /// The interrupt bit of `scause`.
    pub const CAUSE_INTERRUPT: u64 = 1 << 63;
    /// Supervisor timer interrupt cause code.
    pub const CAUSE_S_TIMER: u64 = 5;
}

/// Why a CSR access was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrError {
    /// The CSR address requires a higher privilege mode.
    InsufficientPrivilege,
    /// Write to a read-only CSR.
    ReadOnly,
}

/// A simple CSR file: raw 64-bit storage with privilege checking. Side
/// effects of `satp`/PMP writes are applied by the CPU after the raw write.
#[derive(Debug, Clone, Default)]
pub struct CsrFile {
    values: HashMap<u16, u64>,
}

impl CsrFile {
    /// An empty (all-zero) CSR file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimum privilege required to touch `csr` (address bits 9:8).
    pub fn required_privilege(csr: u16) -> PrivilegeMode {
        match (csr >> 8) & 0b11 {
            0b00 => PrivilegeMode::User,
            0b01 | 0b10 => PrivilegeMode::Supervisor,
            _ => PrivilegeMode::Machine,
        }
    }

    /// True for the read-only counter shadows (address top bits `11`).
    pub fn is_read_only(csr: u16) -> bool {
        (csr >> 10) == 0b11
    }

    /// Raw read without privilege checks (trap handlers, tests).
    pub fn read_raw(&self, csr: u16) -> u64 {
        self.values.get(&csr).copied().unwrap_or(0)
    }

    /// Raw write without privilege checks (trap handlers, tests).
    pub fn write_raw(&mut self, csr: u16, value: u64) {
        self.values.insert(csr, value);
    }

    /// Privilege-checked read.
    ///
    /// # Errors
    /// [`CsrError::InsufficientPrivilege`] when `mode` is too low.
    pub fn read(&self, csr: u16, mode: PrivilegeMode) -> Result<u64, CsrError> {
        if mode < Self::required_privilege(csr) {
            return Err(CsrError::InsufficientPrivilege);
        }
        Ok(self.read_raw(csr))
    }

    /// Privilege-checked write.
    ///
    /// # Errors
    /// [`CsrError::InsufficientPrivilege`] or [`CsrError::ReadOnly`].
    pub fn write(&mut self, csr: u16, value: u64, mode: PrivilegeMode) -> Result<(), CsrError> {
        if mode < Self::required_privilege(csr) {
            return Err(CsrError::InsufficientPrivilege);
        }
        if Self::is_read_only(csr) {
            return Err(CsrError::ReadOnly);
        }
        self.write_raw(csr, value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_levels() {
        assert_eq!(
            CsrFile::required_privilege(addr::SATP),
            PrivilegeMode::Supervisor
        );
        assert_eq!(
            CsrFile::required_privilege(addr::MSTATUS),
            PrivilegeMode::Machine
        );
        assert_eq!(
            CsrFile::required_privilege(addr::PMPCFG0),
            PrivilegeMode::Machine
        );
        assert_eq!(
            CsrFile::required_privilege(addr::CYCLE),
            PrivilegeMode::User
        );
    }

    #[test]
    fn user_cannot_touch_satp() {
        let mut f = CsrFile::new();
        assert_eq!(
            f.read(addr::SATP, PrivilegeMode::User),
            Err(CsrError::InsufficientPrivilege)
        );
        assert_eq!(
            f.write(addr::SATP, 1, PrivilegeMode::User),
            Err(CsrError::InsufficientPrivilege)
        );
        // Supervisor can.
        f.write(addr::SATP, 0x42, PrivilegeMode::Supervisor)
            .unwrap();
        assert_eq!(f.read(addr::SATP, PrivilegeMode::Supervisor).unwrap(), 0x42);
    }

    #[test]
    fn only_machine_configures_pmp() {
        // Paper §IV-B: only M-mode can access the pmpcfg CSRs, hence the SBI.
        let mut f = CsrFile::new();
        assert!(f
            .write(addr::PMPCFG0, 1, PrivilegeMode::Supervisor)
            .is_err());
        f.write(addr::PMPCFG0, 1, PrivilegeMode::Machine).unwrap();
    }

    #[test]
    fn counters_are_read_only() {
        let mut f = CsrFile::new();
        assert_eq!(
            f.write(addr::CYCLE, 5, PrivilegeMode::Machine),
            Err(CsrError::ReadOnly)
        );
        assert!(CsrFile::is_read_only(addr::INSTRET));
        assert!(!CsrFile::is_read_only(addr::SATP));
    }

    #[test]
    fn unwritten_reads_zero() {
        let f = CsrFile::new();
        assert_eq!(f.read_raw(addr::MEPC), 0);
    }
}
