//! The decoded instruction representation.

use core::fmt;

/// Register ABI names for disassembly.
pub const REG_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt`
    Lt,
    /// `bge`
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

/// Load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb`
    B,
    /// `lh`
    H,
    /// `lw`
    W,
    /// `ld`
    D,
    /// `lbu`
    Bu,
    /// `lhu`
    Hu,
    /// `lwu`
    Wu,
}

impl LoadOp {
    /// Access width in bytes.
    pub const fn width(self) -> u64 {
        match self {
            LoadOp::B | LoadOp::Bu => 1,
            LoadOp::H | LoadOp::Hu => 2,
            LoadOp::W | LoadOp::Wu => 4,
            LoadOp::D => 8,
        }
    }
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb`
    B,
    /// `sh`
    H,
    /// `sw`
    W,
    /// `sd`
    D,
}

impl StoreOp {
    /// Access width in bytes.
    pub const fn width(self) -> u64 {
        match self {
            StoreOp::B => 1,
            StoreOp::H => 2,
            StoreOp::W => 4,
            StoreOp::D => 8,
        }
    }
}

/// Integer ALU operations (register and immediate forms share this set; the
/// M extension's multiply/divide family is included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
    /// Multiply (M extension).
    Mul,
    /// Signed divide (M extension).
    Div,
    /// Unsigned divide (M extension).
    Divu,
    /// Signed remainder (M extension).
    Rem,
    /// Unsigned remainder (M extension).
    Remu,
}

/// RV64A atomic-memory operations (plus LR/SC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// `lr` — load-reserved.
    Lr,
    /// `sc` — store-conditional.
    Sc,
    /// `amoswap`
    Swap,
    /// `amoadd`
    Add,
    /// `amoxor`
    Xor,
    /// `amoand`
    And,
    /// `amoor`
    Or,
    /// `amomin` (signed)
    Min,
    /// `amomax` (signed)
    Max,
    /// `amominu`
    Minu,
    /// `amomaxu`
    Maxu,
}

impl AmoOp {
    /// The funct5 field encoding.
    pub const fn funct5(self) -> u32 {
        match self {
            AmoOp::Add => 0b00000,
            AmoOp::Swap => 0b00001,
            AmoOp::Lr => 0b00010,
            AmoOp::Sc => 0b00011,
            AmoOp::Xor => 0b00100,
            AmoOp::Or => 0b01000,
            AmoOp::And => 0b01100,
            AmoOp::Min => 0b10000,
            AmoOp::Max => 0b10100,
            AmoOp::Minu => 0b11000,
            AmoOp::Maxu => 0b11100,
        }
    }

    /// Decodes the funct5 field.
    pub const fn from_funct5(bits: u32) -> Option<Self> {
        match bits {
            0b00000 => Some(AmoOp::Add),
            0b00001 => Some(AmoOp::Swap),
            0b00010 => Some(AmoOp::Lr),
            0b00011 => Some(AmoOp::Sc),
            0b00100 => Some(AmoOp::Xor),
            0b01000 => Some(AmoOp::Or),
            0b01100 => Some(AmoOp::And),
            0b10000 => Some(AmoOp::Min),
            0b10100 => Some(AmoOp::Max),
            0b11000 => Some(AmoOp::Minu),
            0b11100 => Some(AmoOp::Maxu),
            _ => None,
        }
    }
}

/// CSR access operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw`
    ReadWrite,
    /// `csrrs`
    ReadSet,
    /// `csrrc`
    ReadClear,
}

/// A decoded RV64 instruction, including the PTStore extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `lui rd, imm`
    Lui { rd: u8, imm: i64 },
    /// `auipc rd, imm`
    Auipc { rd: u8, imm: i64 },
    /// `jal rd, offset`
    Jal { rd: u8, offset: i64 },
    /// `jalr rd, offset(rs1)`
    Jalr { rd: u8, rs1: u8, offset: i64 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        offset: i64,
    },
    /// Regular load.
    Load {
        op: LoadOp,
        rd: u8,
        rs1: u8,
        offset: i64,
    },
    /// Regular store.
    Store {
        op: StoreOp,
        rs1: u8,
        rs2: u8,
        offset: i64,
    },
    /// Register-immediate ALU (`word` = 32-bit `*.w` form).
    OpImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
        word: bool,
    },
    /// Register-register ALU (`word` = 32-bit `*.w` form).
    Op {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        word: bool,
    },
    /// RV64A atomic: `amo* rd, rs2, (rs1)` / `lr rd, (rs1)` /
    /// `sc rd, rs2, (rs1)`; `word` selects the `.w` form.
    Amo {
        op: AmoOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        word: bool,
    },
    /// **PTStore** `ld.pt rd, offset(rs1)` — 64-bit load through the
    /// secure-region channel (paper §IV-A1).
    LdPt { rd: u8, rs1: u8, offset: i64 },
    /// **PTStore** `sd.pt rs2, offset(rs1)` — 64-bit store through the
    /// secure-region channel (paper §IV-A1).
    SdPt { rs1: u8, rs2: u8, offset: i64 },
    /// CSR read-modify-write; `imm_form` uses `rs1` as a 5-bit immediate.
    Csr {
        op: CsrOp,
        rd: u8,
        rs1: u8,
        csr: u16,
        imm_form: bool,
    },
    /// `ecall`
    Ecall,
    /// `ebreak`
    Ebreak,
    /// `mret`
    Mret,
    /// `sret`
    Sret,
    /// `wfi`
    Wfi,
    /// `fence` (a no-op in this model).
    Fence,
    /// `sfence.vma rs1, rs2`
    SfenceVma { rs1: u8, rs2: u8 },
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = |i: u8| REG_NAMES[i as usize];
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {}, {:#x}", r(rd), imm >> 12),
            Inst::Auipc { rd, imm } => write!(f, "auipc {}, {:#x}", r(rd), imm >> 12),
            Inst::Jal { rd, offset } => write!(f, "jal {}, {}", r(rd), offset),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {}, {}({})", r(rd), offset, r(rs1)),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let name = match op {
                    BranchOp::Eq => "beq",
                    BranchOp::Ne => "bne",
                    BranchOp::Lt => "blt",
                    BranchOp::Ge => "bge",
                    BranchOp::Ltu => "bltu",
                    BranchOp::Geu => "bgeu",
                };
                write!(f, "{} {}, {}, {}", name, r(rs1), r(rs2), offset)
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let name = match op {
                    LoadOp::B => "lb",
                    LoadOp::H => "lh",
                    LoadOp::W => "lw",
                    LoadOp::D => "ld",
                    LoadOp::Bu => "lbu",
                    LoadOp::Hu => "lhu",
                    LoadOp::Wu => "lwu",
                };
                write!(f, "{} {}, {}({})", name, r(rd), offset, r(rs1))
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let name = match op {
                    StoreOp::B => "sb",
                    StoreOp::H => "sh",
                    StoreOp::W => "sw",
                    StoreOp::D => "sd",
                };
                write!(f, "{} {}, {}({})", name, r(rs2), offset, r(rs1))
            }
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm,
                word,
            } => {
                let suffix = if word { "w" } else { "" };
                let name = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    _ => "op-imm?",
                };
                write!(f, "{name}{suffix} {}, {}, {}", r(rd), r(rs1), imm)
            }
            Inst::Op {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let suffix = if word { "w" } else { "" };
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::Mul => "mul",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                };
                write!(f, "{name}{suffix} {}, {}, {}", r(rd), r(rs1), r(rs2))
            }
            Inst::Amo {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let suffix = if word { "w" } else { "d" };
                let name = match op {
                    AmoOp::Lr => "lr",
                    AmoOp::Sc => "sc",
                    AmoOp::Swap => "amoswap",
                    AmoOp::Add => "amoadd",
                    AmoOp::Xor => "amoxor",
                    AmoOp::And => "amoand",
                    AmoOp::Or => "amoor",
                    AmoOp::Min => "amomin",
                    AmoOp::Max => "amomax",
                    AmoOp::Minu => "amominu",
                    AmoOp::Maxu => "amomaxu",
                };
                if op == AmoOp::Lr {
                    write!(f, "{name}.{suffix} {}, ({})", r(rd), r(rs1))
                } else {
                    write!(f, "{name}.{suffix} {}, {}, ({})", r(rd), r(rs2), r(rs1))
                }
            }
            Inst::LdPt { rd, rs1, offset } => {
                write!(f, "ld.pt {}, {}({})", r(rd), offset, r(rs1))
            }
            Inst::SdPt { rs1, rs2, offset } => {
                write!(f, "sd.pt {}, {}({})", r(rs2), offset, r(rs1))
            }
            Inst::Csr {
                op,
                rd,
                rs1,
                csr,
                imm_form,
            } => {
                let name = match (op, imm_form) {
                    (CsrOp::ReadWrite, false) => "csrrw",
                    (CsrOp::ReadSet, false) => "csrrs",
                    (CsrOp::ReadClear, false) => "csrrc",
                    (CsrOp::ReadWrite, true) => "csrrwi",
                    (CsrOp::ReadSet, true) => "csrrsi",
                    (CsrOp::ReadClear, true) => "csrrci",
                };
                if imm_form {
                    write!(f, "{name} {}, {:#x}, {}", r(rd), csr, rs1)
                } else {
                    write!(f, "{name} {}, {:#x}, {}", r(rd), csr, r(rs1))
                }
            }
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Mret => f.write_str("mret"),
            Inst::Sret => f.write_str("sret"),
            Inst::Wfi => f.write_str("wfi"),
            Inst::Fence => f.write_str("fence"),
            Inst::SfenceVma { rs1, rs2 } => write!(f, "sfence.vma {}, {}", r(rs1), r(rs2)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(LoadOp::B.width(), 1);
        assert_eq!(LoadOp::Hu.width(), 2);
        assert_eq!(LoadOp::Wu.width(), 4);
        assert_eq!(LoadOp::D.width(), 8);
        assert_eq!(StoreOp::W.width(), 4);
    }

    #[test]
    fn display_ptstore_instructions() {
        let ld = Inst::LdPt {
            rd: 10,
            rs1: 11,
            offset: 16,
        };
        assert_eq!(ld.to_string(), "ld.pt a0, 16(a1)");
        let sd = Inst::SdPt {
            rs1: 11,
            rs2: 10,
            offset: -8,
        };
        assert_eq!(sd.to_string(), "sd.pt a0, -8(a1)");
    }

    #[test]
    fn display_regular_instructions() {
        assert_eq!(
            Inst::Load {
                op: LoadOp::D,
                rd: 1,
                rs1: 2,
                offset: 0
            }
            .to_string(),
            "ld ra, 0(sp)"
        );
        assert_eq!(
            Inst::Op {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                rs2: 11,
                word: false
            }
            .to_string(),
            "add a0, a0, a1"
        );
        assert_eq!(Inst::Ecall.to_string(), "ecall");
    }
}
