//! A convenience wrapper tying one hart to one bus — the "FPGA prototype
//! board" of the model.

use ptstore_core::{PhysAddr, SecureRegion, MIB};
use ptstore_mem::Bus;

use crate::cpu::{Cpu, CpuError, StepEvent, Trap};
use crate::encode::assemble;
use crate::inst::Inst;

/// One hart + memory + PMP, with program-loading helpers.
///
/// ```
/// use ptstore_isa::{SimMachine, Inst, AluOp};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = SimMachine::new(64 * ptstore_core::MIB);
/// m.load_program(0x1000, &[
///     Inst::OpImm { op: AluOp::Add, rd: 10, rs1: 0, imm: 21, word: false },
///     Inst::Op { op: AluOp::Add, rd: 10, rs1: 10, rs2: 10, word: false },
///     Inst::Wfi,
/// ]);
/// m.cpu.pc = 0x1000;
/// m.run(100)?;
/// assert_eq!(m.cpu.reg(10), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimMachine {
    /// The hart.
    pub cpu: Cpu,
    /// Memory + PMP.
    pub bus: Bus,
}

impl SimMachine {
    /// A machine with `mem_size` bytes of RAM, reset to M-mode at PC 0, with
    /// a fail-loud M-mode trap vector at `0xF000` (tests override it).
    ///
    /// # Panics
    /// Panics unless `mem_size` is a non-zero page multiple.
    pub fn new(mem_size: u64) -> Self {
        let mut cpu = Cpu::new();
        cpu.csrs.write_raw(crate::csr::addr::MTVEC, 0xF000);
        Self {
            cpu,
            bus: Bus::new(mem_size),
        }
    }

    /// A machine with the paper's default 64 MiB secure region at the top of
    /// memory already installed.
    ///
    /// # Panics
    /// Panics when `mem_size` is smaller than 64 MiB or not page-aligned.
    pub fn with_secure_region(mem_size: u64) -> (Self, SecureRegion) {
        let mut m = Self::new(mem_size);
        let region =
            SecureRegion::new(PhysAddr::new(mem_size - 64 * MIB), 64 * MIB).expect("aligned");
        m.bus.install_secure_region(&region).expect("free pmp pair");
        (m, region)
    }

    /// Assembles and loads `program` at physical address `base` (the raw
    /// boot-ROM path — bypasses the PMP like a JTAG loader).
    ///
    /// # Panics
    /// Panics if the program does not fit in memory.
    pub fn load_program(&mut self, base: u64, program: &[Inst]) {
        for (i, word) in assemble(program).into_iter().enumerate() {
            self.bus
                .mem_unchecked()
                .write_u32(PhysAddr::new(base + 4 * i as u64), word)
                .expect("program fits in memory");
        }
    }

    /// Steps until `wfi`, a trap, or `max_steps`. Returns the trap if one was
    /// taken, `None` on clean `wfi` stop.
    ///
    /// # Errors
    /// Propagates [`CpuError`] and reports exhaustion as an error too.
    pub fn run(&mut self, max_steps: u64) -> Result<Option<Trap>, CpuError> {
        for _ in 0..max_steps {
            match self.cpu.step(&mut self.bus)? {
                StepEvent::Retired => {}
                StepEvent::WaitingForInterrupt => return Ok(None),
                StepEvent::Trapped(t) => return Ok(Some(t)),
            }
        }
        Err(CpuError::TrapVectorUnset(crate::cpu::TrapCause::Breakpoint))
    }

    /// Steps through traps as well, until `wfi` or `max_steps`; returns every
    /// trap taken along the way (handlers must be installed for progress).
    ///
    /// # Errors
    /// Propagates [`CpuError`].
    pub fn run_through_traps(&mut self, max_steps: u64) -> Result<Vec<Trap>, CpuError> {
        let mut traps = Vec::new();
        for _ in 0..max_steps {
            match self.cpu.step(&mut self.bus)? {
                StepEvent::Retired => {}
                StepEvent::WaitingForInterrupt => break,
                StepEvent::Trapped(t) => traps.push(t),
            }
        }
        Ok(traps)
    }
}

/// Runs every machine for up to `max_steps`, carrying them on up to
/// `host_threads` real OS threads. Machines share no state (each owns its
/// bus), so the fleet is split into disjoint `&mut` chunks and each chunk
/// runs its machines in input order — results land at the same index as
/// the machine, byte-identical at any thread count. No locks, no atomics.
pub fn run_fleet(
    machines: &mut [SimMachine],
    max_steps: u64,
    host_threads: usize,
) -> Vec<Result<Option<Trap>, CpuError>> {
    let n = machines.len();
    if host_threads <= 1 || n <= 1 {
        return machines.iter_mut().map(|m| m.run(max_steps)).collect();
    }
    let chunk = n.div_ceil(host_threads.min(n));
    let mut results: Vec<Option<Result<Option<Trap>, CpuError>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (ms, rs) in machines.chunks_mut(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (m, r) in ms.iter_mut().zip(rs) {
                    *r = Some(m.run(max_steps));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("chunk ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, StoreOp};

    #[test]
    fn run_stops_at_wfi() {
        let mut m = SimMachine::new(16 * MIB);
        m.load_program(
            0x1000,
            &[
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: 10,
                    rs1: 0,
                    imm: 7,
                    word: false,
                },
                Inst::Wfi,
            ],
        );
        m.cpu.pc = 0x1000;
        assert_eq!(m.run(10).unwrap(), None);
        assert_eq!(m.cpu.reg(10), 7);
    }

    #[test]
    fn with_secure_region_blocks_regular_stores() {
        let (mut m, region) = SimMachine::with_secure_region(128 * MIB);
        m.load_program(
            0x1000,
            &[
                Inst::Lui {
                    rd: 5,
                    imm: region.base().as_u64() as i64,
                },
                Inst::Store {
                    op: StoreOp::D,
                    rs1: 5,
                    rs2: 0,
                    offset: 0,
                },
            ],
        );
        m.cpu.pc = 0x1000;
        let trap = m.run(10).unwrap().expect("should trap");
        assert_eq!(trap.cause, crate::cpu::TrapCause::StoreAccessFault);
    }

    #[test]
    fn run_exhaustion_is_error() {
        let mut m = SimMachine::new(16 * MIB);
        // jal 0: an infinite self-loop.
        m.load_program(0x1000, &[Inst::Jal { rd: 0, offset: 0 }]);
        m.cpu.pc = 0x1000;
        assert!(m.run(100).is_err());
    }

    #[test]
    fn fleet_is_thread_count_invariant() {
        let build = || {
            let mut fleet: Vec<SimMachine> = Vec::new();
            for i in 0..6u8 {
                let mut m = SimMachine::new(16 * MIB);
                m.load_program(
                    0x1000,
                    &[
                        Inst::OpImm {
                            op: AluOp::Add,
                            rd: 10,
                            rs1: 0,
                            imm: i64::from(i) + 1,
                            word: false,
                        },
                        Inst::Op {
                            op: AluOp::Add,
                            rd: 10,
                            rs1: 10,
                            rs2: 10,
                            word: false,
                        },
                        Inst::Wfi,
                    ],
                );
                m.cpu.pc = 0x1000;
                fleet.push(m);
            }
            fleet
        };
        let mut seq = build();
        let seq_out = run_fleet(&mut seq, 100, 1);
        for threads in [2, 4, 16] {
            let mut par = build();
            let par_out = run_fleet(&mut par, 100, threads);
            assert_eq!(par_out, seq_out, "{threads} threads");
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.cpu.reg(10), b.cpu.reg(10));
            }
        }
        // Results land in machine order: machine i computed 2 * (i + 1).
        for (i, m) in seq.iter().enumerate() {
            assert_eq!(m.cpu.reg(10), 2 * (i as u64 + 1));
        }
    }
}
