//! Instruction decoder — the model of the modified BOOM decode stage, which
//! recognises the two new opcodes (paper §IV-A1, Table I: 58 Chisel LoC).

use crate::encode::{OPCODE_LD_PT, OPCODE_SD_PT};
use crate::inst::{AluOp, AmoOp, BranchOp, CsrOp, Inst, LoadOp, StoreOp};

fn rd(word: u32) -> u8 {
    ((word >> 7) & 0x1f) as u8
}

fn rs1(word: u32) -> u8 {
    ((word >> 15) & 0x1f) as u8
}

fn rs2(word: u32) -> u8 {
    ((word >> 20) & 0x1f) as u8
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0b111
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i64 {
    ((word as i32) >> 20) as i64
}

fn imm_s(word: u32) -> i64 {
    let hi = ((word as i32) >> 25) as i64; // sign-extended imm[11:5]
    let lo = ((word >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}

fn imm_b(word: u32) -> i64 {
    let sign = ((word as i32) >> 31) as i64; // imm[12]
    let b11 = ((word >> 7) & 1) as i64;
    let b4_1 = ((word >> 8) & 0xf) as i64;
    let b10_5 = ((word >> 25) & 0x3f) as i64;
    (sign << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

fn imm_u(word: u32) -> i64 {
    ((word & 0xffff_f000) as i32) as i64
}

fn imm_j(word: u32) -> i64 {
    let sign = ((word as i32) >> 31) as i64; // imm[20]
    let b19_12 = ((word >> 12) & 0xff) as i64;
    let b11 = ((word >> 20) & 1) as i64;
    let b10_1 = ((word >> 21) & 0x3ff) as i64;
    (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes a 32-bit instruction word. Returns `None` for anything the model
/// does not implement (the CPU raises an illegal-instruction trap).
pub fn decode(word: u32) -> Option<Inst> {
    let opcode = word & 0x7f;
    match opcode {
        0b011_0111 => Some(Inst::Lui {
            rd: rd(word),
            imm: imm_u(word),
        }),
        0b001_0111 => Some(Inst::Auipc {
            rd: rd(word),
            imm: imm_u(word),
        }),
        0b110_1111 => Some(Inst::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0b110_0111 if funct3(word) == 0 => Some(Inst::Jalr {
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        }),
        0b110_0011 => {
            let op = match funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return None,
            };
            Some(Inst::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            })
        }
        0b000_0011 => {
            let op = match funct3(word) {
                0b000 => LoadOp::B,
                0b001 => LoadOp::H,
                0b010 => LoadOp::W,
                0b011 => LoadOp::D,
                0b100 => LoadOp::Bu,
                0b101 => LoadOp::Hu,
                0b110 => LoadOp::Wu,
                _ => return None,
            };
            Some(Inst::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0b010_0011 => {
            let op = match funct3(word) {
                0b000 => StoreOp::B,
                0b001 => StoreOp::H,
                0b010 => StoreOp::W,
                0b011 => StoreOp::D,
                _ => return None,
            };
            Some(Inst::Store {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_s(word),
            })
        }
        // RV64A: AMO/LR/SC (funct3 010 = .w, 011 = .d; aq/rl bits ignored by
        // the functional model).
        0b010_1111 => {
            let word_form = match funct3(word) {
                0b010 => true,
                0b011 => false,
                _ => return None,
            };
            let op = AmoOp::from_funct5(funct7(word) >> 2)?;
            if op == AmoOp::Lr && rs2(word) != 0 {
                return None;
            }
            Some(Inst::Amo {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
                word: word_form,
            })
        }
        // PTStore custom-0: ld.pt
        op if op == OPCODE_LD_PT && funct3(word) == 0b011 => Some(Inst::LdPt {
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        }),
        // PTStore custom-1: sd.pt
        op if op == OPCODE_SD_PT && funct3(word) == 0b011 => Some(Inst::SdPt {
            rs1: rs1(word),
            rs2: rs2(word),
            offset: imm_s(word),
        }),
        0b001_0011 | 0b001_1011 => {
            let word_form = opcode == 0b001_1011;
            let imm = imm_i(word);
            let (op, imm) = match funct3(word) {
                0b000 => (AluOp::Add, imm),
                0b010 => (AluOp::Slt, imm),
                0b011 => (AluOp::Sltu, imm),
                0b100 => (AluOp::Xor, imm),
                0b110 => (AluOp::Or, imm),
                0b111 => (AluOp::And, imm),
                0b001 => (AluOp::Sll, imm & 0x3f),
                0b101 => {
                    if imm & 0x400 != 0 {
                        (AluOp::Sra, imm & 0x3f)
                    } else {
                        (AluOp::Srl, imm & 0x3f)
                    }
                }
                _ => return None,
            };
            Some(Inst::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
                word: word_form,
            })
        }
        0b011_0011 | 0b011_1011 => {
            let word_form = opcode == 0b011_1011;
            let op = match (funct3(word), funct7(word)) {
                (0b000, 0b000_0000) => AluOp::Add,
                (0b000, 0b010_0000) => AluOp::Sub,
                (0b001, 0b000_0000) => AluOp::Sll,
                (0b010, 0b000_0000) => AluOp::Slt,
                (0b011, 0b000_0000) => AluOp::Sltu,
                (0b100, 0b000_0000) => AluOp::Xor,
                (0b101, 0b000_0000) => AluOp::Srl,
                (0b101, 0b010_0000) => AluOp::Sra,
                (0b110, 0b000_0000) => AluOp::Or,
                (0b111, 0b000_0000) => AluOp::And,
                (0b000, 0b000_0001) => AluOp::Mul,
                (0b100, 0b000_0001) => AluOp::Div,
                (0b101, 0b000_0001) => AluOp::Divu,
                (0b110, 0b000_0001) => AluOp::Rem,
                (0b111, 0b000_0001) => AluOp::Remu,
                _ => return None,
            };
            Some(Inst::Op {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
                word: word_form,
            })
        }
        0b000_1111 => Some(Inst::Fence),
        0b111_0011 => match funct3(word) {
            0b000 => match word >> 20 {
                0b0000_0000_0000 if rd(word) == 0 && rs1(word) == 0 => Some(Inst::Ecall),
                0b0000_0000_0001 if rd(word) == 0 && rs1(word) == 0 => Some(Inst::Ebreak),
                0b0001_0000_0010 if rd(word) == 0 && rs1(word) == 0 => Some(Inst::Sret),
                0b0011_0000_0010 if rd(word) == 0 && rs1(word) == 0 => Some(Inst::Mret),
                0b0001_0000_0101 if rd(word) == 0 && rs1(word) == 0 => Some(Inst::Wfi),
                _ if funct7(word) == 0b000_1001 && rd(word) == 0 => Some(Inst::SfenceVma {
                    rs1: rs1(word),
                    rs2: rs2(word),
                }),
                _ => None,
            },
            f3 @ (0b001 | 0b010 | 0b011 | 0b101 | 0b110 | 0b111) => {
                let (op, imm_form) = match f3 {
                    0b001 => (CsrOp::ReadWrite, false),
                    0b010 => (CsrOp::ReadSet, false),
                    0b011 => (CsrOp::ReadClear, false),
                    0b101 => (CsrOp::ReadWrite, true),
                    0b110 => (CsrOp::ReadSet, true),
                    _ => (CsrOp::ReadClear, true),
                };
                Some(Inst::Csr {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    csr: (word >> 20) as u16,
                    imm_form,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_opcode_is_none() {
        assert_eq!(decode(0xffff_ffff), None);
        assert_eq!(decode(0), None);
    }

    #[test]
    #[allow(clippy::identity_op)] // funct3=000 spelled out for contrast with 011
    fn custom_opcode_with_wrong_funct3_is_none() {
        // ld.pt requires funct3=011; anything else in custom-0 is illegal.
        let bad = OPCODE_LD_PT | (0b000 << 12);
        assert_eq!(decode(bad), None);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi a0, a0, -1
        let word = crate::encode::encode(Inst::OpImm {
            op: AluOp::Add,
            rd: 10,
            rs1: 10,
            imm: -1,
            word: false,
        });
        match decode(word).unwrap() {
            Inst::OpImm { imm, .. } => assert_eq!(imm, -1),
            other => panic!("wrong decode: {other}"),
        }
    }

    #[test]
    fn branch_offset_sign() {
        let word = crate::encode::encode(Inst::Branch {
            op: BranchOp::Eq,
            rs1: 1,
            rs2: 2,
            offset: -8,
        });
        match decode(word).unwrap() {
            Inst::Branch { offset, .. } => assert_eq!(offset, -8),
            other => panic!("wrong decode: {other}"),
        }
    }
}
