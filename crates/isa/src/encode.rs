//! Instruction encoders — the model's assembler.
//!
//! This corresponds to the paper's LLVM back-end change (Table I: 15 lines of
//! C++/TableGen adding `ld.pt`/`sd.pt` to the RISC-V ISA description files).
//! `ld.pt` sits in the *custom-0* opcode space (`0001011`) and `sd.pt` in
//! *custom-1* (`0101011`), both with `funct3 = 011` like their regular
//! counterparts.

use crate::inst::{AluOp, AmoOp, BranchOp, CsrOp, Inst, LoadOp, StoreOp};

/// Opcode of `ld.pt` (custom-0).
pub const OPCODE_LD_PT: u32 = 0b000_1011;
/// Opcode of `sd.pt` (custom-1).
pub const OPCODE_SD_PT: u32 = 0b010_1011;

fn r_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct7: u32) -> u32 {
    opcode
        | ((rd as u32) << 7)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | ((rs2 as u32) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, imm: i64) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "i-imm out of range: {imm}");
    opcode
        | ((rd as u32) << 7)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | (((imm as u32) & 0xfff) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i64) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "s-imm out of range: {imm}");
    let imm = (imm as u32) & 0xfff;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | ((rs2 as u32) << 20)
        | ((imm >> 5) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, offset: i64) -> u32 {
    debug_assert!(offset % 2 == 0 && (-4096..=4094).contains(&offset));
    let imm = (offset as u32) & 0x1fff;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | ((rs2 as u32) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opcode: u32, rd: u8, imm: i64) -> u32 {
    opcode | ((rd as u32) << 7) | ((imm as u32) & 0xffff_f000)
}

fn j_type(opcode: u32, rd: u8, offset: i64) -> u32 {
    debug_assert!(offset % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&offset));
    let imm = (offset as u32) & 0x1f_ffff;
    opcode
        | ((rd as u32) << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

/// Encodes any supported instruction to its 32-bit machine code.
///
/// (Privileged-instruction literals below are grouped as `funct7_rs2`,
/// matching the ISA manual's field split rather than nibbles.)
///
/// # Panics
/// Panics (in debug builds) when an immediate is out of range for its
/// encoding, and on shift-immediate ALU ops outside 0–63.
// Opcode literals are grouped by instruction field (funct/op), not digits.
#[allow(clippy::unusual_byte_groupings)]
pub fn encode(inst: Inst) -> u32 {
    match inst {
        Inst::Lui { rd, imm } => u_type(0b011_0111, rd, imm),
        Inst::Auipc { rd, imm } => u_type(0b001_0111, rd, imm),
        Inst::Jal { rd, offset } => j_type(0b110_1111, rd, offset),
        Inst::Jalr { rd, rs1, offset } => i_type(0b110_0111, rd, 0b000, rs1, offset),
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let funct3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            b_type(0b110_0011, funct3, rs1, rs2, offset)
        }
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let funct3 = match op {
                LoadOp::B => 0b000,
                LoadOp::H => 0b001,
                LoadOp::W => 0b010,
                LoadOp::D => 0b011,
                LoadOp::Bu => 0b100,
                LoadOp::Hu => 0b101,
                LoadOp::Wu => 0b110,
            };
            i_type(0b000_0011, rd, funct3, rs1, offset)
        }
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let funct3 = match op {
                StoreOp::B => 0b000,
                StoreOp::H => 0b001,
                StoreOp::W => 0b010,
                StoreOp::D => 0b011,
            };
            s_type(0b010_0011, funct3, rs1, rs2, offset)
        }
        Inst::Amo {
            op,
            rd,
            rs1,
            rs2,
            word,
        } => {
            let funct3 = if word { 0b010 } else { 0b011 };
            debug_assert!(op != AmoOp::Lr || rs2 == 0, "lr has rs2=0");
            r_type(0b010_1111, rd, funct3, rs1, rs2, op.funct5() << 2)
        }
        Inst::LdPt { rd, rs1, offset } => i_type(OPCODE_LD_PT, rd, 0b011, rs1, offset),
        Inst::SdPt { rs1, rs2, offset } => s_type(OPCODE_SD_PT, 0b011, rs1, rs2, offset),
        Inst::OpImm {
            op,
            rd,
            rs1,
            imm,
            word,
        } => {
            let opcode = if word { 0b001_1011 } else { 0b001_0011 };
            match op {
                AluOp::Add => i_type(opcode, rd, 0b000, rs1, imm),
                AluOp::Slt => i_type(opcode, rd, 0b010, rs1, imm),
                AluOp::Sltu => i_type(opcode, rd, 0b011, rs1, imm),
                AluOp::Xor => i_type(opcode, rd, 0b100, rs1, imm),
                AluOp::Or => i_type(opcode, rd, 0b110, rs1, imm),
                AluOp::And => i_type(opcode, rd, 0b111, rs1, imm),
                AluOp::Sll => {
                    assert!((0..64).contains(&imm));
                    i_type(opcode, rd, 0b001, rs1, imm)
                }
                AluOp::Srl => {
                    assert!((0..64).contains(&imm));
                    i_type(opcode, rd, 0b101, rs1, imm)
                }
                AluOp::Sra => {
                    assert!((0..64).contains(&imm));
                    i_type(opcode, rd, 0b101, rs1, imm | 0x400)
                }
                other => panic!("{other:?} has no immediate form"),
            }
        }
        Inst::Op {
            op,
            rd,
            rs1,
            rs2,
            word,
        } => {
            let opcode = if word { 0b011_1011 } else { 0b011_0011 };
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, 0b000_0000),
                AluOp::Sub => (0b000, 0b010_0000),
                AluOp::Sll => (0b001, 0b000_0000),
                AluOp::Slt => (0b010, 0b000_0000),
                AluOp::Sltu => (0b011, 0b000_0000),
                AluOp::Xor => (0b100, 0b000_0000),
                AluOp::Srl => (0b101, 0b000_0000),
                AluOp::Sra => (0b101, 0b010_0000),
                AluOp::Or => (0b110, 0b000_0000),
                AluOp::And => (0b111, 0b000_0000),
                AluOp::Mul => (0b000, 0b000_0001),
                AluOp::Div => (0b100, 0b000_0001),
                AluOp::Divu => (0b101, 0b000_0001),
                AluOp::Rem => (0b110, 0b000_0001),
                AluOp::Remu => (0b111, 0b000_0001),
            };
            r_type(opcode, rd, funct3, rs1, rs2, funct7)
        }
        Inst::Csr {
            op,
            rd,
            rs1,
            csr,
            imm_form,
        } => {
            let funct3 = match (op, imm_form) {
                (CsrOp::ReadWrite, false) => 0b001,
                (CsrOp::ReadSet, false) => 0b010,
                (CsrOp::ReadClear, false) => 0b011,
                (CsrOp::ReadWrite, true) => 0b101,
                (CsrOp::ReadSet, true) => 0b110,
                (CsrOp::ReadClear, true) => 0b111,
            };
            0b111_0011
                | ((rd as u32) << 7)
                | (funct3 << 12)
                | ((rs1 as u32) << 15)
                | ((csr as u32) << 20)
        }
        Inst::Ecall => 0b111_0011,
        Inst::Ebreak => 0b111_0011 | (1 << 20),
        Inst::Sret => 0b111_0011 | (0b0001000_00010 << 20),
        Inst::Mret => 0b111_0011 | (0b0011000_00010 << 20),
        Inst::Wfi => 0b111_0011 | (0b0001000_00101 << 20),
        Inst::Fence => 0b000_1111,
        Inst::SfenceVma { rs1, rs2 } => r_type(0b111_0011, 0, 0b000, rs1, rs2, 0b000_1001),
    }
}

/// Convenience assembler: encodes a whole program.
pub fn assemble(program: &[Inst]) -> Vec<u32> {
    program.iter().map(|&i| encode(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn ld_pt_uses_custom_0() {
        let word = encode(Inst::LdPt {
            rd: 10,
            rs1: 11,
            offset: 8,
        });
        assert_eq!(word & 0x7f, OPCODE_LD_PT);
        assert_eq!((word >> 12) & 0b111, 0b011);
    }

    #[test]
    fn sd_pt_uses_custom_1() {
        let word = encode(Inst::SdPt {
            rs1: 11,
            rs2: 10,
            offset: -8,
        });
        assert_eq!(word & 0x7f, OPCODE_SD_PT);
    }

    #[test]
    fn well_known_encodings() {
        // addi x0, x0, 0 == nop == 0x00000013
        assert_eq!(
            encode(Inst::OpImm {
                op: AluOp::Add,
                rd: 0,
                rs1: 0,
                imm: 0,
                word: false
            }),
            0x0000_0013
        );
        // ecall == 0x00000073
        assert_eq!(encode(Inst::Ecall), 0x0000_0073);
        // mret == 0x30200073
        assert_eq!(encode(Inst::Mret), 0x3020_0073);
        // ret == jalr x0, 0(x1) == 0x00008067
        assert_eq!(
            encode(Inst::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0
            }),
            0x0000_8067
        );
    }

    #[test]
    fn encode_decode_round_trip_sample() {
        let program = [
            Inst::Lui {
                rd: 5,
                imm: 0x12345 << 12,
            },
            Inst::Auipc { rd: 6, imm: -4096 },
            Inst::Jal {
                rd: 1,
                offset: -2048,
            },
            Inst::Jalr {
                rd: 1,
                rs1: 5,
                offset: 16,
            },
            Inst::Branch {
                op: BranchOp::Ltu,
                rs1: 5,
                rs2: 6,
                offset: -64,
            },
            Inst::Load {
                op: LoadOp::Wu,
                rd: 7,
                rs1: 2,
                offset: 2047,
            },
            Inst::Store {
                op: StoreOp::H,
                rs1: 2,
                rs2: 7,
                offset: -2048,
            },
            Inst::LdPt {
                rd: 10,
                rs1: 11,
                offset: 128,
            },
            Inst::SdPt {
                rs1: 11,
                rs2: 10,
                offset: -128,
            },
            Inst::OpImm {
                op: AluOp::Sra,
                rd: 8,
                rs1: 9,
                imm: 63,
                word: false,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 8,
                rs1: 9,
                imm: -1,
                word: true,
            },
            Inst::Op {
                op: AluOp::Mul,
                rd: 8,
                rs1: 9,
                rs2: 10,
                word: false,
            },
            Inst::Op {
                op: AluOp::Sub,
                rd: 8,
                rs1: 9,
                rs2: 10,
                word: true,
            },
            Inst::Csr {
                op: CsrOp::ReadWrite,
                rd: 1,
                rs1: 2,
                csr: 0x180,
                imm_form: false,
            },
            Inst::Csr {
                op: CsrOp::ReadSet,
                rd: 1,
                rs1: 5,
                csr: 0x300,
                imm_form: true,
            },
            Inst::Ecall,
            Inst::Ebreak,
            Inst::Mret,
            Inst::Sret,
            Inst::Wfi,
            Inst::Fence,
            Inst::SfenceVma { rs1: 0, rs2: 0 },
        ];
        for inst in program {
            let word = encode(inst);
            let back = decode(word).unwrap_or_else(|| panic!("decode failed for {inst}"));
            assert_eq!(back, inst, "round trip failed for {inst} ({word:#010x})");
        }
    }
}
