//! # ptstore-isa
//!
//! A functional RV64 instruction-set simulator carrying the PTStore ISA
//! extension (paper §IV-A):
//!
//! * two new instructions, **`ld.pt`** and **`sd.pt`** — identical to `ld`/`sd`
//!   except for their opcodes (custom-0/custom-1 space) and that they access
//!   memory on the [`Channel::SecurePt`](ptstore_core::Channel) path, i.e.
//!   *only* the secure region;
//! * the new **S-bit** in each `pmpcfg` entry (modelled in
//!   [`ptstore_core::PmpUnit`], surfaced here through the CSR file);
//! * the new **S-bit** in `satp` arming the walker origin check.
//!
//! The interpreter covers RV64IM + Zicsr + privileged instructions
//! (`ecall`/`mret`/`sret`/`sfence.vma`/`wfi`), M/S/U privilege modes, and the
//! standard trap architecture with `medeleg`-based delegation — enough to run
//! the boot/attack/demo programs in `examples/` and the integration tests
//! against the same PMP + MMU the kernel model uses. The LLVM back-end change
//! of the paper (15 LoC of TableGen) corresponds to [`mod@encode`] +
//! [`mod@decode`] here.
//!
//! ```
//! use ptstore_isa::{decode, encode, Inst};
//!
//! // The new instruction exists, encodes into custom-0, and round-trips.
//! let ld_pt = Inst::LdPt { rd: 10, rs1: 11, offset: 16 };
//! let word = encode(ld_pt);
//! assert_eq!(word & 0x7f, 0b000_1011);
//! assert_eq!(decode(word), Some(ld_pt));
//! ```

pub mod compressed;
pub mod cpu;
pub mod csr;
pub mod decode;
pub mod encode;
pub mod inst;
pub mod machine;

pub use compressed::{decode_compressed, is_compressed};
pub use cpu::{Cpu, CpuError, StepEvent, Trap, TrapCause};
pub use csr::CsrFile;
pub use decode::decode;
pub use encode::{assemble, encode};
pub use inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, StoreOp};
pub use machine::{run_fleet, SimMachine};
