//! The RV64 hart: fetch/decode/execute with the PTStore extension and the
//! standard trap architecture.

use core::fmt;

use ptstore_core::{AccessContext, AccessError, AccessKind, Channel, PrivilegeMode, VirtAddr};
use ptstore_mem::Bus;
use ptstore_mmu::{Mmu, Satp, TranslateError};
use serde::{Deserialize, Serialize};

use crate::csr::{addr as csr_addr, status, CsrError, CsrFile};
use crate::decode::decode;
use crate::inst::{AluOp, AmoOp, BranchOp, CsrOp, Inst, LoadOp, StoreOp};

/// RISC-V exception causes raised by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrapCause {
    /// Instruction access fault (1) — e.g. fetching from the secure region.
    InstructionAccessFault,
    /// Illegal instruction (2) — undecodable words, privilege violations.
    IllegalInstruction,
    /// Breakpoint (3).
    Breakpoint,
    /// Load address misaligned (4).
    LoadMisaligned,
    /// Load access fault (5) — **this is what a regular load into the secure
    /// region raises**, and what `ld.pt` outside the region raises.
    LoadAccessFault,
    /// Store address misaligned (6).
    StoreMisaligned,
    /// Store access fault (7) — the store-side PTStore denial.
    StoreAccessFault,
    /// Environment call from U (8), S (9) or M (11).
    EnvironmentCall(PrivilegeMode),
    /// Instruction page fault (12).
    InstructionPageFault,
    /// Load page fault (13).
    LoadPageFault,
    /// Store page fault (15).
    StorePageFault,
    /// Supervisor timer interrupt (Sstc; `scause` = interrupt-bit | 5).
    SupervisorTimerInterrupt,
}

impl TrapCause {
    /// The standard `mcause`/`scause` encoding.
    pub const fn code(self) -> u64 {
        match self {
            TrapCause::InstructionAccessFault => 1,
            TrapCause::IllegalInstruction => 2,
            TrapCause::Breakpoint => 3,
            TrapCause::LoadMisaligned => 4,
            TrapCause::LoadAccessFault => 5,
            TrapCause::StoreMisaligned => 6,
            TrapCause::StoreAccessFault => 7,
            TrapCause::EnvironmentCall(PrivilegeMode::User) => 8,
            TrapCause::EnvironmentCall(PrivilegeMode::Supervisor) => 9,
            TrapCause::EnvironmentCall(PrivilegeMode::Machine) => 11,
            TrapCause::InstructionPageFault => 12,
            TrapCause::LoadPageFault => 13,
            TrapCause::StorePageFault => 15,
            TrapCause::SupervisorTimerInterrupt => {
                crate::csr::interrupt::CAUSE_INTERRUPT | crate::csr::interrupt::CAUSE_S_TIMER
            }
        }
    }

    /// True for interrupt causes (the high bit of `scause`).
    pub const fn is_interrupt(self) -> bool {
        matches!(self, TrapCause::SupervisorTimerInterrupt)
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::EnvironmentCall(m) => write!(f, "ecall-{m}"),
            other => write!(f, "cause {}", other.code()),
        }
    }
}

/// A delivered trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trap {
    /// Exception cause.
    pub cause: TrapCause,
    /// Trap value (faulting address or instruction word).
    pub tval: u64,
    /// PC of the trapping instruction.
    pub epc: u64,
    /// True when the trap was delegated to S-mode.
    pub delegated: bool,
}

/// What a single `step` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Instruction retired normally.
    Retired,
    /// A trap was taken (the CPU has already vectored to the handler).
    Trapped(Trap),
    /// `wfi` executed; the model has no interrupts, so the caller decides.
    WaitingForInterrupt,
}

/// Unrecoverable simulator errors (not architectural traps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// A trap occurred but the corresponding trap vector is zero — the
    /// machine would spin on address 0; surfaced as an error so tests and
    /// examples fail loudly.
    TrapVectorUnset(TrapCause),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::TrapVectorUnset(c) => write!(f, "trap {c} with no trap vector installed"),
        }
    }
}

impl std::error::Error for CpuError {}

/// One RV64 hart with the PTStore extension.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// The integer register file (`x0` is hardwired to zero).
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Current privilege mode.
    pub mode: PrivilegeMode,
    /// The CSR file.
    pub csrs: CsrFile,
    /// The MMU (TLBs + walker + live `satp`).
    pub mmu: Mmu,
    /// Retired instruction count.
    pub instret: u64,
    /// LR/SC reservation (physical address of the reserved word), RV64A.
    pub reservation: Option<u64>,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A hart reset to M-mode at PC 0.
    pub fn new() -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            mode: PrivilegeMode::Machine,
            csrs: CsrFile::new(),
            mmu: Mmu::new(),
            instret: 0,
            reservation: None,
        }
    }

    /// Reads a register (`x0` reads zero).
    pub fn reg(&self, i: u8) -> u64 {
        if i == 0 {
            0
        } else {
            self.regs[i as usize]
        }
    }

    /// Writes a register (`x0` writes are discarded).
    pub fn set_reg(&mut self, i: u8, v: u64) {
        if i != 0 {
            self.regs[i as usize] = v;
        }
    }

    fn access_ctx(&self) -> AccessContext {
        AccessContext {
            mode: self.mode,
            satp_s: self.mmu.satp.s_bit,
            hart: 0,
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    /// [`CpuError::TrapVectorUnset`] when a trap must be taken but the
    /// relevant `mtvec`/`stvec` is zero.
    pub fn step(&mut self, bus: &mut Bus) -> Result<StepEvent, CpuError> {
        // Sstc: raise/clear STIP from the timer, then take the interrupt if
        // enabled — before fetching, as hardware samples interrupts at
        // instruction boundaries.
        self.update_timer_pending();
        if self.s_timer_interrupt_ready() {
            let pc = self.pc;
            return self
                .take_s_interrupt(TrapCause::SupervisorTimerInterrupt, pc)
                .map(StepEvent::Trapped);
        }
        let pc = self.pc;
        // Fetch: 16-bit parcels (the C extension allows 2-byte alignment).
        let parcel = match self.fetch_parcel(bus, pc) {
            Ok(p) => p,
            Err((cause, tval)) => return self.trap(cause, tval, pc).map(StepEvent::Trapped),
        };
        // Decode: compressed or full-width.
        let (inst, len) = if crate::compressed::is_compressed(parcel) {
            match crate::compressed::decode_compressed(parcel) {
                Some(i) => (i, 2u64),
                None => {
                    return self
                        .trap(TrapCause::IllegalInstruction, parcel as u64, pc)
                        .map(StepEvent::Trapped)
                }
            }
        } else {
            let hi = match self.fetch_parcel(bus, pc.wrapping_add(2)) {
                Ok(p) => p,
                Err((cause, tval)) => return self.trap(cause, tval, pc).map(StepEvent::Trapped),
            };
            let word = parcel as u32 | ((hi as u32) << 16);
            match decode(word) {
                Some(i) => (i, 4u64),
                None => {
                    return self
                        .trap(TrapCause::IllegalInstruction, word as u64, pc)
                        .map(StepEvent::Trapped)
                }
            }
        };
        // Execute.
        match self.execute(bus, inst, pc, len) {
            Ok(next_pc) => {
                self.pc = next_pc;
                self.instret += 1;
                if matches!(inst, Inst::Wfi) {
                    Ok(StepEvent::WaitingForInterrupt)
                } else {
                    Ok(StepEvent::Retired)
                }
            }
            Err((cause, tval)) => self.trap(cause, tval, pc).map(StepEvent::Trapped),
        }
    }

    fn fetch_parcel(&mut self, bus: &mut Bus, pc: u64) -> Result<u16, (TrapCause, u64)> {
        let va = VirtAddr::new(pc);
        let outcome = self
            .mmu
            .translate_fetch(bus, va, self.mode)
            .map_err(|e| match e {
                TranslateError::PageFault { .. } => (TrapCause::InstructionPageFault, pc),
                TranslateError::AccessFault(_) => (TrapCause::InstructionAccessFault, pc),
            })?;
        bus.fetch::<u16>(outcome.pa(), self.access_ctx())
            .map_err(|_| (TrapCause::InstructionAccessFault, pc))
    }

    fn execute(
        &mut self,
        bus: &mut Bus,
        inst: Inst,
        pc: u64,
        len: u64,
    ) -> Result<u64, (TrapCause, u64)> {
        let next = pc.wrapping_add(len);
        match inst {
            Inst::Lui { rd, imm } => {
                self.set_reg(rd, imm as u64);
                Ok(next)
            }
            Inst::Auipc { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(imm as u64));
                Ok(next)
            }
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, next);
                Ok(pc.wrapping_add(offset as u64))
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                self.set_reg(rd, next);
                Ok(target)
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i64) < (b as i64),
                    BranchOp::Ge => (a as i64) >= (b as i64),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                Ok(if taken {
                    pc.wrapping_add(offset as u64)
                } else {
                    next
                })
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let va = self.reg(rs1).wrapping_add(offset as u64);
                let v = self.load(bus, va, op, Channel::Regular)?;
                self.set_reg(rd, v);
                Ok(next)
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let va = self.reg(rs1).wrapping_add(offset as u64);
                self.store(bus, va, self.reg(rs2), op, Channel::Regular)?;
                Ok(next)
            }
            Inst::Amo {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let va = self.reg(rs1);
                let v = self.execute_amo(bus, op, va, self.reg(rs2), word)?;
                self.set_reg(rd, v);
                Ok(next)
            }
            Inst::LdPt { rd, rs1, offset } => {
                // Kernel-only instruction: U-mode use is illegal.
                if self.mode == PrivilegeMode::User {
                    return Err((TrapCause::IllegalInstruction, 0));
                }
                let va = self.reg(rs1).wrapping_add(offset as u64);
                let v = self.load(bus, va, LoadOp::D, Channel::SecurePt)?;
                self.set_reg(rd, v);
                Ok(next)
            }
            Inst::SdPt { rs1, rs2, offset } => {
                if self.mode == PrivilegeMode::User {
                    return Err((TrapCause::IllegalInstruction, 0));
                }
                let va = self.reg(rs1).wrapping_add(offset as u64);
                self.store(bus, va, self.reg(rs2), StoreOp::D, Channel::SecurePt)?;
                Ok(next)
            }
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm,
                word,
            } => {
                let v = Self::alu(op, self.reg(rs1), imm as u64, word);
                self.set_reg(rd, v);
                Ok(next)
            }
            Inst::Op {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let v = Self::alu(op, self.reg(rs1), self.reg(rs2), word);
                self.set_reg(rd, v);
                Ok(next)
            }
            Inst::Csr {
                op,
                rd,
                rs1,
                csr,
                imm_form,
            } => {
                let arg = if imm_form { rs1 as u64 } else { self.reg(rs1) };
                let old = match self.csrs.read(csr, self.mode) {
                    Ok(v) => self.shadow_counter(csr).unwrap_or(v),
                    Err(_) => return Err((TrapCause::IllegalInstruction, 0)),
                };
                let new = match op {
                    CsrOp::ReadWrite => Some(arg),
                    CsrOp::ReadSet => (rs1 != 0).then_some(old | arg),
                    CsrOp::ReadClear => (rs1 != 0).then_some(old & !arg),
                };
                if let Some(new) = new {
                    match self.csrs.write(csr, new, self.mode) {
                        Ok(()) => self.apply_csr_side_effects(bus, csr),
                        Err(CsrError::ReadOnly | CsrError::InsufficientPrivilege) => {
                            return Err((TrapCause::IllegalInstruction, 0))
                        }
                    }
                }
                self.set_reg(rd, old);
                Ok(next)
            }
            Inst::Ecall => Err((TrapCause::EnvironmentCall(self.mode), 0)),
            Inst::Ebreak => Err((TrapCause::Breakpoint, pc)),
            Inst::Mret => {
                if self.mode != PrivilegeMode::Machine {
                    return Err((TrapCause::IllegalInstruction, 0));
                }
                let mstatus = self.csrs.read_raw(csr_addr::MSTATUS);
                let mpp = (mstatus & status::MPP_MASK) >> status::MPP_SHIFT;
                self.mode = PrivilegeMode::from_encoding(mpp).unwrap_or(PrivilegeMode::User);
                // MIE <- MPIE, MPIE <- 1, MPP <- U.
                let mie = if mstatus & status::MPIE != 0 {
                    status::MIE
                } else {
                    0
                };
                let cleared = mstatus & !(status::MIE | status::MPP_MASK);
                self.csrs
                    .write_raw(csr_addr::MSTATUS, cleared | mie | status::MPIE);
                Ok(self.csrs.read_raw(csr_addr::MEPC))
            }
            Inst::Sret => {
                if self.mode == PrivilegeMode::User {
                    return Err((TrapCause::IllegalInstruction, 0));
                }
                let sstatus = self.csrs.read_raw(csr_addr::SSTATUS);
                self.mode = if sstatus & status::SPP != 0 {
                    PrivilegeMode::Supervisor
                } else {
                    PrivilegeMode::User
                };
                let sie = if sstatus & status::SPIE != 0 {
                    status::SIE
                } else {
                    0
                };
                let cleared = sstatus & !(status::SIE | status::SPP);
                self.csrs
                    .write_raw(csr_addr::SSTATUS, cleared | sie | status::SPIE);
                Ok(self.csrs.read_raw(csr_addr::SEPC))
            }
            Inst::Wfi => Ok(next),
            Inst::Fence => Ok(next),
            Inst::SfenceVma { rs1, rs2 } => {
                if self.mode == PrivilegeMode::User {
                    return Err((TrapCause::IllegalInstruction, 0));
                }
                match (rs1, rs2) {
                    (0, 0) => self.mmu.sfence_all(),
                    (r, 0) => self
                        .mmu
                        .sfence_page(VirtAddr::new(self.reg(r)), self.mmu.satp.asid),
                    (0, a) => self.mmu.sfence_asid(self.reg(a) as u16),
                    (r, a) => {
                        let asid = self.reg(a) as u16;
                        self.mmu.sfence_page(VirtAddr::new(self.reg(r)), asid);
                    }
                }
                Ok(next)
            }
        }
    }

    /// RV64A semantics: LR takes a reservation on the physical word, SC
    /// succeeds (rd=0) only while it holds, and AMOs are read-modify-write
    /// with the old value returned. Misaligned AMOs raise store-misaligned.
    fn execute_amo(
        &mut self,
        bus: &mut Bus,
        op: AmoOp,
        va: u64,
        src: u64,
        word: bool,
    ) -> Result<u64, (TrapCause, u64)> {
        let width = if word { 4 } else { 8 };
        if !va.is_multiple_of(width) {
            return Err((TrapCause::StoreMisaligned, va));
        }
        // AMOs and SC need write permission; LR needs read.
        let kind = if op == AmoOp::Lr {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        let outcome = self
            .mmu
            .translate_data(bus, VirtAddr::new(va), kind, self.mode)
            .map_err(|e| match (e, op) {
                (TranslateError::PageFault { .. }, AmoOp::Lr) => (TrapCause::LoadPageFault, va),
                (TranslateError::PageFault { .. }, _) => (TrapCause::StorePageFault, va),
                (TranslateError::AccessFault(_), AmoOp::Lr) => (TrapCause::LoadAccessFault, va),
                (TranslateError::AccessFault(_), _) => (TrapCause::StoreAccessFault, va),
            })?;
        let pa = outcome.pa();
        let ctx = self.access_ctx();
        let fault = |op: AmoOp, va: u64| {
            move |_e: AccessError| {
                if op == AmoOp::Lr {
                    (TrapCause::LoadAccessFault, va)
                } else {
                    (TrapCause::StoreAccessFault, va)
                }
            }
        };
        let read_mem = |bus: &mut Bus, s: &mut Self| -> Result<u64, (TrapCause, u64)> {
            let raw = if word {
                let mut v = 0u64;
                for i in 0..4 {
                    v |= (bus
                        .read::<u8>(pa + i, Channel::Regular, ctx)
                        .map_err(fault(op, va))? as u64)
                        << (8 * i);
                }
                v as u32 as i32 as i64 as u64 // .w loads sign-extend
            } else {
                bus.read::<u64>(pa, Channel::Regular, ctx)
                    .map_err(fault(op, va))?
            };
            let _ = s;
            Ok(raw)
        };
        let write_mem = |bus: &mut Bus, value: u64| -> Result<(), (TrapCause, u64)> {
            if word {
                for i in 0..4 {
                    bus.write::<u8>(pa + i, (value >> (8 * i)) as u8, Channel::Regular, ctx)
                        .map_err(fault(op, va))?;
                }
            } else {
                bus.write::<u64>(pa, value, Channel::Regular, ctx)
                    .map_err(fault(op, va))?;
            }
            Ok(())
        };
        match op {
            AmoOp::Lr => {
                let v = read_mem(bus, self)?;
                self.reservation = Some(pa.as_u64());
                Ok(v)
            }
            AmoOp::Sc => {
                let success = self.reservation == Some(pa.as_u64());
                self.reservation = None;
                if success {
                    write_mem(bus, src)?;
                    Ok(0)
                } else {
                    Ok(1)
                }
            }
            _ => {
                let old = read_mem(bus, self)?;
                let (a, b) = (old, src);
                let new = match op {
                    AmoOp::Swap => b,
                    AmoOp::Add => a.wrapping_add(b),
                    AmoOp::Xor => a ^ b,
                    AmoOp::And => a & b,
                    AmoOp::Or => a | b,
                    AmoOp::Min => {
                        if word {
                            ((a as i32).min(b as i32)) as u32 as u64
                        } else if (a as i64) < (b as i64) {
                            a
                        } else {
                            b
                        }
                    }
                    AmoOp::Max => {
                        if word {
                            ((a as i32).max(b as i32)) as u32 as u64
                        } else if (a as i64) > (b as i64) {
                            a
                        } else {
                            b
                        }
                    }
                    AmoOp::Minu => {
                        if word {
                            ((a as u32).min(b as u32)) as u64
                        } else {
                            a.min(b)
                        }
                    }
                    AmoOp::Maxu => {
                        if word {
                            ((a as u32).max(b as u32)) as u64
                        } else {
                            a.max(b)
                        }
                    }
                    AmoOp::Lr | AmoOp::Sc => unreachable!("handled above"),
                };
                write_mem(bus, if word { new as u32 as u64 } else { new })?;
                // Another hart's AMO would break a reservation; on a single
                // hart, self-AMOs conservatively clear it too.
                self.reservation = None;
                Ok(old)
            }
        }
    }

    /// Samples the Sstc timer: `time >= stimecmp` (armed when non-zero)
    /// sets `sip.STIP`; re-arming `stimecmp` above `time` clears it.
    fn update_timer_pending(&mut self) {
        let stimecmp = self.csrs.read_raw(csr_addr::STIMECMP);
        let mut sip = self.csrs.read_raw(csr_addr::SIP);
        if stimecmp != 0 && self.instret >= stimecmp {
            sip |= crate::csr::interrupt::STI;
        } else {
            sip &= !crate::csr::interrupt::STI;
        }
        self.csrs.write_raw(csr_addr::SIP, sip);
    }

    /// An S-timer interrupt is deliverable when STIP & STIE and either the
    /// hart runs below S-mode or S-mode has `sstatus.SIE` set. (M-mode is
    /// never interrupted here: the model delegates all S-timer handling via
    /// the implicit `mideleg`.)
    fn s_timer_interrupt_ready(&self) -> bool {
        let sip = self.csrs.read_raw(csr_addr::SIP);
        let sie = self.csrs.read_raw(csr_addr::SIE);
        if sip & sie & crate::csr::interrupt::STI == 0 {
            return false;
        }
        match self.mode {
            PrivilegeMode::User => true,
            PrivilegeMode::Supervisor => self.csrs.read_raw(csr_addr::SSTATUS) & status::SIE != 0,
            PrivilegeMode::Machine => false,
        }
    }

    /// Delivers an interrupt to S-mode (like `trap`, but `sepc` holds the
    /// *next* instruction to resume, which for interrupts is the current pc).
    fn take_s_interrupt(&mut self, cause: TrapCause, epc: u64) -> Result<Trap, CpuError> {
        let stvec = self.csrs.read_raw(csr_addr::STVEC);
        if stvec == 0 {
            return Err(CpuError::TrapVectorUnset(cause));
        }
        self.csrs.write_raw(csr_addr::SCAUSE, cause.code());
        self.csrs.write_raw(csr_addr::SEPC, epc);
        self.csrs.write_raw(csr_addr::STVAL, 0);
        let mut sstatus = self.csrs.read_raw(csr_addr::SSTATUS);
        if sstatus & status::SIE != 0 {
            sstatus |= status::SPIE;
        } else {
            sstatus &= !status::SPIE;
        }
        sstatus &= !status::SIE;
        if self.mode == PrivilegeMode::Supervisor {
            sstatus |= status::SPP;
        } else {
            sstatus &= !status::SPP;
        }
        self.csrs.write_raw(csr_addr::SSTATUS, sstatus);
        self.mode = PrivilegeMode::Supervisor;
        self.pc = stvec & !0b11;
        Ok(Trap {
            cause,
            tval: 0,
            epc,
            delegated: true,
        })
    }

    fn shadow_counter(&self, csr: u16) -> Option<u64> {
        match csr {
            csr_addr::CYCLE | csr_addr::TIME => Some(self.instret), // 1 IPC shadow
            csr_addr::INSTRET => Some(self.instret),
            _ => None,
        }
    }

    fn apply_csr_side_effects(&mut self, bus: &mut Bus, csr: u16) {
        match csr {
            csr_addr::SATP => {
                self.mmu.satp = Satp::from_bits(self.csrs.read_raw(csr_addr::SATP));
            }
            csr_addr::PMPCFG0 => self.sync_pmp(bus),
            c if (csr_addr::PMPADDR0..csr_addr::PMPADDR0 + 8).contains(&c) => self.sync_pmp(bus),
            _ => {}
        }
    }

    /// Pushes the raw `pmpcfg0`/`pmpaddr*` CSR values into the bus's PMP unit
    /// (the hardware shares these registers; the model synchronises them).
    fn sync_pmp(&mut self, bus: &mut Bus) {
        let cfg = self.csrs.read_raw(csr_addr::PMPCFG0);
        for i in 0..ptstore_core::PMP_ENTRY_COUNT {
            let byte = ((cfg >> (8 * i)) & 0xff) as u8;
            let addr = self.csrs.read_raw(csr_addr::PMPADDR0 + i as u16);
            bus.pmp_mut().set_entry(
                i,
                ptstore_core::PmpEntry {
                    cfg: ptstore_core::PmpPermissions::from_bits(byte),
                    addr,
                },
            );
        }
    }

    fn alu(op: AluOp, a: u64, b: u64, word: bool) -> u64 {
        let v = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => {
                let sh = if word { b & 0x1f } else { b & 0x3f };
                if word {
                    ((a as u32) << sh) as u64
                } else {
                    a << sh
                }
            }
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => {
                if word {
                    ((a as u32) >> (b & 0x1f)) as u64
                } else {
                    a >> (b & 0x3f)
                }
            }
            AluOp::Sra => {
                if word {
                    (((a as u32) as i32) >> (b & 0x1f)) as u64
                } else {
                    ((a as i64) >> (b & 0x3f)) as u64
                }
            }
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        };
        if word {
            (v as u32) as i32 as u64
        } else {
            v
        }
    }

    fn load(
        &mut self,
        bus: &mut Bus,
        va: u64,
        op: LoadOp,
        channel: Channel,
    ) -> Result<u64, (TrapCause, u64)> {
        if !va.is_multiple_of(op.width()) {
            return Err((TrapCause::LoadMisaligned, va));
        }
        let outcome = self
            .mmu
            .translate_data(bus, VirtAddr::new(va), AccessKind::Read, self.mode)
            .map_err(|e| match e {
                TranslateError::PageFault { .. } => (TrapCause::LoadPageFault, va),
                TranslateError::AccessFault(_) => (TrapCause::LoadAccessFault, va),
            })?;
        let pa = outcome.pa();
        let ctx = self.access_ctx();
        let read = |e: AccessError| {
            let _ = e;
            (TrapCause::LoadAccessFault, va)
        };
        let value = match op {
            LoadOp::D => bus.read::<u64>(pa, channel, ctx).map_err(read)?,
            LoadOp::W | LoadOp::Wu => {
                let lo = bus.read::<u8>(pa, channel, ctx).map_err(read)? as u64;
                let b1 = bus.read::<u8>(pa + 1, channel, ctx).map_err(read)? as u64;
                let b2 = bus.read::<u8>(pa + 2, channel, ctx).map_err(read)? as u64;
                let b3 = bus.read::<u8>(pa + 3, channel, ctx).map_err(read)? as u64;
                lo | (b1 << 8) | (b2 << 16) | (b3 << 24)
            }
            LoadOp::H | LoadOp::Hu => {
                let lo = bus.read::<u8>(pa, channel, ctx).map_err(read)? as u64;
                let hi = bus.read::<u8>(pa + 1, channel, ctx).map_err(read)? as u64;
                lo | (hi << 8)
            }
            LoadOp::B | LoadOp::Bu => bus.read::<u8>(pa, channel, ctx).map_err(read)? as u64,
        };
        Ok(match op {
            LoadOp::B => value as u8 as i8 as i64 as u64,
            LoadOp::H => value as u16 as i16 as i64 as u64,
            LoadOp::W => value as u32 as i32 as i64 as u64,
            LoadOp::D | LoadOp::Bu | LoadOp::Hu | LoadOp::Wu => value,
        })
    }

    fn store(
        &mut self,
        bus: &mut Bus,
        va: u64,
        value: u64,
        op: StoreOp,
        channel: Channel,
    ) -> Result<(), (TrapCause, u64)> {
        if !va.is_multiple_of(op.width()) {
            return Err((TrapCause::StoreMisaligned, va));
        }
        // Stores conservatively break any LR reservation (single-hart model).
        self.reservation = None;
        let outcome = self
            .mmu
            .translate_data(bus, VirtAddr::new(va), AccessKind::Write, self.mode)
            .map_err(|e| match e {
                TranslateError::PageFault { .. } => (TrapCause::StorePageFault, va),
                TranslateError::AccessFault(_) => (TrapCause::StoreAccessFault, va),
            })?;
        let pa = outcome.pa();
        let ctx = self.access_ctx();
        let werr = |_e: AccessError| (TrapCause::StoreAccessFault, va);
        match op {
            StoreOp::D => bus.write::<u64>(pa, value, channel, ctx).map_err(werr)?,
            StoreOp::W => {
                for i in 0..4 {
                    bus.write::<u8>(pa + i, (value >> (8 * i)) as u8, channel, ctx)
                        .map_err(werr)?;
                }
            }
            StoreOp::H => {
                for i in 0..2 {
                    bus.write::<u8>(pa + i, (value >> (8 * i)) as u8, channel, ctx)
                        .map_err(werr)?;
                }
            }
            StoreOp::B => bus
                .write::<u8>(pa, value as u8, channel, ctx)
                .map_err(werr)?,
        }
        Ok(())
    }

    /// Takes a trap: updates cause/epc/tval and privilege, honouring
    /// `medeleg` delegation for traps from U/S mode.
    fn trap(&mut self, cause: TrapCause, tval: u64, epc: u64) -> Result<Trap, CpuError> {
        let medeleg = self.csrs.read_raw(csr_addr::MEDELEG);
        let delegate = self.mode != PrivilegeMode::Machine && (medeleg >> cause.code()) & 1 == 1;
        if delegate {
            let stvec = self.csrs.read_raw(csr_addr::STVEC);
            if stvec == 0 {
                return Err(CpuError::TrapVectorUnset(cause));
            }
            self.csrs.write_raw(csr_addr::SCAUSE, cause.code());
            self.csrs.write_raw(csr_addr::SEPC, epc);
            self.csrs.write_raw(csr_addr::STVAL, tval);
            let mut sstatus = self.csrs.read_raw(csr_addr::SSTATUS);
            // SPIE <- SIE, SIE <- 0, SPP <- prior mode.
            if sstatus & status::SIE != 0 {
                sstatus |= status::SPIE;
            } else {
                sstatus &= !status::SPIE;
            }
            sstatus &= !status::SIE;
            if self.mode == PrivilegeMode::Supervisor {
                sstatus |= status::SPP;
            } else {
                sstatus &= !status::SPP;
            }
            self.csrs.write_raw(csr_addr::SSTATUS, sstatus);
            self.mode = PrivilegeMode::Supervisor;
            self.pc = stvec & !0b11;
        } else {
            let mtvec = self.csrs.read_raw(csr_addr::MTVEC);
            if mtvec == 0 {
                return Err(CpuError::TrapVectorUnset(cause));
            }
            self.csrs.write_raw(csr_addr::MCAUSE, cause.code());
            self.csrs.write_raw(csr_addr::MEPC, epc);
            self.csrs.write_raw(csr_addr::MTVAL, tval);
            let mut mstatus = self.csrs.read_raw(csr_addr::MSTATUS);
            if mstatus & status::MIE != 0 {
                mstatus |= status::MPIE;
            } else {
                mstatus &= !status::MPIE;
            }
            mstatus &= !status::MIE;
            mstatus = (mstatus & !status::MPP_MASK) | (self.mode.encoding() << status::MPP_SHIFT);
            self.csrs.write_raw(csr_addr::MSTATUS, mstatus);
            self.mode = PrivilegeMode::Machine;
            self.pc = mtvec & !0b11;
        }
        Ok(Trap {
            cause,
            tval,
            epc,
            delegated: delegate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use ptstore_core::MIB;

    fn boot(program: &[Inst], base: u64) -> (Cpu, Bus) {
        let mut bus = Bus::new(64 * MIB);
        for (i, &inst) in program.iter().enumerate() {
            bus.mem_unchecked()
                .write_u32(
                    ptstore_core::PhysAddr::new(base + 4 * i as u64),
                    encode(inst),
                )
                .unwrap();
        }
        let mut cpu = Cpu::new();
        cpu.pc = base;
        cpu.csrs.write_raw(csr_addr::MTVEC, 0x100); // fail-loud vector
        (cpu, bus)
    }

    #[test]
    fn arithmetic_program() {
        // a0 = 6 * 7
        let prog = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: 6,
                word: false,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 11,
                rs1: 0,
                imm: 7,
                word: false,
            },
            Inst::Op {
                op: AluOp::Mul,
                rd: 10,
                rs1: 10,
                rs2: 11,
                word: false,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..3 {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(10), 42);
        assert_eq!(cpu.instret, 3);
    }

    #[test]
    fn loads_and_stores() {
        let prog = [
            Inst::Lui { rd: 5, imm: 0x2000 }, // t0 = 0x2000
            Inst::OpImm {
                op: AluOp::Add,
                rd: 6,
                rs1: 0,
                imm: -1,
                word: false,
            },
            Inst::Store {
                op: StoreOp::D,
                rs1: 5,
                rs2: 6,
                offset: 8,
            },
            Inst::Load {
                op: LoadOp::W,
                rd: 7,
                rs1: 5,
                offset: 8,
            },
            Inst::Load {
                op: LoadOp::Bu,
                rd: 8,
                rs1: 5,
                offset: 9,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..prog.len() {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(7), u64::MAX); // lw sign-extends
        assert_eq!(cpu.reg(8), 0xff);
    }

    #[test]
    fn branches_and_jumps() {
        // Loop: a0 = 0; for 5 iterations a0 += 2.
        let prog = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: 0,
                word: false,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 0,
                imm: 5,
                word: false,
            },
            // loop:
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                imm: 2,
                word: false,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 5,
                imm: -1,
                word: false,
            },
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: 5,
                rs2: 0,
                offset: -8,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..(2 + 3 * 5) {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(10), 10);
        assert_eq!(cpu.pc, 0x1000 + 4 * 5);
    }

    #[test]
    fn regular_store_to_secure_region_traps() {
        // M-mode program writes into the secure region with a plain sd.
        let region =
            ptstore_core::SecureRegion::new(ptstore_core::PhysAddr::new(32 * MIB), MIB).unwrap();
        let prog = [
            Inst::Lui {
                rd: 5,
                imm: (32 * MIB) as i64,
            },
            Inst::Store {
                op: StoreOp::D,
                rs1: 5,
                rs2: 6,
                offset: 0,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        bus.install_secure_region(&region).unwrap();
        assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => {
                assert_eq!(t.cause, TrapCause::StoreAccessFault);
                assert_eq!(t.tval, 32 * MIB);
                assert_eq!(cpu.mode, PrivilegeMode::Machine);
                assert_eq!(cpu.pc, 0x100);
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn sd_pt_reaches_secure_region() {
        let region =
            ptstore_core::SecureRegion::new(ptstore_core::PhysAddr::new(32 * MIB), MIB).unwrap();
        let prog = [
            Inst::Lui {
                rd: 5,
                imm: (32 * MIB) as i64,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 6,
                rs1: 0,
                imm: 0x77,
                word: false,
            },
            Inst::SdPt {
                rs1: 5,
                rs2: 6,
                offset: 0,
            },
            Inst::LdPt {
                rd: 7,
                rs1: 5,
                offset: 0,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        bus.install_secure_region(&region).unwrap();
        for _ in 0..prog.len() {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(7), 0x77);
        assert_eq!(bus.stats().secure_writes, 1);
        assert_eq!(bus.stats().secure_reads, 1);
    }

    #[test]
    fn ld_pt_outside_region_traps() {
        let region =
            ptstore_core::SecureRegion::new(ptstore_core::PhysAddr::new(32 * MIB), MIB).unwrap();
        let prog = [Inst::LdPt {
            rd: 7,
            rs1: 0,
            offset: 0x100,
        }];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        bus.install_secure_region(&region).unwrap();
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => assert_eq!(t.cause, TrapCause::LoadAccessFault),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn ld_pt_is_privileged() {
        let prog = [Inst::LdPt {
            rd: 7,
            rs1: 0,
            offset: 0,
        }];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.mode = PrivilegeMode::User;
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => assert_eq!(t.cause, TrapCause::IllegalInstruction),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn ecall_from_each_mode() {
        for (mode, code) in [
            (PrivilegeMode::User, 8),
            (PrivilegeMode::Supervisor, 9),
            (PrivilegeMode::Machine, 11),
        ] {
            let prog = [Inst::Ecall];
            let (mut cpu, mut bus) = boot(&prog, 0x1000);
            cpu.mode = mode;
            match cpu.step(&mut bus).unwrap() {
                StepEvent::Trapped(t) => assert_eq!(t.cause.code(), code),
                other => panic!("expected trap, got {other:?}"),
            }
        }
    }

    #[test]
    fn delegation_routes_to_smode() {
        let prog = [Inst::Ecall];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.mode = PrivilegeMode::User;
        cpu.csrs.write_raw(csr_addr::MEDELEG, 1 << 8); // delegate ecall-U
        cpu.csrs.write_raw(csr_addr::STVEC, 0x200);
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => {
                assert!(t.delegated);
                assert_eq!(cpu.mode, PrivilegeMode::Supervisor);
                assert_eq!(cpu.pc, 0x200);
                assert_eq!(cpu.csrs.read_raw(csr_addr::SCAUSE), 8);
                assert_eq!(cpu.csrs.read_raw(csr_addr::SEPC), 0x1000);
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn mret_restores_mode() {
        let prog = [Inst::Mret];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.csrs.write_raw(csr_addr::MEPC, 0x4000);
        cpu.csrs.write_raw(
            csr_addr::MSTATUS,
            PrivilegeMode::Supervisor.encoding() << status::MPP_SHIFT,
        );
        assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        assert_eq!(cpu.mode, PrivilegeMode::Supervisor);
        assert_eq!(cpu.pc, 0x4000);
    }

    #[test]
    fn csr_write_to_satp_updates_mmu() {
        let satp = Satp::new(
            ptstore_core::PagingScheme::Sv39,
            ptstore_core::PhysPageNum::new(0x80),
            3,
            true,
        );
        let prog = [
            // csrrw x0, satp, t0
            Inst::Csr {
                op: CsrOp::ReadWrite,
                rd: 0,
                rs1: 5,
                csr: csr_addr::SATP,
                imm_form: false,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.mode = PrivilegeMode::Supervisor;
        // satp write from S-mode: allowed. Pre-load t0.
        cpu.set_reg(5, satp.to_bits());
        // Fetch happens in S-mode at identity... the S-mode fetch would need
        // translation; satp is Bare until the write retires, so fine.
        assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        assert_eq!(cpu.mmu.satp, satp);
        assert!(cpu.mmu.satp.s_bit);
    }

    #[test]
    fn pmp_csr_writes_configure_secure_region() {
        // M-mode installs a TOR secure region purely through CSR writes.
        let base = 32 * MIB;
        let end = 33 * MIB;
        let prog = [
            Inst::Csr {
                op: CsrOp::ReadWrite,
                rd: 0,
                rs1: 5,
                csr: csr_addr::PMPADDR0,
                imm_form: false,
            },
            Inst::Csr {
                op: CsrOp::ReadWrite,
                rd: 0,
                rs1: 6,
                csr: csr_addr::PMPADDR0 + 1,
                imm_form: false,
            },
            Inst::Csr {
                op: CsrOp::ReadWrite,
                rd: 0,
                rs1: 7,
                csr: csr_addr::PMPCFG0,
                imm_form: false,
            },
            // Regular store into the new region must now trap.
            Inst::Lui {
                rd: 5,
                imm: base as i64,
            },
            Inst::Store {
                op: StoreOp::D,
                rs1: 5,
                rs2: 0,
                offset: 0,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.set_reg(5, base >> 2);
        cpu.set_reg(6, end >> 2);
        // cfg byte for entry 1: TOR | R | W | S  = A=01 -> bits 3..4 = 01.
        let cfg1: u64 = 0b0010_1011; // S(5)|TOR(3)|W(1)|R(0)
        cpu.set_reg(7, cfg1 << 8);
        for _ in 0..4 {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => assert_eq!(t.cause, TrapCause::StoreAccessFault),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn trap_without_vector_is_loud() {
        let prog = [Inst::Ecall];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.csrs.write_raw(csr_addr::MTVEC, 0);
        assert!(matches!(
            cpu.step(&mut bus),
            Err(CpuError::TrapVectorUnset(TrapCause::EnvironmentCall(_)))
        ));
    }

    #[test]
    fn x0_is_hardwired() {
        let prog = [Inst::OpImm {
            op: AluOp::Add,
            rd: 0,
            rs1: 0,
            imm: 55,
            word: false,
        }];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn word_ops_sign_extend() {
        let prog = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 0,
                imm: -1,
                word: true,
            }, // addiw t0, x0, -1
            Inst::Op {
                op: AluOp::Add,
                rd: 6,
                rs1: 5,
                rs2: 5,
                word: true,
            }, // addw t1 = -2
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        assert_eq!(cpu.reg(5) as i64, -1);
        assert_eq!(cpu.reg(6) as i64, -2);
    }

    #[test]
    fn amo_add_and_swap() {
        let prog = [
            Inst::Lui { rd: 5, imm: 0x2000 },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 6,
                rs1: 0,
                imm: 40,
                word: false,
            },
            Inst::Store {
                op: StoreOp::D,
                rs1: 5,
                rs2: 6,
                offset: 0,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 7,
                rs1: 0,
                imm: 2,
                word: false,
            },
            Inst::Amo {
                op: AmoOp::Add,
                rd: 10,
                rs1: 5,
                rs2: 7,
                word: false,
            }, // a0=40, mem=42
            Inst::Amo {
                op: AmoOp::Swap,
                rd: 11,
                rs1: 5,
                rs2: 0,
                word: false,
            }, // a1=42, mem=0
            Inst::Load {
                op: LoadOp::D,
                rd: 12,
                rs1: 5,
                offset: 0,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..prog.len() {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(10), 40);
        assert_eq!(cpu.reg(11), 42);
        assert_eq!(cpu.reg(12), 0);
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let prog = [
            Inst::Lui { rd: 5, imm: 0x2000 },
            Inst::Amo {
                op: AmoOp::Lr,
                rd: 10,
                rs1: 5,
                rs2: 0,
                word: false,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 6,
                rs1: 10,
                imm: 1,
                word: false,
            },
            Inst::Amo {
                op: AmoOp::Sc,
                rd: 11,
                rs1: 5,
                rs2: 6,
                word: false,
            }, // succeeds: a1=0
            Inst::Amo {
                op: AmoOp::Sc,
                rd: 12,
                rs1: 5,
                rs2: 6,
                word: false,
            }, // fails: a2=1
            Inst::Load {
                op: LoadOp::D,
                rd: 13,
                rs1: 5,
                offset: 0,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..prog.len() {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(11), 0, "first sc succeeds");
        assert_eq!(cpu.reg(12), 1, "second sc fails (reservation consumed)");
        assert_eq!(cpu.reg(13), 1, "stored value = loaded + 1");
    }

    #[test]
    fn store_breaks_reservation() {
        let prog = [
            Inst::Lui { rd: 5, imm: 0x2000 },
            Inst::Amo {
                op: AmoOp::Lr,
                rd: 10,
                rs1: 5,
                rs2: 0,
                word: false,
            },
            Inst::Store {
                op: StoreOp::D,
                rs1: 5,
                rs2: 0,
                offset: 8,
            }, // any store
            Inst::Amo {
                op: AmoOp::Sc,
                rd: 11,
                rs1: 5,
                rs2: 6,
                word: false,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..prog.len() {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(11), 1, "sc fails after intervening store");
    }

    #[test]
    fn amo_word_form_sign_extends_and_minmax() {
        let prog = [
            Inst::Lui { rd: 5, imm: 0x2000 },
            // mem.w = -5 (sign-extended into a0 later)
            Inst::OpImm {
                op: AluOp::Add,
                rd: 6,
                rs1: 0,
                imm: -5,
                word: false,
            },
            Inst::Store {
                op: StoreOp::W,
                rs1: 5,
                rs2: 6,
                offset: 0,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 7,
                rs1: 0,
                imm: 3,
                word: false,
            },
            Inst::Amo {
                op: AmoOp::Max,
                rd: 10,
                rs1: 5,
                rs2: 7,
                word: true,
            }, // a0=-5, mem=3
            Inst::Load {
                op: LoadOp::W,
                rd: 11,
                rs1: 5,
                offset: 0,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        for _ in 0..prog.len() {
            assert_eq!(cpu.step(&mut bus).unwrap(), StepEvent::Retired);
        }
        assert_eq!(cpu.reg(10) as i64, -5, "amo.w returns sign-extended old");
        assert_eq!(cpu.reg(11), 3, "signed max picked 3 over -5");
    }

    #[test]
    fn amo_into_secure_region_traps() {
        let region =
            ptstore_core::SecureRegion::new(ptstore_core::PhysAddr::new(32 * MIB), MIB).unwrap();
        let prog = [
            Inst::Lui {
                rd: 5,
                imm: (32 * MIB) as i64,
            },
            Inst::Amo {
                op: AmoOp::Add,
                rd: 10,
                rs1: 5,
                rs2: 6,
                word: false,
            },
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        bus.install_secure_region(&region).unwrap();
        cpu.step(&mut bus).unwrap();
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => assert_eq!(t.cause, TrapCause::StoreAccessFault),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn misaligned_amo_traps() {
        let prog = [
            Inst::Lui { rd: 5, imm: 0x2000 },
            Inst::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 5,
                imm: 4,
                word: false,
            },
            Inst::Amo {
                op: AmoOp::Add,
                rd: 10,
                rs1: 5,
                rs2: 6,
                word: false,
            }, // 8-byte op at +4
        ];
        let (mut cpu, mut bus) = boot(&prog, 0x1000);
        cpu.step(&mut bus).unwrap();
        cpu.step(&mut bus).unwrap();
        match cpu.step(&mut bus).unwrap() {
            StepEvent::Trapped(t) => assert_eq!(t.cause, TrapCause::StoreMisaligned),
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(Cpu::alu(AluOp::Div, 5, 0, false), u64::MAX);
        assert_eq!(Cpu::alu(AluOp::Rem, 5, 0, false), 5);
        assert_eq!(Cpu::alu(AluOp::Divu, 5, 0, false), u64::MAX);
        assert_eq!(Cpu::alu(AluOp::Remu, 5, 0, false), 5);
        assert_eq!(
            Cpu::alu(AluOp::Div, (i64::MIN) as u64, u64::MAX, false),
            i64::MIN as u64
        );
    }
}
