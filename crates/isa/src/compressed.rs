//! The RVC (compressed) instruction decoder — RV64C subset.
//!
//! The prototype ISA is RV64IMAC (paper Table II); the C extension halves
//! code size by encoding common instructions in 16 bits. Each compressed
//! instruction expands to exactly one full instruction, so the decoder here
//! returns the same [`Inst`] the 32-bit decoder would for the expansion —
//! the rest of the pipeline never knows the difference (as in hardware,
//! where the expander sits in fetch/decode).

// Binary literals in this file are grouped by instruction *field*
// (funct3 / imm / rs / op), not in even digit blocks.
#![allow(clippy::unusual_byte_groupings)]

use crate::inst::{AluOp, BranchOp, Inst, LoadOp, StoreOp};

/// Stack pointer register number.
const SP: u8 = 2;

/// Compressed 3-bit register (maps to x8–x15).
fn rc(bits: u16) -> u8 {
    (bits & 0b111) as u8 + 8
}

fn bit(word: u16, i: u32) -> u64 {
    ((word >> i) & 1) as u64
}

fn sign_extend(value: u64, sign_bit: u32) -> i64 {
    let shift = 63 - sign_bit;
    ((value << shift) as i64) >> shift
}

/// Decodes one 16-bit RVC instruction; `None` for illegal/unsupported
/// encodings (including the all-zero pattern, which is defined illegal).
pub fn decode_compressed(word: u16) -> Option<Inst> {
    if word == 0 {
        return None; // defined illegal
    }
    let op = word & 0b11;
    let funct3 = (word >> 13) & 0b111;
    match (op, funct3) {
        // --- Quadrant 0 ---
        (0b00, 0b000) => {
            // c.addi4spn rd', nzuimm -> addi rd', sp, nzuimm
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 9)
                | (bit(word, 9) << 8)
                | (bit(word, 8) << 7)
                | (bit(word, 7) << 6)
                | (bit(word, 6) << 2)
                | (bit(word, 5) << 3);
            if uimm == 0 {
                return None;
            }
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: rc(word >> 2),
                rs1: SP,
                imm: uimm as i64,
                word: false,
            })
        }
        (0b00, 0b010) => {
            // c.lw rd', offset(rs1')
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 3)
                | (bit(word, 6) << 2)
                | (bit(word, 5) << 6);
            Some(Inst::Load {
                op: LoadOp::W,
                rd: rc(word >> 2),
                rs1: rc(word >> 7),
                offset: uimm as i64,
            })
        }
        (0b00, 0b011) => {
            // c.ld rd', offset(rs1')   (RV64)
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 3)
                | (bit(word, 6) << 7)
                | (bit(word, 5) << 6);
            Some(Inst::Load {
                op: LoadOp::D,
                rd: rc(word >> 2),
                rs1: rc(word >> 7),
                offset: uimm as i64,
            })
        }
        (0b00, 0b110) => {
            // c.sw rs2', offset(rs1')
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 3)
                | (bit(word, 6) << 2)
                | (bit(word, 5) << 6);
            Some(Inst::Store {
                op: StoreOp::W,
                rs1: rc(word >> 7),
                rs2: rc(word >> 2),
                offset: uimm as i64,
            })
        }
        (0b00, 0b111) => {
            // c.sd rs2', offset(rs1')  (RV64)
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 3)
                | (bit(word, 6) << 7)
                | (bit(word, 5) << 6);
            Some(Inst::Store {
                op: StoreOp::D,
                rs1: rc(word >> 7),
                rs2: rc(word >> 2),
                offset: uimm as i64,
            })
        }
        // --- Quadrant 1 ---
        (0b01, 0b000) => {
            // c.addi rd, imm (rd=0 => c.nop)
            let rd = ((word >> 7) & 0x1f) as u8;
            let imm = sign_extend((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64, 5);
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm,
                word: false,
            })
        }
        (0b01, 0b001) => {
            // c.addiw rd, imm (RV64; rd != 0)
            let rd = ((word >> 7) & 0x1f) as u8;
            if rd == 0 {
                return None;
            }
            let imm = sign_extend((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64, 5);
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm,
                word: true,
            })
        }
        (0b01, 0b010) => {
            // c.li rd, imm -> addi rd, x0, imm
            let rd = ((word >> 7) & 0x1f) as u8;
            let imm = sign_extend((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64, 5);
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd,
                rs1: 0,
                imm,
                word: false,
            })
        }
        (0b01, 0b011) => {
            let rd = ((word >> 7) & 0x1f) as u8;
            if rd == SP {
                // c.addi16sp: addi sp, sp, nzimm
                let imm = sign_extend(
                    (bit(word, 12) << 9)
                        | (bit(word, 6) << 4)
                        | (bit(word, 5) << 6)
                        | (bit(word, 4) << 8)
                        | (bit(word, 3) << 7)
                        | (bit(word, 2) << 5),
                    9,
                );
                if imm == 0 {
                    return None;
                }
                Some(Inst::OpImm {
                    op: AluOp::Add,
                    rd: SP,
                    rs1: SP,
                    imm,
                    word: false,
                })
            } else {
                // c.lui rd, nzimm (rd != 0, 2)
                if rd == 0 {
                    return None;
                }
                let imm = sign_extend(
                    (bit(word, 12) << 17) | (((word >> 2) & 0x1f) as u64) << 12,
                    17,
                );
                if imm == 0 {
                    return None;
                }
                Some(Inst::Lui { rd, imm })
            }
        }
        (0b01, 0b100) => {
            let rd = rc(word >> 7);
            match (word >> 10) & 0b11 {
                0b00 => {
                    // c.srli
                    let shamt = ((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64) as i64;
                    Some(Inst::OpImm {
                        op: AluOp::Srl,
                        rd,
                        rs1: rd,
                        imm: shamt,
                        word: false,
                    })
                }
                0b01 => {
                    // c.srai
                    let shamt = ((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64) as i64;
                    Some(Inst::OpImm {
                        op: AluOp::Sra,
                        rd,
                        rs1: rd,
                        imm: shamt,
                        word: false,
                    })
                }
                0b10 => {
                    // c.andi
                    let imm = sign_extend((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64, 5);
                    Some(Inst::OpImm {
                        op: AluOp::And,
                        rd,
                        rs1: rd,
                        imm,
                        word: false,
                    })
                }
                _ => {
                    let rs2 = rc(word >> 2);
                    let sel = (word >> 5) & 0b11;
                    if bit(word, 12) == 0 {
                        let op = match sel {
                            0b00 => AluOp::Sub,
                            0b01 => AluOp::Xor,
                            0b10 => AluOp::Or,
                            _ => AluOp::And,
                        };
                        Some(Inst::Op {
                            op,
                            rd,
                            rs1: rd,
                            rs2,
                            word: false,
                        })
                    } else {
                        // c.subw / c.addw (RV64)
                        let op = match sel {
                            0b00 => AluOp::Sub,
                            0b01 => AluOp::Add,
                            _ => return None,
                        };
                        Some(Inst::Op {
                            op,
                            rd,
                            rs1: rd,
                            rs2,
                            word: true,
                        })
                    }
                }
            }
        }
        (0b01, 0b101) => {
            // c.j
            let offset = sign_extend(
                (bit(word, 12) << 11)
                    | (bit(word, 11) << 4)
                    | (bit(word, 10) << 9)
                    | (bit(word, 9) << 8)
                    | (bit(word, 8) << 10)
                    | (bit(word, 7) << 6)
                    | (bit(word, 6) << 7)
                    | (bit(word, 5) << 3)
                    | (bit(word, 4) << 2)
                    | (bit(word, 3) << 1)
                    | (bit(word, 2) << 5),
                11,
            );
            Some(Inst::Jal { rd: 0, offset })
        }
        (0b01, 0b110) | (0b01, 0b111) => {
            // c.beqz / c.bnez rs1', offset
            let offset = sign_extend(
                (bit(word, 12) << 8)
                    | (bit(word, 11) << 4)
                    | (bit(word, 10) << 3)
                    | (bit(word, 6) << 7)
                    | (bit(word, 5) << 6)
                    | (bit(word, 4) << 2)
                    | (bit(word, 3) << 1)
                    | (bit(word, 2) << 5),
                8,
            );
            let op = if funct3 == 0b110 {
                BranchOp::Eq
            } else {
                BranchOp::Ne
            };
            Some(Inst::Branch {
                op,
                rs1: rc(word >> 7),
                rs2: 0,
                offset,
            })
        }
        // --- Quadrant 2 ---
        (0b10, 0b000) => {
            // c.slli rd, shamt
            let rd = ((word >> 7) & 0x1f) as u8;
            if rd == 0 {
                return None;
            }
            let shamt = ((bit(word, 12) << 5) | ((word >> 2) & 0x1f) as u64) as i64;
            Some(Inst::OpImm {
                op: AluOp::Sll,
                rd,
                rs1: rd,
                imm: shamt,
                word: false,
            })
        }
        (0b10, 0b010) => {
            // c.lwsp rd, offset(sp)
            let rd = ((word >> 7) & 0x1f) as u8;
            if rd == 0 {
                return None;
            }
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 6) << 4)
                | (bit(word, 5) << 3)
                | (bit(word, 4) << 2)
                | (bit(word, 3) << 7)
                | (bit(word, 2) << 6);
            Some(Inst::Load {
                op: LoadOp::W,
                rd,
                rs1: SP,
                offset: uimm as i64,
            })
        }
        (0b10, 0b011) => {
            // c.ldsp rd, offset(sp)  (RV64)
            let rd = ((word >> 7) & 0x1f) as u8;
            if rd == 0 {
                return None;
            }
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 6) << 4)
                | (bit(word, 5) << 3)
                | (bit(word, 4) << 8)
                | (bit(word, 3) << 7)
                | (bit(word, 2) << 6);
            Some(Inst::Load {
                op: LoadOp::D,
                rd,
                rs1: SP,
                offset: uimm as i64,
            })
        }
        (0b10, 0b100) => {
            let rd = ((word >> 7) & 0x1f) as u8;
            let rs2 = ((word >> 2) & 0x1f) as u8;
            if bit(word, 12) == 0 {
                if rs2 == 0 {
                    // c.jr rd (rd != 0)
                    if rd == 0 {
                        return None;
                    }
                    Some(Inst::Jalr {
                        rd: 0,
                        rs1: rd,
                        offset: 0,
                    })
                } else {
                    // c.mv rd, rs2 -> add rd, x0, rs2
                    Some(Inst::Op {
                        op: AluOp::Add,
                        rd,
                        rs1: 0,
                        rs2,
                        word: false,
                    })
                }
            } else if rs2 == 0 {
                if rd == 0 {
                    // c.ebreak
                    Some(Inst::Ebreak)
                } else {
                    // c.jalr rd -> jalr ra, 0(rd)
                    Some(Inst::Jalr {
                        rd: 1,
                        rs1: rd,
                        offset: 0,
                    })
                }
            } else {
                // c.add rd, rs2 -> add rd, rd, rs2
                Some(Inst::Op {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    rs2,
                    word: false,
                })
            }
        }
        (0b10, 0b110) => {
            // c.swsp rs2, offset(sp)
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 3)
                | (bit(word, 9) << 2)
                | (bit(word, 8) << 7)
                | (bit(word, 7) << 6);
            Some(Inst::Store {
                op: StoreOp::W,
                rs1: SP,
                rs2: ((word >> 2) & 0x1f) as u8,
                offset: uimm as i64,
            })
        }
        (0b10, 0b111) => {
            // c.sdsp rs2, offset(sp)  (RV64)
            let uimm = (bit(word, 12) << 5)
                | (bit(word, 11) << 4)
                | (bit(word, 10) << 3)
                | (bit(word, 9) << 8)
                | (bit(word, 8) << 7)
                | (bit(word, 7) << 6);
            Some(Inst::Store {
                op: StoreOp::D,
                rs1: SP,
                rs2: ((word >> 2) & 0x1f) as u8,
                offset: uimm as i64,
            })
        }
        _ => None,
    }
}

/// True when the 16-bit parcel starts a *compressed* instruction (low two
/// bits are not `11`).
pub const fn is_compressed(parcel: u16) -> bool {
    parcel & 0b11 != 0b11
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hand-assembled reference encodings (cross-checked against the RVC
    // spec tables).

    #[test]
    fn zero_word_is_illegal() {
        assert_eq!(decode_compressed(0), None);
    }

    #[test]
    fn c_addi4spn() {
        // c.addi4spn a0, sp, 16  => CIW: funct3=000, uimm=16 (bit 9..6=0, 5:4=01)
        // uimm[5:4]=bits 12:11, uimm[9:6]=bits 10:7, uimm[2]=bit6, uimm[3]=bit5
        // 16 = 0b1_0000 -> uimm[4]=1 -> bit11=1. rd'=a0=x10 -> 010.
        // funct3=000 | uimm[5:4]=01 (bit11) | uimm[9:6]=0000 | uimm[2]=0 |
        // uimm[3]=0 | rd'=010 | op=00  => 0x0808
        let word = 0x0808u16;
        assert_eq!(
            decode_compressed(word),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 2,
                imm: 16,
                word: false
            })
        );
    }

    #[test]
    fn c_ld_and_c_sd() {
        // c.ld a1, 8(a0): funct3=011, uimm=8 -> uimm[3]=1 -> bit10=1.
        // rs1'=a0=010 (bits 9:7), rd'=a1=011 (bits 4:2)
        let ld = 0b011_0_01_010_0_0_011_00u16;
        assert_eq!(
            decode_compressed(ld),
            Some(Inst::Load {
                op: LoadOp::D,
                rd: 11,
                rs1: 10,
                offset: 8
            })
        );
        // c.sd a1, 8(a0): funct3=111
        let sd = 0b111_0_01_010_0_0_011_00u16;
        assert_eq!(
            decode_compressed(sd),
            Some(Inst::Store {
                op: StoreOp::D,
                rs1: 10,
                rs2: 11,
                offset: 8
            })
        );
    }

    #[test]
    fn c_addi_and_nop() {
        // c.addi a0, -1: funct3=000 op=01, rd=10, imm=-1 (bit12=1, bits6:2=11111)
        let word = 0b000_1_01010_11111_01u16;
        assert_eq!(
            decode_compressed(word),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                imm: -1,
                word: false
            })
        );
        // c.nop = c.addi x0, 0
        let nop = 0b000_0_00000_00000_01u16;
        assert_eq!(
            decode_compressed(nop),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 0,
                rs1: 0,
                imm: 0,
                word: false
            })
        );
    }

    #[test]
    fn c_li_and_c_lui() {
        // c.li a0, 5
        let li = 0b010_0_01010_00101_01u16;
        assert_eq!(
            decode_compressed(li),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: 5,
                word: false
            })
        );
        // c.lui a0, 1 -> lui a0, 0x1000
        let lui = 0b011_0_01010_00001_01u16;
        assert_eq!(
            decode_compressed(lui),
            Some(Inst::Lui {
                rd: 10,
                imm: 0x1000
            })
        );
        // c.lui with imm=0 is reserved.
        let bad = 0b011_0_01010_00000_01u16;
        assert_eq!(decode_compressed(bad), None);
    }

    #[test]
    fn c_addi16sp() {
        // c.addi16sp sp, 32: imm=32 -> imm[5]=1 -> bit2=1; rd=2
        let word = 0b011_0_00010_00001_01u16;
        assert_eq!(
            decode_compressed(word),
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: 2,
                rs1: 2,
                imm: 32,
                word: false
            })
        );
    }

    #[test]
    fn c_arith_group() {
        // c.sub a0, a1: funct3=100, bit12=0, bits11:10=11, rd'=a0(010), sel=00, rs2'=a1(011)
        let sub = 0b100_0_11_010_00_011_01u16;
        assert_eq!(
            decode_compressed(sub),
            Some(Inst::Op {
                op: AluOp::Sub,
                rd: 10,
                rs1: 10,
                rs2: 11,
                word: false
            })
        );
        // c.addw a0, a1: bit12=1, sel=01
        let addw = 0b100_1_11_010_01_011_01u16;
        assert_eq!(
            decode_compressed(addw),
            Some(Inst::Op {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                rs2: 11,
                word: true
            })
        );
        // c.andi a0, 3: bits11:10=10
        let andi = 0b100_0_10_010_00011_01u16;
        assert_eq!(
            decode_compressed(andi),
            Some(Inst::OpImm {
                op: AluOp::And,
                rd: 10,
                rs1: 10,
                imm: 3,
                word: false
            })
        );
        // c.srli a0, 1: bits11:10=00
        let srli = 0b100_0_00_010_00001_01u16;
        assert_eq!(
            decode_compressed(srli),
            Some(Inst::OpImm {
                op: AluOp::Srl,
                rd: 10,
                rs1: 10,
                imm: 1,
                word: false
            })
        );
    }

    #[test]
    fn c_j_and_branches() {
        // c.j 0: all offset bits zero.
        let j = 0b101_00000000000_01u16;
        assert_eq!(decode_compressed(j), Some(Inst::Jal { rd: 0, offset: 0 }));
        // c.j -2: offset -2 -> bits: imm[1]=1 plus sign bits all 1.
        // imm = -2 = 0b111111111110 (12-bit). Mapping: bit12=imm11=1,
        // bit11=imm4=1, bit10=imm9=1, bit9=imm8=1, bit8=imm10=1, bit7=imm6=1,
        // bit6=imm7=1, bit5=imm3=1, bit4=imm2=1, bit3=imm1=1, bit2=imm5=1.
        let j_m2 = 0b101_11111111111_01u16;
        assert_eq!(
            decode_compressed(j_m2),
            Some(Inst::Jal { rd: 0, offset: -2 })
        );
        // c.beqz a0, 0
        let beqz = 0b110_0_00_010_00000_01u16;
        assert_eq!(
            decode_compressed(beqz),
            Some(Inst::Branch {
                op: BranchOp::Eq,
                rs1: 10,
                rs2: 0,
                offset: 0
            })
        );
    }

    #[test]
    fn c_quadrant2_moves_and_jumps() {
        // c.mv a0, a1: bit12=0, rd=10, rs2=11
        let mv = 0b100_0_01010_01011_10u16;
        assert_eq!(
            decode_compressed(mv),
            Some(Inst::Op {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                rs2: 11,
                word: false
            })
        );
        // c.add a0, a1: bit12=1
        let add = 0b100_1_01010_01011_10u16;
        assert_eq!(
            decode_compressed(add),
            Some(Inst::Op {
                op: AluOp::Add,
                rd: 10,
                rs1: 10,
                rs2: 11,
                word: false
            })
        );
        // c.jr ra
        let jr = 0b100_0_00001_00000_10u16;
        assert_eq!(
            decode_compressed(jr),
            Some(Inst::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0
            })
        );
        // c.jalr a0
        let jalr = 0b100_1_01010_00000_10u16;
        assert_eq!(
            decode_compressed(jalr),
            Some(Inst::Jalr {
                rd: 1,
                rs1: 10,
                offset: 0
            })
        );
        // c.ebreak
        let ebreak = 0b100_1_00000_00000_10u16;
        assert_eq!(decode_compressed(ebreak), Some(Inst::Ebreak));
    }

    #[test]
    fn c_sp_relative_loads_stores() {
        // c.ldsp a0, 0(sp)
        let ldsp = 0b011_0_01010_00000_10u16;
        assert_eq!(
            decode_compressed(ldsp),
            Some(Inst::Load {
                op: LoadOp::D,
                rd: 10,
                rs1: 2,
                offset: 0
            })
        );
        // c.sdsp a0, 8(sp): uimm[3]=1 -> bit10
        let sdsp = 0b111_001_000_01010_10u16;
        assert_eq!(
            decode_compressed(sdsp),
            Some(Inst::Store {
                op: StoreOp::D,
                rs1: 2,
                rs2: 10,
                offset: 8
            })
        );
        // c.slli a0, 4
        let slli = 0b000_0_01010_00100_10u16;
        assert_eq!(
            decode_compressed(slli),
            Some(Inst::OpImm {
                op: AluOp::Sll,
                rd: 10,
                rs1: 10,
                imm: 4,
                word: false
            })
        );
    }

    #[test]
    fn is_compressed_discriminates() {
        assert!(is_compressed(0b01));
        assert!(is_compressed(0b10));
        assert!(is_compressed(0b00));
        assert!(!is_compressed(0b11));
        assert!(!is_compressed(0x0013_u16)); // addi x0,x0,0 low parcel
    }

    #[test]
    fn reserved_encodings_are_none() {
        // c.addi4spn with nzuimm=0.
        assert_eq!(decode_compressed(0b000_00000000_010_00), None);
        // c.addiw with rd=0.
        assert_eq!(decode_compressed(0b001_0_00000_00001_01), None);
        // c.lwsp with rd=0.
        assert_eq!(decode_compressed(0b010_0_00000_00100_10), None);
        // c.jr with rd=0 and rs2=0 bit12=0.
        assert_eq!(decode_compressed(0b100_0_00000_00000_10), None);
    }
}
