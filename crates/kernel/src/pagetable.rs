//! Address-space bookkeeping and the kernel virtual-memory layout.
//!
//! The authoritative page tables live in simulated physical memory and are
//! read by the hardware walker; [`AddressSpace`] additionally keeps a
//! Rust-side shadow of the *user* mappings so fork/exit can iterate them
//! without re-walking (the Linux analogue is the mm rmap/vma machinery).

use std::collections::BTreeMap;

use ptstore_core::{PhysAddr, PhysPageNum, VirtAddr, MIB, PAGE_SIZE};
use ptstore_mmu::PteFlags;
use serde::{Deserialize, Serialize};

/// Base of the kernel's direct map of all physical memory
/// (`va = DIRECT_MAP_BASE + pa`). The top 256 GiB of the address space —
/// canonical under every paging scheme (Sv39/Sv48/Sv57), since bits 63..38
/// are all set.
pub const DIRECT_MAP_BASE: u64 = 0xFFFF_FFC0_0000_0000;

/// Pages spanned by one huge (2 MiB, level-1 leaf) user mapping.
pub const HUGE_PAGE_SPAN: u64 = 2 * MIB / PAGE_SIZE;

/// Base virtual address of user program text.
pub const USER_TEXT_BASE: u64 = 0x0000_0000_0001_0000;

/// Base of the user heap (`brk` starts here).
pub const USER_HEAP_BASE: u64 = 0x0000_0000_2000_0000;

/// Base of the user mmap area.
pub const USER_MMAP_BASE: u64 = 0x0000_0000_4000_0000;

/// Top of the user stack (grows down).
pub const USER_STACK_TOP: u64 = 0x0000_0000_7FFF_F000;

/// Default number of stack pages mapped eagerly at exec.
pub const USER_STACK_PAGES: u64 = 2;

/// Translates a physical address through the kernel direct map.
#[inline]
pub fn direct_map_va(pa: PhysAddr) -> VirtAddr {
    VirtAddr::new(DIRECT_MAP_BASE + pa.as_u64())
}

/// Inverts [`direct_map_va`]; `None` when `va` is not a direct-map address.
#[inline]
pub fn direct_map_pa(va: VirtAddr) -> Option<PhysAddr> {
    va.as_u64().checked_sub(DIRECT_MAP_BASE).map(PhysAddr::new)
}

/// The physical address of the PTE slot for `va` at `level` within the page
/// table rooted/paged at `table`.
#[inline]
pub fn pte_slot(table: PhysPageNum, va: VirtAddr, level: usize) -> PhysAddr {
    PhysAddr::new(table.base_addr().as_u64() + va.vpn_slice(level) * 8)
}

/// One user-page mapping in the Rust-side shadow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserMapping {
    /// Mapped physical page — for a huge mapping, the naturally aligned
    /// base of the 2 MiB block.
    pub ppn: PhysPageNum,
    /// Leaf flags currently installed.
    pub flags: PteFlags,
    /// True when this mapping is copy-on-write-shared.
    pub cow: bool,
    /// True for a 2 MiB mapping (one level-1 leaf PTE spanning
    /// [`HUGE_PAGE_SPAN`] pages); the shadow key is the span-aligned vpn.
    pub huge: bool,
}

/// One process address space: the root page-table page, its ASID, the
/// page-table pages backing it, and the shadow of user mappings.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    /// Root page-table page.
    pub root: PhysPageNum,
    /// Address-space identifier (15-bit in this model).
    pub asid: u16,
    /// Every page-table page owned by this address space (root included);
    /// freed on destruction.
    pub pt_pages: Vec<PhysPageNum>,
    /// Shadow of user leaf mappings: vpn → mapping.
    pub user: BTreeMap<u64, UserMapping>,
}

impl AddressSpace {
    /// Number of page-table pages (the secure-region footprint that the
    /// fork-stress experiment cares about).
    pub fn pt_page_count(&self) -> usize {
        self.pt_pages.len()
    }

    /// Number of user pages mapped.
    pub fn user_page_count(&self) -> usize {
        self.user.len()
    }

    /// Looks up the shadow mapping of `va`'s page. A covering huge mapping
    /// is reported as the 4 KiB view at `va`: the returned `ppn` is the page
    /// within the block and `huge` stays true so callers can find the real
    /// span-aligned entry.
    pub fn mapping(&self, va: VirtAddr) -> Option<UserMapping> {
        let vpn = va.as_u64() >> ptstore_core::PAGE_SHIFT;
        if let Some(m) = self.user.get(&vpn) {
            return Some(*m);
        }
        let base = vpn & !(HUGE_PAGE_SPAN - 1);
        self.user
            .get(&base)
            .filter(|m| m.huge)
            .map(|m| UserMapping {
                ppn: PhysPageNum::new(m.ppn.as_u64() + (vpn - base)),
                ..*m
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::PagingScheme;

    #[test]
    fn direct_map_round_trip() {
        let pa = PhysAddr::new(0x8000_1234);
        let va = direct_map_va(pa);
        assert_eq!(direct_map_pa(va), Some(pa));
        assert!(PagingScheme::Sv39.is_canonical(va));
        assert_eq!(direct_map_pa(VirtAddr::new(0x1000)), None);
    }

    #[test]
    fn pte_slot_computation() {
        let table = PhysPageNum::new(0x100);
        let va = VirtAddr::new(0x4000_1000);
        let slot = pte_slot(table, va, 0);
        assert_eq!(slot.as_u64(), (0x100 << 12) + va.vpn_slice(0) * 8);
        assert!(slot.is_aligned(8));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the layout *is* the constant under test
    fn layout_is_disjoint_and_ordered() {
        assert!(USER_TEXT_BASE < USER_HEAP_BASE);
        assert!(USER_HEAP_BASE < USER_MMAP_BASE);
        assert!(USER_MMAP_BASE < USER_STACK_TOP);
        // Direct map is in the canonical upper half of *every* scheme, so
        // one layout serves Sv39, Sv48, and Sv57 alike.
        for scheme in PagingScheme::ALL {
            assert!(
                scheme.is_canonical(VirtAddr::new(DIRECT_MAP_BASE)),
                "direct map must be canonical under {scheme}"
            );
        }
    }

    #[test]
    fn shadow_bookkeeping() {
        let mut aspace = AddressSpace {
            root: PhysPageNum::new(1),
            asid: 7,
            ..Default::default()
        };
        let va = VirtAddr::new(USER_TEXT_BASE);
        aspace.user.insert(
            va.as_u64() >> 12,
            UserMapping {
                ppn: PhysPageNum::new(0x55),
                flags: PteFlags::user_rx(),
                cow: false,
                huge: false,
            },
        );
        assert_eq!(aspace.user_page_count(), 1);
        let m = aspace
            .mapping(VirtAddr::new(USER_TEXT_BASE + 0x123))
            .unwrap();
        assert_eq!(m.ppn, PhysPageNum::new(0x55));
        assert!(aspace
            .mapping(VirtAddr::new(USER_TEXT_BASE + 0x1000))
            .is_none());
    }

    #[test]
    fn huge_mapping_reports_per_page_view() {
        let mut aspace = AddressSpace::default();
        let base_vpn = (USER_MMAP_BASE >> 12) & !(HUGE_PAGE_SPAN - 1);
        aspace.user.insert(
            base_vpn,
            UserMapping {
                ppn: PhysPageNum::new(0x1000),
                flags: PteFlags::user_rw(),
                cow: false,
                huge: true,
            },
        );
        let m = aspace
            .mapping(VirtAddr::new((base_vpn + 5) * PAGE_SIZE + 0x40))
            .unwrap();
        assert_eq!(m.ppn, PhysPageNum::new(0x1005));
        assert!(m.huge);
        // One page past the span is unmapped.
        assert!(aspace
            .mapping(VirtAddr::new((base_vpn + HUGE_PAGE_SPAN) * PAGE_SIZE))
            .is_none());
        // A non-huge entry at a span-aligned vpn never masquerades as huge.
        let mut small = AddressSpace::default();
        small.user.insert(
            base_vpn,
            UserMapping {
                ppn: PhysPageNum::new(0x2000),
                flags: PteFlags::user_rw(),
                cow: false,
                huge: false,
            },
        );
        assert!(small
            .mapping(VirtAddr::new((base_vpn + 1) * PAGE_SIZE))
            .is_none());
    }
}
