//! Process lifecycle: creation, fork with copy-on-write, exec, exit/wait,
//! demand paging, and scheduling (`copy_mm`/`switch_mm` of paper §IV-C4).

use ptstore_core::{AccessKind, PhysPageNum, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
use ptstore_mmu::{Pte, PteFlags, TranslateError};

use crate::cycles::{cost, CostKind};
use crate::error::KernelError;
use crate::kernel::Kernel;
use crate::pagetable::{
    AddressSpace, HUGE_PAGE_SPAN, USER_HEAP_BASE, USER_MMAP_BASE, USER_STACK_PAGES, USER_STACK_TOP,
    USER_TEXT_BASE,
};
use crate::process::{FdTable, Pid, ProcState, Process, SignalTable, VmArea, VmPerms, PCB_OFF_PID};
use crate::zones::GfpFlags;

/// How a page fault was resolved (returned to workload drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultResolution {
    /// Demand-mapped a fresh zero page.
    DemandMapped,
    /// Broke copy-on-write sharing.
    CowBroken,
}

impl Kernel {
    /// Creates the init process (pid 1): shared text page, stack, heap VMA.
    pub(crate) fn spawn_init(&mut self) -> Result<Pid, KernelError> {
        let pid = self.allocate_pid();
        let aspace = self.create_address_space()?;
        let pcb_addr = self.alloc_pcb()?;
        let proc = Process {
            pid,
            parent: None,
            state: ProcState::Running,
            pcb_addr,
            aspace,
            vmas: vec![
                VmArea {
                    start: USER_TEXT_BASE,
                    end: USER_TEXT_BASE + PAGE_SIZE,
                    perms: VmPerms::RX,
                },
                VmArea {
                    start: USER_HEAP_BASE,
                    end: USER_HEAP_BASE, // empty until brk grows it
                    perms: VmPerms::RW,
                },
                VmArea {
                    start: USER_STACK_TOP - USER_STACK_PAGES * PAGE_SIZE,
                    end: USER_STACK_TOP,
                    perms: VmPerms::RW,
                },
            ],
            brk: USER_HEAP_BASE,
            mmap_cursor: USER_MMAP_BASE,
            fds: FdTable::with_std(),
            signals: SignalTable::default(),
            exit_code: 0,
            children: Vec::new(),
            mm_owner: None,
            threads: Vec::new(),
        };
        self.procs.insert(proc)?;
        self.mem_write(pcb_addr + PCB_OFF_PID, pid as u64)?;
        // Map the shared text and eager stack pages.
        let text = self.shared_text_ppn;
        *self.page_refs.entry(text.as_u64()).or_insert(0) += 1;
        self.map_user_page(
            pid,
            VirtAddr::new(USER_TEXT_BASE),
            text,
            PteFlags::user_rx(),
            false,
        )?;
        for i in 0..USER_STACK_PAGES {
            let page = self.alloc_page(GfpFlags::MOVABLE | GfpFlags::ZERO)?;
            *self.page_refs.entry(page.as_u64()).or_insert(0) += 1;
            let va = VirtAddr::new(USER_STACK_TOP - (i + 1) * PAGE_SIZE);
            self.map_user_page(pid, va, page, PteFlags::user_rw(), false)?;
        }
        // PCB pt pointer + token.
        let pt_slot = self.procs.get(pid).expect("inserted").pt_ptr_slot();
        let root = self.procs.get(pid).expect("inserted").aspace.root;
        self.mem_write(pt_slot, root.base_addr().as_u64())?;
        self.token_issue(pid)?;
        Ok(pid)
    }

    fn allocate_pid(&mut self) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// Allocates a PCB object and charges for it.
    fn alloc_pcb(&mut self) -> Result<ptstore_core::PhysAddr, KernelError> {
        if self.cfg.alloc_magazines {
            // Per-hart magazine fast path: the hottest PCB comes straight
            // back without touching the shared slab bookkeeping.
            if let Some(addr) = self.pcb_slab.magazine_get(self.active_hart) {
                return Ok(addr);
            }
        }
        let mut slab = std::mem::replace(
            &mut self.pcb_slab,
            crate::slab::SlabCache::new("x", crate::process::PCB_SIZE, GfpFlags::KERNEL),
        );
        let result = slab.alloc(|gfp| self.alloc_page(gfp | GfpFlags::ZERO));
        self.pcb_slab = slab;
        let (addr, _grew) = result?;
        Ok(addr)
    }

    /// Creates a fresh address space whose kernel half mirrors the kernel
    /// root (shared intermediate tables, as Linux shares the kernel PGD
    /// entries).
    pub(crate) fn create_address_space(&mut self) -> Result<AddressSpace, KernelError> {
        let root = self.alloc_pt_page()?;
        let asid = self.next_asid;
        if self.next_asid >= 0x7fff {
            self.next_asid = 1;
            self.asid_wrapped = true;
        } else {
            self.next_asid += 1;
        }
        self.drain_on_asid_recycle();
        // Copy the kernel-half root entries (upper 256 slots).
        let kroot = self.kernel_root;
        for slot_idx in 256..512u64 {
            let src = kroot.base_addr() + slot_idx * 8;
            let raw = self.pt_read(src)?;
            if Pte::from_bits(raw).is_valid() {
                let dst = root.base_addr() + slot_idx * 8;
                self.pt_write(dst, raw)?;
            }
        }
        Ok(AddressSpace {
            root,
            asid,
            pt_pages: vec![root],
            user: Default::default(),
        })
    }

    /// The ASID-lifecycle drain. After the 15-bit allocator has rolled
    /// over, every ASID handed out is a **reuse**: invalidations still
    /// queued under that ASID belong to the previous address-space
    /// generation, and the new space must not go live while they are
    /// pending — so the drain is mandatory under *every*
    /// [`DrainPolicy`](crate::drain::DrainPolicy). The
    /// [`AsidRecycle`](crate::drain::DrainPolicy::AsidRecycle) policy
    /// additionally refuses to rely on the rollover bookkeeping and drains
    /// at every allocation. A no-op when nothing is queued.
    pub(crate) fn drain_on_asid_recycle(&mut self) {
        if !(self.asid_wrapped || self.cfg.drain_policy.drains_on_asid_alloc()) {
            return;
        }
        if self.pending_deferred_flushes() > 0 {
            self.stats.asid_recycle_drains += 1;
            self.drain_deferred_flushes();
        }
    }

    // ------------------------------------------------------------------
    // fork / exec / exit / wait
    // ------------------------------------------------------------------

    /// `fork()`: duplicates the current process with copy-on-write user
    /// pages; issues a fresh token for the child (paper §IV-C4 `copy_mm`).
    pub fn do_fork(&mut self) -> Result<Pid, KernelError> {
        self.charge(CostKind::Kernel, cost::FORK_BASE);
        let parent_pid = self.current_pid();
        let child_pid = self.allocate_pid();
        let child_aspace = self.create_address_space()?;
        let pcb_addr = self.alloc_pcb()?;

        // Snapshot parent state.
        let (vmas, brk, mmap_cursor, fds, signals, parent_asid, user_mappings) = {
            let p = self
                .procs
                .get(parent_pid)
                .ok_or(KernelError::NoSuchProcess)?;
            (
                p.vmas.clone(),
                p.brk,
                p.mmap_cursor,
                p.fds.clone(),
                p.signals.clone(),
                p.aspace.asid,
                p.aspace.user.clone(),
            )
        };

        let child = Process {
            pid: child_pid,
            parent: Some(parent_pid),
            state: ProcState::Ready,
            pcb_addr,
            aspace: child_aspace,
            vmas,
            brk,
            mmap_cursor,
            fds,
            signals,
            exit_code: 0,
            children: Vec::new(),
            mm_owner: None,
            threads: Vec::new(),
        };
        let child_handle = self.procs.insert(child)?;
        self.mem_write(pcb_addr + PCB_OFF_PID, child_pid as u64)?;

        // Duplicate pipe/socket fd refcounts.
        self.dup_fd_resources(child_pid);

        // Copy user mappings with CoW.
        let mut made_parent_ro = false;
        for (&vpn, &mapping) in &user_mappings {
            let va = VirtAddr::new(vpn << PAGE_SHIFT);
            *self.page_refs.entry(mapping.ppn.as_u64()).or_insert(0) += 1;
            let (child_flags, share_cow) = if mapping.flags.writable() {
                (mapping.flags.without(PteFlags::W), true)
            } else {
                (mapping.flags, mapping.cow)
            };
            // Parent side: drop W for CoW. A huge mapping's leaf lives one
            // level up; the 4 KiB path keeps the cheaper slot computation
            // (leaf_slot never reads the leaf itself).
            if mapping.flags.writable() {
                let parent_root = self
                    .procs
                    .get(parent_pid)
                    .expect("parent exists")
                    .aspace
                    .root;
                let slot = if mapping.huge {
                    let (slot, level) = self
                        .find_leaf(parent_root, va)?
                        .ok_or(KernelError::BadAddress)?;
                    debug_assert_eq!(level, 1, "huge shadow entry over a non-huge leaf");
                    slot
                } else {
                    self.leaf_slot(parent_root, va)?
                        .ok_or(KernelError::BadAddress)?
                };
                self.pt_write(slot, Pte::leaf(mapping.ppn, child_flags).bits())?;
                let p = self.procs.get_mut(parent_pid).expect("parent exists");
                if let Some(m) = p.aspace.user.get_mut(&vpn) {
                    m.flags = child_flags;
                    m.cow = true;
                }
                made_parent_ro = true;
            }
            if mapping.huge {
                self.map_user_huge_page(child_pid, va, mapping.ppn, child_flags, share_cow)?;
            } else {
                self.map_user_page(child_pid, va, mapping.ppn, child_flags, share_cow)?;
            }
        }
        if made_parent_ro {
            self.tlb_flush_asid(parent_asid);
        }

        // PCB pt pointer + token for the child.
        let (pt_slot, root) = {
            let p = self.procs.get(child_pid).expect("inserted");
            (p.pt_ptr_slot(), p.aspace.root)
        };
        self.mem_write(pt_slot, root.base_addr().as_u64())?;
        self.token_issue_as(child_pid, ptstore_trace::TokenOp::Copy)?;

        self.procs
            .get_mut(parent_pid)
            .expect("parent exists")
            .children
            .push(child_pid);
        let hart = self.active_hart;
        self.harts[hart].run_queue.push_back(child_pid);
        // Publish the new process to the other harts (visibility record for
        // the deterministic mailbox merge; idle harts learn the pid exists).
        for h in 0..self.harts.len() {
            self.post_hart_msg(
                h,
                crate::hart::HartMsgKind::ProcSpawned {
                    handle: child_handle,
                    pid: child_pid,
                },
            );
        }
        self.stats.forks += 1;
        Ok(child_pid)
    }

    fn dup_fd_resources(&mut self, pid: Pid) {
        let entries: Vec<crate::process::FdEntry> = {
            let p = self.procs.get(pid).expect("exists");
            (0..64).filter_map(|fd| p.fds.get(fd).cloned()).collect()
        };
        for e in entries {
            match e {
                crate::process::FdEntry::PipeRead { id } => self.pipes.dup_end(id, false),
                crate::process::FdEntry::PipeWrite { id } => self.pipes.dup_end(id, true),
                _ => {}
            }
        }
    }

    /// `clone(CLONE_VM)`: creates a thread sharing the current process's
    /// address space. The new PCB carries the *same* page-table pointer,
    /// legitimised by its own **copied token** in the secure region — the
    /// paper's token-copy lifecycle event (§III-C3, §IV-C4).
    pub fn do_clone_thread(&mut self) -> Result<Pid, KernelError> {
        self.charge(CostKind::Kernel, cost::FORK_BASE / 2);
        self.charge(CostKind::Token, cost::TOKEN_COPY);
        let owner = self.mm_owner_of(self.current_pid());
        let tid = self.allocate_pid();
        let pcb_addr = self.alloc_pcb()?;
        let (fds, signals, vmas, brk, mmap_cursor) = {
            let p = self
                .procs
                .get(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            (
                p.fds.clone(),
                p.signals.clone(),
                Vec::new(),
                p.brk,
                p.mmap_cursor,
            )
        };
        let thread = Process {
            pid: tid,
            parent: Some(self.current_pid()),
            state: ProcState::Ready,
            pcb_addr,
            aspace: AddressSpace::default(), // shared: resolved via mm_owner
            vmas,
            brk,
            mmap_cursor,
            fds,
            signals,
            exit_code: 0,
            children: Vec::new(),
            mm_owner: Some(owner),
            threads: Vec::new(),
        };
        let thread_handle = self.procs.insert(thread)?;
        self.mem_write(pcb_addr + PCB_OFF_PID, tid as u64)?;
        self.dup_fd_resources(tid);
        // The shared page-table pointer, copied into the thread's PCB...
        let root = self
            .procs
            .get(owner)
            .ok_or(KernelError::NoSuchProcess)?
            .aspace
            .root;
        let pt_slot = self.procs.get(tid).expect("inserted").pt_ptr_slot();
        self.mem_write(pt_slot, root.base_addr().as_u64())?;
        // ...bound by the thread's own token (token copy).
        self.token_issue_as(tid, ptstore_trace::TokenOp::Copy)?;
        self.procs
            .get_mut(owner)
            .expect("owner exists")
            .threads
            .push(tid);
        let spawner = self.current_pid();
        self.procs
            .get_mut(spawner)
            .expect("spawner exists")
            .children
            .push(tid);
        let hart = self.active_hart;
        self.harts[hart].run_queue.push_back(tid);
        for h in 0..self.harts.len() {
            self.post_hart_msg(
                h,
                crate::hart::HartMsgKind::ProcSpawned {
                    handle: thread_handle,
                    pid: tid,
                },
            );
        }
        Ok(tid)
    }

    /// `execve()`: replaces the user address space with a fresh text+stack.
    pub fn do_exec(&mut self) -> Result<(), KernelError> {
        self.charge(CostKind::Kernel, cost::EXEC_BASE);
        let pid = self.current_pid();
        self.teardown_user_mappings(pid)?;
        {
            let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
            p.vmas = vec![
                VmArea {
                    start: USER_TEXT_BASE,
                    end: USER_TEXT_BASE + PAGE_SIZE,
                    perms: VmPerms::RX,
                },
                VmArea {
                    start: USER_HEAP_BASE,
                    end: USER_HEAP_BASE,
                    perms: VmPerms::RW,
                },
                VmArea {
                    start: USER_STACK_TOP - USER_STACK_PAGES * PAGE_SIZE,
                    end: USER_STACK_TOP,
                    perms: VmPerms::RW,
                },
            ];
            p.brk = USER_HEAP_BASE;
            p.mmap_cursor = USER_MMAP_BASE;
        }
        let text = self.shared_text_ppn;
        *self.page_refs.entry(text.as_u64()).or_insert(0) += 1;
        self.map_user_page(
            pid,
            VirtAddr::new(USER_TEXT_BASE),
            text,
            PteFlags::user_rx(),
            false,
        )?;
        for i in 0..USER_STACK_PAGES {
            let page = self.alloc_page(GfpFlags::MOVABLE | GfpFlags::ZERO)?;
            *self.page_refs.entry(page.as_u64()).or_insert(0) += 1;
            let va = VirtAddr::new(USER_STACK_TOP - (i + 1) * PAGE_SIZE);
            self.map_user_page(pid, va, page, PteFlags::user_rw(), false)?;
        }
        self.stats.execs += 1;
        Ok(())
    }

    fn teardown_user_mappings(&mut self, pid: Pid) -> Result<(), KernelError> {
        let entries: Vec<(u64, bool)> = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            p.aspace.user.iter().map(|(&v, m)| (v, m.huge)).collect()
        };
        for (vpn, huge) in entries {
            let va = VirtAddr::new(vpn << PAGE_SHIFT);
            if huge {
                let block = self.unmap_user_huge_page(pid, va)?;
                self.put_user_huge_block(block)?;
            } else {
                let ppn = self.unmap_user_page(pid, va)?;
                self.put_user_page(ppn)?;
            }
        }
        // The whole address space left in one batched broadcast; its pages
        // are about to be reused, so nothing may linger in remote TLBs.
        self.drain_deferred_flushes();
        Ok(())
    }

    /// `exit()`: releases the user address space and page-table pages,
    /// clears the token, and zombifies the process.
    pub fn do_exit(&mut self, code: i32) -> Result<(), KernelError> {
        self.charge(CostKind::Kernel, cost::EXIT_BASE);
        let pid = self.current_pid();
        let mm_owner = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            p.mm_owner
        };
        if let Some(owner) = mm_owner {
            // Thread exit: the shared address space stays with its owner;
            // only the thread's token and fds are released.
            self.close_all_fds(pid)?;
            self.token_clear(pid)?;
            if let Some(op) = self.procs.get_mut(owner) {
                op.threads.retain(|&t| t != pid);
            }
            {
                let p = self.procs.get_mut(pid).expect("exists");
                p.state = ProcState::Zombie;
                p.exit_code = code;
            }
            self.stats.exits += 1;
            if let Some(next) = self.pick_next() {
                self.do_switch_to(next)?;
            }
            return Ok(());
        }
        // An mm owner with live threads cannot release the address space.
        let has_threads = self.procs.get(pid).is_some_and(|p| !p.threads.is_empty());
        if has_threads {
            return Err(KernelError::InvalidState);
        }
        self.teardown_user_mappings(pid)?;
        self.close_all_fds(pid)?;
        self.token_clear(pid)?;
        // Free page-table pages (root last).
        let pt_pages: Vec<PhysPageNum> = {
            let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
            std::mem::take(&mut p.aspace.pt_pages)
        };
        for ppn in pt_pages.into_iter().rev() {
            self.free_pt_page(ppn)?;
        }
        {
            let p = self.procs.get_mut(pid).expect("exists");
            p.state = ProcState::Zombie;
            p.exit_code = code;
        }
        self.stats.exits += 1;
        // Schedule away if anyone is runnable.
        if let Some(next) = self.pick_next() {
            self.do_switch_to(next)?;
        }
        Ok(())
    }

    pub(crate) fn close_all_fds(&mut self, pid: Pid) -> Result<(), KernelError> {
        let entries: Vec<(i32, crate::process::FdEntry)> = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            (0..256)
                .filter_map(|fd| p.fds.get(fd).map(|e| (fd, e.clone())))
                .collect()
        };
        for (fd, e) in entries {
            match e {
                crate::process::FdEntry::PipeRead { id } => self.pipes.close_end(id, false),
                crate::process::FdEntry::PipeWrite { id } => self.pipes.close_end(id, true),
                crate::process::FdEntry::Socket { id } => {
                    self.sockets.remove(&id);
                }
                _ => {}
            }
            if let Some(p) = self.procs.get_mut(pid) {
                p.fds.remove(fd);
            }
        }
        Ok(())
    }

    /// `wait()`: reaps one zombie child, freeing its PCB; returns
    /// `(pid, exit_code)`.
    ///
    /// # Errors
    /// [`KernelError::InvalidState`] when no child is a zombie.
    pub fn do_wait(&mut self) -> Result<(Pid, i32), KernelError> {
        let parent = self.current_pid();
        let zombie = {
            let p = self.procs.get(parent).ok_or(KernelError::NoSuchProcess)?;
            p.children
                .iter()
                .copied()
                .find(|&c| matches!(self.procs.get(c), Some(cp) if cp.state == ProcState::Zombie))
        };
        let Some(child) = zombie else {
            return Err(KernelError::InvalidState);
        };
        let (pcb_addr, code) = {
            let cp = self.procs.get(child).expect("zombie exists");
            (cp.pcb_addr, cp.exit_code)
        };
        // Clear and release the PCB object (to this hart's magazine when
        // the fast-path knob is on and it has room).
        for off in (0..crate::process::PCB_SIZE).step_by(8) {
            self.mem_write(pcb_addr + off, 0)?;
        }
        if !(self.cfg.alloc_magazines && self.pcb_slab.magazine_put(self.active_hart, pcb_addr)) {
            self.pcb_slab.free(pcb_addr);
        }
        self.procs.remove(child);
        // Prune the reaping hart's queue now; remote harts learn of the reap
        // through their mailboxes and prune at their next activation (safe to
        // defer: pids are never recycled, and `pick_next` validates entries).
        let hart = self.active_hart;
        self.harts[hart].run_queue.retain(|&p| p != child);
        for h in 0..self.harts.len() {
            self.post_hart_msg(h, crate::hart::HartMsgKind::ProcReaped { pid: child });
        }
        // The reaping hart holds no handle to the dead process: quiesce so
        // single-hart churn reclaims the slot immediately.
        self.procs.quiesce(hart);
        let p = self.procs.get_mut(parent).expect("parent exists");
        p.children.retain(|&c| c != child);
        Ok((child, code))
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    pub(crate) fn pick_next(&mut self) -> Option<Pid> {
        // Drain the local queue first (stale entries are simply dropped).
        while let Some(pid) = self.harts[self.active_hart].run_queue.pop_front() {
            if matches!(self.procs.get(pid), Some(p) if p.state == ProcState::Ready) {
                return Some(pid);
            }
        }
        // Idle: steal from the other harts in deterministic id order so
        // runs stay reproducible.
        let n = self.harts.len();
        for off in 1..n {
            let victim = (self.active_hart + off) % n;
            while let Some(pid) = self.harts[victim].run_queue.pop_front() {
                if matches!(self.procs.get(pid), Some(p) if p.state == ProcState::Ready) {
                    // Tell the victim its queue shrank (merged, like every
                    // cross-hart effect, at its next activation).
                    self.post_hart_msg(victim, crate::hart::HartMsgKind::WorkStolen { pid });
                    return Some(pid);
                }
            }
        }
        None
    }

    /// Switches to `next`: context-switch cost + `switch_mm` with token
    /// validation under PTStore (paper §IV-C4).
    pub fn do_switch_to(&mut self, next: Pid) -> Result<(), KernelError> {
        let prev = self.current_pid();
        // Security boundary: deferred invalidations never cross a context
        // switch — `next` starts from a TLB state that owes nothing.
        self.drain_deferred_flushes();
        self.charge(CostKind::ContextSwitch, cost::CONTEXT_SWITCH);
        // Scheduler-class dispatch is indirect-call-heavy in Linux.
        self.charge_indirect_calls(4);
        self.activate_address_space(next)?;
        let mut requeue_prev = false;
        if let Some(p) = self.procs.get_mut(prev) {
            if p.state == ProcState::Running {
                p.state = ProcState::Ready;
                requeue_prev = true;
            }
        }
        if requeue_prev {
            let hart = self.active_hart;
            self.harts[hart].run_queue.push_back(prev);
        }
        if let Some(p) = self.procs.get_mut(next) {
            p.state = ProcState::Running;
        }
        self.harts[self.active_hart].current = next;
        self.stats.context_switches += 1;
        Ok(())
    }

    /// Voluntary yield to the next runnable process (LMBench
    /// context-switch latency driver).
    pub fn do_yield(&mut self) -> Result<(), KernelError> {
        if let Some(next) = self.pick_next() {
            self.do_switch_to(next)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Demand paging
    // ------------------------------------------------------------------

    /// Handles a user page fault at `va` for the *current* process.
    pub fn handle_user_fault(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<FaultResolution, KernelError> {
        self.charge(CostKind::PageFault, cost::PAGE_FAULT);
        self.stats.page_faults += 1;
        let pid = self.mm_owner_of(self.current_pid());
        let (perms, mapping) = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            let vma = p.vma_for(va).ok_or(KernelError::SegFault)?;
            let allowed = match kind {
                AccessKind::Read => vma.perms.read,
                AccessKind::Write => vma.perms.write,
                AccessKind::Execute => vma.perms.exec,
            };
            if !allowed {
                return Err(KernelError::SegFault);
            }
            (vma.perms, p.aspace.mapping(va))
        };
        match mapping {
            Some(m) if kind == AccessKind::Write && m.cow => {
                if m.huge {
                    self.break_cow_huge(pid, va)?;
                } else {
                    self.break_cow(pid, va, m.ppn)?;
                }
                self.stats.cow_faults += 1;
                Ok(FaultResolution::CowBroken)
            }
            Some(_) => {
                // Spurious fault (e.g. stale TLB after repoint) — nothing to
                // do beyond the fence already issued.
                Ok(FaultResolution::DemandMapped)
            }
            None => {
                let page = self.alloc_page(GfpFlags::MOVABLE | GfpFlags::ZERO)?;
                *self.page_refs.entry(page.as_u64()).or_insert(0) += 1;
                let flags = perms_to_flags(perms);
                self.map_user_page(pid, va.page_align_down_va(), page, flags, false)?;
                self.stats.demand_faults += 1;
                Ok(FaultResolution::DemandMapped)
            }
        }
    }

    fn break_cow(&mut self, pid: Pid, va: VirtAddr, old: PhysPageNum) -> Result<(), KernelError> {
        let refs = self.page_refs.get(&old.as_u64()).copied().unwrap_or(1);
        let (root, asid, flags) = {
            let p = self.procs.get(pid).expect("exists");
            let m = p.aspace.mapping(va).expect("mapped");
            (p.aspace.root, p.aspace.asid, m.flags)
        };
        let new_flags = flags.with(PteFlags::W);
        let vpn = va.as_u64() >> PAGE_SHIFT;
        if refs > 1 {
            // Copy the page.
            let new = self.alloc_page(GfpFlags::MOVABLE)?;
            self.charge(CostKind::MemAccess, cost::ZERO_PAGE); // page copy
            self.raw_copy_page(old, new)?;
            *self.page_refs.entry(new.as_u64()).or_insert(0) += 1;
            let slot = self.leaf_slot(root, va)?.ok_or(KernelError::BadAddress)?;
            // ptstore-lint: hazard(shootdown-pairing) — COW break repoints the
            // leaf; the old read-only translation must not survive in any TLB.
            self.pt_write(slot, Pte::leaf(new, new_flags).bits())?;
            // Shadow + rmap rewire.
            if let Some(p) = self.procs.get_mut(pid) {
                if let Some(m) = p.aspace.user.get_mut(&vpn) {
                    m.ppn = new;
                    m.flags = new_flags;
                    m.cow = false;
                }
            }
            if let Some(users) = self.rmap.get_mut(&old.as_u64()) {
                users.retain(|&(up, uv)| !(up == pid && uv == vpn));
            }
            self.rmap.entry(new.as_u64()).or_default().push((pid, vpn));
            self.put_user_page(old)?;
        } else {
            // Sole owner: restore write permission in place.
            let slot = self.leaf_slot(root, va)?.ok_or(KernelError::BadAddress)?;
            self.pt_write(slot, Pte::leaf(old, new_flags).bits())?;
            if let Some(p) = self.procs.get_mut(pid) {
                if let Some(m) = p.aspace.user.get_mut(&vpn) {
                    m.flags = new_flags;
                    m.cow = false;
                }
            }
        }
        // The CoW break W-strips nothing, but it *repoints* the leaf: the
        // old read-only translation must leave every TLB before the fault
        // returns, so the queued flush drains immediately (a one-page
        // batch; deferral still wins when faults cluster before a drain).
        self.queue_flush_page(va, asid);
        self.drain_deferred_flushes();
        Ok(())
    }

    /// Breaks CoW on a huge mapping whole-block: a shared block is copied
    /// into a fresh private one and the level-1 leaf repointed; a sole owner
    /// just gets W restored. Either way the faulting process keeps its 2 MiB
    /// mapping — no split (Linux's `do_huge_pmd_wp_page` analogue).
    fn break_cow_huge(&mut self, pid: Pid, va: VirtAddr) -> Result<(), KernelError> {
        let base_vpn = (va.as_u64() >> PAGE_SHIFT) & !(HUGE_PAGE_SPAN - 1);
        let base_va = VirtAddr::new(base_vpn << PAGE_SHIFT);
        let (root, asid, m) = {
            let p = self.procs.get(pid).expect("exists");
            let m = *p.aspace.user.get(&base_vpn).expect("huge mapping present");
            (p.aspace.root, p.aspace.asid, m)
        };
        let new_flags = m.flags.with(PteFlags::W);
        let refs = self.page_refs.get(&m.ppn.as_u64()).copied().unwrap_or(1);
        let (slot, level) = self
            .find_leaf(root, base_va)?
            .ok_or(KernelError::BadAddress)?;
        debug_assert_eq!(level, 1, "huge CoW break on a non-huge leaf");
        if refs > 1 {
            let fresh = self.alloc_user_huge_block()?;
            for i in 0..HUGE_PAGE_SPAN {
                self.charge(CostKind::MemAccess, cost::ZERO_PAGE); // page copy
                self.raw_copy_page(
                    PhysPageNum::new(m.ppn.as_u64() + i),
                    PhysPageNum::new(fresh.as_u64() + i),
                )?;
            }
            self.page_refs.insert(fresh.as_u64(), 1);
            // ptstore-lint: hazard(shootdown-pairing) — COW break repoints the
            // leaf; the old read-only translation must not survive in any TLB.
            self.pt_write(slot, Pte::leaf(fresh, new_flags).bits())?;
            if let Some(p) = self.procs.get_mut(pid) {
                if let Some(sm) = p.aspace.user.get_mut(&base_vpn) {
                    sm.ppn = fresh;
                    sm.flags = new_flags;
                    sm.cow = false;
                }
            }
            self.put_user_huge_block(m.ppn)?;
        } else {
            self.pt_write(slot, Pte::leaf(m.ppn, new_flags).bits())?;
            if let Some(p) = self.procs.get_mut(pid) {
                if let Some(sm) = p.aspace.user.get_mut(&base_vpn) {
                    sm.flags = new_flags;
                    sm.cow = false;
                }
            }
        }
        // As in `break_cow`: the repointed span entry drains out of remote
        // TLBs before the faulting write retires.
        self.queue_flush_page(base_va, asid);
        self.drain_deferred_flushes();
        Ok(())
    }

    /// Simulates the current process touching `va`: translate through the
    /// real MMU (charging TLB misses), faulting and retrying as hardware
    /// would. Returns the translated physical address.
    pub fn touch_user(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<ptstore_core::PhysAddr, KernelError> {
        for _attempt in 0..3 {
            let hart = self.active_hart;
            let satp = self.harts[hart].mmu.satp;
            let outcome = self.harts[hart].mmu.translate_data(
                &mut self.bus,
                va,
                kind,
                ptstore_core::PrivilegeMode::User,
            );
            match outcome {
                Ok(o) => {
                    if let ptstore_mmu::TranslationOutcome::Walk { fetches, .. } = o {
                        self.charge(CostKind::TlbMiss, cost::PTW_FETCH * fetches as u64);
                    }
                    let _ = satp;
                    return Ok(o.pa());
                }
                Err(TranslateError::PageFault { .. }) => {
                    self.handle_user_fault(va, kind)?;
                }
                Err(TranslateError::AccessFault(e)) => return Err(KernelError::Access(e)),
            }
        }
        Err(KernelError::SegFault)
    }

    /// Directly reads user memory as the kernel would for a syscall buffer
    /// (via the direct map; faults resolved like hardware).
    pub fn user_read_u64(&mut self, va: VirtAddr) -> Result<u64, KernelError> {
        let pa = self.touch_user(va, AccessKind::Read)?;
        let v = self.mem_read(pa)?;
        Ok(v)
    }

    /// Directly writes user memory (syscall copy-out path).
    pub fn user_write_u64(&mut self, va: VirtAddr, v: u64) -> Result<(), KernelError> {
        let pa = self.touch_user(va, AccessKind::Write)?;
        self.mem_write(pa, v)
    }
}

/// Converts VMA permissions to leaf PTE flags.
fn perms_to_flags(perms: VmPerms) -> PteFlags {
    let mut bits = PteFlags::V | PteFlags::U | PteFlags::A;
    if perms.read {
        bits |= PteFlags::R;
    }
    if perms.write {
        bits |= PteFlags::W | PteFlags::D;
    }
    if perms.exec {
        bits |= PteFlags::X;
    }
    PteFlags::from_bits(bits)
}

/// `VirtAddr::page_align_down` with the virt-addr return type (tiny helper
/// so the call site reads naturally).
trait PageAlignVa {
    fn page_align_down_va(self) -> VirtAddr;
}

impl PageAlignVa for VirtAddr {
    fn page_align_down_va(self) -> VirtAddr {
        VirtAddr::new(self.as_u64() & !(PAGE_SIZE - 1))
    }
}
