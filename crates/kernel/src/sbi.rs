//! The PTStore SBI extension (paper §IV-B).
//!
//! In the RISC-V privilege model only M-mode may touch the `pmpcfg` CSRs, so
//! the S-mode kernel manages the secure region through three new SBI
//! functions: **initialize**, **get**, and **set** the region boundary. This
//! module is the M-mode firmware side: it owns the authority over the PMP
//! and validates every request before committing it — the kernel (even a
//! compromised one) cannot move the boundary arbitrarily, only grow the
//! region contiguously downward.

use core::fmt;

use ptstore_core::{PhysAddr, SecureRegion, PAGE_SIZE};
use ptstore_mem::Bus;
use serde::{Deserialize, Serialize};

/// The PTStore SBI function set (extension-specific calls the kernel makes
/// with `ecall` from S-mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SbiCall {
    /// `sbi_ptstore_init(base, size)` — one-shot installation at boot.
    SecureRegionInit {
        /// Region base (page-aligned).
        base: PhysAddr,
        /// Region size in bytes (page multiple).
        size: u64,
    },
    /// `sbi_ptstore_get()` — query the current boundary.
    SecureRegionGet,
    /// `sbi_ptstore_set(new_base)` — move the base boundary downward
    /// (dynamic adjustment; the end is immutable).
    SecureRegionSet {
        /// The new, lower base.
        new_base: PhysAddr,
    },
}

/// SBI return values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SbiResult {
    /// Success with no payload.
    Ok,
    /// The current region boundary.
    Region {
        /// Region base.
        base: PhysAddr,
        /// Region size in bytes.
        size: u64,
    },
    /// The call was rejected.
    Err(SbiError),
}

/// Why the firmware rejected a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SbiError {
    /// `init` called twice.
    AlreadyInitialised,
    /// `get`/`set` before `init`.
    NotInitialised,
    /// Bad alignment or geometry.
    InvalidParam,
    /// `set` tried to move the boundary upward (shrinking the region would
    /// expose page tables to regular instructions).
    WouldShrink,
    /// No PMP entry available.
    NoResources,
}

impl fmt::Display for SbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SbiError::AlreadyInitialised => "secure region already initialised",
            SbiError::NotInitialised => "secure region not initialised",
            SbiError::InvalidParam => "invalid parameter",
            SbiError::WouldShrink => "boundary may only move downward",
            SbiError::NoResources => "no free pmp entry",
        })
    }
}

impl std::error::Error for SbiError {}

/// The M-mode firmware state backing the SBI extension.
#[derive(Debug, Clone, Default)]
pub struct SbiFirmware {
    region: Option<SecureRegion>,
}

impl SbiFirmware {
    /// Fresh firmware with no region installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// The firmware's view of the region.
    pub fn region(&self) -> Option<SecureRegion> {
        self.region
    }

    /// Handles one SBI call against the machine's PMP.
    pub fn handle(&mut self, bus: &mut Bus, call: SbiCall) -> SbiResult {
        match call {
            SbiCall::SecureRegionInit { base, size } => {
                if self.region.is_some() {
                    return SbiResult::Err(SbiError::AlreadyInitialised);
                }
                let region = match SecureRegion::new(base, size) {
                    Ok(r) => r,
                    Err(_) => return SbiResult::Err(SbiError::InvalidParam),
                };
                // ptstore-lint: allow(channel-confinement) — M-mode firmware
                // programming the PMP at secure-region bring-up (§IV-B); the
                // reference monitor sits below the S-mode channel discipline.
                match bus.install_secure_region(&region) {
                    Ok(()) => {
                        self.region = Some(region);
                        SbiResult::Ok
                    }
                    Err(_) => SbiResult::Err(SbiError::NoResources),
                }
            }
            SbiCall::SecureRegionGet => match self.region {
                Some(r) => SbiResult::Region {
                    base: r.base(),
                    size: r.size(),
                },
                None => SbiResult::Err(SbiError::NotInitialised),
            },
            SbiCall::SecureRegionSet { new_base } => {
                let Some(current) = self.region else {
                    return SbiResult::Err(SbiError::NotInitialised);
                };
                if !new_base.is_aligned(PAGE_SIZE) {
                    return SbiResult::Err(SbiError::InvalidParam);
                }
                if new_base > current.base() {
                    return SbiResult::Err(SbiError::WouldShrink);
                }
                let grown = match current.with_base(new_base) {
                    Ok(r) => r,
                    Err(_) => return SbiResult::Err(SbiError::InvalidParam),
                };
                // ptstore-lint: allow(channel-confinement) — M-mode firmware
                // moving the validated PMP boundary (§IV-C1 adjustment); only
                // downward moves reach this arm.
                match bus.update_secure_region(&grown) {
                    Ok(()) => {
                        self.region = Some(grown);
                        SbiResult::Ok
                    }
                    Err(_) => SbiResult::Err(SbiError::NoResources),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::{AccessContext, Channel, MIB};

    fn bus() -> Bus {
        Bus::new(256 * MIB)
    }

    #[test]
    fn init_get_set_lifecycle() {
        let mut bus = bus();
        let mut fw = SbiFirmware::new();
        // get before init fails.
        assert_eq!(
            fw.handle(&mut bus, SbiCall::SecureRegionGet),
            SbiResult::Err(SbiError::NotInitialised)
        );
        // init.
        assert_eq!(
            fw.handle(
                &mut bus,
                SbiCall::SecureRegionInit {
                    base: PhysAddr::new(192 * MIB),
                    size: 64 * MIB,
                }
            ),
            SbiResult::Ok
        );
        // get reflects it.
        assert_eq!(
            fw.handle(&mut bus, SbiCall::SecureRegionGet),
            SbiResult::Region {
                base: PhysAddr::new(192 * MIB),
                size: 64 * MIB
            }
        );
        // set grows downward.
        assert_eq!(
            fw.handle(
                &mut bus,
                SbiCall::SecureRegionSet {
                    new_base: PhysAddr::new(176 * MIB)
                }
            ),
            SbiResult::Ok
        );
        assert_eq!(
            bus.secure_region().expect("installed").base(),
            PhysAddr::new(176 * MIB)
        );
    }

    #[test]
    fn double_init_rejected() {
        let mut bus = bus();
        let mut fw = SbiFirmware::new();
        let init = SbiCall::SecureRegionInit {
            base: PhysAddr::new(192 * MIB),
            size: 64 * MIB,
        };
        assert_eq!(fw.handle(&mut bus, init), SbiResult::Ok);
        assert_eq!(
            fw.handle(&mut bus, init),
            SbiResult::Err(SbiError::AlreadyInitialised)
        );
    }

    #[test]
    fn firmware_refuses_to_shrink() {
        // Security property: even a compromised kernel cannot use the SBI to
        // *shrink* the region and expose page tables.
        let mut bus = bus();
        let mut fw = SbiFirmware::new();
        fw.handle(
            &mut bus,
            SbiCall::SecureRegionInit {
                base: PhysAddr::new(192 * MIB),
                size: 64 * MIB,
            },
        );
        assert_eq!(
            fw.handle(
                &mut bus,
                SbiCall::SecureRegionSet {
                    new_base: PhysAddr::new(200 * MIB)
                }
            ),
            SbiResult::Err(SbiError::WouldShrink)
        );
        // And the PMP still protects the original extent.
        let ctx = AccessContext::supervisor(true);
        assert!(bus
            .write::<u64>(PhysAddr::new(193 * MIB), 0, Channel::Regular, ctx)
            .is_err());
    }

    #[test]
    fn unaligned_set_rejected() {
        let mut bus = bus();
        let mut fw = SbiFirmware::new();
        fw.handle(
            &mut bus,
            SbiCall::SecureRegionInit {
                base: PhysAddr::new(192 * MIB),
                size: 64 * MIB,
            },
        );
        assert_eq!(
            fw.handle(
                &mut bus,
                SbiCall::SecureRegionSet {
                    new_base: PhysAddr::new(192 * MIB - 123)
                }
            ),
            SbiResult::Err(SbiError::InvalidParam)
        );
    }

    #[test]
    fn bad_geometry_rejected_at_init() {
        let mut bus = bus();
        let mut fw = SbiFirmware::new();
        assert_eq!(
            fw.handle(
                &mut bus,
                SbiCall::SecureRegionInit {
                    base: PhysAddr::new(192 * MIB + 7),
                    size: 64 * MIB,
                }
            ),
            SbiResult::Err(SbiError::InvalidParam)
        );
    }
}
