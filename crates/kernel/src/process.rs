//! Processes, PCBs materialised in simulated memory, and VM areas.
//!
//! The fields PTStore cares about — the **page-table pointer** and the
//! **token pointer** — live at fixed offsets inside a PCB object in *normal*
//! (attackable) physical memory, exactly as `task_struct`/`mm_struct` fields
//! do in Linux. The attacker's arbitrary-write primitive can corrupt them;
//! the token in the secure region is what catches it (paper §III-C3, Fig. 3).

use std::collections::BTreeMap;

use ptstore_core::{PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};

use crate::pagetable::AddressSpace;

/// Process identifier.
pub type Pid = u32;

/// PCB object size in the PCB slab (bytes).
pub const PCB_SIZE: u64 = 256;

/// Byte offset of the page-table (root) pointer field in a PCB.
pub const PCB_OFF_PT_PTR: u64 = 0x08;

/// Byte offset of the token pointer field in a PCB.
pub const PCB_OFF_TOKEN_PTR: u64 = 0x10;

/// Byte offset of the pid field in a PCB.
pub const PCB_OFF_PID: u64 = 0x00;

/// Byte offset of the saved user program counter.
pub const PCB_OFF_UPC: u64 = 0x18;

/// Scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcState {
    /// Currently on the (single) hart.
    Running,
    /// Runnable, waiting in the queue.
    Ready,
    /// Blocked (pipe/select/wait).
    Blocked,
    /// Exited, awaiting `wait()` by the parent.
    Zombie,
}

/// Per-VMA permissions (the VM metadata the §V-E4 attack targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmPerms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl VmPerms {
    /// Read/write data.
    pub const RW: VmPerms = VmPerms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read/execute text.
    pub const RX: VmPerms = VmPerms {
        read: true,
        write: false,
        exec: true,
    };
    /// Read-only.
    pub const RO: VmPerms = VmPerms {
        read: true,
        write: false,
        exec: false,
    };
}

/// A user virtual memory area (demand-paged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmArea {
    /// Inclusive page-aligned start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
    /// Area permissions.
    pub perms: VmPerms,
}

impl VmArea {
    /// True when `va` lies inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        (self.start..self.end).contains(&va.as_u64())
    }
}

/// An open file description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FdEntry {
    /// Regular file in the ramfs.
    File {
        /// File name (ramfs key).
        name: String,
        /// Current offset.
        offset: u64,
    },
    /// Read end of a pipe.
    PipeRead {
        /// Pipe id.
        id: u32,
    },
    /// Write end of a pipe.
    PipeWrite {
        /// Pipe id.
        id: u32,
    },
    /// The console (stdout/stderr model).
    Console,
    /// A connected network socket (NGINX/Redis workload model).
    Socket {
        /// Socket id in the kernel socket table.
        id: u32,
    },
}

/// A per-process descriptor table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdTable {
    entries: Vec<Option<FdEntry>>,
}

impl FdTable {
    /// An empty table with stdin/stdout/stderr wired to the console.
    pub fn with_std() -> Self {
        Self {
            entries: vec![
                Some(FdEntry::Console),
                Some(FdEntry::Console),
                Some(FdEntry::Console),
            ],
        }
    }

    /// Installs `entry` in the lowest free slot, returning the fd.
    pub fn insert(&mut self, entry: FdEntry) -> i32 {
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.is_none() {
                *e = Some(entry);
                return i as i32;
            }
        }
        self.entries.push(Some(entry));
        (self.entries.len() - 1) as i32
    }

    /// Looks up an fd.
    pub fn get(&self, fd: i32) -> Option<&FdEntry> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.entries.get(i))
            .and_then(Option::as_ref)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: i32) -> Option<&mut FdEntry> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.entries.get_mut(i))
            .and_then(Option::as_mut)
    }

    /// Removes an fd, returning its entry.
    pub fn remove(&mut self, fd: i32) -> Option<FdEntry> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.entries.get_mut(i))
            .and_then(Option::take)
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Signal disposition (install/catch latency is what LMBench measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SigAction {
    /// Default disposition.
    #[default]
    Default,
    /// Ignored.
    Ignore,
    /// A user handler is installed (the model stores only the fact).
    Handler,
}

/// Per-process signal state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalTable {
    /// Dispositions for signals 1–31.
    pub actions: [SigAction; 32],
    /// Pending signal bitmap.
    pub pending: u32,
    /// Number of signals delivered to handlers (catch-latency accounting).
    pub caught: u64,
}

/// One process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent pid (pid 1 has none).
    pub parent: Option<Pid>,
    /// Scheduling state.
    pub state: ProcState,
    /// Physical address of the PCB object in the PCB slab.
    pub pcb_addr: PhysAddr,
    /// The address space.
    pub aspace: AddressSpace,
    /// VM areas (text/heap/stack/mmap).
    pub vmas: Vec<VmArea>,
    /// Current `brk`.
    pub brk: u64,
    /// Next mmap allocation cursor.
    pub mmap_cursor: u64,
    /// Open files.
    pub fds: FdTable,
    /// Signal state.
    pub signals: SignalTable,
    /// Exit code once zombie.
    pub exit_code: i32,
    /// Children pids.
    pub children: Vec<Pid>,
    /// For a thread: the pid owning the shared address space (`None` for
    /// the mm owner itself). The thread's PCB carries the *same* page-table
    /// pointer, bound by its own **copied token** (paper §III-C3: "copy the
    /// token whenever the page table pointer ... is legitimately copied").
    pub mm_owner: Option<Pid>,
    /// Threads sharing this process's address space.
    pub threads: Vec<Pid>,
}

impl Process {
    /// Physical address of this PCB's page-table-pointer field.
    pub fn pt_ptr_slot(&self) -> PhysAddr {
        self.pcb_addr + PCB_OFF_PT_PTR
    }

    /// Physical address of this PCB's token-pointer field — the address a
    /// valid token's user pointer must point back to (paper Fig. 3).
    pub fn token_slot(&self) -> PhysAddr {
        self.pcb_addr + PCB_OFF_TOKEN_PTR
    }

    /// Finds the VMA containing `va`.
    pub fn vma_for(&self, va: VirtAddr) -> Option<&VmArea> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Mutable VMA lookup (the §V-E4 attack mutates these).
    pub fn vma_for_mut(&mut self, va: VirtAddr) -> Option<&mut VmArea> {
        self.vmas.iter_mut().find(|v| v.contains(va))
    }
}

/// The process table.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    procs: BTreeMap<Pid, Process>,
}

impl ProcessTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a process.
    ///
    /// # Panics
    /// Panics on duplicate pid.
    pub fn insert(&mut self, p: Process) {
        let pid = p.pid;
        let prev = self.procs.insert(pid, p);
        assert!(prev.is_none(), "duplicate pid {pid}");
    }

    /// Immutable lookup.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Removes a process (final reap).
    pub fn remove(&mut self, pid: Pid) -> Option<Process> {
        self.procs.remove(&pid)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Iterates pids in order.
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.procs.keys().copied()
    }

    /// Iterates processes.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the layout *is* the constant under test
    fn pcb_field_offsets_are_pointer_aligned() {
        // §V-E2 relies on PCB/token fields being 8-byte aligned.
        assert_eq!(PCB_OFF_PT_PTR % 8, 0);
        assert_eq!(PCB_OFF_TOKEN_PTR % 8, 0);
        assert!(PCB_OFF_TOKEN_PTR < PCB_SIZE);
    }

    #[test]
    fn fd_table_reuses_lowest_slot() {
        let mut t = FdTable::with_std();
        let a = t.insert(FdEntry::Console);
        assert_eq!(a, 3);
        let b = t.insert(FdEntry::Console);
        assert_eq!(b, 4);
        t.remove(a);
        let c = t.insert(FdEntry::Console);
        assert_eq!(c, 3, "lowest free slot is reused");
        assert_eq!(t.open_count(), 5);
        assert!(t.get(99).is_none());
        assert!(t.get(-1).is_none());
    }

    #[test]
    fn vma_lookup() {
        let vma = VmArea {
            start: 0x1000,
            end: 0x3000,
            perms: VmPerms::RW,
        };
        assert!(vma.contains(VirtAddr::new(0x1000)));
        assert!(vma.contains(VirtAddr::new(0x2fff)));
        assert!(!vma.contains(VirtAddr::new(0x3000)));
    }

    #[test]
    fn process_table_basics() {
        let mut t = ProcessTable::new();
        assert!(t.is_empty());
        t.insert(Process {
            pid: 1,
            parent: None,
            state: ProcState::Running,
            pcb_addr: PhysAddr::new(0x1000),
            aspace: AddressSpace::default(),
            vmas: Vec::new(),
            brk: 0,
            mmap_cursor: 0,
            fds: FdTable::with_std(),
            signals: SignalTable::default(),
            exit_code: 0,
            children: Vec::new(),
            mm_owner: None,
            threads: Vec::new(),
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1).unwrap().pid, 1);
        let slot = t.get(1).unwrap().token_slot();
        assert_eq!(slot, PhysAddr::new(0x1000 + PCB_OFF_TOKEN_PTR));
        assert!(t.remove(1).is_some());
        assert!(t.is_empty());
    }
}
