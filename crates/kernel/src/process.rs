//! Processes, PCBs materialised in simulated memory, and VM areas — plus the
//! **generational slot-array process table** (the ptab model) that makes
//! cross-hart PCB lookup lock-free.
//!
//! The fields PTStore cares about — the **page-table pointer** and the
//! **token pointer** — live at fixed offsets inside a PCB object in *normal*
//! (attackable) physical memory, exactly as `task_struct`/`mm_struct` fields
//! do in Linux. The attacker's arbitrary-write primitive can corrupt them;
//! the token in the secure region is what catches it (paper §III-C3, Fig. 3).
//!
//! ## The table
//!
//! [`ProcessTable`] is a fixed-capacity slot array. Each slot carries a
//! monotonically increasing **generation counter** (even = vacant, odd =
//! occupied); a pid lookup returns a [`ProcHandle`]`{ slot, gen }` instead of
//! a raw map reference. Readers validate a handle with one atomic load and no
//! shared writes, so any number of hart threads can check liveness
//! concurrently through a [`TableReader`] while the owning hart mutates the
//! table. A reaped slot's generation advances and never repeats, so a stale
//! handle can only *mismatch* — the ABA resolution a `BTreeMap<Pid, Process>`
//! cannot express. Freed slots pass through an **epoch-based limbo list**:
//! a slot is reused only once every hart has quiesced past the epoch at
//! which it was retired, mirroring how a real lock-free table would defer
//! payload reclamation until no reader can still hold a reference into it.
//!
//! The capacity is a *limit*, not an allocation: slot metadata lives in
//! lazily initialised fixed-size chunks (stable addresses, so readers stay
//! lock-free) and the payload vector grows with the high-water mark, so the
//! many short-lived kernels the test and bench harnesses boot pay for the
//! handful of slots they use, not for the fork-stress headroom.
//!
//! This module is the one place in the workspace where raw
//! `std::sync::atomic` orderings are allowed (the `atomics-confinement`
//! ptstore-lint rule); everything else synchronises through messages or
//! locks.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use ptstore_core::{PhysAddr, VirtAddr};
use serde::{Deserialize, Serialize};

use crate::pagetable::AddressSpace;

/// Process identifier.
pub type Pid = u32;

/// PCB object size in the PCB slab (bytes).
pub const PCB_SIZE: u64 = 256;

/// Byte offset of the page-table (root) pointer field in a PCB.
pub const PCB_OFF_PT_PTR: u64 = 0x08;

/// Byte offset of the token pointer field in a PCB.
pub const PCB_OFF_TOKEN_PTR: u64 = 0x10;

/// Byte offset of the pid field in a PCB.
pub const PCB_OFF_PID: u64 = 0x00;

/// Byte offset of the saved user program counter.
pub const PCB_OFF_UPC: u64 = 0x18;

/// Scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcState {
    /// Currently on the (single) hart.
    Running,
    /// Runnable, waiting in the queue.
    Ready,
    /// Blocked (pipe/select/wait).
    Blocked,
    /// Exited, awaiting `wait()` by the parent.
    Zombie,
}

/// Per-VMA permissions (the VM metadata the §V-E4 attack targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmPerms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl VmPerms {
    /// Read/write data.
    pub const RW: VmPerms = VmPerms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read/execute text.
    pub const RX: VmPerms = VmPerms {
        read: true,
        write: false,
        exec: true,
    };
    /// Read-only.
    pub const RO: VmPerms = VmPerms {
        read: true,
        write: false,
        exec: false,
    };
}

/// A user virtual memory area (demand-paged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmArea {
    /// Inclusive page-aligned start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
    /// Area permissions.
    pub perms: VmPerms,
}

impl VmArea {
    /// True when `va` lies inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        (self.start..self.end).contains(&va.as_u64())
    }
}

/// An open file description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FdEntry {
    /// Regular file in the ramfs.
    File {
        /// File name (ramfs key).
        name: String,
        /// Current offset.
        offset: u64,
    },
    /// Read end of a pipe.
    PipeRead {
        /// Pipe id.
        id: u32,
    },
    /// Write end of a pipe.
    PipeWrite {
        /// Pipe id.
        id: u32,
    },
    /// The console (stdout/stderr model).
    Console,
    /// A connected network socket (NGINX/Redis workload model).
    Socket {
        /// Socket id in the kernel socket table.
        id: u32,
    },
}

/// A per-process descriptor table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdTable {
    entries: Vec<Option<FdEntry>>,
}

impl FdTable {
    /// An empty table with stdin/stdout/stderr wired to the console.
    pub fn with_std() -> Self {
        Self {
            entries: vec![
                Some(FdEntry::Console),
                Some(FdEntry::Console),
                Some(FdEntry::Console),
            ],
        }
    }

    /// Installs `entry` in the lowest free slot, returning the fd.
    pub fn insert(&mut self, entry: FdEntry) -> i32 {
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.is_none() {
                *e = Some(entry);
                return i as i32;
            }
        }
        self.entries.push(Some(entry));
        (self.entries.len() - 1) as i32
    }

    /// Looks up an fd.
    pub fn get(&self, fd: i32) -> Option<&FdEntry> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.entries.get(i))
            .and_then(Option::as_ref)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: i32) -> Option<&mut FdEntry> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.entries.get_mut(i))
            .and_then(Option::as_mut)
    }

    /// Removes an fd, returning its entry.
    pub fn remove(&mut self, fd: i32) -> Option<FdEntry> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.entries.get_mut(i))
            .and_then(Option::take)
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Signal disposition (install/catch latency is what LMBench measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SigAction {
    /// Default disposition.
    #[default]
    Default,
    /// Ignored.
    Ignore,
    /// A user handler is installed (the model stores only the fact).
    Handler,
}

/// Per-process signal state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalTable {
    /// Dispositions for signals 1–31.
    pub actions: [SigAction; 32],
    /// Pending signal bitmap.
    pub pending: u32,
    /// Number of signals delivered to handlers (catch-latency accounting).
    pub caught: u64,
}

/// One process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent pid (pid 1 has none).
    pub parent: Option<Pid>,
    /// Scheduling state.
    pub state: ProcState,
    /// Physical address of the PCB object in the PCB slab.
    pub pcb_addr: PhysAddr,
    /// The address space.
    pub aspace: AddressSpace,
    /// VM areas (text/heap/stack/mmap).
    pub vmas: Vec<VmArea>,
    /// Current `brk`.
    pub brk: u64,
    /// Next mmap allocation cursor.
    pub mmap_cursor: u64,
    /// Open files.
    pub fds: FdTable,
    /// Signal state.
    pub signals: SignalTable,
    /// Exit code once zombie.
    pub exit_code: i32,
    /// Children pids.
    pub children: Vec<Pid>,
    /// For a thread: the pid owning the shared address space (`None` for
    /// the mm owner itself). The thread's PCB carries the *same* page-table
    /// pointer, bound by its own **copied token** (paper §III-C3: "copy the
    /// token whenever the page table pointer ... is legitimately copied").
    pub mm_owner: Option<Pid>,
    /// Threads sharing this process's address space.
    pub threads: Vec<Pid>,
}

impl Process {
    /// Physical address of this PCB's page-table-pointer field.
    pub fn pt_ptr_slot(&self) -> PhysAddr {
        self.pcb_addr + PCB_OFF_PT_PTR
    }

    /// Physical address of this PCB's token-pointer field — the address a
    /// valid token's user pointer must point back to (paper Fig. 3).
    pub fn token_slot(&self) -> PhysAddr {
        self.pcb_addr + PCB_OFF_TOKEN_PTR
    }

    /// Finds the VMA containing `va`.
    pub fn vma_for(&self, va: VirtAddr) -> Option<&VmArea> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Mutable VMA lookup (the §V-E4 attack mutates these).
    pub fn vma_for_mut(&mut self, va: VirtAddr) -> Option<&mut VmArea> {
        self.vmas.iter_mut().find(|v| v.contains(va))
    }
}

/// Fixed slot capacity of the process table. Sized for the paper's
/// 30 000-process fork stress with headroom for limbo slots that cannot be
/// reclaimed until lagging harts quiesce.
pub const PROC_TABLE_CAPACITY: usize = 65_536;

/// Sentinel in the dense pid index: "pid has no slot".
const SLOT_NONE: u32 = u32::MAX;

/// A generational reference to a process-table slot.
///
/// The handle stays valid exactly as long as the slot's generation counter
/// equals `gen`. Once the process is reaped the generation advances (and
/// never repeats for the slot), so a stale handle *detects* its staleness
/// instead of silently resolving to whatever process reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcHandle {
    /// Slot index in the table.
    pub slot: u32,
    /// Generation the slot had when the handle was issued (always odd).
    pub gen: u32,
}

/// Why [`ProcessTable::insert`] refused a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// A live entry with this pid already exists.
    DuplicatePid(Pid),
    /// Every slot is live or still in limbo awaiting hart quiescence.
    Full,
}

/// Slots per lazily allocated metadata chunk (power of two).
const META_CHUNK: usize = 1024;

/// One chunk of per-slot atomic metadata. Chunks are allocated on first use
/// and never move or shrink, so a [`TableReader`] can dereference them
/// without any lock.
#[derive(Debug)]
struct MetaChunk {
    /// Per-slot generation: even = vacant, odd = occupied. Monotonic.
    gens: [AtomicU32; META_CHUNK],
    /// Pid published for an occupied slot (undefined while vacant).
    pids: [AtomicU32; META_CHUNK],
}

impl MetaChunk {
    fn new_boxed() -> Box<Self> {
        Box::new(Self {
            gens: std::array::from_fn(|_| AtomicU32::new(0)),
            pids: std::array::from_fn(|_| AtomicU32::new(0)),
        })
    }
}

/// The shared, atomically readable half of the table: per-slot generations,
/// published pids, and the reclamation epochs. Everything here is written
/// only by the table owner and read (lock-free) by any thread holding a
/// [`TableReader`]. Slot metadata is chunked and chunks materialise on first
/// write — an untouched chunk reads as "all slots vacant at generation 0",
/// which no issued handle (generations are odd) can ever match.
#[derive(Debug)]
struct SharedMeta {
    /// Lazily initialised metadata chunks covering the whole capacity.
    chunks: Box<[OnceLock<Box<MetaChunk>>]>,
    /// Global reclamation epoch; bumped on every retire.
    epoch: AtomicU64,
    /// Last epoch each hart has quiesced at. A retired slot is reusable
    /// once `min(hart_epochs) >= retire_epoch`.
    hart_epochs: Box<[AtomicU64]>,
}

impl SharedMeta {
    fn new(capacity: usize, harts: usize) -> Self {
        Self {
            chunks: (0..capacity.div_ceil(META_CHUNK))
                .map(|_| OnceLock::new())
                .collect(),
            epoch: AtomicU64::new(0),
            hart_epochs: (0..harts.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Total slot capacity covered by the chunk directory.
    fn capacity(&self) -> usize {
        self.chunks.len() * META_CHUNK
    }

    /// The chunk holding `slot`, materialising it on first use (owner side).
    fn chunk(&self, slot: usize) -> &MetaChunk {
        self.chunks[slot / META_CHUNK].get_or_init(MetaChunk::new_boxed)
    }

    /// Lock-free generation read; `None` for slots beyond the capacity.
    /// Slots in unmaterialised chunks read as generation 0 (vacant).
    fn gen_of(&self, slot: usize) -> Option<u32> {
        let chunk = self.chunks.get(slot / META_CHUNK)?;
        Some(match chunk.get() {
            Some(c) => c.gens[slot % META_CHUNK].load(Ordering::Acquire),
            None => 0,
        })
    }

    /// Lock-free published-pid read (0 while the chunk is unmaterialised).
    fn pid_at(&self, slot: usize) -> u32 {
        match self.chunks[slot / META_CHUNK].get() {
            Some(c) => c.pids[slot % META_CHUNK].load(Ordering::Acquire),
            None => 0,
        }
    }

    fn min_hart_epoch(&self) -> u64 {
        self.hart_epochs
            .iter()
            .map(|e| e.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }
}

/// A clonable, lock-free view of the table's generational metadata, safe to
/// hold on any thread while the owning hart keeps mutating the table. It can
/// validate handles and read published pids; it can never reach the payload.
#[derive(Debug, Clone)]
pub struct TableReader {
    meta: Arc<SharedMeta>,
}

impl TableReader {
    /// True while `h` still refers to the process it was issued for: one
    /// atomic load, zero shared writes.
    pub fn live(&self, h: ProcHandle) -> bool {
        self.meta.gen_of(h.slot as usize) == Some(h.gen)
    }

    /// The pid behind `h`, or `None` when the handle is stale. Reads the
    /// generation before *and* after the pid load so a concurrent reap
    /// cannot hand back a reused slot's pid.
    pub fn pid_of(&self, h: ProcHandle) -> Option<Pid> {
        let si = h.slot as usize;
        if self.meta.gen_of(si)? != h.gen {
            return None;
        }
        let pid = self.meta.pid_at(si);
        (self.meta.gen_of(si) == Some(h.gen)).then_some(pid)
    }

    /// Current global reclamation epoch.
    pub fn epoch(&self) -> u64 {
        self.meta.epoch.load(Ordering::Acquire)
    }
}

/// The process table: a fixed-capacity generational slot array (see the
/// module docs for the concurrency contract).
#[derive(Debug)]
pub struct ProcessTable {
    /// Slot payloads. Boxed so a vacant slot costs one pointer, not a whole
    /// `Process`.
    slots: Vec<Option<Box<Process>>>,
    /// Shared atomic metadata (generations, pids, epochs).
    meta: Arc<SharedMeta>,
    /// Dense pid → slot index (O(1) hot-path lookup; pids are small and
    /// allocated sequentially).
    pid_slots: Vec<u32>,
    /// Ordered pid → slot map, kept solely so `pids()`/`iter()` walk in
    /// deterministic pid order (oracle and stats depend on that order).
    by_pid: BTreeMap<Pid, u32>,
    /// Retired slots awaiting quiescence: `(slot, retire_epoch)` in retire
    /// order (epochs are monotonic, so the front is always the oldest).
    limbo: VecDeque<(u32, u64)>,
    /// Slots safe to reuse.
    free: Vec<u32>,
    /// First never-used slot.
    high_water: u32,
    /// Slots reclaimed out of limbo over the table's lifetime.
    reclaimed: u64,
}

impl Default for ProcessTable {
    fn default() -> Self {
        Self::with_harts(1)
    }
}

impl Clone for ProcessTable {
    /// Deep snapshot: the clone gets its own metadata arrays, so readers of
    /// the original are unaffected and handles stay valid against both.
    fn clone(&self) -> Self {
        let meta = SharedMeta::new(self.meta.capacity(), self.meta.hart_epochs.len());
        for (ci, lock) in self.meta.chunks.iter().enumerate() {
            let Some(src) = lock.get() else { continue };
            let dst = meta.chunks[ci].get_or_init(MetaChunk::new_boxed);
            for i in 0..META_CHUNK {
                dst.gens[i].store(src.gens[i].load(Ordering::Acquire), Ordering::Release);
                dst.pids[i].store(src.pids[i].load(Ordering::Acquire), Ordering::Release);
            }
        }
        meta.epoch
            .store(self.meta.epoch.load(Ordering::Acquire), Ordering::Release);
        for (i, e) in self.meta.hart_epochs.iter().enumerate() {
            meta.hart_epochs[i].store(e.load(Ordering::Acquire), Ordering::Release);
        }
        Self {
            slots: self.slots.clone(),
            meta: Arc::new(meta),
            pid_slots: self.pid_slots.clone(),
            by_pid: self.by_pid.clone(),
            limbo: self.limbo.clone(),
            free: self.free.clone(),
            high_water: self.high_water,
            reclaimed: self.reclaimed,
        }
    }
}

impl ProcessTable {
    /// Empty table for a single-hart machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty table whose reclamation epochs track `harts` harts.
    pub fn with_harts(harts: usize) -> Self {
        Self {
            slots: Vec::new(),
            meta: Arc::new(SharedMeta::new(PROC_TABLE_CAPACITY, harts)),
            pid_slots: Vec::new(),
            by_pid: BTreeMap::new(),
            limbo: VecDeque::new(),
            free: Vec::new(),
            high_water: 0,
            reclaimed: 0,
        }
    }

    /// A lock-free reader over this table's generational metadata.
    pub fn reader(&self) -> TableReader {
        TableReader {
            meta: Arc::clone(&self.meta),
        }
    }

    /// Slot index for `pid`, if live.
    #[inline]
    fn slot_of(&self, pid: Pid) -> Option<u32> {
        match self.pid_slots.get(pid as usize) {
            Some(&s) if s != SLOT_NONE => Some(s),
            _ => None,
        }
    }

    /// Moves limbo slots whose retire epoch every hart has passed onto the
    /// free list.
    fn reclaim(&mut self) {
        let safe = self.meta.min_hart_epoch();
        while let Some(&(slot, retired)) = self.limbo.front() {
            if retired > safe {
                break;
            }
            self.limbo.pop_front();
            self.free.push(slot);
            self.reclaimed += 1;
        }
    }

    /// Picks a slot for a new entry: reclaimed slots first, then fresh ones.
    fn claim_slot(&mut self) -> Option<u32> {
        self.reclaim();
        if let Some(s) = self.free.pop() {
            return Some(s);
        }
        if (self.high_water as usize) < self.meta.capacity() {
            let s = self.high_water;
            self.high_water += 1;
            self.slots.push(None);
            debug_assert_eq!(self.slots.len(), self.high_water as usize);
            return Some(s);
        }
        None
    }

    /// Marks `hart` quiescent at the current epoch (it holds no handles from
    /// before this call) and reclaims whatever that unblocks.
    pub fn quiesce(&mut self, hart: usize) {
        if let Some(e) = self.meta.hart_epochs.get(hart) {
            e.store(self.meta.epoch.load(Ordering::Acquire), Ordering::Release);
        }
        self.reclaim();
    }

    /// Inserts a process, publishing its slot for lock-free readers.
    ///
    /// # Errors
    /// [`TableError::DuplicatePid`] when a live entry with the same pid
    /// exists; [`TableError::Full`] when no slot is free (all live or still
    /// in limbo).
    pub fn insert(&mut self, p: Process) -> Result<ProcHandle, TableError> {
        let pid = p.pid;
        if self.slot_of(pid).is_some() {
            return Err(TableError::DuplicatePid(pid));
        }
        let Some(slot) = self.claim_slot() else {
            return Err(TableError::Full);
        };
        let si = slot as usize;
        debug_assert!(self.slots[si].is_none(), "claimed slot must be vacant");
        self.slots[si] = Some(Box::new(p));
        if self.pid_slots.len() <= pid as usize {
            self.pid_slots.resize(pid as usize + 1, SLOT_NONE);
        }
        self.pid_slots[pid as usize] = slot;
        self.by_pid.insert(pid, slot);
        // Publish pid first, then flip the generation odd: a reader that
        // observes the odd generation is guaranteed to read this pid.
        let c = self.meta.chunk(si);
        c.pids[si % META_CHUNK].store(pid, Ordering::Release);
        let gen = c.gens[si % META_CHUNK].load(Ordering::Relaxed) + 1;
        debug_assert_eq!(gen % 2, 1, "occupied generation must be odd");
        c.gens[si % META_CHUNK].store(gen, Ordering::Release);
        Ok(ProcHandle { slot, gen })
    }

    /// The live handle for `pid`, if any (O(1), no shared writes).
    pub fn lookup(&self, pid: Pid) -> Option<ProcHandle> {
        let slot = self.slot_of(pid)?;
        let gen = self.meta.gen_of(slot as usize).unwrap_or(0);
        debug_assert_eq!(gen % 2, 1, "indexed slot must be occupied");
        Some(ProcHandle { slot, gen })
    }

    /// Resolves a handle, failing on generation mismatch (stale handle).
    pub fn resolve(&self, h: ProcHandle) -> Option<&Process> {
        let si = h.slot as usize;
        if self.meta.gen_of(si)? != h.gen {
            return None;
        }
        self.slots[si].as_deref()
    }

    /// Mutable handle resolution (owning-hart side).
    pub fn resolve_mut(&mut self, h: ProcHandle) -> Option<&mut Process> {
        let si = h.slot as usize;
        if self.meta.gen_of(si)? != h.gen {
            return None;
        }
        self.slots[si].as_deref_mut()
    }

    /// Immutable pid lookup (O(1) through the dense index).
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.slot_of(pid)
            .and_then(|s| self.slots[s as usize].as_deref())
    }

    /// Mutable pid lookup.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.slot_of(pid)
            .and_then(|s| self.slots[s as usize].as_deref_mut())
    }

    /// Removes a process (final reap): the slot's generation advances (odd →
    /// even, invalidating every outstanding handle) and the slot enters
    /// limbo until all harts quiesce past the retire epoch.
    pub fn remove(&mut self, pid: Pid) -> Option<Process> {
        let slot = self.slot_of(pid)?;
        let si = slot as usize;
        let p = self.slots[si].take().map(|b| *b)?;
        self.pid_slots[pid as usize] = SLOT_NONE;
        self.by_pid.remove(&pid);
        // Retire: flip the generation even *before* bumping the epoch so a
        // reader can never validate a handle against a slot already headed
        // for reuse.
        let c = self.meta.chunk(si);
        let gen = c.gens[si % META_CHUNK].load(Ordering::Relaxed) + 1;
        debug_assert_eq!(gen % 2, 0, "vacant generation must be even");
        c.gens[si % META_CHUNK].store(gen, Ordering::Release);
        let retired = self.meta.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.limbo.push_back((slot, retired));
        Some(p)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.by_pid.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_pid.is_empty()
    }

    /// Slots currently awaiting quiescence.
    pub fn limbo_len(&self) -> usize {
        self.limbo.len()
    }

    /// Slots reclaimed out of limbo over the table's lifetime.
    pub fn slots_reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Iterates pids in ascending order (deterministic; the oracle and the
    /// stats walk depend on it).
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.by_pid.keys().copied()
    }

    /// Iterates processes in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.by_pid
            .values()
            .filter_map(|&s| self.slots[s as usize].as_deref())
    }

    /// Iterates `(handle, process)` pairs in pid order — the slot-array walk
    /// the invariant oracle uses to re-derive the satp↔token↔PCB binding.
    pub fn handles(&self) -> impl Iterator<Item = (ProcHandle, &Process)> {
        self.by_pid.values().filter_map(|&s| {
            let gen = self.meta.gen_of(s as usize).unwrap_or(0);
            self.slots[s as usize]
                .as_deref()
                .map(move |p| (ProcHandle { slot: s, gen }, p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the layout *is* the constant under test
    fn pcb_field_offsets_are_pointer_aligned() {
        // §V-E2 relies on PCB/token fields being 8-byte aligned.
        assert_eq!(PCB_OFF_PT_PTR % 8, 0);
        assert_eq!(PCB_OFF_TOKEN_PTR % 8, 0);
        assert!(PCB_OFF_TOKEN_PTR < PCB_SIZE);
    }

    #[test]
    fn fd_table_reuses_lowest_slot() {
        let mut t = FdTable::with_std();
        let a = t.insert(FdEntry::Console);
        assert_eq!(a, 3);
        let b = t.insert(FdEntry::Console);
        assert_eq!(b, 4);
        t.remove(a);
        let c = t.insert(FdEntry::Console);
        assert_eq!(c, 3, "lowest free slot is reused");
        assert_eq!(t.open_count(), 5);
        assert!(t.get(99).is_none());
        assert!(t.get(-1).is_none());
    }

    #[test]
    fn vma_lookup() {
        let vma = VmArea {
            start: 0x1000,
            end: 0x3000,
            perms: VmPerms::RW,
        };
        assert!(vma.contains(VirtAddr::new(0x1000)));
        assert!(vma.contains(VirtAddr::new(0x2fff)));
        assert!(!vma.contains(VirtAddr::new(0x3000)));
    }

    fn proc(pid: Pid) -> Process {
        Process {
            pid,
            parent: None,
            state: ProcState::Running,
            pcb_addr: PhysAddr::new(0x1000),
            aspace: AddressSpace::default(),
            vmas: Vec::new(),
            brk: 0,
            mmap_cursor: 0,
            fds: FdTable::with_std(),
            signals: SignalTable::default(),
            exit_code: 0,
            children: Vec::new(),
            mm_owner: None,
            threads: Vec::new(),
        }
    }

    #[test]
    fn process_table_basics() {
        let mut t = ProcessTable::new();
        assert!(t.is_empty());
        t.insert(proc(1)).expect("fresh pid");
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1).unwrap().pid, 1);
        let slot = t.get(1).unwrap().token_slot();
        assert_eq!(slot, PhysAddr::new(0x1000 + PCB_OFF_TOKEN_PTR));
        assert!(t.remove(1).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_pid_is_an_error_not_a_panic() {
        let mut t = ProcessTable::new();
        t.insert(proc(7)).expect("fresh pid");
        assert_eq!(t.insert(proc(7)), Err(TableError::DuplicatePid(7)));
        assert_eq!(t.len(), 1, "the live entry is untouched");
    }

    #[test]
    fn stale_handle_mismatches_after_reap() {
        let mut t = ProcessTable::new();
        let h = t.insert(proc(3)).expect("insert");
        assert_eq!(t.resolve(h).unwrap().pid, 3);
        assert!(t.remove(3).is_some());
        assert!(t.resolve(h).is_none(), "gen advanced on reap");
        assert!(t.lookup(3).is_none());
        // Reuse the slot for a different pid: the old handle must still
        // mismatch (the ABA case).
        t.quiesce(0);
        let h2 = t.insert(proc(4)).expect("insert after quiesce");
        assert_eq!(h.slot, h2.slot, "slot is reused once quiescent");
        assert_ne!(h.gen, h2.gen, "generation never repeats");
        assert!(t.resolve(h).is_none());
        assert_eq!(t.resolve(h2).unwrap().pid, 4);
    }

    #[test]
    fn limbo_blocks_reuse_until_every_hart_quiesces() {
        let mut t = ProcessTable::with_harts(2);
        let h = t.insert(proc(1)).expect("insert");
        t.remove(1).expect("reap");
        assert_eq!(t.limbo_len(), 1);
        // Only hart 0 quiesces: hart 1 may still hold the handle.
        t.quiesce(0);
        assert_eq!(t.limbo_len(), 1, "slot stays in limbo");
        let h2 = t.insert(proc(2)).expect("fresh slot");
        assert_ne!(h.slot, h2.slot, "fresh slot, not the limbo one");
        // Hart 1 quiesces: the limbo slot becomes reusable.
        t.quiesce(1);
        assert_eq!(t.limbo_len(), 0);
        assert_eq!(t.slots_reclaimed(), 1);
        let h3 = t.insert(proc(3)).expect("reused slot");
        assert_eq!(h3.slot, h.slot);
    }

    #[test]
    fn reader_validates_without_table_access() {
        let mut t = ProcessTable::new();
        let h = t.insert(proc(9)).expect("insert");
        let r = t.reader();
        assert!(r.live(h));
        assert_eq!(r.pid_of(h), Some(9));
        t.remove(9).expect("reap");
        assert!(!r.live(h));
        assert_eq!(r.pid_of(h), None);
        assert_eq!(r.epoch(), 1);
    }

    #[test]
    fn iteration_stays_pid_ordered_across_slot_reuse() {
        let mut t = ProcessTable::new();
        for pid in [5, 3, 8] {
            t.insert(proc(pid)).expect("insert");
        }
        t.remove(3).expect("reap");
        t.quiesce(0);
        t.insert(proc(2)).expect("reuses slot of pid 3");
        let pids: Vec<Pid> = t.pids().collect();
        assert_eq!(pids, [2, 5, 8], "pid order, not slot order");
        let via_handles: Vec<Pid> = t.handles().map(|(_, p)| p.pid).collect();
        assert_eq!(via_handles, [2, 5, 8]);
        for (h, p) in t.handles() {
            assert_eq!(t.resolve(h).unwrap().pid, p.pid);
        }
    }
}
