//! A miniature in-memory filesystem and pipes.
//!
//! Enough VFS behaviour for the LMBench-style microbenchmarks (`open`,
//! `close`, `read`, `write`, `stat`, `fstat`, pipe latency) and for the
//! NGINX-style static-file serving workload. File contents are held as real
//! bytes so the LTP-style regression suite can diff observable behaviour
//! between kernel configurations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// File metadata returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStat {
    /// Size in bytes.
    pub size: u64,
    /// Mode bits (plain rw-r--r-- default).
    pub mode: u32,
    /// Inode number.
    pub ino: u64,
}

/// One ramfs file.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct FileNode {
    data: Vec<u8>,
    mode: u32,
    ino: u64,
}

/// The in-memory filesystem.
#[derive(Debug, Clone, Default)]
pub struct RamFs {
    files: HashMap<String, FileNode>,
    next_ino: u64,
}

impl RamFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self {
            files: HashMap::new(),
            next_ino: 2,
        }
    }

    /// Creates (or truncates) a file with the given content.
    pub fn create(&mut self, name: &str, data: Vec<u8>) {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.files.insert(
            name.to_string(),
            FileNode {
                data,
                mode: 0o644,
                ino,
            },
        );
    }

    /// True when the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Removes a file.
    pub fn unlink(&mut self, name: &str) -> bool {
        self.files.remove(name).is_some()
    }

    /// `stat` metadata.
    pub fn stat(&self, name: &str) -> Option<FileStat> {
        self.files.get(name).map(|f| FileStat {
            size: f.data.len() as u64,
            mode: f.mode,
            ino: f.ino,
        })
    }

    /// Reads up to `len` bytes at `offset`; returns the bytes read.
    pub fn read(&self, name: &str, offset: u64, len: u64) -> Option<&[u8]> {
        let f = self.files.get(name)?;
        let start = (offset as usize).min(f.data.len());
        let end = (offset as usize + len as usize).min(f.data.len());
        Some(&f.data[start..end])
    }

    /// Writes `data` at `offset`, extending the file as needed; returns the
    /// new size.
    pub fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> Option<u64> {
        let f = self.files.get_mut(name)?;
        let end = offset as usize + data.len();
        if f.data.len() < end {
            f.data.resize(end, 0);
        }
        f.data[offset as usize..end].copy_from_slice(data);
        Some(f.data.len() as u64)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// Pipe capacity (bytes), as in Linux.
pub const PIPE_CAPACITY: usize = 65536;

/// One pipe: a bounded byte FIFO with reader/writer liveness bits.
#[derive(Debug, Clone, Default)]
pub struct Pipe {
    buf: std::collections::VecDeque<u8>,
    /// Number of live read ends.
    pub readers: u32,
    /// Number of live write ends.
    pub writers: u32,
}

impl Pipe {
    /// A fresh pipe with one reader and one writer.
    pub fn new() -> Self {
        Self {
            buf: std::collections::VecDeque::new(),
            readers: 1,
            writers: 1,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes up to capacity; returns bytes accepted (0 = would block).
    pub fn write(&mut self, data: &[u8]) -> usize {
        let room = PIPE_CAPACITY - self.buf.len();
        let n = room.min(data.len());
        self.buf.extend(&data[..n]);
        n
    }

    /// Reads up to `len` bytes; returns them (empty = would block or EOF).
    pub fn read(&mut self, len: usize) -> Vec<u8> {
        let n = len.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Writes up to capacity without a source buffer; the length-only twin
    /// of [`Self::write`] for payloads that are never inspected (the
    /// drained bytes read back as zeros, exactly what the zero buffers the
    /// callers historically materialized would have carried).
    pub fn write_zeros(&mut self, len: usize) -> usize {
        let room = PIPE_CAPACITY - self.buf.len();
        let n = room.min(len);
        self.buf.resize(self.buf.len() + n, 0);
        n
    }

    /// Drains up to `len` bytes without returning them; the length-only
    /// twin of [`Self::read`] for callers that discard the data.
    pub fn discard(&mut self, len: usize) -> usize {
        let n = len.min(self.buf.len());
        self.buf.drain(..n);
        n
    }

    /// EOF condition: no writers and drained.
    pub fn at_eof(&self) -> bool {
        self.writers == 0 && self.buf.is_empty()
    }
}

/// The pipe table.
#[derive(Debug, Clone, Default)]
pub struct PipeTable {
    pipes: HashMap<u32, Pipe>,
    next_id: u32,
}

impl PipeTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipe, returning its id.
    pub fn create(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.pipes.insert(id, Pipe::new());
        id
    }

    /// Looks up a pipe.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut Pipe> {
        self.pipes.get_mut(&id)
    }

    /// Drops an end; removes the pipe when both sides are gone.
    pub fn close_end(&mut self, id: u32, write_end: bool) {
        let remove = if let Some(p) = self.pipes.get_mut(&id) {
            if write_end {
                p.writers = p.writers.saturating_sub(1);
            } else {
                p.readers = p.readers.saturating_sub(1);
            }
            p.readers == 0 && p.writers == 0
        } else {
            false
        };
        if remove {
            self.pipes.remove(&id);
        }
    }

    /// Duplicates an end (fork inherits fds).
    pub fn dup_end(&mut self, id: u32, write_end: bool) {
        if let Some(p) = self.pipes.get_mut(&id) {
            if write_end {
                p.writers += 1;
            } else {
                p.readers += 1;
            }
        }
    }

    /// Live pipe count.
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    /// True when no pipes exist.
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramfs_crud() {
        let mut fs = RamFs::new();
        fs.create("/etc/passwd", b"root:x:0:0".to_vec());
        assert!(fs.exists("/etc/passwd"));
        let st = fs.stat("/etc/passwd").unwrap();
        assert_eq!(st.size, 10);
        assert_eq!(fs.read("/etc/passwd", 5, 100).unwrap(), b"x:0:0");
        fs.write("/etc/passwd", 10, b"!").unwrap();
        assert_eq!(fs.stat("/etc/passwd").unwrap().size, 11);
        assert!(fs.unlink("/etc/passwd"));
        assert!(!fs.exists("/etc/passwd"));
        assert_eq!(fs.stat("/nope"), None);
    }

    #[test]
    fn ramfs_read_past_end() {
        let mut fs = RamFs::new();
        fs.create("f", b"abc".to_vec());
        assert_eq!(fs.read("f", 2, 10).unwrap(), b"c");
        assert_eq!(fs.read("f", 5, 10).unwrap(), b"");
    }

    #[test]
    fn inodes_are_unique() {
        let mut fs = RamFs::new();
        fs.create("a", vec![]);
        fs.create("b", vec![]);
        assert_ne!(fs.stat("a").unwrap().ino, fs.stat("b").unwrap().ino);
    }

    #[test]
    fn pipe_fifo_order_and_capacity() {
        let mut p = Pipe::new();
        assert_eq!(p.write(b"hello"), 5);
        assert_eq!(p.read(2), b"he");
        assert_eq!(p.read(10), b"llo");
        assert!(p.is_empty());
        // Capacity bound.
        let big = vec![0u8; PIPE_CAPACITY + 10];
        assert_eq!(p.write(&big), PIPE_CAPACITY);
        assert_eq!(p.write(b"x"), 0, "full pipe accepts nothing");
    }

    #[test]
    fn pipe_table_lifecycle() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.len(), 1);
        t.dup_end(id, true); // forked writer
        t.close_end(id, true);
        t.close_end(id, false);
        assert_eq!(t.len(), 1, "one writer still alive");
        t.close_end(id, true);
        assert!(t.is_empty());
    }

    #[test]
    fn pipe_eof() {
        let mut p = Pipe::new();
        p.write(b"x");
        p.writers = 0;
        assert!(!p.at_eof());
        p.read(1);
        assert!(p.at_eof());
    }
}
