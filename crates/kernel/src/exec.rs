//! Deterministic threaded hart execution.
//!
//! Real SMP silicon runs harts concurrently; the cycle model's accounting is
//! a single shared `Kernel`. This module reconciles the two with a
//! **logical-time turnstile**: each hart's serve loop runs on its own host
//! OS thread, but entry into the shared kernel is granted in the canonical
//! hart order (the same order the single-threaded driver used), so modeled
//! cycles, stats, trace events, and security verdicts are byte-identical at
//! any host thread count — the property `check.sh` pins with a `cmp` gate
//! and the `threaded_differential` suite proves at 1/2/4 harts.
//!
//! The merge rule: a hart turn's effects are ordered by the turn index
//! (logical time); cross-hart messages inside a turn are stamped with the
//! sender's machine-cycle total and merged `(time, from, seq)` when the
//! receiving hart next holds the turnstile (see [`crate::hart::HartMsg`]).
//! Because the turnstile admits one hart at a time, that merge is a total
//! order no host scheduler can perturb.
//!
//! This module deliberately contains **no raw atomics** — synchronisation is
//! a mutex + condvar pair. The only raw-atomic code in the workspace lives
//! in the process table (`atomics-confinement` lint rule).

use std::sync::{Condvar, Mutex, OnceLock};

/// Explicit host-thread-count override (set by `reproduce --host-threads`).
static HOST_THREADS: OnceLock<usize> = OnceLock::new();

/// Environment variable consulted when no explicit override is set.
pub const HOST_THREADS_ENV: &str = "PTSTORE_HOST_THREADS";

/// Sets the process-wide host thread count for threaded hart execution.
/// First caller wins; later calls are ignored (the count must not change
/// mid-run).
pub fn set_host_threads(n: usize) {
    let _ = HOST_THREADS.set(n.max(1));
}

/// Host threads to carry hart loops on: the explicit override, else
/// `PTSTORE_HOST_THREADS`, else 1 (single-threaded).
pub fn host_threads() -> usize {
    if let Some(&n) = HOST_THREADS.get() {
        return n;
    }
    std::env::var(HOST_THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Runs `turns` sequential turns of `f` over exclusive state, carrying them
/// on up to `host_threads` real OS threads. Turn `t` runs to completion
/// before turn `t + 1` starts (the logical-time turnstile), so the result
/// is byte-identical to the sequential loop — with threads, each turn
/// executes on the thread that owns it (round-robin), exchanging the baton
/// through a condvar.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins every worker first; a
/// poisoned turnstile aborts the remaining turns).
pub fn run_turns<S, R, F>(state: &mut S, turns: usize, host_threads: usize, f: F) -> Vec<R>
where
    S: Send + ?Sized,
    R: Send,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if host_threads <= 1 || turns <= 1 {
        return (0..turns).map(|t| f(state, t)).collect();
    }
    struct Baton<'a, S: ?Sized> {
        next: usize,
        state: &'a mut S,
    }
    let workers = host_threads.min(turns);
    let baton = Mutex::new(Baton { next: 0, state });
    let turnstile = Condvar::new();
    let results: Vec<Mutex<Option<R>>> = (0..turns).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let baton = &baton;
            let turnstile = &turnstile;
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let mut turn = w;
                while turn < turns {
                    let mut g = baton.lock().expect("turnstile");
                    while g.next != turn {
                        g = turnstile.wait(g).expect("turnstile");
                    }
                    let r = f(g.state, turn);
                    *results[turn].lock().expect("result slot") = Some(r);
                    g.next += 1;
                    turnstile.notify_all();
                    drop(g);
                    turn += workers;
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("turn ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turns_run_in_order_at_any_thread_count() {
        // The state mutation is order-sensitive (string append): identical
        // output at every thread count proves the turnstile serialises.
        let run = |threads: usize| {
            let mut log = String::new();
            let out = run_turns(&mut log, 5, threads, |log, t| {
                log.push_str(&format!("[{t}]"));
                t * 10
            });
            (log, out)
        };
        let (log1, out1) = run(1);
        assert_eq!(log1, "[0][1][2][3][4]");
        assert_eq!(out1, [0, 10, 20, 30, 40]);
        for threads in [2, 3, 8] {
            assert_eq!(
                run(threads),
                (log1.clone(), out1.clone()),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn zero_and_single_turn() {
        let mut n = 0u64;
        assert_eq!(run_turns(&mut n, 0, 4, |_, t| t), Vec::<usize>::new());
        assert_eq!(
            run_turns(&mut n, 1, 4, |n, _| {
                *n += 1;
                *n
            }),
            vec![1]
        );
    }

    #[test]
    fn env_default_is_single_threaded() {
        // No override set in this test binary: either the env var drives it
        // or the default is 1; both are >= 1.
        assert!(host_threads() >= 1);
    }
}
