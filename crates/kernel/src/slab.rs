//! Slab caches for small kernel objects.
//!
//! The kernel allocates (usually small) objects from slab caches; each cache
//! carries its own GFP flags and constructor. PTStore adds a token cache with
//! `GFP_PTSTORE` so the tokens themselves live in the secure region, and a
//! constructor that zero-initialises every new token (paper §IV-C3).

use std::collections::HashMap;

use ptstore_core::{PhysAddr, PhysPageNum, PAGE_SIZE};

use crate::zones::GfpFlags;

/// Objects a per-hart magazine holds before overflowing to the shared
/// bookkeeping (a small LIFO keeps the hot-reuse window tight).
pub const MAGAZINE_CAP: usize = 16;

/// A slab page and its object-occupancy bitmap.
#[derive(Debug, Clone)]
struct SlabPage {
    ppn: PhysPageNum,
    /// One bit per object slot; set = allocated.
    used: Vec<bool>,
    used_count: usize,
}

/// A fixed-object-size slab cache.
///
/// The cache does not own a page allocator; `alloc` takes a page-source
/// closure so the kernel can route the request through its zones (and charge
/// cycles / run constructors through the proper access channel).
#[derive(Debug, Clone)]
pub struct SlabCache {
    name: &'static str,
    object_size: u64,
    objects_per_page: usize,
    gfp: GfpFlags,
    pages: Vec<SlabPage>,
    /// Object physical address → (page index, slot).
    index: HashMap<u64, (usize, usize)>,
    free_objects: usize,
    /// Per-hart LIFO front-end magazines (the percpu-cache analogue):
    /// cached objects stay *marked used* in the shared bookkeeping, so a
    /// magazine hit touches no page bitmap at all. Grown on demand; empty
    /// unless the kernel's `alloc_magazines` knob routes frees here.
    magazines: Vec<Vec<u64>>,
}

impl SlabCache {
    /// A cache of `object_size`-byte objects allocated with `gfp`.
    ///
    /// # Panics
    /// Panics unless `8 <= object_size <= PAGE_SIZE` and it divides the page
    /// size evenly.
    pub fn new(name: &'static str, object_size: u64, gfp: GfpFlags) -> Self {
        assert!(
            (8..=PAGE_SIZE).contains(&object_size) && PAGE_SIZE.is_multiple_of(object_size),
            "object size must divide the page size"
        );
        Self {
            name,
            object_size,
            objects_per_page: (PAGE_SIZE / object_size) as usize,
            gfp,
            pages: Vec::new(),
            index: HashMap::new(),
            free_objects: 0,
            magazines: Vec::new(),
        }
    }

    /// Cache name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Object size in bytes.
    pub fn object_size(&self) -> u64 {
        self.object_size
    }

    /// The cache's GFP flags (the token cache carries `GFP_PTSTORE`).
    pub fn gfp(&self) -> GfpFlags {
        self.gfp
    }

    /// Number of backing pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Currently free object slots.
    pub fn free_objects(&self) -> usize {
        self.free_objects
    }

    /// Allocates one object, growing the cache via `page_source` when empty.
    /// Returns the object's physical address and whether a new backing page
    /// was taken (so the caller can charge allocation costs and run the
    /// constructor over it).
    ///
    /// # Errors
    /// Propagates the page source's failure as `None`.
    pub fn alloc<E>(
        &mut self,
        mut page_source: impl FnMut(GfpFlags) -> Result<PhysPageNum, E>,
    ) -> Result<(PhysAddr, bool), E> {
        let mut grew = false;
        if self.free_objects == 0 {
            let ppn = page_source(self.gfp)?;
            self.pages.push(SlabPage {
                ppn,
                used: vec![false; self.objects_per_page],
                used_count: 0,
            });
            self.free_objects += self.objects_per_page;
            grew = true;
        }
        let (pi, page) = self
            .pages
            .iter_mut()
            .enumerate()
            .find(|(_, p)| p.used_count < p.used.len())
            .expect("free_objects > 0 implies a page with space");
        let slot = page.used.iter().position(|&u| !u).expect("slot available");
        page.used[slot] = true;
        page.used_count += 1;
        self.free_objects -= 1;
        let addr = PhysAddr::new(page.ppn.base_addr().as_u64() + slot as u64 * self.object_size);
        self.index.insert(addr.as_u64(), (pi, slot));
        Ok((addr, grew))
    }

    /// Frees one object. Empty backing pages are *retained* (like a slab
    /// cache keeping partial slabs warm); [`Self::shrink`] releases them.
    ///
    /// # Panics
    /// Panics on a double free or an address not from this cache.
    pub fn free(&mut self, addr: PhysAddr) {
        let (pi, slot) = self
            .index
            .remove(&addr.as_u64())
            .expect("free of object not allocated from this cache");
        let page = &mut self.pages[pi];
        assert!(page.used[slot], "double free in slab cache");
        page.used[slot] = false;
        page.used_count -= 1;
        self.free_objects += 1;
    }

    /// True when `addr` is a live object of this cache.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.index.contains_key(&addr.as_u64())
    }

    /// Caches a (still-allocated) object in `hart`'s magazine instead of
    /// freeing it. Returns `false` when the magazine is full — the caller
    /// must then perform the real [`Self::free`].
    ///
    /// # Panics
    /// Panics when `addr` is not a live object of this cache.
    pub fn magazine_put(&mut self, hart: usize, addr: PhysAddr) -> bool {
        assert!(
            self.contains(addr),
            "magazine put of object not allocated from this cache"
        );
        if hart >= self.magazines.len() {
            self.magazines.resize_with(hart + 1, Vec::new);
        }
        let mag = &mut self.magazines[hart];
        if mag.len() >= MAGAZINE_CAP {
            return false;
        }
        mag.push(addr.as_u64());
        true
    }

    /// Pops the most recently cached object from `hart`'s magazine, if any.
    /// The object never left the shared bookkeeping, so this touches no
    /// page bitmap — the O(1) fast path.
    pub fn magazine_get(&mut self, hart: usize) -> Option<PhysAddr> {
        self.magazines
            .get_mut(hart)
            .and_then(Vec::pop)
            .map(PhysAddr::new)
    }

    /// Objects currently parked across all magazines.
    pub fn magazine_objects(&self) -> usize {
        self.magazines.iter().map(Vec::len).sum()
    }

    /// Appends the cache's full allocation-steering state to `out` in
    /// deterministic order: each backing page's ppn followed by its packed
    /// occupancy bitmap (slot order), then each hart magazine's cached
    /// addresses in LIFO order. Two caches that emit the same words hand
    /// out the same addresses for every future alloc/free sequence —
    /// the property the model checker's canonical state digest needs.
    pub fn canon_words(&self, out: &mut Vec<u64>) {
        // Length prefixes make the flat word stream unambiguous: equal
        // streams imply equal structure, not just equal concatenation.
        out.push(self.pages.len() as u64);
        for page in &self.pages {
            out.push(page.ppn.as_u64());
            let mut word = 0u64;
            for (slot, &used) in page.used.iter().enumerate() {
                if used {
                    word |= 1 << (slot % 64);
                }
                if slot % 64 == 63 {
                    out.push(word);
                    word = 0;
                }
            }
            if !page.used.len().is_multiple_of(64) {
                out.push(word);
            }
        }
        out.push(self.magazines.len() as u64);
        for mag in &self.magazines {
            out.push(mag.len() as u64);
            out.extend(mag.iter().copied());
        }
    }

    /// Returns every magazine-cached object to the shared bookkeeping (a
    /// real free each). Must run before [`Self::shrink`], which otherwise
    /// sees magazine-held objects as live and retains their pages.
    pub fn flush_magazines(&mut self) -> usize {
        let cached: Vec<u64> = self.magazines.iter_mut().flat_map(std::mem::take).collect();
        let n = cached.len();
        for addr in cached {
            self.free(PhysAddr::new(addr));
        }
        n
    }

    /// Releases completely empty backing pages back through `release_page`,
    /// returning how many were released.
    pub fn shrink(&mut self, mut release_page: impl FnMut(PhysPageNum)) -> usize {
        let mut released = 0;
        let mut i = 0;
        while i < self.pages.len() {
            if self.pages[i].used_count == 0 {
                let page = self.pages.swap_remove(i);
                self.free_objects -= self.objects_per_page;
                release_page(page.ppn);
                released += 1;
                // swap_remove moved the last page into slot i: fix the index
                // entries referring to it.
                if i < self.pages.len() {
                    let moved_from = self.pages.len(); // old index of the moved page
                    for (_, loc) in self.index.iter_mut() {
                        if loc.0 == moved_from {
                            loc.0 = i;
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_source() -> impl FnMut(GfpFlags) -> Result<PhysPageNum, ()> {
        let mut next = 0x200u64;
        move |_| {
            let p = PhysPageNum::new(next);
            next += 1;
            Ok(p)
        }
    }

    #[test]
    fn token_sized_cache_packs_256_per_page() {
        let mut cache = SlabCache::new("ptstore_token", 16, GfpFlags::PTSTORE);
        let mut src = page_source();
        let (first, grew) = cache.alloc(&mut src).unwrap();
        assert!(grew);
        assert_eq!(cache.page_count(), 1);
        // 255 more allocations fit in the same page.
        for _ in 0..255 {
            let (_, grew) = cache.alloc(&mut src).unwrap();
            assert!(!grew);
        }
        assert_eq!(cache.page_count(), 1);
        let (_, grew) = cache.alloc(&mut src).unwrap();
        assert!(grew, "257th object needs a second page");
        assert_eq!(first.as_u64() % 16, 0);
    }

    #[test]
    fn objects_are_distinct_and_aligned() {
        let mut cache = SlabCache::new("pcb", 256, GfpFlags::KERNEL);
        let mut src = page_source();
        let mut addrs = Vec::new();
        for _ in 0..20 {
            addrs.push(cache.alloc(&mut src).unwrap().0);
        }
        let mut dedup = addrs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), addrs.len());
        assert!(addrs.iter().all(|a| a.as_u64() % 256 == 0));
    }

    #[test]
    fn free_and_reuse() {
        let mut cache = SlabCache::new("t", 512, GfpFlags::KERNEL);
        let mut src = page_source();
        let (a, _) = cache.alloc(&mut src).unwrap();
        assert!(cache.contains(a));
        cache.free(a);
        assert!(!cache.contains(a));
        let (b, grew) = cache.alloc(&mut src).unwrap();
        assert!(!grew, "freed slot is reused");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not allocated from this cache")]
    fn double_free_panics() {
        let mut cache = SlabCache::new("t", 512, GfpFlags::KERNEL);
        let mut src = page_source();
        let (a, _) = cache.alloc(&mut src).unwrap();
        cache.free(a);
        cache.free(a);
    }

    #[test]
    fn magazines_cache_and_flush() {
        let mut cache = SlabCache::new("pcb", 256, GfpFlags::KERNEL);
        let mut src = page_source();
        let (a, _) = cache.alloc(&mut src).unwrap();
        let (b, _) = cache.alloc(&mut src).unwrap();
        // Cached objects stay "used" in the shared bookkeeping.
        assert!(cache.magazine_put(0, a));
        assert!(cache.magazine_put(1, b));
        assert!(cache.contains(a) && cache.contains(b));
        assert_eq!(cache.magazine_objects(), 2);
        // LIFO hit returns the hart's own object without touching bitmaps.
        assert_eq!(cache.magazine_get(0), Some(a));
        assert_eq!(cache.magazine_get(0), None, "hart 0 magazine drained");
        // A full magazine rejects the put; the caller falls back to free().
        for _ in 0..MAGAZINE_CAP {
            let (x, _) = cache.alloc(&mut src).unwrap();
            assert!(cache.magazine_put(2, x));
        }
        let (overflow, _) = cache.alloc(&mut src).unwrap();
        assert!(!cache.magazine_put(2, overflow));
        cache.free(overflow);
        // Flush performs the real frees so shrink can release pages.
        let flushed = cache.flush_magazines();
        assert_eq!(flushed, MAGAZINE_CAP + 1);
        assert_eq!(cache.magazine_objects(), 0);
        cache.free(a);
        let mut released = Vec::new();
        cache.shrink(|p| released.push(p));
        assert_eq!(cache.free_objects(), 0, "all empty pages released");
    }

    #[test]
    fn shrink_releases_empty_pages() {
        let mut cache = SlabCache::new("t", 2048, GfpFlags::KERNEL);
        let mut src = page_source();
        let (a, _) = cache.alloc(&mut src).unwrap();
        let (b, _) = cache.alloc(&mut src).unwrap();
        let (c, _) = cache.alloc(&mut src).unwrap(); // second page
        cache.free(a);
        cache.free(b);
        let mut released = Vec::new();
        let n = cache.shrink(|p| released.push(p));
        assert_eq!(n, 1);
        assert_eq!(cache.page_count(), 1);
        // The object on the second page is still tracked correctly.
        assert!(cache.contains(c));
        cache.free(c);
    }
}
