//! The buddy allocator and memory zones.
//!
//! The Linux kernel manages physical pages per zone with a buddy system and
//! routes allocation requests via GFP flags. PTStore adds a **PTStore zone**
//! at the high physical addresses plus a **`GFP_PTSTORE`** flag requesting
//! pages from only that zone (paper §IV-C1). The zone is backed by the PMP
//! secure region, so both must stay contiguous; dynamic adjustment reserves
//! contiguous pages adjacent to the boundary from the normal zone
//! (`alloc_contig_range`), migrates any movable occupants, and hands the
//! range over.
//!
//! Free blocks are tracked per order in `BlockSet`s — hierarchical bitmaps
//! giving O(1) insert/remove/membership and O(1) lowest-address selection —
//! replacing the original `BTreeSet` free lists whose every hot-path
//! operation paid a logarithmic tree walk plus per-node allocation. The
//! original implementation is preserved verbatim in [`mod@reference`] and the
//! two are proven behavior-identical by a differential property test
//! (`tests/buddy_differential.rs`): same traces, same errors, same
//! addresses.

use std::collections::HashMap;

use core::fmt;

use ptstore_core::PhysPageNum;
use serde::{Deserialize, Serialize};

/// Largest buddy order (2^10 pages = 4 MiB blocks, as in Linux).
pub const MAX_ORDER: u8 = 10;

/// GFP-style allocation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct GfpFlags(u8);

impl GfpFlags {
    /// Plain kernel allocation from the normal zone.
    pub const KERNEL: GfpFlags = GfpFlags(0);
    /// Allocate from the PTStore zone only (paper §IV-C1).
    pub const PTSTORE: GfpFlags = GfpFlags(1 << 0);
    /// Zero the page before returning it.
    pub const ZERO: GfpFlags = GfpFlags(1 << 1);
    /// The allocation is movable (user data; migration candidates).
    pub const MOVABLE: GfpFlags = GfpFlags(1 << 2);

    /// Flag union.
    pub const fn union(self, other: GfpFlags) -> GfpFlags {
        GfpFlags(self.0 | other.0)
    }

    /// True when `other`'s bits are all set.
    pub const fn contains(self, other: GfpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl core::ops::BitOr for GfpFlags {
    type Output = GfpFlags;
    fn bitor(self, rhs: GfpFlags) -> GfpFlags {
        self.union(rhs)
    }
}

/// Bookkeeping for an allocated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocInfo {
    /// Buddy order of the block.
    pub order: u8,
    /// True when the block may be migrated (user data pages).
    pub movable: bool,
}

/// Errors from the buddy allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// No block of the requested order (after splitting) is available.
    OutOfMemory,
    /// `reserve_range` hit an immovable allocation.
    Unmovable {
        /// The pinned page.
        ppn: PhysPageNum,
    },
    /// Range arguments fall outside the zone.
    OutOfZone,
    /// Double free or free of an unallocated page.
    BadFree {
        /// The offending page.
        ppn: PhysPageNum,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("zone out of memory"),
            AllocError::Unmovable { ppn } => write!(f, "unmovable page {ppn} in range"),
            AllocError::OutOfZone => f.write_str("range outside zone"),
            AllocError::BadFree { ppn } => write!(f, "bad free of page {ppn}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Result of `reserve_range`: the pages now held for the caller plus the
/// occupants that must be migrated before the range is truly empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeReservation {
    /// First page of the range.
    pub start: PhysPageNum,
    /// Page count.
    pub count: u64,
    /// Allocated blocks inside the range that need migration
    /// (block start page and its info).
    pub to_migrate: Vec<(PhysPageNum, AllocInfo)>,
    /// How many pages were free and claimed directly.
    pub claimed_free: u64,
}

/// The free "list" of one buddy order: a hierarchical bitmap over block
/// indices (`start >> order`). Set bits are free blocks; the bit itself is
/// the list node, so membership changes allocate nothing (the intrusive
/// property of Linux's `struct free_area` lists) while lowest-address
/// selection — which an intrusive list cannot answer in O(1) — descends one
/// word per summary level. Word counts shrink 64× per level and the top
/// level is at most 64 words, so every operation is constant-time for any
/// realistic zone.
#[derive(Debug, Clone, Default)]
struct BlockSet {
    /// `levels[0]` holds one bit per block index; `levels[k + 1]` holds one
    /// bit per *word* of `levels[k]` (set iff that word is non-zero).
    levels: Vec<Vec<u64>>,
    /// Number of set bits.
    len: u64,
}

impl BlockSet {
    /// An empty set able to hold indices `0..indices`.
    fn with_capacity(indices: u64) -> Self {
        let mut levels = Vec::new();
        let mut words = indices.div_ceil(64).max(1) as usize;
        levels.push(vec![0u64; words]);
        while words > 64 {
            words = words.div_ceil(64);
            levels.push(vec![0u64; words]);
        }
        Self { levels, len: 0 }
    }

    /// Inserts `idx`; false when it was already present.
    fn insert(&mut self, idx: u64) -> bool {
        let (w, b) = ((idx / 64) as usize, idx % 64);
        if self.levels[0][w] >> b & 1 == 1 {
            return false;
        }
        self.levels[0][w] |= 1 << b;
        self.len += 1;
        let mut bit = idx;
        for lvl in 1..self.levels.len() {
            bit /= 64;
            self.levels[lvl][(bit / 64) as usize] |= 1 << (bit % 64);
        }
        true
    }

    /// Removes `idx`; false when it was not present.
    fn remove(&mut self, idx: u64) -> bool {
        let (w, b) = ((idx / 64) as usize, idx % 64);
        match self.levels[0].get(w) {
            Some(word) if word >> b & 1 == 1 => {}
            _ => return false,
        }
        self.levels[0][w] &= !(1 << b);
        self.len -= 1;
        let mut bit = idx;
        for lvl in 1..self.levels.len() {
            // Summaries above an emptied word lose their bit; a still
            // non-empty word leaves every summary unchanged.
            if self.levels[lvl - 1][(bit / 64) as usize] != 0 {
                break;
            }
            bit /= 64;
            self.levels[lvl][(bit / 64) as usize] &= !(1 << (bit % 64));
        }
        true
    }

    /// True when `idx` is present.
    fn contains(&self, idx: u64) -> bool {
        let (w, b) = ((idx / 64) as usize, idx % 64);
        matches!(self.levels[0].get(w), Some(word) if word >> b & 1 == 1)
    }

    /// The lowest present index: scan the (≤ 64-word) top level, then
    /// descend one word per level via find-first-set.
    fn first(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let top = self.levels.len() - 1;
        let w = self.levels[top].iter().position(|&x| x != 0)?;
        let mut bit = w as u64 * 64 + self.levels[top][w].trailing_zeros() as u64;
        for lvl in (0..top).rev() {
            let word = self.levels[lvl][bit as usize];
            debug_assert_ne!(word, 0, "summary bit over an empty word");
            bit = bit * 64 + word.trailing_zeros() as u64;
        }
        Some(bit)
    }

    /// Every present index in ascending order (invariant checking and
    /// canonical-state digests). Zero words — the overwhelming majority in
    /// a mostly-coalesced zone — are skipped wholesale.
    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.levels[0]
            .iter()
            .enumerate()
            .filter(|&(_, &word)| word != 0)
            .flat_map(|(w, &word)| {
                (0..64)
                    .filter(move |b| word >> b & 1 == 1)
                    .map(move |b| w as u64 * 64 + b)
            })
    }
}

/// One buddy-managed zone covering the contiguous page interval
/// `[base_ppn, end_ppn)`.
#[derive(Debug, Clone)]
pub struct BuddyZone {
    name: &'static str,
    base_ppn: u64,
    end_ppn: u64,
    /// `free[order]` holds the free blocks of that order, indexed by
    /// `start >> order` (block starts are naturally aligned).
    free: Vec<BlockSet>,
    allocated: HashMap<u64, AllocInfo>,
    free_pages: u64,
}

impl BuddyZone {
    /// A zone over `pages` pages starting at `base`.
    ///
    /// The bitmap capacity is sized to the zone's initial end; the end only
    /// ever moves down ([`Self::shrink_top`]) and the base only ever moves
    /// down ([`Self::grow_bottom`]), so the initial end bounds every index
    /// for the zone's lifetime.
    ///
    /// # Panics
    /// Panics on an empty zone.
    pub fn new(name: &'static str, base: PhysPageNum, pages: u64) -> Self {
        assert!(pages > 0, "zone must be non-empty");
        let end = base.as_u64() + pages;
        let mut zone = Self {
            name,
            base_ppn: base.as_u64(),
            end_ppn: end,
            free: (0..=MAX_ORDER)
                .map(|o| BlockSet::with_capacity((end >> o) + 1))
                .collect(),
            allocated: HashMap::new(),
            free_pages: 0,
        };
        zone.insert_free_run(base.as_u64(), pages);
        zone
    }

    /// Zone name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// First page of the zone.
    pub fn base(&self) -> PhysPageNum {
        PhysPageNum::new(self.base_ppn)
    }

    /// One past the last page of the zone.
    pub fn end(&self) -> PhysPageNum {
        PhysPageNum::new(self.end_ppn)
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Total pages spanned.
    pub fn total_pages(&self) -> u64 {
        self.end_ppn - self.base_ppn
    }

    /// True when `ppn` lies inside the zone interval.
    pub fn contains(&self, ppn: PhysPageNum) -> bool {
        (self.base_ppn..self.end_ppn).contains(&ppn.as_u64())
    }

    fn insert_free_run(&mut self, mut start: u64, mut len: u64) {
        // Greedy decomposition into maximal naturally aligned buddy blocks.
        while len > 0 {
            let align_order = start.trailing_zeros().min(MAX_ORDER as u32) as u8;
            let len_order = (63 - len.leading_zeros()).min(MAX_ORDER as u32) as u8;
            let order = align_order.min(len_order);
            self.free[order as usize].insert(start >> order);
            let block = 1u64 << order;
            start += block;
            len -= block;
            self.free_pages += block;
        }
    }

    /// Allocates a block of `2^order` pages.
    ///
    /// # Errors
    /// [`AllocError::OutOfMemory`] when no block can satisfy the request.
    pub fn alloc(&mut self, order: u8, movable: bool) -> Result<PhysPageNum, AllocError> {
        assert!(order <= MAX_ORDER);
        // Prefer the lowest-address eligible block across all orders. This
        // keeps the top of the zone free, which is where secure-region
        // adjustment reserves its contiguous ranges (the Linux analogue is
        // steering unmovable allocations away from CMA/movable pageblocks).
        // One find-first-set per order replaces the old per-order BTree
        // walk; ties on start cannot occur (overlapping blocks are never
        // simultaneously free) and the lowest order is visited first, which
        // matches the reference implementation's strict-less preference.
        let mut best: Option<(u8, u64)> = None;
        for o in order..=MAX_ORDER {
            if let Some(idx) = self.free[o as usize].first() {
                let s = idx << o;
                if best.is_none_or(|(_, bs)| s < bs) {
                    best = Some((o, s));
                }
            }
        }
        let Some((mut o, start)) = best else {
            return Err(AllocError::OutOfMemory);
        };
        self.free[o as usize].remove(start >> o);
        // Split down to the requested order.
        while o > order {
            o -= 1;
            let buddy = start + (1u64 << o);
            self.free[o as usize].insert(buddy >> o);
        }
        self.free_pages -= 1u64 << order;
        self.allocated.insert(start, AllocInfo { order, movable });
        Ok(PhysPageNum::new(start))
    }

    /// Frees a previously allocated block, coalescing with free buddies.
    ///
    /// # Errors
    /// [`AllocError::BadFree`] when `ppn` is not an allocated block start.
    pub fn free(&mut self, ppn: PhysPageNum) -> Result<(), AllocError> {
        let start = ppn.as_u64();
        let Some(info) = self.allocated.remove(&start) else {
            return Err(AllocError::BadFree { ppn });
        };
        self.free_pages += 1u64 << info.order;
        let mut start = start;
        let mut order = info.order;
        while order < MAX_ORDER {
            let buddy = start ^ (1u64 << order);
            // Buddy must be wholly inside the zone and free at this order.
            if buddy < self.base_ppn
                || buddy + (1u64 << order) > self.end_ppn
                || !self.free[order as usize].remove(buddy >> order)
            {
                break;
            }
            start = start.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(start >> order);
        Ok(())
    }

    /// Looks up allocation info of a block start.
    pub fn alloc_info(&self, ppn: PhysPageNum) -> Option<AllocInfo> {
        self.allocated.get(&ppn.as_u64()).copied()
    }

    /// The Linux `split_page()` model: converts one allocated block of
    /// `2^order` pages into `2^order` independently tracked order-0
    /// allocations (same movability), so the pages can afterwards be freed
    /// one at a time. The kernel uses this when a huge user mapping is
    /// split into 4 KiB mappings over the same physical pages. Returns the
    /// page count of the split block.
    ///
    /// # Errors
    /// [`AllocError::BadFree`] when `ppn` is not an allocated block start.
    pub fn split_allocation(&mut self, ppn: PhysPageNum) -> Result<u64, AllocError> {
        let start = ppn.as_u64();
        let Some(info) = self.allocated.remove(&start) else {
            return Err(AllocError::BadFree { ppn });
        };
        let pages = 1u64 << info.order;
        for i in 0..pages {
            self.allocated.insert(
                start + i,
                AllocInfo {
                    order: 0,
                    movable: info.movable,
                },
            );
        }
        Ok(pages)
    }

    /// The Linux `alloc_contig_range` model: reserves the exact page range
    /// `[start, start + count)`, claiming free pages and reporting allocated
    /// *movable* blocks for the caller to migrate (then
    /// [`Self::complete_migration`] each). Fails without side effects when an
    /// immovable block overlaps the range.
    ///
    /// # Errors
    /// [`AllocError::OutOfZone`] or [`AllocError::Unmovable`].
    pub fn reserve_range(
        &mut self,
        start: PhysPageNum,
        count: u64,
    ) -> Result<RangeReservation, AllocError> {
        let s = start.as_u64();
        let e = s + count;
        if s < self.base_ppn || e > self.end_ppn {
            return Err(AllocError::OutOfZone);
        }
        // Pass 1: every page must be free, or inside a movable allocated
        // block. Collect the overlapping allocated block starts.
        let mut to_migrate: Vec<(PhysPageNum, AllocInfo)> = Vec::new();
        {
            let mut p = s;
            while p < e {
                if let Some((block, info)) = self.find_block_containing(p) {
                    if !info.movable {
                        return Err(AllocError::Unmovable {
                            ppn: PhysPageNum::new(p),
                        });
                    }
                    to_migrate.push((PhysPageNum::new(block), info));
                    p = block + (1u64 << info.order);
                } else if let Some((fstart, forder)) = self.find_free_block_containing(p) {
                    p = fstart + (1u64 << forder);
                } else {
                    // Page belongs to neither a free nor an allocated block:
                    // inconsistent state.
                    unreachable!("page {p:#x} untracked in zone {}", self.name);
                }
            }
        }
        // Pass 2: claim the free blocks overlapping the range. Blocks that
        // straddle the boundary are split so the outside part stays free.
        let mut claimed_free = 0u64;
        let mut p = s;
        while p < e {
            if let Some((block, info)) = self.find_block_containing(p) {
                p = block + (1u64 << info.order);
                continue;
            }
            let (fstart, forder) = self
                .find_free_block_containing(p)
                .expect("verified in pass 1");
            self.free[forder as usize].remove(fstart >> forder);
            let fend = fstart + (1u64 << forder);
            // Keep the parts outside [s, e) free.
            if fstart < s {
                self.insert_free_run_nocount(fstart, s - fstart);
            }
            if fend > e {
                self.insert_free_run_nocount(e, fend - e);
            }
            let inside = fend.min(e) - fstart.max(s);
            self.free_pages -= inside;
            claimed_free += inside;
            p = fend;
        }
        Ok(RangeReservation {
            start,
            count,
            to_migrate,
            claimed_free,
        })
    }

    fn insert_free_run_nocount(&mut self, mut start: u64, mut len: u64) {
        while len > 0 {
            let align_order = start.trailing_zeros().min(MAX_ORDER as u32) as u8;
            let len_order = (63 - len.leading_zeros()).min(MAX_ORDER as u32) as u8;
            let order = align_order.min(len_order);
            self.free[order as usize].insert(start >> order);
            let block = 1u64 << order;
            start += block;
            len -= block;
        }
    }

    /// Marks a migrated block as vacated (its pages join the reservation).
    ///
    /// # Errors
    /// [`AllocError::BadFree`] when `block` was not an allocated block.
    pub fn complete_migration(&mut self, block: PhysPageNum) -> Result<AllocInfo, AllocError> {
        self.allocated
            .remove(&block.as_u64())
            .ok_or(AllocError::BadFree { ppn: block })
    }

    /// Shrinks the zone by removing `count` pages from its top edge. The
    /// pages must have been reserved (they are no longer tracked).
    ///
    /// # Errors
    /// [`AllocError::OutOfZone`] when the zone is smaller than `count`.
    pub fn shrink_top(&mut self, count: u64) -> Result<PhysPageNum, AllocError> {
        if self.total_pages() <= count {
            return Err(AllocError::OutOfZone);
        }
        self.end_ppn -= count;
        Ok(PhysPageNum::new(self.end_ppn))
    }

    /// Grows the zone downward by `count` pages (the PTStore zone absorbing
    /// an adjusted range) and marks them free.
    ///
    /// # Panics
    /// Panics if the new range is not adjacent below the current base.
    pub fn grow_bottom(&mut self, count: u64) {
        assert!(count <= self.base_ppn, "grow_bottom underflow");
        let new_base = self.base_ppn - count;
        self.base_ppn = new_base;
        self.insert_free_run(new_base, count);
    }

    fn find_block_containing(&self, p: u64) -> Option<(u64, AllocInfo)> {
        // Allocated block starts are aligned to their order; scan candidate
        // alignments (MAX_ORDER+1 lookups).
        for order in 0..=MAX_ORDER {
            let cand = p & !((1u64 << order) - 1);
            if let Some(info) = self.allocated.get(&cand) {
                if info.order >= order && p < cand + (1u64 << info.order) {
                    return Some((cand, *info));
                }
            }
        }
        None
    }

    fn find_free_block_containing(&self, p: u64) -> Option<(u64, u8)> {
        for order in 0..=MAX_ORDER {
            let cand = p & !((1u64 << order) - 1);
            if self.free[order as usize].contains(cand >> order) {
                return Some((cand, order));
            }
        }
        None
    }

    /// Every free block as `(order, start page)`, ascending by order then
    /// start. Deterministic (the bitmap iterates in address order), so
    /// callers may fold it into canonical state digests — the bounded model
    /// checker fingerprints allocator state this way to keep dedup sound
    /// when op interleavings leave different free-list shapes behind.
    pub fn free_blocks(&self) -> impl Iterator<Item = (u8, PhysPageNum)> + '_ {
        self.free.iter().enumerate().flat_map(|(o, set)| {
            set.iter()
                .map(move |idx| (o as u8, PhysPageNum::new(idx << o)))
        })
    }

    /// Verifies internal invariants (used by property tests): free + allocated
    /// page counts add up to the zone span, and no block overlaps another.
    pub fn check_invariants(&self) -> bool {
        let mut covered: Vec<(u64, u64)> = Vec::new();
        for (o, set) in self.free.iter().enumerate() {
            let mut seen = 0u64;
            for idx in set.iter() {
                let s = idx << o;
                covered.push((s, s + (1u64 << o)));
                seen += 1;
            }
            if seen != set.len {
                return false;
            }
        }
        let free_sum: u64 = covered.iter().map(|(a, b)| b - a).sum();
        if free_sum != self.free_pages {
            return false;
        }
        for (&s, info) in &self.allocated {
            covered.push((s, s + (1u64 << info.order)));
        }
        covered.sort_unstable();
        covered.windows(2).all(|w| w[0].1 <= w[1].0)
            && covered
                .iter()
                .all(|&(a, b)| a >= self.base_ppn && b <= self.end_ppn)
    }
}

impl fmt::Display for BuddyZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "zone {} [{:#x}, {:#x}) free {}/{} pages",
            self.name,
            self.base_ppn,
            self.end_ppn,
            self.free_pages,
            self.total_pages()
        )
    }
}

pub mod reference {
    //! The original `BTreeSet`-free-list buddy zone, preserved as the
    //! reference model for the differential property test
    //! (`tests/buddy_differential.rs`). Behavior — block placement, split
    //! and coalesce decisions, every error — is the specification the
    //! bitmap-backed [`BuddyZone`](super::BuddyZone) must match trace for
    //! trace. Not used by the kernel at runtime.

    use std::collections::{BTreeSet, HashMap};

    use ptstore_core::PhysPageNum;

    use super::{AllocError, AllocInfo, RangeReservation, MAX_ORDER};

    /// The original zone: per-order `BTreeSet` free lists.
    #[derive(Debug, Clone)]
    pub struct BTreeBuddyZone {
        base_ppn: u64,
        end_ppn: u64,
        free_lists: Vec<BTreeSet<u64>>,
        allocated: HashMap<u64, AllocInfo>,
        free_pages: u64,
    }

    impl BTreeBuddyZone {
        /// A zone over `pages` pages starting at `base`.
        ///
        /// # Panics
        /// Panics on an empty zone.
        pub fn new(base: PhysPageNum, pages: u64) -> Self {
            assert!(pages > 0, "zone must be non-empty");
            let mut zone = Self {
                base_ppn: base.as_u64(),
                end_ppn: base.as_u64() + pages,
                free_lists: vec![BTreeSet::new(); MAX_ORDER as usize + 1],
                allocated: HashMap::new(),
                free_pages: 0,
            };
            zone.insert_free_run(base.as_u64(), pages);
            zone
        }

        /// Pages currently free.
        pub fn free_pages(&self) -> u64 {
            self.free_pages
        }

        /// Total pages spanned.
        pub fn total_pages(&self) -> u64 {
            self.end_ppn - self.base_ppn
        }

        fn insert_free_run(&mut self, mut start: u64, mut len: u64) {
            while len > 0 {
                let align_order = start.trailing_zeros().min(MAX_ORDER as u32) as u8;
                let len_order = (63 - len.leading_zeros()).min(MAX_ORDER as u32) as u8;
                let order = align_order.min(len_order);
                self.free_lists[order as usize].insert(start);
                let block = 1u64 << order;
                start += block;
                len -= block;
                self.free_pages += block;
            }
        }

        /// Allocates a block of `2^order` pages (lowest address across all
        /// eligible orders).
        ///
        /// # Errors
        /// [`AllocError::OutOfMemory`] when no block can satisfy the request.
        pub fn alloc(&mut self, order: u8, movable: bool) -> Result<PhysPageNum, AllocError> {
            assert!(order <= MAX_ORDER);
            let mut best: Option<(u8, u64)> = None;
            for o in order..=MAX_ORDER {
                if let Some(&s) = self.free_lists[o as usize].iter().next() {
                    if best.is_none_or(|(_, bs)| s < bs) {
                        best = Some((o, s));
                    }
                }
            }
            let Some((mut o, start)) = best else {
                return Err(AllocError::OutOfMemory);
            };
            self.free_lists[o as usize].remove(&start);
            while o > order {
                o -= 1;
                let buddy = start + (1u64 << o);
                self.free_lists[o as usize].insert(buddy);
            }
            self.free_pages -= 1u64 << order;
            self.allocated.insert(start, AllocInfo { order, movable });
            Ok(PhysPageNum::new(start))
        }

        /// Frees a previously allocated block, coalescing with free buddies.
        ///
        /// # Errors
        /// [`AllocError::BadFree`] when `ppn` is not an allocated block start.
        pub fn free(&mut self, ppn: PhysPageNum) -> Result<(), AllocError> {
            let start = ppn.as_u64();
            let Some(info) = self.allocated.remove(&start) else {
                return Err(AllocError::BadFree { ppn });
            };
            self.free_pages += 1u64 << info.order;
            let mut start = start;
            let mut order = info.order;
            while order < MAX_ORDER {
                let buddy = start ^ (1u64 << order);
                if buddy < self.base_ppn
                    || buddy + (1u64 << order) > self.end_ppn
                    || !self.free_lists[order as usize].remove(&buddy)
                {
                    break;
                }
                start = start.min(buddy);
                order += 1;
            }
            self.free_lists[order as usize].insert(start);
            Ok(())
        }

        /// Looks up allocation info of a block start.
        pub fn alloc_info(&self, ppn: PhysPageNum) -> Option<AllocInfo> {
            self.allocated.get(&ppn.as_u64()).copied()
        }

        /// `split_page()`: one allocated block becomes order-0 allocations.
        ///
        /// # Errors
        /// [`AllocError::BadFree`] when `ppn` is not an allocated block start.
        pub fn split_allocation(&mut self, ppn: PhysPageNum) -> Result<u64, AllocError> {
            let start = ppn.as_u64();
            let Some(info) = self.allocated.remove(&start) else {
                return Err(AllocError::BadFree { ppn });
            };
            let pages = 1u64 << info.order;
            for i in 0..pages {
                self.allocated.insert(
                    start + i,
                    AllocInfo {
                        order: 0,
                        movable: info.movable,
                    },
                );
            }
            Ok(pages)
        }

        /// `alloc_contig_range`: reserve `[start, start + count)`.
        ///
        /// # Errors
        /// [`AllocError::OutOfZone`] or [`AllocError::Unmovable`].
        pub fn reserve_range(
            &mut self,
            start: PhysPageNum,
            count: u64,
        ) -> Result<RangeReservation, AllocError> {
            let s = start.as_u64();
            let e = s + count;
            if s < self.base_ppn || e > self.end_ppn {
                return Err(AllocError::OutOfZone);
            }
            let mut to_migrate: Vec<(PhysPageNum, AllocInfo)> = Vec::new();
            {
                let mut p = s;
                while p < e {
                    if let Some((block, info)) = self.find_block_containing(p) {
                        if !info.movable {
                            return Err(AllocError::Unmovable {
                                ppn: PhysPageNum::new(p),
                            });
                        }
                        to_migrate.push((PhysPageNum::new(block), info));
                        p = block + (1u64 << info.order);
                    } else if let Some((fstart, forder)) = self.find_free_block_containing(p) {
                        p = fstart + (1u64 << forder);
                    } else {
                        unreachable!("page {p:#x} untracked in reference zone");
                    }
                }
            }
            let mut claimed_free = 0u64;
            let mut p = s;
            while p < e {
                if let Some((block, info)) = self.find_block_containing(p) {
                    p = block + (1u64 << info.order);
                    continue;
                }
                let (fstart, forder) = self
                    .find_free_block_containing(p)
                    .expect("verified in pass 1");
                self.free_lists[forder as usize].remove(&fstart);
                let fend = fstart + (1u64 << forder);
                if fstart < s {
                    self.insert_free_run_nocount(fstart, s - fstart);
                }
                if fend > e {
                    self.insert_free_run_nocount(e, fend - e);
                }
                let inside = fend.min(e) - fstart.max(s);
                self.free_pages -= inside;
                claimed_free += inside;
                p = fend;
            }
            Ok(RangeReservation {
                start,
                count,
                to_migrate,
                claimed_free,
            })
        }

        fn insert_free_run_nocount(&mut self, mut start: u64, mut len: u64) {
            while len > 0 {
                let align_order = start.trailing_zeros().min(MAX_ORDER as u32) as u8;
                let len_order = (63 - len.leading_zeros()).min(MAX_ORDER as u32) as u8;
                let order = align_order.min(len_order);
                self.free_lists[order as usize].insert(start);
                let block = 1u64 << order;
                start += block;
                len -= block;
            }
        }

        /// Marks a migrated block as vacated.
        ///
        /// # Errors
        /// [`AllocError::BadFree`] when `block` was not an allocated block.
        pub fn complete_migration(&mut self, block: PhysPageNum) -> Result<AllocInfo, AllocError> {
            self.allocated
                .remove(&block.as_u64())
                .ok_or(AllocError::BadFree { ppn: block })
        }

        /// Shrinks the zone from its top edge.
        ///
        /// # Errors
        /// [`AllocError::OutOfZone`] when the zone is smaller than `count`.
        pub fn shrink_top(&mut self, count: u64) -> Result<PhysPageNum, AllocError> {
            if self.total_pages() <= count {
                return Err(AllocError::OutOfZone);
            }
            self.end_ppn -= count;
            Ok(PhysPageNum::new(self.end_ppn))
        }

        /// Grows the zone downward by `count` pages.
        ///
        /// # Panics
        /// Panics if the new range is not adjacent below the current base.
        pub fn grow_bottom(&mut self, count: u64) {
            assert!(count <= self.base_ppn, "grow_bottom underflow");
            let new_base = self.base_ppn - count;
            self.base_ppn = new_base;
            self.insert_free_run(new_base, count);
        }

        fn find_block_containing(&self, p: u64) -> Option<(u64, AllocInfo)> {
            for order in 0..=MAX_ORDER {
                let cand = p & !((1u64 << order) - 1);
                if let Some(info) = self.allocated.get(&cand) {
                    if info.order >= order && p < cand + (1u64 << info.order) {
                        return Some((cand, *info));
                    }
                }
            }
            None
        }

        fn find_free_block_containing(&self, p: u64) -> Option<(u64, u8)> {
            for order in 0..=MAX_ORDER {
                let cand = p & !((1u64 << order) - 1);
                if self.free_lists[order as usize].contains(&cand) {
                    return Some((cand, order));
                }
            }
            None
        }

        /// Verifies internal invariants.
        pub fn check_invariants(&self) -> bool {
            let mut covered: Vec<(u64, u64)> = Vec::new();
            for (o, list) in self.free_lists.iter().enumerate() {
                for &s in list {
                    covered.push((s, s + (1u64 << o)));
                }
            }
            let free_sum: u64 = covered.iter().map(|(a, b)| b - a).sum();
            if free_sum != self.free_pages {
                return false;
            }
            for (&s, info) in &self.allocated {
                covered.push((s, s + (1u64 << info.order)));
            }
            covered.sort_unstable();
            covered.windows(2).all(|w| w[0].1 <= w[1].0)
                && covered
                    .iter()
                    .all(|&(a, b)| a >= self.base_ppn && b <= self.end_ppn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(pages: u64) -> BuddyZone {
        BuddyZone::new("test", PhysPageNum::new(0x100), pages)
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut z = zone(64);
        assert_eq!(z.free_pages(), 64);
        let a = z.alloc(0, false).unwrap();
        let b = z.alloc(0, false).unwrap();
        assert_ne!(a, b);
        assert_eq!(z.free_pages(), 62);
        z.free(a).unwrap();
        z.free(b).unwrap();
        assert_eq!(z.free_pages(), 64);
        assert!(z.check_invariants());
    }

    #[test]
    fn coalescing_restores_large_blocks() {
        let mut z = zone(64);
        let pages: Vec<_> = (0..64).map(|_| z.alloc(0, false).unwrap()).collect();
        assert_eq!(z.free_pages(), 0);
        assert!(z.alloc(0, false).is_err());
        for p in pages {
            z.free(p).unwrap();
        }
        // After freeing everything, a max-order allocation must succeed.
        assert!(z.alloc(6, false).is_ok());
        assert!(z.check_invariants());
    }

    #[test]
    fn higher_order_allocations() {
        let mut z = zone(64);
        let big = z.alloc(4, false).unwrap(); // 16 pages
        assert_eq!(z.free_pages(), 48);
        assert!(
            big.as_u64().is_multiple_of(16),
            "buddy blocks are naturally aligned"
        );
        z.free(big).unwrap();
        assert_eq!(z.free_pages(), 64);
    }

    #[test]
    fn split_allocation_frees_page_by_page() {
        let mut z = zone(64);
        let big = z.alloc(4, false).unwrap(); // 16 pages
        assert_eq!(z.split_allocation(big), Ok(16));
        // Each page is now its own order-0 allocation.
        for i in 0..16 {
            z.free(big + i).unwrap();
        }
        assert_eq!(z.free_pages(), 64);
        // The freed pages coalesce back into a large block.
        assert!(z.alloc(4, false).is_ok());
        assert!(z.check_invariants());
        // Splitting an unallocated page is a bad free.
        assert!(matches!(
            z.split_allocation(PhysPageNum::new(0x130)),
            Err(AllocError::BadFree { .. })
        ));
    }

    #[test]
    fn double_free_is_error() {
        let mut z = zone(16);
        let a = z.alloc(0, false).unwrap();
        z.free(a).unwrap();
        assert!(matches!(z.free(a), Err(AllocError::BadFree { .. })));
    }

    #[test]
    fn reserve_range_on_free_zone() {
        let mut z = zone(64);
        let r = z.reserve_range(PhysPageNum::new(0x120), 16).unwrap();
        assert_eq!(r.claimed_free, 16);
        assert!(r.to_migrate.is_empty());
        assert_eq!(z.free_pages(), 48);
        // The reserved pages are gone from the free lists: allocating all
        // remaining pages gives exactly 48.
        let mut got = 0;
        while z.alloc(0, false).is_ok() {
            got += 1;
        }
        assert_eq!(got, 48);
    }

    #[test]
    fn reserve_range_reports_movable_occupants() {
        let mut z = zone(64);
        // Occupy some pages as movable.
        let m = z.alloc(0, true).unwrap();
        let r = z.reserve_range(m, 1).unwrap();
        assert_eq!(r.to_migrate.len(), 1);
        assert_eq!(r.to_migrate[0].0, m);
        assert_eq!(r.claimed_free, 0);
        z.complete_migration(m).unwrap();
        assert!(z.check_invariants());
    }

    #[test]
    fn reserve_range_rejects_pinned_pages() {
        let mut z = zone(64);
        let pinned = z.alloc(0, false).unwrap();
        let err = z.reserve_range(pinned, 1).unwrap_err();
        assert!(matches!(err, AllocError::Unmovable { .. }));
        // No side effects: free count unchanged.
        assert_eq!(z.free_pages(), 63);
    }

    #[test]
    fn reserve_range_out_of_zone() {
        let mut z = zone(16);
        assert!(matches!(
            z.reserve_range(PhysPageNum::new(0x100), 32),
            Err(AllocError::OutOfZone)
        ));
        assert!(matches!(
            z.reserve_range(PhysPageNum::new(0x0), 4),
            Err(AllocError::OutOfZone)
        ));
    }

    #[test]
    fn shrink_and_grow_move_the_boundary() {
        // Normal zone gives its top pages to the PTStore zone below it...
        // (modelling direction: ptstore zone sits above normal zone).
        let mut normal = BuddyZone::new("normal", PhysPageNum::new(0x100), 64);
        let mut secure = BuddyZone::new("ptstore", PhysPageNum::new(0x140), 16);
        let chunk = 8;
        let boundary = PhysPageNum::new(0x140 - chunk);
        let r = normal.reserve_range(boundary, chunk).unwrap();
        assert_eq!(r.claimed_free, chunk);
        normal.shrink_top(chunk).unwrap();
        secure.grow_bottom(chunk);
        assert_eq!(normal.end(), boundary);
        assert_eq!(secure.base(), boundary);
        assert_eq!(secure.free_pages(), 16 + chunk);
        assert!(normal.check_invariants());
        assert!(secure.check_invariants());
    }

    #[test]
    fn allocations_prefer_low_addresses() {
        let mut z = zone(64);
        let first = z.alloc(0, false).unwrap();
        assert_eq!(first, PhysPageNum::new(0x100));
    }

    #[test]
    fn gfp_flags_compose() {
        let f = GfpFlags::PTSTORE | GfpFlags::ZERO;
        assert!(f.contains(GfpFlags::PTSTORE));
        assert!(f.contains(GfpFlags::ZERO));
        assert!(!f.contains(GfpFlags::MOVABLE));
        assert!(GfpFlags::KERNEL.contains(GfpFlags::KERNEL));
    }

    #[test]
    fn unaligned_zone_base_still_works() {
        // A zone whose base is not max-order aligned.
        let mut z = BuddyZone::new("odd", PhysPageNum::new(0x103), 37);
        assert_eq!(z.free_pages(), 37);
        let mut got = 0;
        while z.alloc(0, false).is_ok() {
            got += 1;
        }
        assert_eq!(got, 37);
        assert!(z.check_invariants());
    }

    #[test]
    fn block_set_basics() {
        let mut s = BlockSet::with_capacity(100_000);
        assert_eq!(s.first(), None);
        assert!(s.insert(77_777));
        assert!(s.insert(3));
        assert!(!s.insert(3), "duplicate insert is rejected");
        assert!(s.contains(3) && s.contains(77_777) && !s.contains(4));
        assert_eq!(s.first(), Some(3));
        assert!(s.remove(3));
        assert!(!s.remove(3), "double remove is rejected");
        assert_eq!(s.first(), Some(77_777));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![77_777]);
        assert!(s.remove(77_777));
        assert_eq!(s.first(), None);
        assert_eq!(s.len, 0);
    }
}
