//! The kernel model: boot, physical memory management, the PTStore secure
//! region with dynamic adjustment, page-table manipulation through the
//! defense-appropriate channel, and the token mechanism.
//!
//! This file is the software half of the co-design (paper §IV-B/§IV-C); the
//! hardware half lives in `ptstore-core`/`ptstore-mem`/`ptstore-mmu`.

use std::collections::HashMap;

use ptstore_core::{
    AccessContext, Channel, PhysAddr, PhysPageNum, SecureRegion, Token, TokenError, VirtAddr, MIB,
    PAGE_SHIFT, PAGE_SIZE,
};
use ptstore_mem::Bus;
use ptstore_mmu::{Mmu, Pte, PteFlags, Satp};
use ptstore_trace::{FaultClass, FlushScope, TokenOp, TraceEvent, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{DefenseMode, KernelConfig};
use crate::cycles::{cost, CostKind, CycleCounter};
use crate::error::KernelError;
use crate::fs::{PipeTable, RamFs};
use crate::hart::{Hart, HartMsg, HartMsgKind};
use crate::pagetable::{direct_map_va, pte_slot, DIRECT_MAP_BASE, HUGE_PAGE_SPAN};
use crate::process::{Pid, Process, ProcessTable};
use crate::sbi::{SbiCall, SbiFirmware, SbiResult};
use crate::slab::SlabCache;
use crate::stats::{KernelStats, SecurityEvent};
use crate::zones::{AllocError, BuddyZone, GfpFlags};

/// Physical bytes reserved at the bottom of memory for the kernel image
/// (text + static data; never enters the page allocator).
pub const KERNEL_IMAGE_SIZE: u64 = 2 * MIB;

/// A simple model of one connected network socket.
#[derive(Debug, Clone, Default)]
pub struct Socket {
    /// Bytes queued for the application to read.
    pub rx: u64,
    /// Bytes the application has sent.
    pub tx: u64,
}

/// The kernel model.
///
/// See the crate docs for the subsystem map. All public experiment surfaces
/// (workloads, attacks, benchmarks) drive the kernel through syscalls and
/// the introspection API; nothing reaches around the access-checked paths.
#[derive(Debug)]
pub struct Kernel {
    /// Static configuration.
    pub cfg: KernelConfig,
    /// The memory bus (physical memory behind the PMP).
    pub bus: Bus,
    /// The harts: each owns an MMU (both TLBs and the walker), the process
    /// it is running, a private run queue, and a private cycle counter.
    /// Hart 0 is the boot hart.
    pub harts: Vec<Hart>,
    /// The hart kernel entry points currently execute on.
    pub(crate) active_hart: usize,
    /// Machine-wide cycle accounting (the aggregate across all harts; the
    /// paper's overhead anchors are expressed against this counter).
    pub cycles: CycleCounter,
    /// Event counters.
    pub stats: KernelStats,
    /// The ramfs.
    pub fs: RamFs,

    pub(crate) normal_zone: BuddyZone,
    /// The PTStore zone (also used as the "pt area" by the PT-Rand and
    /// virtual-isolation baselines); `None` when page tables come from the
    /// normal zone.
    pub(crate) pt_zone: Option<BuddyZone>,
    pub(crate) secure_region: Option<SecureRegion>,
    /// The M-mode firmware backing the PTStore SBI extension (§IV-B).
    pub(crate) sbi: SbiFirmware,
    pub(crate) pcb_slab: SlabCache,
    pub(crate) token_slab: Option<SlabCache>,
    /// Process table.
    pub procs: ProcessTable,
    pub(crate) next_pid: Pid,
    pub(crate) next_asid: u16,
    pub(crate) kernel_root: PhysPageNum,
    pub(crate) kernel_pt_pages: Vec<PhysPageNum>,
    /// Shared user text page (all model programs run the same "binary").
    pub(crate) shared_text_ppn: PhysPageNum,
    /// Reference counts of user data pages.
    pub(crate) page_refs: HashMap<u64, u32>,
    /// Reverse map: user page → (pid, vpn) mappings.
    pub(crate) rmap: HashMap<u64, Vec<(Pid, u64)>>,
    pub(crate) pipes: PipeTable,
    pub(crate) sockets: HashMap<u32, Socket>,
    pub(crate) next_socket: u32,
    /// PT-Rand: the secret offset of the randomised page-table window, also
    /// materialised at a fixed kernel global address (leakable, §VI-1).
    pub(crate) pt_rand_offset: u64,
    /// Fault-injection hook for the allocator-metadata attack (§V-E3): the
    /// next page-table allocation returns this (in-use) page.
    pub(crate) injected_overlap: Option<PhysPageNum>,
    /// Fault-injection hook for the IPI fabric: the next shootdown broadcast
    /// is perturbed (an IPI dropped, or acks collected in reverse order).
    pub(crate) ipi_fault: Option<IpiFault>,
    /// Fault-injection hook for the drain machinery: the next drain loses a
    /// queued entry, or the next watermark-triggered early drain is skipped.
    pub(crate) drain_fault: Option<crate::drain::DrainFault>,
    /// True once the 15-bit ASID allocator has rolled over: every ASID
    /// handed out from here on is a reuse, and `create_address_space`
    /// force-drains deferred flushes under **every** drain policy.
    pub(crate) asid_wrapped: bool,
    /// Pages drained out of the PTStore zone by the zone-exhaustion fault
    /// (held here so they can be refilled after the run).
    pub(crate) drained_pt_pages: Vec<PhysPageNum>,
    /// Defense firings.
    pub security_log: Vec<SecurityEvent>,
    /// True once boot completed and the PTW origin check is armed.
    pub(crate) ptw_check_armed: bool,
    /// Attached trace sink for kernel-level events (tokens, syscalls,
    /// region moves). `None` keeps every emit site a no-op.
    pub(crate) trace: Option<TraceSink>,
    /// `(name, cycle total at entry)` of the in-flight traced syscall.
    pub(crate) syscall_mark: Option<(&'static str, u64)>,
    /// Monotonic count of deferred-shootdown drains completed machine-wide;
    /// after any security-relevant boundary the active hart's flush queue is
    /// empty and this generation has advanced past every queued page.
    pub(crate) flush_generation: u64,
}

/// Kernel virtual address where the PT-Rand secret offset global lives
/// (inside the kernel image; readable with an arbitrary-read primitive).
pub const PT_RAND_GLOBAL_PA: u64 = 0x10_0000;

/// Base of the PT-Rand randomised mapping window (upper half, disjoint from
/// the direct map).
pub const PT_RAND_WINDOW_BASE: u64 = 0xFFFF_FFD0_0000_0000;

/// A planted perturbation of the next TLB-shootdown broadcast (the
/// `ptstore-fault` IPI tap; see [`Kernel::inject_ipi_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiFault {
    /// The IPI to `victim` is silently lost: that hart neither flushes nor
    /// pays the receive cost, and its TLBs go stale.
    DropNext {
        /// Hart index whose IPI is dropped.
        victim: usize,
    },
    /// Acknowledgements are collected in reversed hart order. The shootdown
    /// is a barrier, so this must be (and is) behaviour-preserving — the
    /// fault campaign classifies it as benign by re-checking the oracle.
    ReorderNext,
}

impl Kernel {
    /// Boots a kernel with `cfg`. This performs the PTStore boot protocol of
    /// paper §IV: install the secure region via the SBI, move every page
    /// table into it using `sd.pt`, then arm the walker check (`satp.S`).
    ///
    /// # Errors
    /// Propagates allocation and region errors; a too-small `mem_size`
    /// panics.
    pub fn boot(cfg: KernelConfig) -> Result<Self, KernelError> {
        assert!(
            cfg.mem_size >= 64 * MIB && cfg.mem_size.is_multiple_of(PAGE_SIZE),
            "machine needs at least 64 MiB"
        );
        assert!(
            cfg.initial_secure_size < cfg.mem_size / 2,
            "secure region must leave room for the normal zone"
        );
        let mut bus = Bus::new(cfg.mem_size);
        let mut cycles = CycleCounter::new();

        // Zone layout: [image | normal zone | pt area/PTStore zone].
        let uses_pt_area = cfg.defense != DefenseMode::None;
        let pt_area_size = if uses_pt_area {
            cfg.initial_secure_size
        } else {
            0
        };
        let normal_pages = (cfg.mem_size - KERNEL_IMAGE_SIZE - pt_area_size) / PAGE_SIZE;
        let normal_zone = BuddyZone::new(
            "normal",
            PhysPageNum::new(KERNEL_IMAGE_SIZE / PAGE_SIZE),
            normal_pages,
        );
        let pt_zone = uses_pt_area.then(|| {
            BuddyZone::new(
                "ptstore",
                PhysPageNum::new((cfg.mem_size - pt_area_size) / PAGE_SIZE),
                pt_area_size / PAGE_SIZE,
            )
        });

        // SBI: initialise the secure region and set the S-bit PMP entry
        // (paper §IV-B). Only in PTStore mode does the PMP know about it.
        let mut sbi = SbiFirmware::new();
        let secure_region = if cfg.defense.is_ptstore() {
            let base = PhysAddr::new(cfg.mem_size - cfg.initial_secure_size);
            match sbi.handle(
                &mut bus,
                SbiCall::SecureRegionInit {
                    base,
                    size: cfg.initial_secure_size,
                },
            ) {
                SbiResult::Ok => {}
                SbiResult::Err(e) => panic!("sbi init rejected: {e}"),
                SbiResult::Region { .. } => unreachable!("init returns Ok"),
            }
            cycles.charge(CostKind::Sbi, cost::SBI_CALL);
            Some(SecureRegion::new(base, cfg.initial_secure_size)?)
        } else {
            None
        };

        // Ablation: drop the S-bit's channel semantics so landed faults are
        // visible to the invariant oracle (never cleared in the full design).
        if cfg.defense.is_ptstore() && !cfg.pmp_s_bit_check {
            // ptstore-lint: allow(channel-confinement) — boot-time ablation
            // knob flipped before the kernel object (and with it the channel
            // module's accessors) exists; never taken in the full design.
            bus.pmp_mut().set_secure_enforcement(false);
        }

        let mut rng = StdRng::seed_from_u64(0x7057_0e5e);
        let pt_rand_offset: u64 = if cfg.defense == DefenseMode::PtRand {
            (rng.random::<u64>() & 0x0000_000F_FFFF_F000) | 0x1000
        } else {
            0
        };

        let mut kernel = Self {
            cfg,
            bus,
            harts: (0..cfg.harts)
                .map(|id| Hart::new(id, cfg.itlb_entries, cfg.dtlb_entries))
                .collect(),
            active_hart: 0,
            cycles,
            stats: KernelStats::default(),
            fs: RamFs::new(),
            normal_zone,
            pt_zone,
            secure_region,
            sbi,
            pcb_slab: SlabCache::new("pcb", crate::process::PCB_SIZE, GfpFlags::KERNEL),
            token_slab: cfg
                .defense
                .is_ptstore()
                .then(|| SlabCache::new("ptstore_token", 16, GfpFlags::PTSTORE)),
            procs: ProcessTable::with_harts(cfg.harts),
            next_pid: 1,
            next_asid: 1,
            kernel_root: PhysPageNum::new(0),
            kernel_pt_pages: Vec::new(),
            shared_text_ppn: PhysPageNum::new(0),
            page_refs: HashMap::new(),
            rmap: HashMap::new(),
            pipes: PipeTable::new(),
            sockets: HashMap::new(),
            next_socket: 1,
            pt_rand_offset,
            injected_overlap: None,
            ipi_fault: None,
            drain_fault: None,
            asid_wrapped: false,
            drained_pt_pages: Vec::new(),
            security_log: Vec::new(),
            ptw_check_armed: false,
            trace: None,
            syscall_mark: None,
            flush_generation: 0,
        };

        // Materialise the PT-Rand secret in kernel memory (it must exist
        // somewhere for the kernel to use it — that is the §VI-1 weakness).
        kernel
            .image_write_u64(PhysAddr::new(PT_RAND_GLOBAL_PA), kernel.pt_rand_offset)
            .expect("kernel image in range");

        kernel.build_kernel_address_space()?;
        kernel.ptw_check_armed = kernel.satp_s_bit();

        // Shared user text page.
        let text = kernel.alloc_page(GfpFlags::ZERO)?;
        kernel.shared_text_ppn = text;
        *kernel.page_refs.entry(text.as_u64()).or_insert(0) += 1;

        // Standard files the microbenchmarks use.
        kernel
            .fs
            .create("/etc/passwd", b"root:x:0:0:root:/root:/bin/sh\n".to_vec());
        kernel.fs.create("/dev/zero", vec![0u8; 4096]);
        kernel.fs.create("/tmp/XXX", vec![0u8; 1024]);

        // Init process.
        let init = kernel.spawn_init()?;
        kernel.harts[0].current = init;
        kernel.activate_address_space(init)?;
        Ok(kernel)
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Attaches (or, with `None`, detaches) a trace sink across every layer:
    /// the bus (and through it the PMP), both TLBs, and the kernel's own
    /// token/syscall/region events all land in the same stream.
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.bus.set_trace_sink(sink.clone());
        for hart in &mut self.harts {
            hart.mmu.set_trace_sink(sink.clone());
        }
        self.trace = sink;
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Enables or disables every host-side fast path in the machine: the
    /// PMP's per-page match cache and each hart's micro-TLBs. Purely a
    /// wall-clock switch — modeled cycles, statistics, and verdicts are
    /// identical either way (pinned by the fast-path differential tests).
    pub fn set_fast_paths(&mut self, enabled: bool) {
        // ptstore-lint: allow(channel-confinement) — host-side wall-clock
        // switch for the PMP's match cache; no architectural state or modeled
        // cycles change (pinned by the fast-path differential suites).
        self.bus.pmp_mut().set_fast_path(enabled);
        for hart in &mut self.harts {
            hart.mmu.set_fast_path(enabled);
        }
    }

    // ------------------------------------------------------------------
    // Access-context helpers
    // ------------------------------------------------------------------

    /// The supervisor access context with the current `satp.S` state.
    pub(crate) fn kctx(&self) -> AccessContext {
        AccessContext::supervisor(self.ptw_check_armed).on_hart(self.active_hart)
    }

    /// Whether `satp.S` is set on this machine: PTStore with the PTW origin
    /// check enabled (the `ptw_origin_check` ablation clears it).
    pub fn satp_s_bit(&self) -> bool {
        self.cfg.defense.is_ptstore() && self.cfg.ptw_origin_check
    }

    /// The channel the kernel's page-table manipulation code uses — the
    /// `set_pXd()` augmentation of paper §IV-C2.
    pub(crate) fn pt_channel(&self) -> Channel {
        if self.cfg.defense.is_ptstore() {
            Channel::SecurePt
        } else {
            Channel::Regular
        }
    }

    // ------------------------------------------------------------------
    // Harts: accessors, cycle charging, TLB shootdown
    // ------------------------------------------------------------------

    /// The hart kernel entry points currently execute on.
    pub fn active_hart(&self) -> usize {
        self.active_hart
    }

    /// Selects the hart that subsequent kernel entry points (syscalls,
    /// faults, scheduling) model their work on. The outgoing hart is marked
    /// quiescent for slot reclamation (it holds no generational handles
    /// across the handoff), and the incoming hart merges its mailbox in
    /// logical-time order before any of its kernel work runs.
    ///
    /// # Panics
    /// When `hart` is out of range for this machine.
    pub fn set_active_hart(&mut self, hart: usize) {
        assert!(
            hart < self.harts.len(),
            "hart {hart} out of range (machine has {})",
            self.harts.len()
        );
        if hart != self.active_hart {
            // Security boundary: the outgoing hart may not hand off with
            // remote TLBs still owing invalidations it queued.
            self.drain_deferred_flushes();
            self.procs.quiesce(self.active_hart);
        }
        self.active_hart = hart;
        self.merge_hart_msgs(hart);
    }

    /// Drains `hart`'s mailbox in the canonical `(time, from, seq)` order
    /// and applies the visibility effects: reaped pids are pruned from the
    /// local run queue (pids never recycle, so late pruning is safe), spawn
    /// and shootdown records only count. The hart then quiesces at the
    /// current reclamation epoch.
    fn merge_hart_msgs(&mut self, hart: usize) {
        let msgs = self.harts[hart].drain_mailbox();
        for m in &msgs {
            if let HartMsgKind::ProcReaped { pid } = m.kind {
                self.harts[hart].run_queue.retain(|&p| p != pid);
            }
        }
        self.stats.hart_msgs_merged += msgs.len() as u64;
        self.procs.quiesce(hart);
    }

    /// Posts a cross-hart message from the active hart to `to`, stamped
    /// with the current machine-wide cycle total (logical time).
    pub(crate) fn post_hart_msg(&mut self, to: usize, kind: HartMsgKind) {
        if to == self.active_hart || to >= self.harts.len() {
            return;
        }
        let msg = HartMsg {
            time: self.cycles.total(),
            from: self.active_hart,
            seq: self.harts[self.active_hart].msg_seq,
            kind,
        };
        self.harts[self.active_hart].msg_seq += 1;
        self.harts[to].mailbox.push_back(msg);
    }

    /// The live generational handle for `pid`, if any.
    pub fn proc_handle(&self, pid: Pid) -> Option<crate::process::ProcHandle> {
        self.procs.lookup(pid)
    }

    /// Resolves a generational handle, counting a stale-handle rejection
    /// (the ABA detection firing) when the slot's generation has moved on.
    pub fn resolve_handle(&mut self, h: crate::process::ProcHandle) -> Option<&Process> {
        if self.procs.resolve(h).is_none() {
            self.stats.stale_handle_rejects += 1;
            return None;
        }
        self.procs.resolve(h)
    }

    /// The active hart's MMU.
    pub fn mmu(&self) -> &Mmu {
        &self.harts[self.active_hart].mmu
    }

    /// The active hart's MMU, mutably.
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.harts[self.active_hart].mmu
    }

    /// Charges `n` cycles of `kind` both machine-wide and to the active
    /// hart's private counter (which feeds per-hart utilization).
    pub fn charge(&mut self, kind: CostKind, n: u64) {
        self.cycles.charge(kind, n);
        self.harts[self.active_hart].cycles.charge(kind, n);
    }

    /// Flushes one page translation machine-wide: a local `sfence.vma` on
    /// the active hart plus, on SMP, an IPI shootdown that every remote
    /// hart acknowledges after flushing (the `flush_tlb_page` path).
    pub(crate) fn tlb_flush_page(&mut self, va: VirtAddr, asid: u16) {
        self.harts[self.active_hart].mmu.sfence_page(va, asid);
        self.stats.sfences += 1;
        self.charge(CostKind::TlbFlush, cost::SFENCE_PAGE);
        self.shootdown(FlushScope::Page {
            vpn: va.as_u64() >> PAGE_SHIFT,
            asid,
        });
    }

    /// Flushes one page translation, deferring the remote broadcast when
    /// batched shootdowns are configured: the *local* `sfence.vma` (and its
    /// cost) is always eager — the active hart never runs on a stale
    /// translation — but on SMP with `deferred_shootdowns` the cross-hart
    /// IPI is queued on the active hart and coalesced with its neighbours
    /// into one broadcast at the next [`Kernel::drain_deferred_flushes`]
    /// (the end of the mapping operation, or a security boundary, whichever
    /// comes first). With the knob off — or on a single hart, where there
    /// is nothing to broadcast — this is exactly `tlb_flush_page`.
    pub(crate) fn queue_flush_page(&mut self, va: VirtAddr, asid: u16) {
        if self.cfg.deferred_shootdowns && self.harts.len() > 1 {
            self.harts[self.active_hart].mmu.sfence_page(va, asid);
            self.stats.sfences += 1;
            self.charge(CostKind::TlbFlush, cost::SFENCE_PAGE);
            self.harts[self.active_hart]
                .flush_queue
                .push((va.as_u64() >> PAGE_SHIFT, asid));
            let depth = self.harts[self.active_hart].flush_queue.len() as u64;
            self.stats.deferred_queue_peak = self.stats.deferred_queue_peak.max(depth);
            self.maybe_watermark_drain(depth);
        } else {
            self.tlb_flush_page(va, asid);
        }
    }

    /// The [`DrainPolicy::Watermark`](crate::drain::DrainPolicy) early
    /// drain: fires when the active hart's queue has just reached the
    /// configured depth. Purely performance placement — entries it drains
    /// would otherwise ride the next mandatory boundary drain — so the
    /// `ptstore-fault` tap may skip it whole
    /// ([`DrainFault::SkipWatermarkNext`](crate::drain::DrainFault)) and
    /// the machine must stay invariant-clean.
    pub(crate) fn maybe_watermark_drain(&mut self, depth: u64) {
        let Some(limit) = self.cfg.drain_policy.watermark_depth() else {
            return;
        };
        if depth < u64::from(limit) {
            return;
        }
        if matches!(
            self.drain_fault,
            Some(crate::drain::DrainFault::SkipWatermarkNext)
        ) {
            self.drain_fault = None;
            if let Some(sink) = &self.trace {
                sink.emit(TraceEvent::IpiFault {
                    kind: FaultClass::WatermarkSkip,
                    victim: self.active_hart as u32,
                });
            }
            return;
        }
        self.stats.watermark_drains += 1;
        self.drain_deferred_flushes();
    }

    /// Drains the active hart's deferred-shootdown queue in **one** IPI
    /// round: the initiator pays a single send + ack-wait per remote hart
    /// for the whole batch, and each remote pays one IPI receive plus the
    /// per-page flushes. Remote TLB state afterwards is exactly what the
    /// eager per-page path would have produced (pages are invalidated
    /// individually, never promoted to an ASID-wide flush), so verdicts and
    /// the fault oracle's TLB-hygiene invariant are unchanged — only the
    /// IPI count drops.
    ///
    /// Forced at every security-relevant boundary: secure-region
    /// adjustment, context switch / hart handoff, and after W-stripping
    /// hazard-marked writes. A no-op when the queue is empty.
    pub fn drain_deferred_flushes(&mut self) {
        let from = self.active_hart;
        let mut queue = std::mem::take(&mut self.harts[from].flush_queue);
        if queue.is_empty() {
            return;
        }
        queue.sort_unstable_by_key(|&(vpn, asid)| (asid, vpn));
        queue.dedup();
        // The ptstore-fault drain tap: one queued entry is silently lost
        // before the broadcast. The local sfence already happened at queue
        // time, so only the *remote* invalidation goes missing — the
        // missed-drain bug the oracle's staleness sweep exists to catch.
        if let Some(crate::drain::DrainFault::DropQueuedNext { index }) = self.drain_fault {
            self.drain_fault = None;
            queue.remove((index % queue.len() as u64) as usize);
            if let Some(sink) = &self.trace {
                sink.emit(TraceEvent::IpiFault {
                    kind: FaultClass::DrainDrop,
                    victim: from as u32,
                });
            }
            if queue.is_empty() {
                // The whole batch was the one lost entry: no IPI round
                // happens at all, and the kernel believes it drained.
                return;
            }
        }
        let n = self.harts.len();
        let remotes = (n - 1) as u64;
        let fault = self.ipi_fault.take();
        self.charge(
            CostKind::Ipi,
            (cost::IPI_SEND + cost::IPI_ACK_WAIT) * remotes,
        );
        let dropped = match fault {
            Some(IpiFault::DropNext { victim }) if victim != from && victim < n => Some(victim),
            _ => None,
        };
        let order: Vec<usize> = if matches!(fault, Some(IpiFault::ReorderNext)) {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        };
        if let (Some(sink), Some(f)) = (&self.trace, fault) {
            let (kind, victim) = match f {
                IpiFault::DropNext { victim } => (FaultClass::IpiDrop, victim as u32),
                IpiFault::ReorderNext => (FaultClass::IpiReorder, from as u32),
            };
            sink.emit(TraceEvent::IpiFault { kind, victim });
        }
        for i in order {
            if i == from {
                continue;
            }
            if Some(i) == dropped {
                // The batched IPI is lost whole: the victim flushes none of
                // the queued pages and pays nothing — its TLBs go stale.
                continue;
            }
            self.harts[i].cycles.charge(CostKind::Ipi, cost::IPI_RECV);
            self.cycles.charge(CostKind::Ipi, cost::IPI_RECV);
            for &(vpn, asid) in &queue {
                self.harts[i]
                    .mmu
                    .sfence_page(VirtAddr::new(vpn << PAGE_SHIFT), asid);
                self.stats.sfences += 1;
                self.harts[i]
                    .cycles
                    .charge(CostKind::TlbFlush, cost::SFENCE_PAGE);
                self.cycles.charge(CostKind::TlbFlush, cost::SFENCE_PAGE);
            }
            self.post_hart_msg(i, HartMsgKind::ShootdownIpi);
            let ack = HartMsg {
                time: self.cycles.total(),
                from: i,
                seq: self.harts[i].msg_seq,
                kind: HartMsgKind::ShootdownAck,
            };
            self.harts[i].msg_seq += 1;
            self.harts[from].mailbox.push_back(ack);
        }
        self.stats.tlb_shootdowns += 1;
        self.stats.shootdown_ipis += remotes;
        self.stats.deferred_drains += 1;
        self.stats.deferred_pages_coalesced += queue.len() as u64;
        self.flush_generation += 1;
        if let Some(sink) = &self.trace {
            // One trace record per consecutive run; the whole batch rode a
            // single IPI round, so only the first run reports the acks.
            let mut runs: Vec<(u64, u64, u16)> = Vec::new();
            for &(vpn, asid) in &queue {
                match runs.last_mut() {
                    Some((start, pages, a)) if *a == asid && vpn == *start + *pages => *pages += 1,
                    _ => runs.push((vpn, 1, asid)),
                }
            }
            for (idx, &(vpn, pages, asid)) in runs.iter().enumerate() {
                sink.emit(TraceEvent::TlbShootdown {
                    scope: FlushScope::Range { vpn, pages, asid },
                    from_hart: from as u32,
                    acks: if idx == 0 { remotes as u32 } else { 0 },
                });
            }
        }
    }

    /// Number of deferred-shootdown drains completed so far (a drain
    /// generation counter; advances once per batched IPI round).
    pub fn flush_generation(&self) -> u64 {
        self.flush_generation
    }

    /// Pages currently queued for a deferred shootdown on the active hart.
    pub fn pending_deferred_flushes(&self) -> usize {
        self.harts[self.active_hart].flush_queue.len()
    }

    /// Flushes every translation of `asid` machine-wide (local
    /// `sfence.vma x0, asid` plus the SMP shootdown).
    pub(crate) fn tlb_flush_asid(&mut self, asid: u16) {
        self.harts[self.active_hart].mmu.sfence_asid(asid);
        self.stats.sfences += 1;
        self.charge(CostKind::TlbFlush, cost::SFENCE_ALL);
        self.shootdown(FlushScope::Asid { asid });
    }

    /// Broadcasts a TLB shootdown to every remote hart and waits for the
    /// acks. A no-op on a single-hart machine, so `--harts 1` stays
    /// cycle-identical to the original prototype.
    ///
    /// The initiator pays an IPI send plus an ack-wait per remote hart;
    /// each remote hart pays the IPI receive and the flush itself on its
    /// own counter (all of it also lands in the machine-wide aggregate).
    pub(crate) fn shootdown(&mut self, scope: FlushScope) {
        let n = self.harts.len();
        if n <= 1 {
            return;
        }
        let fault = self.ipi_fault.take();
        let from = self.active_hart;
        let remotes = (n - 1) as u64;
        self.charge(
            CostKind::Ipi,
            (cost::IPI_SEND + cost::IPI_ACK_WAIT) * remotes,
        );
        let flush_cost = match scope {
            FlushScope::Page { .. } => cost::SFENCE_PAGE,
            FlushScope::Asid { .. } | FlushScope::All => cost::SFENCE_ALL,
            // Ranges only exist as drain records; drains broadcast themselves.
            FlushScope::Range { .. } => unreachable!("range scopes never take the eager path"),
        };
        // The IPI fault tap: drop one IPI, or visit remotes in reverse order
        // (the shootdown is a barrier, so ack order is behaviour-preserving).
        let dropped = match fault {
            Some(IpiFault::DropNext { victim }) if victim != from && victim < n => Some(victim),
            _ => None,
        };
        let order: Vec<usize> = if matches!(fault, Some(IpiFault::ReorderNext)) {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        };
        if let (Some(sink), Some(f)) = (&self.trace, fault) {
            let (kind, victim) = match f {
                IpiFault::DropNext { victim } => (FaultClass::IpiDrop, victim as u32),
                IpiFault::ReorderNext => (FaultClass::IpiReorder, from as u32),
            };
            sink.emit(TraceEvent::IpiFault { kind, victim });
        }
        for i in order {
            if i == from {
                continue;
            }
            if Some(i) == dropped {
                // The IPI is lost in the fabric: the victim neither flushes
                // nor pays the receive cost, and its TLBs go stale.
                continue;
            }
            match scope {
                FlushScope::Page { vpn, asid } => self.harts[i]
                    .mmu
                    .sfence_page(VirtAddr::new(vpn << PAGE_SHIFT), asid),
                FlushScope::Asid { asid } => self.harts[i].mmu.sfence_asid(asid),
                FlushScope::All => self.harts[i].mmu.sfence_all(),
                FlushScope::Range { .. } => unreachable!("range scopes never take the eager path"),
            }
            self.stats.sfences += 1;
            self.harts[i].cycles.charge(CostKind::Ipi, cost::IPI_RECV);
            self.harts[i].cycles.charge(CostKind::TlbFlush, flush_cost);
            self.cycles.charge(CostKind::Ipi, cost::IPI_RECV);
            self.cycles.charge(CostKind::TlbFlush, flush_cost);
            // Visibility records for the deterministic mailbox merge: the
            // remote hart sees the IPI, the initiator sees the ack. Costs
            // were already charged synchronously above (the shootdown is a
            // barrier), so these messages carry no cycles.
            self.post_hart_msg(i, HartMsgKind::ShootdownIpi);
            let ack = HartMsg {
                time: self.cycles.total(),
                from: i,
                seq: self.harts[i].msg_seq,
                kind: HartMsgKind::ShootdownAck,
            };
            self.harts[i].msg_seq += 1;
            self.harts[from].mailbox.push_back(ack);
        }
        self.stats.tlb_shootdowns += 1;
        self.stats.shootdown_ipis += remotes;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::TlbShootdown {
                scope,
                from_hart: from as u32,
                acks: remotes as u32,
            });
        }
    }

    // ------------------------------------------------------------------
    // Page allocation
    // ------------------------------------------------------------------

    /// Allocates one page per `gfp`, retrying through secure-region
    /// adjustment for `GFP_PTSTORE` requests (paper §IV-C1).
    ///
    /// # Errors
    /// [`KernelError::OutOfMemory`] when the zones (and adjustment) cannot
    /// satisfy the request.
    pub fn alloc_page(&mut self, gfp: GfpFlags) -> Result<PhysPageNum, KernelError> {
        self.charge(CostKind::PageAlloc, cost::PAGE_ALLOC);
        let ppn = if gfp.contains(GfpFlags::PTSTORE) {
            self.charge(CostKind::PageAlloc, cost::PTSTORE_ZONE_EXTRA);
            loop {
                let zone = self.pt_zone.as_mut().ok_or(KernelError::OutOfMemory)?;
                match zone.alloc(0, false) {
                    Ok(p) => break p,
                    Err(AllocError::OutOfMemory) => self.adjust_secure_region()?,
                    Err(e) => return Err(e.into()),
                }
            }
        } else {
            self.normal_zone.alloc(0, gfp.contains(GfpFlags::MOVABLE))?
        };
        if gfp.contains(GfpFlags::ZERO) {
            self.zero_page(ppn, gfp.contains(GfpFlags::PTSTORE))?;
        }
        Ok(ppn)
    }

    /// Frees a page back to its zone.
    ///
    /// # Errors
    /// Allocator errors on double frees.
    pub fn free_page(&mut self, ppn: PhysPageNum) -> Result<(), KernelError> {
        self.charge(CostKind::PageAlloc, cost::PAGE_FREE);
        if let Some(z) = self.pt_zone.as_mut() {
            if z.contains(ppn) {
                z.free(ppn)?;
                return Ok(());
            }
        }
        self.normal_zone.free(ppn)?;
        Ok(())
    }

    /// Allocates a page-table page: `GFP_PTSTORE` routing plus the zero-check
    /// defense (paper §V-E3). The fault-injection hook models a successful
    /// allocator-metadata corruption.
    pub(crate) fn alloc_pt_page(&mut self) -> Result<PhysPageNum, KernelError> {
        let from_pt_area = self.pt_zone.is_some();
        let magazine_hit = self.cfg.alloc_magazines && self.injected_overlap.is_none();
        let ppn = if let Some(injected) = self.injected_overlap.take() {
            injected
        } else if let Some(cached) = magazine_hit
            .then(|| self.harts[self.active_hart].pt_magazine.pop())
            .flatten()
        {
            // Magazine fast path: the page never left the zone's allocated
            // set, so no buddy work (or its cost) happens. It was zeroed at
            // free time; the zero-check below still verifies that.
            cached
        } else if from_pt_area {
            self.alloc_page(GfpFlags::PTSTORE)?
        } else {
            self.alloc_page(GfpFlags::KERNEL)?
        };
        if self.cfg.defense.is_ptstore() {
            // Pages in the secure region are zeroed on free, so a non-zero
            // "fresh" page means the allocator handed out an in-use page.
            self.stats.zero_checks += 1;
            self.charge(CostKind::MemAccess, cost::ZERO_CHECK_RESIDUAL);
            let clean = self.bus.secure_page_is_zero(ppn, self.kctx())?;
            if !clean {
                self.stats.zero_check_failures += 1;
                self.security_log.push(SecurityEvent::PtPageNotZero { ppn });
                return Err(KernelError::PageNotZero);
            }
        }
        self.stats.pt_pages_live += 1;
        self.stats.pt_pages_peak = self.stats.pt_pages_peak.max(self.stats.pt_pages_live);
        Ok(ppn)
    }

    /// Frees a page-table page. Every kernel configuration zeroes page-table
    /// pages at free time (an init-on-free policy — stale PTEs never linger
    /// in the allocator): under PTStore this is also what makes the
    /// alloc-side zero-check sound (pages are zero iff actually free,
    /// §V-E3). Keeping the policy uniform keeps the per-page lifecycle cost
    /// identical across configurations, so measured deltas isolate PTStore's
    /// own additions — as the paper's <1 % overheads require.
    pub(crate) fn free_pt_page(&mut self, ppn: PhysPageNum) -> Result<(), KernelError> {
        self.zero_page(ppn, self.cfg.defense.is_ptstore())?;
        self.stats.pt_pages_live = self.stats.pt_pages_live.saturating_sub(1);
        if self.cfg.alloc_magazines {
            let mag = &mut self.harts[self.active_hart].pt_magazine;
            if mag.len() < crate::slab::MAGAZINE_CAP {
                // Park the (zeroed) page for this hart's next table alloc;
                // it stays allocated in the zone until a magazine drain.
                mag.push(ppn);
                return Ok(());
            }
        }
        self.free_page(ppn)
    }

    /// Returns every magazine-cached allocation — per-hart page-table pages
    /// and PCB objects — to its backing store. Forced before slab reclaim
    /// and secure-region adjustment so both always see canonical allocator
    /// state. Returns how many cached objects were flushed.
    ///
    /// # Errors
    /// Propagates allocator errors.
    pub fn drain_magazines(&mut self) -> Result<u64, KernelError> {
        let mut n = 0u64;
        for h in 0..self.harts.len() {
            let pages = std::mem::take(&mut self.harts[h].pt_magazine);
            n += pages.len() as u64;
            for p in pages {
                self.free_page(p)?;
            }
        }
        n += self.pcb_slab.flush_magazines() as u64;
        Ok(n)
    }

    /// Releases empty slab backing pages (the kernel's memory-pressure
    /// shrinker). Returns how many pages went back to the zones.
    ///
    /// # Errors
    /// Propagates allocator errors.
    pub fn reclaim_slabs(&mut self) -> Result<u64, KernelError> {
        // Magazine-held objects look live to shrink(); flush them first.
        self.drain_magazines()?;
        let mut released: Vec<PhysPageNum> = Vec::new();
        self.pcb_slab.shrink(|p| released.push(p));
        let mut secure_released: Vec<PhysPageNum> = Vec::new();
        if let Some(slab) = self.token_slab.as_mut() {
            slab.shrink(|p| secure_released.push(p));
        }
        let total = (released.len() + secure_released.len()) as u64;
        for p in released {
            self.free_page(p)?;
        }
        for p in secure_released {
            // Keep the pages-are-zero-when-free invariant for the zone.
            self.zero_page(p, true)?;
            self.free_page(p)?;
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Secure-region dynamic adjustment (paper §IV-C1)
    // ------------------------------------------------------------------

    /// Grows the secure region by one chunk: reserve contiguous pages
    /// adjacent to the boundary from the normal zone, migrate movable
    /// occupants, hand the range to the PTStore zone, and move the PMP
    /// boundary via the SBI.
    ///
    /// # Errors
    /// [`KernelError::OutOfMemory`] when adjustment is disabled or blocked by
    /// pinned pages.
    pub fn adjust_secure_region(&mut self) -> Result<(), KernelError> {
        if !self.cfg.adjustment_enabled || !self.cfg.defense.is_ptstore() {
            return Err(KernelError::OutOfMemory);
        }
        let chunk_pages = self.cfg.adjust_chunk / PAGE_SIZE;
        let boundary = self
            .pt_zone
            .as_ref()
            .expect("ptstore mode has a pt zone")
            .base();
        let start = PhysPageNum::new(boundary.as_u64() - chunk_pages);
        self.charge(
            CostKind::Adjustment,
            cost::ADJUST_BASE + cost::ADJUST_SCAN_PAGE * chunk_pages,
        );

        // Security boundary: settle any deferred page invalidations before
        // the region moves (the queue must never straddle a PMP boundary
        // change), then, on SMP, quiesce remote page-table walkers before
        // any page table moves: broadcast a full flush and wait for every
        // hart's ack so no remote walk observes a half-migrated table.
        // Free at `--harts 1`.
        self.drain_deferred_flushes();
        self.drain_magazines()?;
        self.shootdown(FlushScope::All);

        // alloc_contig_range on the normal zone.
        let reservation =
            self.normal_zone
                .reserve_range(start, chunk_pages)
                .map_err(|e| match e {
                    AllocError::Unmovable { .. } | AllocError::OutOfZone => {
                        KernelError::OutOfMemory
                    }
                    other => KernelError::from(other),
                })?;
        let to_migrate = reservation.to_migrate.clone();
        for (block, info) in to_migrate {
            self.migrate_block(block, info.order)?;
        }

        // Release the contiguous pages to the PTStore zone.
        self.normal_zone.shrink_top(chunk_pages)?;
        self.pt_zone
            .as_mut()
            .expect("checked above")
            .grow_bottom(chunk_pages);

        // Update the secure region boundary via the SBI (the firmware
        // validates that the boundary only moves downward, §IV-B).
        self.charge(CostKind::Sbi, cost::SBI_CALL);
        let region = self.secure_region.expect("ptstore mode has a region");
        let grown = region.grow_down(self.cfg.adjust_chunk)?;
        match self.sbi.handle(
            &mut self.bus,
            SbiCall::SecureRegionSet {
                new_base: grown.base(),
            },
        ) {
            SbiResult::Ok => {}
            SbiResult::Err(e) => panic!("sbi set rejected during adjustment: {e}"),
            SbiResult::Region { .. } => unreachable!("set returns Ok"),
        }
        self.secure_region = Some(grown);
        self.stats.adjustments += 1;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::RegionMove {
                old_base: region.base().as_u64(),
                new_base: grown.base().as_u64(),
                end: grown.end().as_u64(),
            });
        }
        Ok(())
    }

    /// Migrates one movable block out of an adjustment range.
    fn migrate_block(&mut self, block: PhysPageNum, order: u8) -> Result<(), KernelError> {
        let pages = 1u64 << order;
        for i in 0..pages {
            let old = block + i;
            let new = self.normal_zone.alloc(0, true)?;
            self.charge(CostKind::Adjustment, cost::ADJUST_MIGRATE_PAGE);
            self.raw_copy_page(old, new)?;
            // Re-point every mapping of the old page.
            if let Some(users) = self.rmap.remove(&old.as_u64()) {
                for &(pid, vpn) in &users {
                    self.repoint_mapping(pid, vpn, new)?;
                }
                self.rmap.insert(new.as_u64(), users);
            }
            if let Some(refs) = self.page_refs.remove(&old.as_u64()) {
                self.page_refs.insert(new.as_u64(), refs);
            }
            self.stats.migrated_pages += 1;
            self.raw_zero_page(old);
        }
        self.normal_zone.complete_migration(block)?;
        Ok(())
    }

    /// Rewrites the leaf PTE of (pid, vpn) to point at `new`, preserving
    /// flags, and flushes the stale translation.
    fn repoint_mapping(&mut self, pid: Pid, vpn: u64, new: PhysPageNum) -> Result<(), KernelError> {
        let va = VirtAddr::new(vpn << PAGE_SHIFT);
        let (root, asid, flags) = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            let m = p.aspace.mapping(va).ok_or(KernelError::BadAddress)?;
            (p.aspace.root, p.aspace.asid, m.flags)
        };
        let slot = self.leaf_slot(root, va)?.ok_or(KernelError::BadAddress)?;
        // ptstore-lint: hazard(shootdown-pairing) — repointing invalidates the
        // old translation; a stale TLB entry would keep the page writable.
        self.pt_write(slot, Pte::leaf(new, flags).bits())?;
        self.tlb_flush_page(va, asid);
        if let Some(p) = self.procs.get_mut(pid) {
            if let Some(m) = p.aspace.user.get_mut(&vpn) {
                m.ppn = new;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page-table construction
    // ------------------------------------------------------------------

    /// Builds the kernel address space: a direct map of all physical memory
    /// with 2 MiB superpages, with the pt-area's mapping adjusted per
    /// defense (read-only under virtual isolation, absent under PT-Rand).
    fn build_kernel_address_space(&mut self) -> Result<(), KernelError> {
        let root = self.alloc_pt_page()?;
        self.kernel_root = root;
        self.kernel_pt_pages.push(root);
        // The direct map occupies the top 256 GiB of the address space, which
        // sits inside a single entry span at every level above the GiB-level
        // tables — so the upper chain needs exactly one table per extra
        // level. Under Sv39 the chain is empty (the root *is* the GiB-level
        // table) and the allocation/write sequence below is identical to the
        // three-level layout, byte-for-byte and cycle-for-cycle.
        let levels = self.cfg.scheme.levels();
        let va0 = VirtAddr::new(DIRECT_MAP_BASE);
        let mut gib_table = root;
        for level in (3..levels).rev() {
            let t = self.alloc_pt_page()?;
            self.kernel_pt_pages.push(t);
            self.pt_write(pte_slot(gib_table, va0, level), Pte::table(t).bits())?;
            gib_table = t;
        }
        let gib_count = self.cfg.mem_size.div_ceil(ptstore_core::GIB);
        for g in 0..gib_count {
            let l1 = self.alloc_pt_page()?;
            self.kernel_pt_pages.push(l1);
            let va = VirtAddr::new(DIRECT_MAP_BASE + g * ptstore_core::GIB);
            let gib_slot = pte_slot(gib_table, va, 2);
            self.pt_write(gib_slot, Pte::table(l1).bits())?;
            // 512 2-MiB leaves per GiB (bounded by mem_size).
            for i in 0..512u64 {
                let pa = g * ptstore_core::GIB + i * 2 * MIB;
                if pa >= self.cfg.mem_size {
                    break;
                }
                let leaf_ppn = PhysPageNum::new(pa >> PAGE_SHIFT);
                let flags = self.direct_map_flags(pa);
                let slot = PhysAddr::new(l1.base_addr().as_u64() + i * 8);
                match flags {
                    Some(f) => {
                        self.pt_write(slot, Pte::leaf(leaf_ppn, f.with(PteFlags::G)).bits())?
                    }
                    None => { /* PT-Rand: hole over the pt area */ }
                }
            }
        }
        Ok(())
    }

    /// Direct-map permissions for the 2 MiB page at `pa`, per defense mode.
    fn direct_map_flags(&self, pa: u64) -> Option<PteFlags> {
        let in_pt_area = self
            .pt_zone
            .as_ref()
            .is_some_and(|z| pa >= z.base().base_addr().as_u64());
        match (self.cfg.defense, in_pt_area) {
            (DefenseMode::PtRand, true) => None,
            (DefenseMode::VirtualIsolation, true) => Some(PteFlags::from_bits(
                PteFlags::V | PteFlags::R | PteFlags::A | PteFlags::D,
            )),
            _ => Some(PteFlags::kernel_rw()),
        }
    }

    /// Finds the physical address of the 4 KiB leaf PTE slot for `va` under
    /// `root`, returning `None` when an intermediate level is missing (or is
    /// a superpage leaf — use [`Self::find_leaf`] for those).
    pub(crate) fn leaf_slot(
        &mut self,
        root: PhysPageNum,
        va: VirtAddr,
    ) -> Result<Option<PhysAddr>, KernelError> {
        let mut table = root;
        for level in (1..self.cfg.scheme.levels()).rev() {
            let slot = pte_slot(table, va, level);
            let pte = Pte::from_bits(self.pt_read(slot)?);
            if !pte.is_table() {
                return Ok(None);
            }
            table = pte.ppn();
        }
        Ok(Some(pte_slot(table, va, 0)))
    }

    /// Walks from `root` to the PTE mapping `va`, returning the slot and
    /// the level it terminated at: 0 for a 4 KiB leaf, 1 for a 2 MiB leaf,
    /// 2 for 1 GiB. `None` when the walk hits an invalid entry.
    pub(crate) fn find_leaf(
        &mut self,
        root: PhysPageNum,
        va: VirtAddr,
    ) -> Result<Option<(PhysAddr, usize)>, KernelError> {
        let mut table = root;
        for level in (0..self.cfg.scheme.levels()).rev() {
            let slot = pte_slot(table, va, level);
            let pte = Pte::from_bits(self.pt_read(slot)?);
            if !pte.is_valid() {
                return Ok(None);
            }
            if pte.is_leaf() {
                return Ok(Some((slot, level)));
            }
            table = pte.ppn();
        }
        Ok(None)
    }

    /// Ensures intermediate tables exist for `va` down to (but excluding)
    /// `leaf_level` in the address space of `pid`, allocating them as
    /// needed; returns the PTE slot address at `leaf_level` (0 for a 4 KiB
    /// leaf, 1 for a 2 MiB huge leaf).
    pub(crate) fn ensure_slot_at(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        leaf_level: usize,
    ) -> Result<PhysAddr, KernelError> {
        let pid = self.mm_owner_of(pid);
        let root = self
            .procs
            .get(pid)
            .ok_or(KernelError::NoSuchProcess)?
            .aspace
            .root;
        let mut new_pages: Vec<PhysPageNum> = Vec::new();
        let mut table = root;
        for level in ((leaf_level + 1)..self.cfg.scheme.levels()).rev() {
            let slot = pte_slot(table, va, level);
            let pte = Pte::from_bits(self.pt_read(slot)?);
            table = if pte.is_table() {
                pte.ppn()
            } else {
                let fresh = self.alloc_pt_page()?;
                self.pt_write(slot, Pte::table(fresh).bits())?;
                new_pages.push(fresh);
                fresh
            };
        }
        if !new_pages.is_empty() {
            let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
            p.aspace.pt_pages.extend(new_pages);
        }
        Ok(pte_slot(table, va, leaf_level))
    }

    /// Ensures intermediate tables exist for `va` in the address space of
    /// `pid`, allocating them as needed; returns the 4 KiB leaf slot.
    pub(crate) fn ensure_leaf_slot(
        &mut self,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<PhysAddr, KernelError> {
        self.ensure_slot_at(pid, va, 0)
    }

    /// Maps one user page into `pid`'s address space (the `set_pte` path).
    pub(crate) fn map_user_page(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        ppn: PhysPageNum,
        flags: PteFlags,
        cow: bool,
    ) -> Result<(), KernelError> {
        let pid = self.mm_owner_of(pid);
        let slot = self.ensure_leaf_slot(pid, va)?;
        self.pt_write(slot, Pte::leaf(ppn, flags).bits())?;
        let vpn = va.as_u64() >> PAGE_SHIFT;
        let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
        p.aspace.user.insert(
            vpn,
            crate::pagetable::UserMapping {
                ppn,
                flags,
                cow,
                huge: false,
            },
        );
        self.rmap.entry(ppn.as_u64()).or_default().push((pid, vpn));
        Ok(())
    }

    /// Unmaps one user page; returns the page it pointed at.
    pub(crate) fn unmap_user_page(
        &mut self,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<PhysPageNum, KernelError> {
        let pid = self.mm_owner_of(pid);
        let vpn = va.as_u64() >> PAGE_SHIFT;
        let (root, asid, ppn) = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            let m = p.aspace.mapping(va).ok_or(KernelError::BadAddress)?;
            (p.aspace.root, p.aspace.asid, m.ppn)
        };
        let slot = self.leaf_slot(root, va)?.ok_or(KernelError::BadAddress)?;
        self.pt_write(slot, Pte::invalid().bits())?;
        self.queue_flush_page(va, asid);
        if let Some(p) = self.procs.get_mut(pid) {
            p.aspace.user.remove(&vpn);
        }
        if let Some(users) = self.rmap.get_mut(&ppn.as_u64()) {
            users.retain(|&(up, uv)| !(up == pid && uv == vpn));
            if users.is_empty() {
                self.rmap.remove(&ppn.as_u64());
            }
        }
        Ok(ppn)
    }

    /// Drops one reference to a user data page, freeing it at zero.
    pub(crate) fn put_user_page(&mut self, ppn: PhysPageNum) -> Result<(), KernelError> {
        let refs = self
            .page_refs
            .get_mut(&ppn.as_u64())
            .expect("put of untracked user page");
        *refs -= 1;
        if *refs == 0 {
            self.page_refs.remove(&ppn.as_u64());
            self.raw_zero_page(ppn);
            self.free_page(ppn)?;
        }
        Ok(())
    }

    /// Resolves the pid owning `pid`'s address space (threads share their
    /// owner's mm; everyone else owns their own).
    pub fn mm_owner_of(&self, pid: Pid) -> Pid {
        self.procs.get(pid).and_then(|p| p.mm_owner).unwrap_or(pid)
    }

    // ------------------------------------------------------------------
    // Huge (2 MiB) user mappings — one level-1 leaf PTE per block
    // ------------------------------------------------------------------

    /// Allocates and zeroes a naturally aligned 2 MiB block for a huge user
    /// mapping. The block is *pinned* (non-movable): like Linux hugetlb
    /// pages, it is invisible to compaction/migration, so secure-region
    /// adjustment treats it as an immovable obstacle.
    pub(crate) fn alloc_user_huge_block(&mut self) -> Result<PhysPageNum, KernelError> {
        self.charge(CostKind::PageAlloc, cost::PAGE_ALLOC);
        let block = self.normal_zone.alloc(9, false)?;
        for i in 0..HUGE_PAGE_SPAN {
            self.zero_page(PhysPageNum::new(block.as_u64() + i), false)?;
        }
        Ok(block)
    }

    /// Maps a 2 MiB block at `va` (both must be 2 MiB-aligned) as a single
    /// level-1 leaf PTE. The shadow records one huge entry at the
    /// span-aligned vpn; huge blocks are deliberately absent from the rmap —
    /// they are pinned, so migration never needs to find them.
    pub(crate) fn map_user_huge_page(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        block: PhysPageNum,
        flags: PteFlags,
        cow: bool,
    ) -> Result<(), KernelError> {
        debug_assert_eq!(va.as_u64() % (2 * MIB), 0, "huge va must be 2 MiB-aligned");
        debug_assert_eq!(
            block.as_u64() % HUGE_PAGE_SPAN,
            0,
            "huge block must be naturally aligned"
        );
        let pid = self.mm_owner_of(pid);
        let slot = self.ensure_slot_at(pid, va, 1)?;
        self.pt_write(slot, Pte::leaf(block, flags).bits())?;
        let vpn = va.as_u64() >> PAGE_SHIFT;
        let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
        p.aspace.user.insert(
            vpn,
            crate::pagetable::UserMapping {
                ppn: block,
                flags,
                cow,
                huge: true,
            },
        );
        Ok(())
    }

    /// Unmaps the 2 MiB mapping at `va`; returns the block it pointed at.
    /// One covered-page flush is enough to drop the span entry from every
    /// TLB (span entries match any page they cover).
    pub(crate) fn unmap_user_huge_page(
        &mut self,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<PhysPageNum, KernelError> {
        let pid = self.mm_owner_of(pid);
        let vpn = va.as_u64() >> PAGE_SHIFT;
        let (root, asid, block) = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            let m = p
                .aspace
                .user
                .get(&vpn)
                .filter(|m| m.huge)
                .ok_or(KernelError::BadAddress)?;
            (p.aspace.root, p.aspace.asid, m.ppn)
        };
        let (slot, level) = self.find_leaf(root, va)?.ok_or(KernelError::BadAddress)?;
        debug_assert_eq!(level, 1, "shadow says huge but the PTE is not level-1");
        self.pt_write(slot, Pte::invalid().bits())?;
        self.queue_flush_page(va, asid);
        if let Some(p) = self.procs.get_mut(pid) {
            p.aspace.user.remove(&vpn);
        }
        Ok(block)
    }

    /// Drops one reference to a huge block (refcounted at its base, like a
    /// compound page's head), zeroing and freeing the whole order-9
    /// allocation at zero.
    pub(crate) fn put_user_huge_block(&mut self, block: PhysPageNum) -> Result<(), KernelError> {
        let refs = self
            .page_refs
            .get_mut(&block.as_u64())
            .expect("put of untracked huge block");
        *refs -= 1;
        if *refs == 0 {
            self.page_refs.remove(&block.as_u64());
            for i in 0..HUGE_PAGE_SPAN {
                self.raw_zero_page(PhysPageNum::new(block.as_u64() + i));
            }
            self.free_page(block)?;
        }
        Ok(())
    }

    /// Splits the huge mapping covering `va` into 512 4 KiB mappings (the
    /// `split_huge_pmd` + `split_page` analogue): a CoW-shared block is
    /// privatized first, then a fresh level-0 table of 4 KiB leaves replaces
    /// the level-1 leaf, the buddy allocation is split page-by-page, and the
    /// shadow/refcount/rmap bookkeeping is rewritten per page.
    pub(crate) fn split_huge_mapping(&mut self, pid: Pid, va: VirtAddr) -> Result<(), KernelError> {
        let pid = self.mm_owner_of(pid);
        let base_vpn = (va.as_u64() >> PAGE_SHIFT) & !(HUGE_PAGE_SPAN - 1);
        let base_va = VirtAddr::new(base_vpn << PAGE_SHIFT);
        let (root, asid, mut m) = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            let m = p
                .aspace
                .user
                .get(&base_vpn)
                .filter(|m| m.huge)
                .copied()
                .ok_or(KernelError::BadAddress)?;
            (p.aspace.root, p.aspace.asid, m)
        };
        // Un-share first (split never propagates to the sharers): copy the
        // whole block into a private one, then split the private copy.
        if self.page_refs.get(&m.ppn.as_u64()).copied().unwrap_or(1) > 1 {
            let fresh = self.alloc_user_huge_block()?;
            for i in 0..HUGE_PAGE_SPAN {
                self.charge(CostKind::MemAccess, cost::ZERO_PAGE); // page copy
                self.raw_copy_page(
                    PhysPageNum::new(m.ppn.as_u64() + i),
                    PhysPageNum::new(fresh.as_u64() + i),
                )?;
            }
            self.page_refs.insert(fresh.as_u64(), 1);
            self.put_user_huge_block(m.ppn)?;
            m.ppn = fresh;
            m.cow = false;
        }
        // Build the replacement level-0 table, then swap it in under the
        // level-1 slot. Writing the table pointer last keeps the walkable
        // state consistent at every step.
        let table = self.alloc_pt_page()?;
        for i in 0..HUGE_PAGE_SPAN {
            let slot = PhysAddr::new(table.base_addr().as_u64() + i * 8);
            let page = PhysPageNum::new(m.ppn.as_u64() + i);
            self.pt_write(slot, Pte::leaf(page, m.flags).bits())?;
        }
        let (l1_slot, level) = self
            .find_leaf(root, base_va)?
            .ok_or(KernelError::BadAddress)?;
        debug_assert_eq!(level, 1, "split of a non-huge leaf");
        self.pt_write(l1_slot, Pte::table(table).bits())?;
        self.queue_flush_page(base_va, asid);
        // The buddy block becomes 512 order-0 pages; refcounts and the rmap
        // become per-page (each inherits the block's single owner).
        self.normal_zone.split_allocation(m.ppn)?;
        self.page_refs.remove(&m.ppn.as_u64());
        for i in 0..HUGE_PAGE_SPAN {
            let page = m.ppn.as_u64() + i;
            self.page_refs.insert(page, 1);
            self.rmap.entry(page).or_default().push((pid, base_vpn + i));
        }
        let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
        p.aspace.user.remove(&base_vpn);
        for i in 0..HUGE_PAGE_SPAN {
            p.aspace.user.insert(
                base_vpn + i,
                crate::pagetable::UserMapping {
                    ppn: PhysPageNum::new(m.ppn.as_u64() + i),
                    flags: m.flags,
                    cow: m.cow,
                    huge: false,
                },
            );
        }
        p.aspace.pt_pages.push(table);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Tokens (paper §III-C3, Fig. 3)
    // ------------------------------------------------------------------

    /// Issues a token binding `pid`'s page-table pointer to its PCB; writes
    /// the token into the secure region with `sd.pt` and the token pointer
    /// into the PCB with a regular store.
    pub(crate) fn token_issue(&mut self, pid: Pid) -> Result<(), KernelError> {
        self.token_issue_as(pid, TokenOp::Issue)
    }

    /// As [`Self::token_issue`], but tagged with `op` in the trace — fork and
    /// thread creation record their child token as a copy.
    pub(crate) fn token_issue_as(&mut self, pid: Pid, op: TokenOp) -> Result<(), KernelError> {
        let Some(slab) = self.token_slab.as_mut() else {
            return Ok(()); // tokens only exist under PTStore
        };
        // Route the slab's page source through the zones manually to avoid
        // double borrows: take the slab, allocate, put it back.
        let mut slab_taken = std::mem::replace(slab, SlabCache::new("x", 16, GfpFlags::PTSTORE));
        let result = slab_taken.alloc(|gfp| -> Result<PhysPageNum, KernelError> {
            let ppn = self.alloc_page(gfp | GfpFlags::ZERO)?;
            Ok(ppn)
        });
        *self.token_slab.as_mut().expect("present") = slab_taken;
        let (token_addr, _grew) = result?;

        let mm = self.mm_owner_of(pid);
        let (pt_ptr, token_slot_field) = {
            let root = self
                .procs
                .get(mm)
                .ok_or(KernelError::NoSuchProcess)?
                .aspace
                .root;
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            (root.base_addr(), p.token_slot())
        };
        let token = Token::new(pt_ptr, token_slot_field);
        self.charge(CostKind::Token, cost::TOKEN_ISSUE);
        self.secure_u64_write(token_addr, token.pt_ptr.as_u64())?;
        self.secure_u64_write(token_addr + 8, token.user_ptr.as_u64())?;
        // PCB fields (normal memory; regular stores).
        self.mem_write(token_slot_field, token_addr.as_u64())?;
        let pt_slot = {
            let p = self.procs.get(pid).expect("checked");
            p.pt_ptr_slot()
        };
        self.mem_write(pt_slot, pt_ptr.as_u64())?;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::Token {
                op,
                pid: u64::from(pid),
                ok: true,
            });
        }
        Ok(())
    }

    /// Clears and frees `pid`'s token at process destruction.
    pub(crate) fn token_clear(&mut self, pid: Pid) -> Result<(), KernelError> {
        if self.token_slab.is_none() {
            return Ok(());
        }
        let token_slot = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            p.token_slot()
        };
        let token_addr = PhysAddr::new(self.mem_read(token_slot)?);
        self.charge(CostKind::Token, cost::TOKEN_CLEAR);
        if self
            .token_slab
            .as_ref()
            .expect("checked")
            .contains(token_addr)
        {
            self.secure_u64_write(token_addr, 0)?;
            self.secure_u64_write(token_addr + 8, 0)?;
            self.token_slab.as_mut().expect("checked").free(token_addr);
        }
        self.mem_write(token_slot, 0)?;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::Token {
                op: TokenOp::Clear,
                pid: u64::from(pid),
                ok: true,
            });
        }
        Ok(())
    }

    /// Validates `pid`'s page-table pointer against its token before it is
    /// used (the `switch_mm`/`satp`-update check). Returns the *validated*
    /// page-table pointer read from the PCB.
    ///
    /// # Errors
    /// [`KernelError::TokenInvalid`] when the credential does not bind; the
    /// event is recorded in the security log.
    pub(crate) fn token_validate(&mut self, pid: Pid) -> Result<PhysAddr, KernelError> {
        let (pt_slot, token_slot) = {
            let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
            (p.pt_ptr_slot(), p.token_slot())
        };
        // Both reads hit attacker-writable memory.
        let pcb_pt_ptr = PhysAddr::new(self.mem_read(pt_slot)?);
        let token_ptr = PhysAddr::new(self.mem_read(token_slot)?);
        self.stats.token_validations += 1;
        self.charge(CostKind::Token, cost::TOKEN_VALIDATE);
        let region = self.secure_region.expect("tokens imply ptstore");
        if !region.contains_range(token_ptr, 16) {
            self.stats.token_failures += 1;
            self.security_log
                .push(SecurityEvent::TokenPointerOutsideRegion {
                    pid,
                    ptr: token_ptr,
                });
            self.emit_token_validate(pid, false);
            return Err(TokenError::TokenOutsideSecureRegion.into());
        }
        // Token fields are read back with ld.pt — unforgeable by regular
        // stores.
        let t_pt = self.secure_u64_read(token_ptr)?;
        let t_user = self.secure_u64_read(token_ptr + 8)?;
        let token = Token::new(PhysAddr::new(t_pt), PhysAddr::new(t_user));
        match token.validate(pcb_pt_ptr, token_slot) {
            Ok(()) => {
                self.emit_token_validate(pid, true);
                Ok(pcb_pt_ptr)
            }
            Err(e) => {
                self.stats.token_failures += 1;
                self.security_log
                    .push(SecurityEvent::TokenRejected { pid, err: e });
                self.emit_token_validate(pid, false);
                Err(e.into())
            }
        }
    }

    fn emit_token_validate(&self, pid: Pid, ok: bool) {
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::Token {
                op: TokenOp::Validate,
                pid: u64::from(pid),
                ok,
            });
        }
    }

    /// Loads `pid`'s address space into the MMU (`switch_mm`): under PTStore
    /// this validates the token and then writes `satp` (with the S-bit).
    ///
    /// # Errors
    /// Token validation failures abort the switch — the PT-Reuse defense.
    pub fn activate_address_space(&mut self, pid: Pid) -> Result<(), KernelError> {
        let asid = self
            .procs
            .get(pid)
            .ok_or(KernelError::NoSuchProcess)?
            .aspace
            .asid;
        let pt_ptr = if self.cfg.defense.is_ptstore() && self.cfg.token_checks {
            self.token_validate(pid)?
        } else {
            // Baselines trust the PCB field as-is.
            let slot = self.procs.get(pid).expect("checked").pt_ptr_slot();
            PhysAddr::new(self.mem_read(slot)?)
        };
        self.harts[self.active_hart].mmu.satp = Satp::new(
            self.cfg.scheme,
            PhysPageNum::new(pt_ptr.as_u64() >> PAGE_SHIFT),
            asid,
            self.satp_s_bit(),
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection used by experiments
    // ------------------------------------------------------------------

    /// The current secure region (PTStore mode only).
    pub fn secure_region(&self) -> Option<SecureRegion> {
        self.secure_region
    }

    /// Free pages in the normal zone.
    pub fn normal_free_pages(&self) -> u64 {
        self.normal_zone.free_pages()
    }

    /// Free pages in the PTStore zone / pt area.
    pub fn pt_area_free_pages(&self) -> Option<u64> {
        self.pt_zone.as_ref().map(BuddyZone::free_pages)
    }

    /// The pid running on the active hart.
    pub fn current_pid(&self) -> Pid {
        self.harts[self.active_hart].current
    }

    /// The pid the next `fork` will hand out (canonical-state accessor: two
    /// machine states that differ only in the allocation cursor behave
    /// differently on the next fork, so state dedup must see it).
    pub fn next_pid(&self) -> Pid {
        self.next_pid
    }

    /// The ASID the next address-space creation will try (canonical-state
    /// accessor, same rationale as [`Self::next_pid`]).
    pub fn next_asid(&self) -> u16 {
        self.next_asid
    }

    /// The allocation-steering words of both slab caches (PCB, then the
    /// token cache when present), length-prefixed per
    /// [`SlabCache::canon_words`]. Canonical-state accessor: slab freelist
    /// shape and magazine order decide which addresses future PCB/token
    /// allocations return, so the model checker folds these into its state
    /// digest alongside [`Self::zone_free_blocks`].
    pub fn slab_canon_words(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.pcb_slab.canon_words(&mut out);
        match self.token_slab.as_ref() {
            Some(slab) => {
                out.push(1);
                slab.canon_words(&mut out);
            }
            None => out.push(0),
        }
        out
    }

    /// Every free buddy block of every zone as `(zone name, order, start)`,
    /// in deterministic order (normal zone first, then the PTStore zone;
    /// ascending order/address within each). Canonical-state accessor: op
    /// interleavings that leave different free-list shapes behind allocate
    /// differently afterwards, so the model checker folds this into its
    /// state digest.
    pub fn zone_free_blocks(&self) -> Vec<(&'static str, u8, PhysPageNum)> {
        let mut v: Vec<(&'static str, u8, PhysPageNum)> = self
            .normal_zone
            .free_blocks()
            .map(|(o, p)| (self.normal_zone.name(), o, p))
            .collect();
        if let Some(z) = self.pt_zone.as_ref() {
            v.extend(z.free_blocks().map(|(o, p)| (z.name(), o, p)));
        }
        v
    }

    /// The kernel root page table (the template for process kernel halves).
    pub fn kernel_root(&self) -> PhysPageNum {
        self.kernel_root
    }

    /// Direct-map virtual address of `pa` (what kernel code would use).
    pub fn direct_map(&self, pa: PhysAddr) -> VirtAddr {
        direct_map_va(pa)
    }

    /// Fault-injection hook for the allocator-metadata attack of §V-E3: the
    /// next page-table allocation will return `ppn` (an in-use page),
    /// modelling corrupted allocator freelists.
    pub fn inject_allocator_overlap(&mut self, ppn: PhysPageNum) {
        self.injected_overlap = Some(ppn);
    }

    /// Fault-injection hook for the IPI fabric (`ptstore-fault`): perturbs
    /// the next TLB-shootdown broadcast per `fault`.
    pub fn inject_ipi_fault(&mut self, fault: IpiFault) {
        self.ipi_fault = Some(fault);
    }

    /// Fault-injection hook for the drain machinery (`ptstore-fault`):
    /// perturbs the next deferred-shootdown drain (or watermark trigger)
    /// per `fault`. See [`crate::drain::DrainFault`].
    pub fn inject_drain_fault(&mut self, fault: crate::drain::DrainFault) {
        self.drain_fault = Some(fault);
    }

    /// True while a planted drain fault has not yet been consumed by a
    /// drain (or watermark trigger) — the injector uses this to tell a
    /// fault that actually landed from one whose site never came up.
    pub fn drain_fault_pending(&self) -> bool {
        self.drain_fault.is_some()
    }

    /// Disarms any planted drain fault and returns it, so an injector whose
    /// exercise never reached a drain site can withdraw the fault instead
    /// of letting it leak into later, unrelated operations.
    pub fn take_drain_fault(&mut self) -> Option<crate::drain::DrainFault> {
        self.drain_fault.take()
    }

    /// Plants one `(va, asid)` page invalidation in the active hart's
    /// deferred queue, exactly as an unmap would (local sfence eager,
    /// remote broadcast deferred; falls through to the eager flush when
    /// batching is off or the machine has one hart). A `ptstore-fault` /
    /// regression-test surface: it manufactures the non-empty-queue states
    /// the drain-fault and ASID-rollover scenarios need without replaying
    /// a whole workload.
    pub fn inject_deferred_flush(&mut self, va: VirtAddr, asid: u16) {
        self.queue_flush_page(va, asid);
    }

    /// Every `(asid, vpn)` pair currently queued for a deferred shootdown,
    /// across **all** harts (invariant-oracle accessor: a stale TLB entry
    /// whose invalidation is still queued is pending, not lost).
    pub fn queued_flush_pairs(&self) -> Vec<(u16, u64)> {
        let mut v: Vec<(u16, u64)> = self
            .harts
            .iter()
            .flat_map(|h| h.flush_queue.iter().map(|&(vpn, asid)| (asid, vpn)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True once the 15-bit ASID allocator has wrapped: every ASID handed
    /// out from here on is a reuse, and allocation force-drains deferred
    /// flushes under every drain policy.
    pub fn asid_rollover_happened(&self) -> bool {
        self.asid_wrapped
    }

    /// Overrides the next ASID to allocate (test surface: the rollover
    /// regression tests fast-forward the 15-bit allocator to its wrap
    /// point instead of creating 32 766 address spaces).
    pub fn set_next_asid(&mut self, asid: u16) {
        self.next_asid = asid;
    }

    /// The page-table pages of the shared kernel address-space template,
    /// root included (invariant-oracle accessor).
    pub fn kernel_pt_pages(&self) -> &[PhysPageNum] {
        &self.kernel_pt_pages
    }

    /// Issues one SBI call against this machine's firmware and PMP, paying
    /// the modeled SBI transition cost. The fault campaign uses this to
    /// model rogue secure-region requests the firmware must refuse; the
    /// kernel's own paths go through dedicated wrappers.
    pub fn sbi_call(&mut self, call: SbiCall) -> SbiResult {
        self.charge(CostKind::Sbi, cost::SBI_CALL);
        self.sbi.handle(&mut self.bus, call)
    }

    /// Zone-exhaustion fault: drains every free page of the PTStore zone
    /// into a holding list, so the next page-table allocation faces an
    /// empty zone (mid-`fork` exhaustion). Returns the number of pages
    /// drained. Undo with [`Self::refill_pt_zone`].
    pub fn drain_pt_zone(&mut self) -> u64 {
        let Some(zone) = self.pt_zone.as_mut() else {
            return 0;
        };
        let mut drained = 0;
        while let Ok(ppn) = zone.alloc(0, false) {
            self.drained_pt_pages.push(ppn);
            drained += 1;
        }
        drained
    }

    /// Returns every page held by [`Self::drain_pt_zone`] to the PTStore
    /// zone. Pages the zone no longer covers (the region grew and the zone
    /// was re-based meanwhile) are dropped silently.
    pub fn refill_pt_zone(&mut self) {
        let Some(zone) = self.pt_zone.as_mut() else {
            self.drained_pt_pages.clear();
            return;
        };
        for ppn in std::mem::take(&mut self.drained_pt_pages) {
            if zone.contains(ppn) {
                let _ = zone.free(ppn);
            }
        }
    }

    /// The PT-Rand window base + secret offset (tests/attacks compute
    /// randomised addresses with this after "leaking" the global).
    pub fn pt_rand_window(&self) -> Option<u64> {
        (self.cfg.defense == DefenseMode::PtRand)
            .then_some(PT_RAND_WINDOW_BASE + self.pt_rand_offset)
    }

    /// Queues `bytes` of incoming data on socket `id` (the benchmark
    /// client / NIC side of the network model).
    pub fn socket_push_rx(&mut self, id: u32, bytes: u64) {
        if let Some(s) = self.sockets.get_mut(&id) {
            s.rx += bytes;
        }
    }
}
