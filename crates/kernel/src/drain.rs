//! Drain policies for the batched-shootdown machinery.
//!
//! PR 8's deferral drains the per-hart `(asid, vpn)` flush queue at fixed
//! security boundaries only. A production kernel also drains *early* for
//! performance (bounding queue depth, and with it the worst-case remote
//! staleness window and the size of each IPI round) and at ASID-lifecycle
//! events (so a recycled ASID can never go live while invalidations for
//! its previous generation still sit in a queue). [`DrainPolicy`] names
//! those placements.
//!
//! Two drain kinds are **mandatory under every policy** and are not
//! negotiable through this knob:
//!
//! * **Security boundaries** — secure-region adjustment, context switch,
//!   hart handoff, end of every unmap/protect operation (including error
//!   paths), CoW breaks. Skipping one leaves a remote TLB entry alive past
//!   the point where the kernel's security argument assumed it dead; the
//!   fault campaign's `drain-drop` class proves the invariant oracle flags
//!   exactly that.
//! * **ASID reuse** — once the 15-bit ASID space has rolled over, every
//!   allocation hands out a value some earlier address-space generation
//!   used. Queued invalidations tagged with that ASID belong to the *old*
//!   generation; draining before the new space goes live keeps deferred
//!   state from straddling generations.
//!
//! What the policy selects is the *additional*, purely performance-placed
//! drains: nothing ([`DrainPolicy::Boundary`]), a queue-depth watermark
//! ([`DrainPolicy::Watermark`]), or paranoid generation hygiene that
//! treats every ASID hand-out as a potential reuse
//! ([`DrainPolicy::AsidRecycle`]). Early drains are behaviour-preserving:
//! they flush queued pages sooner than a boundary would, which can only
//! shrink remote staleness windows — the policy-differential tests pin
//! final TLB state byte-identical across policies.

use core::fmt;
use core::str::FromStr;

use serde::{Deserialize, Serialize};

/// Queue depth at which [`DrainPolicy::Watermark`] drains when no explicit
/// depth is given (`--drain-policy watermark`).
pub const DEFAULT_WATERMARK_DEPTH: u32 = 8;

/// When, beyond the mandatory security boundaries, the active hart's
/// deferred-shootdown queue is drained. See the module docs for the
/// policy × event matrix; `Boundary` is the default and reproduces PR 8's
/// behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DrainPolicy {
    /// Drain only at the mandatory points: security boundaries, and ASID
    /// reuse after rollover. Deepest queues, fewest IPI rounds.
    #[default]
    Boundary,
    /// Additionally drain the moment the active hart's queue reaches
    /// `depth` entries. Caps queue depth (and each drain's batch size) at
    /// the cost of extra IPI rounds between boundaries.
    Watermark {
        /// Queue depth (in queued page invalidations) that triggers an
        /// early drain. Must be non-zero.
        depth: u32,
    },
    /// Additionally drain at *every* ASID allocation, treating each
    /// hand-out as a potential reuse — the conservative policy a kernel
    /// with a small ASID space effectively runs. (Reuse after rollover
    /// drains under every policy; this variant merely refuses to rely on
    /// the rollover bookkeeping.)
    AsidRecycle,
}

impl DrainPolicy {
    /// The watermark depth, when this policy has one.
    pub fn watermark_depth(self) -> Option<u32> {
        match self {
            DrainPolicy::Watermark { depth } => Some(depth),
            _ => None,
        }
    }

    /// True when this policy drains at every ASID allocation (not just at
    /// reuse after rollover, which is mandatory under every policy).
    pub fn drains_on_asid_alloc(self) -> bool {
        matches!(self, DrainPolicy::AsidRecycle)
    }
}

impl fmt::Display for DrainPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainPolicy::Boundary => f.write_str("boundary"),
            DrainPolicy::Watermark { depth } => write!(f, "watermark:{depth}"),
            DrainPolicy::AsidRecycle => f.write_str("asid-recycle"),
        }
    }
}

/// Why a drain-policy string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainPolicyParseError(String);

impl fmt::Display for DrainPolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown drain policy `{}` (expected `boundary`, `watermark[:depth]`, \
             or `asid-recycle`)",
            self.0
        )
    }
}

impl std::error::Error for DrainPolicyParseError {}

impl FromStr for DrainPolicy {
    type Err = DrainPolicyParseError;

    /// Parses `boundary`, `watermark` (default depth
    /// [`DEFAULT_WATERMARK_DEPTH`]), `watermark:<depth>`, or
    /// `asid-recycle` — the `--drain-policy` flag vocabulary.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "boundary" => Ok(DrainPolicy::Boundary),
            "watermark" => Ok(DrainPolicy::Watermark {
                depth: DEFAULT_WATERMARK_DEPTH,
            }),
            "asid-recycle" => Ok(DrainPolicy::AsidRecycle),
            other => match other.strip_prefix("watermark:") {
                Some(depth) => depth
                    .parse::<u32>()
                    .ok()
                    .filter(|&d| d > 0)
                    .map(|depth| DrainPolicy::Watermark { depth })
                    .ok_or_else(|| DrainPolicyParseError(other.into())),
                None => Err(DrainPolicyParseError(other.into())),
            },
        }
    }
}

/// A planted perturbation of the drain machinery (the `ptstore-fault`
/// drain tap; see [`Kernel::inject_drain_fault`](crate::Kernel::inject_drain_fault)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainFault {
    /// The next drain silently discards one queued `(asid, vpn)` entry
    /// (`index`, modulo the deduplicated queue length) before the batched
    /// broadcast — the remote TLBs that entry targeted are never flushed.
    /// This models a missed-drain kernel bug; on a security boundary the
    /// invariant oracle's TLB-hygiene sweep must flag the stale entry.
    DropQueuedNext {
        /// Which deduplicated queue slot is lost.
        index: u64,
    },
    /// The next watermark-triggered early drain is skipped whole: the
    /// queue keeps its entries past the configured depth until the next
    /// mandatory boundary drain delivers them. Benign by design — the
    /// watermark placement is pure performance.
    SkipWatermarkNext,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_flag_vocabulary() {
        assert_eq!("boundary".parse(), Ok(DrainPolicy::Boundary));
        assert_eq!(
            "watermark".parse(),
            Ok(DrainPolicy::Watermark {
                depth: DEFAULT_WATERMARK_DEPTH
            })
        );
        assert_eq!(
            "watermark:3".parse(),
            Ok(DrainPolicy::Watermark { depth: 3 })
        );
        assert_eq!("asid-recycle".parse(), Ok(DrainPolicy::AsidRecycle));
        for bad in ["", "watermark:", "watermark:0", "watermark:x", "eager"] {
            assert!(
                bad.parse::<DrainPolicy>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn displays_round_trip() {
        for p in [
            DrainPolicy::Boundary,
            DrainPolicy::Watermark { depth: 17 },
            DrainPolicy::AsidRecycle,
        ] {
            assert_eq!(p.to_string().parse(), Ok(p));
        }
    }

    #[test]
    fn policy_helpers() {
        assert_eq!(DrainPolicy::default(), DrainPolicy::Boundary);
        assert_eq!(DrainPolicy::Boundary.watermark_depth(), None);
        assert_eq!(
            DrainPolicy::Watermark { depth: 4 }.watermark_depth(),
            Some(4)
        );
        assert!(DrainPolicy::AsidRecycle.drains_on_asid_alloc());
        assert!(!DrainPolicy::Boundary.drains_on_asid_alloc());
    }

    #[test]
    fn drain_faults_compare() {
        assert_ne!(
            DrainFault::DropQueuedNext { index: 0 },
            DrainFault::SkipWatermarkNext
        );
    }
}
