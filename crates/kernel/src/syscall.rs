//! The syscall layer: dispatch costs, Clang-CFI indirect-call accounting,
//! and the syscalls the LMBench/NGINX/Redis workloads exercise.
//!
//! Each syscall carries a profile: a base kernel-work cost plus the number of
//! indirect calls on its hot path. When the kernel is built with Clang CFI
//! (the paper's threat-model prerequisite), every indirect call pays a check
//! — that is the `CFI` series of Figures 4–7.

use ptstore_core::{AccessKind, VirtAddr, MIB, PAGE_SIZE};
use ptstore_mmu::PteFlags;

use crate::cycles::{cost, CostKind};
use crate::error::KernelError;
use crate::fs::FileStat;
use crate::kernel::{Kernel, Socket};
use crate::pagetable::HUGE_PAGE_SPAN;
use crate::process::{FdEntry, Pid, SigAction, VmArea, VmPerms};

/// Static per-syscall cost profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallProfile {
    /// Syscall name as it appears in trace events.
    pub name: &'static str,
    /// Fixed kernel-path work (cycles) beyond entry/exit.
    pub base_cycles: u64,
    /// Indirect calls on the hot path (CFI-checked when CFI is on).
    pub indirect_calls: u64,
}

/// Profiles roughly shaped after Linux hot paths: VFS-heavy calls make more
/// indirect calls (file_operations dispatch), process-management calls make
/// many (security hooks, scheduler class methods).
pub mod profile {
    use super::SyscallProfile;

    /// `getppid` — LMBench's "null" syscall.
    pub const NULL: SyscallProfile = SyscallProfile {
        name: "getppid",
        base_cycles: 30,
        indirect_calls: 1,
    };
    /// `read` from /dev/zero (LMBench read).
    pub const READ: SyscallProfile = SyscallProfile {
        name: "read",
        base_cycles: 180,
        indirect_calls: 8,
    };
    /// `write` to /dev/null-ish console (LMBench write).
    pub const WRITE: SyscallProfile = SyscallProfile {
        name: "write",
        base_cycles: 170,
        indirect_calls: 8,
    };
    /// `stat`.
    pub const STAT: SyscallProfile = SyscallProfile {
        name: "stat",
        base_cycles: 420,
        indirect_calls: 6,
    };
    /// `fstat`.
    pub const FSTAT: SyscallProfile = SyscallProfile {
        name: "fstat",
        base_cycles: 230,
        indirect_calls: 4,
    };
    /// `open`+`close`.
    pub const OPEN_CLOSE: SyscallProfile = SyscallProfile {
        name: "open/close",
        base_cycles: 700,
        indirect_calls: 14,
    };
    /// `select` on 10 fds.
    pub const SELECT_10: SyscallProfile = SyscallProfile {
        name: "select",
        base_cycles: 520,
        indirect_calls: 18,
    };
    /// Signal handler installation.
    pub const SIG_INSTALL: SyscallProfile = SyscallProfile {
        name: "sigaction",
        base_cycles: 190,
        indirect_calls: 3,
    };
    /// Signal delivery/catch.
    pub const SIG_CATCH: SyscallProfile = SyscallProfile {
        name: "sigcatch",
        base_cycles: 680,
        indirect_calls: 5,
    };
    /// `pipe` round trip.
    pub const PIPE: SyscallProfile = SyscallProfile {
        name: "pipe",
        base_cycles: 520,
        indirect_calls: 6,
    };
    /// `fork`(+exit+wait measured by the driver).
    pub const FORK: SyscallProfile = SyscallProfile {
        name: "fork",
        base_cycles: 0,
        indirect_calls: 29,
    };
    /// `execve`.
    pub const EXEC: SyscallProfile = SyscallProfile {
        name: "execve",
        base_cycles: 0,
        indirect_calls: 28,
    };
    /// `exit`.
    pub const EXIT: SyscallProfile = SyscallProfile {
        name: "exit",
        base_cycles: 0,
        indirect_calls: 14,
    };
    /// `wait`.
    pub const WAIT: SyscallProfile = SyscallProfile {
        name: "wait",
        base_cycles: 240,
        indirect_calls: 6,
    };
    /// `mmap`/`munmap`.
    pub const MMAP: SyscallProfile = SyscallProfile {
        name: "mmap",
        base_cycles: 480,
        indirect_calls: 7,
    };
    /// `brk`.
    pub const BRK: SyscallProfile = SyscallProfile {
        name: "brk",
        base_cycles: 260,
        indirect_calls: 4,
    };
    /// `sched_yield` (context-switch driver).
    pub const YIELD: SyscallProfile = SyscallProfile {
        name: "sched_yield",
        base_cycles: 120,
        indirect_calls: 6,
    };
    /// Socket accept (NGINX/Redis model).
    pub const ACCEPT: SyscallProfile = SyscallProfile {
        name: "accept",
        base_cycles: 900,
        indirect_calls: 22,
    };
    /// Socket recv.
    pub const RECV: SyscallProfile = SyscallProfile {
        name: "recv",
        base_cycles: 420,
        indirect_calls: 16,
    };
    /// Socket send.
    pub const SEND: SyscallProfile = SyscallProfile {
        name: "send",
        base_cycles: 460,
        indirect_calls: 18,
    };
    /// Socket close.
    pub const SOCK_CLOSE: SyscallProfile = SyscallProfile {
        name: "sock_close",
        base_cycles: 380,
        indirect_calls: 12,
    };
}

impl Kernel {
    /// Common syscall entry: trap cost + CFI checks for the path's indirect
    /// calls.
    pub(crate) fn syscall_enter(&mut self, p: SyscallProfile) {
        self.stats.syscalls += 1;
        if let Some(sink) = &self.trace {
            sink.emit(ptstore_trace::TraceEvent::SyscallEnter { name: p.name });
            self.syscall_mark = Some((p.name, self.cycles.total()));
        }
        self.charge(CostKind::Kernel, cost::SYSCALL_ENTRY + p.base_cycles);
        self.charge_indirect_calls(p.indirect_calls);
    }

    /// Common syscall exit.
    pub(crate) fn syscall_exit(&mut self) {
        self.charge(CostKind::Kernel, cost::SYSCALL_EXIT);
        if let Some((name, entry_total)) = self.syscall_mark.take() {
            if let Some(sink) = &self.trace {
                sink.emit(ptstore_trace::TraceEvent::SyscallExit {
                    name,
                    cycles: self.cycles.since(entry_total),
                });
            }
        }
    }

    /// Charges CFI checks when the kernel is CFI-instrumented.
    pub(crate) fn charge_indirect_calls(&mut self, n: u64) {
        if self.cfg.cfi {
            self.charge(CostKind::CfiCheck, n * cost::CFI_CHECK);
        }
    }

    /// Charges the user↔kernel copy cost for `bytes`.
    fn charge_copy(&mut self, bytes: u64) {
        self.charge(CostKind::MemAccess, bytes.div_ceil(8) * cost::COPY_BYTE_X8);
    }

    // ------------------------------------------------------------------
    // Trivial syscalls
    // ------------------------------------------------------------------

    /// `getppid` — the LMBench null syscall.
    pub fn sys_null(&mut self) -> Result<Pid, KernelError> {
        self.syscall_enter(profile::NULL);
        let r = self
            .procs
            .get(self.current_pid())
            .ok_or(KernelError::NoSuchProcess)?
            .parent
            .unwrap_or(0);
        self.syscall_exit();
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Files
    // ------------------------------------------------------------------

    /// `open()`.
    pub fn sys_open(&mut self, name: &str) -> Result<i32, KernelError> {
        self.syscall_enter(profile::OPEN_CLOSE);
        let exists = self.fs.exists(name);
        let r = if exists {
            let p = self
                .procs
                .get_mut(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            Ok(p.fds.insert(FdEntry::File {
                name: name.to_string(),
                offset: 0,
            }))
        } else {
            Err(KernelError::NoSuchFile)
        };
        self.syscall_exit();
        r
    }

    /// `close()`.
    pub fn sys_close(&mut self, fd: i32) -> Result<(), KernelError> {
        self.syscall_enter(profile::OPEN_CLOSE);
        let entry = {
            let p = self
                .procs
                .get_mut(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            p.fds.remove(fd).ok_or(KernelError::BadFd)
        };
        let r = entry.map(|e| match e {
            FdEntry::PipeRead { id } => self.pipes.close_end(id, false),
            FdEntry::PipeWrite { id } => self.pipes.close_end(id, true),
            FdEntry::Socket { id } => {
                self.sockets.remove(&id);
            }
            _ => {}
        });
        self.syscall_exit();
        r
    }

    /// `read()` — files, pipes, and sockets.
    pub fn sys_read(&mut self, fd: i32, len: u64) -> Result<Vec<u8>, KernelError> {
        self.syscall_enter(profile::READ);
        let r = self.do_read(fd, len);
        if let Ok(data) = &r {
            self.charge_copy(data.len() as u64);
        }
        self.syscall_exit();
        r
    }

    /// `read()` for callers that discard the data: identical charges, fd
    /// bookkeeping, and result length as [`Self::sys_read`], without
    /// materializing the buffer on the host. The macro-workload drivers
    /// (nginx's sendfile loop, redis payloads) use this.
    pub fn sys_read_discard(&mut self, fd: i32, len: u64) -> Result<u64, KernelError> {
        self.syscall_enter(profile::READ);
        let r = self.do_read_len(fd, len);
        if let Ok(n) = r {
            self.charge_copy(n);
        }
        self.syscall_exit();
        r
    }

    fn do_read(&mut self, fd: i32, len: u64) -> Result<Vec<u8>, KernelError> {
        let entry = {
            let p = self
                .procs
                .get(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            p.fds.get(fd).cloned().ok_or(KernelError::BadFd)?
        };
        match entry {
            FdEntry::File { name, offset } => {
                let data = self
                    .fs
                    .read(&name, offset, len)
                    .ok_or(KernelError::NoSuchFile)?
                    .to_vec();
                let p = self.procs.get_mut(self.current_pid()).expect("exists");
                if let Some(FdEntry::File { offset, .. }) = p.fds.get_mut(fd) {
                    *offset += data.len() as u64;
                }
                Ok(data)
            }
            FdEntry::PipeRead { id } => {
                let pipe = self.pipes.get_mut(id).ok_or(KernelError::BadFd)?;
                if pipe.is_empty() && !pipe.at_eof() {
                    return Err(KernelError::WouldBlock);
                }
                Ok(pipe.read(len as usize))
            }
            FdEntry::Socket { id } => {
                let s = self.sockets.get_mut(&id).ok_or(KernelError::BadFd)?;
                let n = s.rx.min(len);
                s.rx -= n;
                Ok(vec![0u8; n as usize])
            }
            FdEntry::Console => Ok(Vec::new()),
            FdEntry::PipeWrite { .. } => Err(KernelError::BadFd),
        }
    }

    /// Length-only twin of [`Self::do_read`]: the same branch structure,
    /// error paths, fd-offset updates, and pipe/socket drains, returning the
    /// byte count that `do_read` would have returned as `data.len()`.
    fn do_read_len(&mut self, fd: i32, len: u64) -> Result<u64, KernelError> {
        let entry = {
            let p = self
                .procs
                .get(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            p.fds.get(fd).cloned().ok_or(KernelError::BadFd)?
        };
        match entry {
            FdEntry::File { name, offset } => {
                let n = self
                    .fs
                    .read(&name, offset, len)
                    .ok_or(KernelError::NoSuchFile)?
                    .len() as u64;
                let p = self.procs.get_mut(self.current_pid()).expect("exists");
                if let Some(FdEntry::File { offset, .. }) = p.fds.get_mut(fd) {
                    *offset += n;
                }
                Ok(n)
            }
            FdEntry::PipeRead { id } => {
                let pipe = self.pipes.get_mut(id).ok_or(KernelError::BadFd)?;
                if pipe.is_empty() && !pipe.at_eof() {
                    return Err(KernelError::WouldBlock);
                }
                Ok(pipe.discard(len as usize) as u64)
            }
            FdEntry::Socket { id } => {
                let s = self.sockets.get_mut(&id).ok_or(KernelError::BadFd)?;
                let n = s.rx.min(len);
                s.rx -= n;
                Ok(n)
            }
            FdEntry::Console => Ok(0),
            FdEntry::PipeWrite { .. } => Err(KernelError::BadFd),
        }
    }

    /// `write()`.
    pub fn sys_write(&mut self, fd: i32, data: &[u8]) -> Result<u64, KernelError> {
        self.syscall_enter(profile::WRITE);
        self.charge_copy(data.len() as u64);
        let r = self.do_write(fd, data);
        self.syscall_exit();
        r
    }

    fn do_write(&mut self, fd: i32, data: &[u8]) -> Result<u64, KernelError> {
        let entry = {
            let p = self
                .procs
                .get(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            p.fds.get(fd).cloned().ok_or(KernelError::BadFd)?
        };
        match entry {
            FdEntry::File { name, offset } => {
                let new_size = self
                    .fs
                    .write(&name, offset, data)
                    .ok_or(KernelError::NoSuchFile)?;
                let p = self.procs.get_mut(self.current_pid()).expect("exists");
                if let Some(FdEntry::File { offset, .. }) = p.fds.get_mut(fd) {
                    *offset += data.len() as u64;
                }
                let _ = new_size;
                Ok(data.len() as u64)
            }
            FdEntry::PipeWrite { id } => {
                let pipe = self.pipes.get_mut(id).ok_or(KernelError::BadFd)?;
                let n = pipe.write(data);
                if n == 0 {
                    Err(KernelError::WouldBlock)
                } else {
                    Ok(n as u64)
                }
            }
            FdEntry::Socket { id } => {
                let s = self.sockets.get_mut(&id).ok_or(KernelError::BadFd)?;
                s.tx += data.len() as u64;
                self.charge(CostKind::Io, data.len() as u64 / 16);
                Ok(data.len() as u64)
            }
            FdEntry::Console => {
                self.charge(CostKind::Io, 200);
                Ok(data.len() as u64)
            }
            FdEntry::PipeRead { .. } => Err(KernelError::BadFd),
        }
    }

    /// `stat()`.
    pub fn sys_stat(&mut self, name: &str) -> Result<FileStat, KernelError> {
        self.syscall_enter(profile::STAT);
        let r = self.fs.stat(name).ok_or(KernelError::NoSuchFile);
        self.syscall_exit();
        r
    }

    /// `fstat()`.
    pub fn sys_fstat(&mut self, fd: i32) -> Result<FileStat, KernelError> {
        self.syscall_enter(profile::FSTAT);
        let r = {
            let p = self
                .procs
                .get(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            match p.fds.get(fd) {
                Some(FdEntry::File { name, .. }) => {
                    let name = name.clone();
                    self.fs.stat(&name).ok_or(KernelError::NoSuchFile)
                }
                Some(_) => Ok(FileStat {
                    size: 0,
                    mode: 0o600,
                    ino: 0,
                }),
                None => Err(KernelError::BadFd),
            }
        };
        self.syscall_exit();
        r
    }

    /// `select()` over `nfds` descriptors (latency scales mildly with n).
    pub fn sys_select(&mut self, nfds: u64) -> Result<u64, KernelError> {
        self.syscall_enter(profile::SELECT_10);
        self.charge(CostKind::Kernel, 14 * nfds);
        self.charge_indirect_calls(nfds / 4);
        self.syscall_exit();
        Ok(nfds)
    }

    /// `pipe()` — returns (read fd, write fd).
    pub fn sys_pipe(&mut self) -> Result<(i32, i32), KernelError> {
        self.syscall_enter(profile::PIPE);
        let id = self.pipes.create();
        let p = self
            .procs
            .get_mut(self.current_pid())
            .ok_or(KernelError::NoSuchProcess)?;
        let r = p.fds.insert(FdEntry::PipeRead { id });
        let w = p.fds.insert(FdEntry::PipeWrite { id });
        self.syscall_exit();
        Ok((r, w))
    }

    // ------------------------------------------------------------------
    // Signals
    // ------------------------------------------------------------------

    /// `sigaction()` — install a handler.
    pub fn sys_signal_install(&mut self, signum: usize) -> Result<(), KernelError> {
        self.syscall_enter(profile::SIG_INSTALL);
        let r = {
            let p = self
                .procs
                .get_mut(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            if signum == 0 || signum >= 32 {
                Err(KernelError::BadAddress)
            } else {
                p.signals.actions[signum] = SigAction::Handler;
                Ok(())
            }
        };
        self.syscall_exit();
        r
    }

    /// `kill()` + immediate delivery to self (the LMBench catch test).
    pub fn sys_signal_catch(&mut self, signum: usize) -> Result<(), KernelError> {
        self.syscall_enter(profile::SIG_CATCH);
        let r = {
            let p = self
                .procs
                .get_mut(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            if signum == 0 || signum >= 32 {
                Err(KernelError::BadAddress)
            } else if p.signals.actions[signum] == SigAction::Handler {
                p.signals.caught += 1;
                Ok(())
            } else {
                p.signals.pending |= 1 << signum;
                Ok(())
            }
        };
        self.syscall_exit();
        r
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// `fork()`.
    pub fn sys_fork(&mut self) -> Result<Pid, KernelError> {
        self.syscall_enter(profile::FORK);
        let r = self.do_fork();
        self.syscall_exit();
        r
    }

    /// `clone(CLONE_VM)` — spawn a thread sharing the address space.
    pub fn sys_clone_thread(&mut self) -> Result<Pid, KernelError> {
        self.syscall_enter(profile::FORK);
        let r = self.do_clone_thread();
        self.syscall_exit();
        r
    }

    /// `execve()`.
    pub fn sys_exec(&mut self) -> Result<(), KernelError> {
        self.syscall_enter(profile::EXEC);
        let r = self.do_exec();
        self.syscall_exit();
        r
    }

    /// `exit()`.
    pub fn sys_exit(&mut self, code: i32) -> Result<(), KernelError> {
        self.syscall_enter(profile::EXIT);
        let r = self.do_exit(code);
        self.syscall_exit();
        r
    }

    /// `wait()`.
    pub fn sys_wait(&mut self) -> Result<(Pid, i32), KernelError> {
        self.syscall_enter(profile::WAIT);
        let r = self.do_wait();
        self.syscall_exit();
        r
    }

    /// `sched_yield()`.
    pub fn sys_yield(&mut self) -> Result<(), KernelError> {
        self.syscall_enter(profile::YIELD);
        let r = self.do_yield();
        self.syscall_exit();
        r
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// `mmap()` anonymous memory; returns the mapped address. Placement is
    /// bump-allocated from the mmap cursor and falls back to a first-fit
    /// search of the mmap window when the cursor reaches the stack guard —
    /// so unmap/remap churn can run indefinitely.
    pub fn sys_mmap(&mut self, len: u64) -> Result<VirtAddr, KernelError> {
        self.syscall_enter(profile::MMAP);
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mm = self.mm_owner_of(self.current_pid());
        let r = {
            let p = self.procs.get_mut(mm).ok_or(KernelError::NoSuchProcess)?;
            let stack_guard = crate::pagetable::USER_STACK_TOP - 64 * PAGE_SIZE;
            let start = if p.mmap_cursor + len <= stack_guard {
                let s = p.mmap_cursor;
                p.mmap_cursor += len;
                Some(s)
            } else {
                // First-fit over the mmap window.
                let mut vmas: Vec<(u64, u64)> = p
                    .vmas
                    .iter()
                    .filter(|v| v.end > crate::pagetable::USER_MMAP_BASE && v.start < stack_guard)
                    .map(|v| (v.start, v.end))
                    .collect();
                vmas.sort_unstable();
                let mut candidate = crate::pagetable::USER_MMAP_BASE;
                let mut found = None;
                for (vs, ve) in vmas {
                    if candidate + len <= vs {
                        found = Some(candidate);
                        break;
                    }
                    candidate = candidate.max(ve);
                }
                if found.is_none() && candidate + len <= stack_guard {
                    found = Some(candidate);
                }
                found
            };
            match start {
                Some(start) => {
                    p.vmas.push(VmArea {
                        start,
                        end: start + len,
                        perms: VmPerms::RW,
                    });
                    Ok(VirtAddr::new(start))
                }
                None => Err(KernelError::OutOfMemory),
            }
        };
        self.syscall_exit();
        r
    }

    /// `mmap(MAP_HUGETLB)`-style anonymous memory: 2 MiB-aligned, backed by
    /// pinned 2 MiB blocks mapped as level-1 leaf PTEs, eagerly populated at
    /// map time (hugetlb reserves up front; there is no demand-fault path
    /// for huge pages). Returns the mapped address.
    pub fn sys_mmap_huge(&mut self, len: u64) -> Result<VirtAddr, KernelError> {
        self.syscall_enter(profile::MMAP);
        let r = self.do_mmap_huge(len);
        self.syscall_exit();
        r
    }

    fn do_mmap_huge(&mut self, len: u64) -> Result<VirtAddr, KernelError> {
        let len = len.div_ceil(2 * MIB) * (2 * MIB);
        let mm = self.mm_owner_of(self.current_pid());
        let start = {
            let p = self.procs.get_mut(mm).ok_or(KernelError::NoSuchProcess)?;
            let stack_guard = crate::pagetable::USER_STACK_TOP - 64 * PAGE_SIZE;
            let aligned = p.mmap_cursor.div_ceil(2 * MIB) * (2 * MIB);
            if aligned + len > stack_guard {
                return Err(KernelError::OutOfMemory);
            }
            p.mmap_cursor = aligned + len;
            p.vmas.push(VmArea {
                start: aligned,
                end: aligned + len,
                perms: VmPerms::RW,
            });
            aligned
        };
        for off in (0..len).step_by(2 * MIB as usize) {
            let block = self.alloc_user_huge_block()?;
            self.page_refs.insert(block.as_u64(), 1);
            self.map_user_huge_page(
                mm,
                VirtAddr::new(start + off),
                block,
                PteFlags::user_rw(),
                false,
            )?;
        }
        Ok(VirtAddr::new(start))
    }

    /// `munmap()`: unmaps the area starting at `addr`. A huge mapping wholly
    /// inside the range is dropped block-at-a-time; one that straddles the
    /// range boundary is split first, then handled page-by-page.
    pub fn sys_munmap(&mut self, addr: VirtAddr, len: u64) -> Result<(), KernelError> {
        self.syscall_enter(profile::MMAP);
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let pid = self.current_pid();
        // Unmap any resident pages.
        let mut va = addr;
        let end = addr + len;
        let mut r = Ok(());
        while va < end {
            let mapped = {
                let p = self.procs.get(pid).ok_or(KernelError::NoSuchProcess)?;
                p.aspace.mapping(va)
            };
            let Some(m) = mapped else {
                va += PAGE_SIZE;
                continue;
            };
            if m.huge {
                let span_aligned = va.as_u64().is_multiple_of(2 * MIB);
                if span_aligned && va + 2 * MIB <= end {
                    match self
                        .unmap_user_huge_page(pid, va)
                        .and_then(|block| self.put_user_huge_block(block))
                    {
                        Ok(()) => {
                            va += 2 * MIB;
                            continue;
                        }
                        Err(e) => {
                            r = Err(e);
                            break;
                        }
                    }
                }
                // Partial overlap: split, then retry this page as 4 KiB.
                if let Err(e) = self.split_huge_mapping(pid, va) {
                    r = Err(e);
                    break;
                }
                continue;
            }
            match self.unmap_user_page(pid, va) {
                Ok(ppn) => {
                    if let Err(e) = self.put_user_page(ppn) {
                        r = Err(e);
                        break;
                    }
                }
                Err(e) => {
                    r = Err(e);
                    break;
                }
            }
            va += PAGE_SIZE;
        }
        if r.is_ok() {
            let p = self.procs.get_mut(pid).ok_or(KernelError::NoSuchProcess)?;
            p.vmas
                .retain(|v| !(v.start == addr.as_u64() && v.end == addr.as_u64() + len));
        }
        // End of the unmap: the whole range's queued invalidations leave in
        // one batched broadcast (forced even on the error path — partially
        // unmapped pages must not linger in remote TLBs).
        self.drain_deferred_flushes();
        self.syscall_exit();
        r
    }

    /// `brk()`: grows (or shrinks) the heap; returns the new break.
    pub fn sys_brk(&mut self, new_brk: u64) -> Result<u64, KernelError> {
        self.syscall_enter(profile::BRK);
        let r = {
            let p = self
                .procs
                .get_mut(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            if !(crate::pagetable::USER_HEAP_BASE..crate::pagetable::USER_MMAP_BASE)
                .contains(&new_brk)
            {
                Err(KernelError::BadAddress)
            } else {
                p.brk = new_brk;
                if let Some(heap) = p
                    .vmas
                    .iter_mut()
                    .find(|v| v.start == crate::pagetable::USER_HEAP_BASE)
                {
                    heap.end = new_brk.div_ceil(PAGE_SIZE) * PAGE_SIZE;
                }
                Ok(new_brk)
            }
        };
        self.syscall_exit();
        r
    }

    /// `mprotect()`: changes a VMA's permissions and downgrades any resident
    /// PTEs — the page-table update path W^X policies exercise. Resident
    /// pages are rewritten through the defense channel and the stale
    /// translations flushed.
    pub fn sys_mprotect(
        &mut self,
        addr: VirtAddr,
        len: u64,
        perms: VmPerms,
    ) -> Result<(), KernelError> {
        self.syscall_enter(profile::MMAP);
        let r = self.do_mprotect(addr, len, perms);
        // Security boundary: mprotect may have stripped W (or R) from the
        // range — no hart may keep executing against the old permissions,
        // so the queued downgrades drain before the syscall returns (error
        // paths included: a partial downgrade still owes its broadcast).
        self.drain_deferred_flushes();
        self.syscall_exit();
        r
    }

    fn do_mprotect(&mut self, addr: VirtAddr, len: u64, perms: VmPerms) -> Result<(), KernelError> {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mm = self.mm_owner_of(self.current_pid());
        // Update the VMA (split handling kept simple: exact or inner range
        // updates the whole containing VMA's overlap by splitting).
        {
            let p = self.procs.get_mut(mm).ok_or(KernelError::NoSuchProcess)?;
            let vma = p
                .vmas
                .iter_mut()
                .find(|v| v.start <= addr.as_u64() && addr.as_u64() + len <= v.end)
                .ok_or(KernelError::BadAddress)?;
            if vma.start == addr.as_u64() && vma.end == addr.as_u64() + len {
                vma.perms = perms;
            } else {
                // Split: [start, addr) keeps old perms; [addr, addr+len) new;
                // [addr+len, end) keeps old.
                let old = *vma;
                vma.end = addr.as_u64();
                let mut tail = Vec::new();
                tail.push(VmArea {
                    start: addr.as_u64(),
                    end: addr.as_u64() + len,
                    perms,
                });
                if addr.as_u64() + len < old.end {
                    tail.push(VmArea {
                        start: addr.as_u64() + len,
                        end: old.end,
                        perms: old.perms,
                    });
                }
                if vma.start == vma.end {
                    // Fully replaced head.
                    *vma = tail.remove(0);
                }
                p.vmas.extend(tail);
            }
        }
        // Huge mappings first: a block wholly inside the range has its
        // level-1 leaf rewritten in place; one that straddles the boundary
        // is split so the 4 KiB loop below can retouch just the overlap.
        let start_vpn = addr.as_u64() >> 12;
        let end_vpn = (addr.as_u64() + len) >> 12;
        let asid = self
            .procs
            .get(mm)
            .ok_or(KernelError::NoSuchProcess)?
            .aspace
            .asid;
        let huge_bases: Vec<u64> = {
            let p = self.procs.get(mm).ok_or(KernelError::NoSuchProcess)?;
            p.aspace
                .user
                .range(start_vpn.saturating_sub(HUGE_PAGE_SPAN - 1)..end_vpn)
                .filter(|(&base, m)| m.huge && base + HUGE_PAGE_SPAN > start_vpn)
                .map(|(&base, _)| base)
                .collect()
        };
        for base in huge_bases {
            let base_va = VirtAddr::new(base << 12);
            if base >= start_vpn && base + HUGE_PAGE_SPAN <= end_vpn {
                let (root, block, cow) = {
                    let p = self.procs.get(mm).expect("exists");
                    let m = p.aspace.user.get(&base).expect("huge base present");
                    (p.aspace.root, m.ppn, m.cow)
                };
                let flags = mprotect_leaf_flags(perms, cow);
                let (slot, level) = self
                    .find_leaf(root, base_va)?
                    .ok_or(KernelError::BadAddress)?;
                debug_assert_eq!(level, 1, "huge shadow entry over a non-huge leaf");
                // ptstore-lint: hazard(shootdown-pairing) — mprotect may drop
                // W/R; cached span translations must be shot down too.
                self.pt_write(slot, ptstore_mmu::Pte::leaf(block, flags).bits())?;
                self.queue_flush_page(base_va, asid);
                if let Some(p) = self.procs.get_mut(mm) {
                    if let Some(m) = p.aspace.user.get_mut(&base) {
                        m.flags = flags;
                    }
                }
            } else {
                self.split_huge_mapping(mm, base_va)?;
            }
        }
        // Rewrite resident 4 KiB leaf PTEs to the new permissions.
        let resident: Vec<(u64, ptstore_core::PhysPageNum, bool)> = {
            let p = self.procs.get(mm).ok_or(KernelError::NoSuchProcess)?;
            p.aspace
                .user
                .range(start_vpn..end_vpn)
                .filter(|(_, m)| !m.huge)
                .map(|(&vpn, m)| (vpn, m.ppn, m.cow))
                .collect()
        };
        for (vpn, ppn, cow) in resident {
            let va = VirtAddr::new(vpn << 12);
            let root = self.procs.get(mm).expect("exists").aspace.root;
            let slot = self.leaf_slot(root, va)?.ok_or(KernelError::BadAddress)?;
            let flags = mprotect_leaf_flags(perms, cow);
            // ptstore-lint: hazard(shootdown-pairing) — mprotect may drop W/R;
            // cached translations with the old permissions must be shot down.
            self.pt_write(slot, ptstore_mmu::Pte::leaf(ppn, flags).bits())?;
            self.queue_flush_page(va, asid);
            if let Some(p) = self.procs.get_mut(mm) {
                if let Some(m) = p.aspace.user.get_mut(&vpn) {
                    m.flags = flags;
                }
            }
        }
        Ok(())
    }

    /// A user-space memory touch as a syscall-free event (page faults charge
    /// through the fault path). Exposed for the LMBench page-fault and mmap
    /// latency drivers.
    pub fn sys_touch(&mut self, va: VirtAddr, write: bool) -> Result<(), KernelError> {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.touch_user(va, kind)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sockets (NGINX/Redis workload model)
    // ------------------------------------------------------------------

    /// `accept()` a connection with `rx_bytes` of request data queued.
    pub fn sys_accept(&mut self, rx_bytes: u64) -> Result<i32, KernelError> {
        self.syscall_enter(profile::ACCEPT);
        let id = self.next_socket;
        self.next_socket += 1;
        self.sockets.insert(
            id,
            Socket {
                rx: rx_bytes,
                tx: 0,
            },
        );
        let r = {
            let p = self
                .procs
                .get_mut(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            Ok(p.fds.insert(FdEntry::Socket { id }))
        };
        self.syscall_exit();
        r
    }

    /// `recv()` on a socket fd.
    pub fn sys_recv(&mut self, fd: i32, len: u64) -> Result<u64, KernelError> {
        self.syscall_enter(profile::RECV);
        self.charge_copy(len);
        let r = self.do_read_len(fd, len);
        self.syscall_exit();
        r
    }

    /// `send()` on a socket fd.
    pub fn sys_send(&mut self, fd: i32, bytes: u64) -> Result<u64, KernelError> {
        self.syscall_enter(profile::SEND);
        self.charge_copy(bytes);
        let r = self.do_write_len(fd, bytes);
        self.syscall_exit();
        r
    }

    /// `write()` for payloads that are never inspected: identical charges,
    /// fd bookkeeping, and result as [`Self::sys_write`] with a zero
    /// buffer of `len` bytes, without materializing it on the host. The
    /// LMBench latency/bandwidth drivers and SPEC profiles use this.
    pub fn sys_write_discard(&mut self, fd: i32, len: u64) -> Result<u64, KernelError> {
        self.syscall_enter(profile::WRITE);
        self.charge_copy(len);
        let r = self.do_write_len(fd, len);
        self.syscall_exit();
        r
    }

    /// Length-only twin of [`Self::do_write`] for sinks that never look at
    /// the payload: the same branch structure, error paths, charges, and
    /// return values as a zero buffer of `len` bytes, buffer elided.
    fn do_write_len(&mut self, fd: i32, len: u64) -> Result<u64, KernelError> {
        let entry = {
            let p = self
                .procs
                .get(self.current_pid())
                .ok_or(KernelError::NoSuchProcess)?;
            p.fds.get(fd).cloned().ok_or(KernelError::BadFd)?
        };
        match entry {
            FdEntry::Socket { id } => {
                let s = self.sockets.get_mut(&id).ok_or(KernelError::BadFd)?;
                s.tx += len;
                self.charge(CostKind::Io, len / 16);
                Ok(len)
            }
            FdEntry::PipeWrite { id } => {
                let pipe = self.pipes.get_mut(id).ok_or(KernelError::BadFd)?;
                let n = pipe.write_zeros(len as usize);
                if n == 0 {
                    Err(KernelError::WouldBlock)
                } else {
                    Ok(n as u64)
                }
            }
            FdEntry::Console => {
                self.charge(CostKind::Io, 200);
                Ok(len)
            }
            // Regular files keep their contents observable (`regression`
            // diffs them): writes of real bytes stay on `do_write`.
            _ => self.do_write(fd, &vec![0u8; len as usize]),
        }
    }
}

/// Leaf flags for an mprotect'ed resident page: CoW-shared pages never get
/// W back directly (the fault path restores it when sharing breaks).
fn mprotect_leaf_flags(perms: VmPerms, cow: bool) -> PteFlags {
    let mut bits = PteFlags::V | PteFlags::U | PteFlags::A;
    if perms.read {
        bits |= PteFlags::R;
    }
    if perms.write && !cow {
        bits |= PteFlags::W | PteFlags::D;
    }
    if perms.exec {
        bits |= PteFlags::X;
    }
    PteFlags::from_bits(bits)
}
