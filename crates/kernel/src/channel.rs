//! The kernel's **only** gateway to raw physical memory.
//!
//! The paper's software support (§IV-C2) modifies LLVM so that every kernel
//! page-table accessor *must* compile to `ld.pt`/`sd.pt` — the secure channel
//! cannot be bypassed by construction. This module is the source-level twin
//! of that guarantee: every `Bus`/`PhysMem` access the kernel performs is
//! concentrated here, and `ptstore-lint`'s *channel-confinement* rule forbids
//! raw bus access anywhere else in `ptstore-kernel` (the M-mode firmware in
//! [`crate::sbi`] and two boot/host-switch sites carry explicit, justified
//! `ptstore-lint: allow(...)` markers).
//!
//! Grouped by trust level:
//!
//! * **Checked, channel-tagged accessors** — `Kernel::pt_read` /
//!   `Kernel::pt_write` (the `ld.pt`/`sd.pt` path), `Kernel::mem_read` /
//!   `Kernel::mem_write` (regular kernel data), and the token-field
//!   accessors. These go through the PMP and pay modeled cycles.
//! * **Host-side bulk helpers** — `Kernel::raw_copy_page` /
//!   `Kernel::raw_zero_page` / `Kernel::image_write_u64`: unchecked
//!   `PhysMem` operations used only where the modeled machine would issue a
//!   long run of ordinary stores to *non-page-table* frames (page migration,
//!   user-page scrubbing, writing the kernel image at boot). They never
//!   touch secure-region state behind the PMP's back except via
//!   `Kernel::zero_page`, whose first store is checked precisely so the
//!   channel permission is validated before the bulk clear.

use ptstore_core::{Channel, PhysAddr, PhysPageNum};

use crate::config::DefenseMode;
use crate::cycles::{cost, CostKind};
use crate::error::KernelError;
use crate::kernel::Kernel;

impl Kernel {
    /// A checked regular-channel 8-byte read (kernel data structures).
    pub(crate) fn mem_read(&mut self, pa: PhysAddr) -> Result<u64, KernelError> {
        self.charge(CostKind::MemAccess, cost::MEM_ACCESS);
        Ok(self.bus.read::<u64>(pa, Channel::Regular, self.kctx())?)
    }

    /// A checked regular-channel 8-byte write (kernel data structures).
    pub(crate) fn mem_write(&mut self, pa: PhysAddr, v: u64) -> Result<(), KernelError> {
        self.charge(CostKind::MemAccess, cost::MEM_ACCESS);
        Ok(self
            .bus
            .write::<u64>(pa, v, Channel::Regular, self.kctx())?)
    }

    /// A page-table read via the defense channel (`ld.pt` under PTStore).
    pub(crate) fn pt_read(&mut self, pa: PhysAddr) -> Result<u64, KernelError> {
        self.charge(CostKind::MemAccess, cost::MEM_ACCESS);
        let ch = self.pt_channel();
        Ok(self.bus.read::<u64>(pa, ch, self.kctx())?)
    }

    /// A page-table write via the defense channel (`sd.pt` under PTStore).
    /// The virtual-isolation baseline pays its write-window toll here.
    pub(crate) fn pt_write(&mut self, pa: PhysAddr, v: u64) -> Result<(), KernelError> {
        self.charge(CostKind::PtWrite, cost::MEM_ACCESS);
        if self.cfg.defense == DefenseMode::VirtualIsolation {
            self.charge(CostKind::VirtIsolationSwitch, cost::VIRT_ISO_WINDOW);
        }
        let ch = self.pt_channel();
        Ok(self.bus.write::<u64>(pa, v, ch, self.kctx())?)
    }

    /// An 8-byte secure-channel read (`ld.pt`) of a token field. Cycle
    /// accounting is the caller's: token costs are charged per operation
    /// ([`cost::TOKEN_VALIDATE`] etc.), not per store.
    pub(crate) fn secure_u64_read(&mut self, pa: PhysAddr) -> Result<u64, KernelError> {
        Ok(self.bus.read::<u64>(pa, Channel::SecurePt, self.kctx())?)
    }

    /// An 8-byte secure-channel write (`sd.pt`) of a token field. See
    /// [`Self::secure_u64_read`] for the cycle-accounting convention.
    pub(crate) fn secure_u64_write(&mut self, pa: PhysAddr, v: u64) -> Result<(), KernelError> {
        Ok(self
            .bus
            .write::<u64>(pa, v, Channel::SecurePt, self.kctx())?)
    }

    /// Zeroes a page through the appropriate channel; `secure` selects the
    /// `sd.pt` path.
    pub(crate) fn zero_page(&mut self, ppn: PhysPageNum, secure: bool) -> Result<(), KernelError> {
        self.charge(CostKind::MemAccess, cost::ZERO_PAGE);
        // One checked store validates the channel is actually permitted...
        let ch = if secure {
            Channel::SecurePt
        } else {
            Channel::Regular
        };
        self.bus.write::<u64>(ppn.base_addr(), 0, ch, self.kctx())?;
        // ...then the rest of the page is cleared in bulk.
        self.bus.mem_unchecked().zero_page(ppn);
        Ok(())
    }

    /// Copies one whole *data* frame host-side (page migration, CoW break).
    /// Never used on page-table frames — those are written PTE-by-PTE via
    /// [`Self::pt_write`] so the PMP adjudicates every store.
    pub(crate) fn raw_copy_page(
        &mut self,
        from: PhysPageNum,
        to: PhysPageNum,
    ) -> Result<(), KernelError> {
        Ok(self.bus.mem_unchecked().copy_page(from, to)?)
    }

    /// Scrubs one *data* frame host-side (freed user pages, vacated
    /// migration sources). Secure-region frames instead go through
    /// [`Self::zero_page`] with `secure = true` so the channel is checked.
    pub(crate) fn raw_zero_page(&mut self, ppn: PhysPageNum) {
        self.bus.mem_unchecked().zero_page(ppn);
    }

    /// Writes one word of the kernel image at boot (materialising the
    /// PT-Rand secret global). The image region predates the PMP program,
    /// so this is the loader's store, not a kernel runtime access.
    pub(crate) fn image_write_u64(&mut self, pa: PhysAddr, v: u64) -> Result<(), KernelError> {
        Ok(self.bus.mem_unchecked().write_u64(pa, v)?)
    }
}
