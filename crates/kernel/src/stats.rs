//! Kernel event counters and the security event log.

use core::fmt;

use ptstore_core::{PhysAddr, PhysPageNum, TokenError};
use ptstore_trace::Snapshot;
use serde::{Deserialize, Serialize};

use crate::process::Pid;

/// Aggregate kernel event counters (the model's `/proc/stat`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Syscalls dispatched.
    pub syscalls: u64,
    /// Successful forks.
    pub forks: u64,
    /// execs.
    pub execs: u64,
    /// Process exits.
    pub exits: u64,
    /// Context switches (`switch_mm` + `switch_to`).
    pub context_switches: u64,
    /// Page faults handled.
    pub page_faults: u64,
    /// Of which copy-on-write breaks.
    pub cow_faults: u64,
    /// Of which demand-zero/demand-map faults.
    pub demand_faults: u64,
    /// Secure-region dynamic adjustments performed (paper §IV-C1).
    pub adjustments: u64,
    /// Pages migrated by `alloc_contig_range` during adjustments.
    pub migrated_pages: u64,
    /// Zero-checks performed on fresh page-table pages (paper §V-E3).
    pub zero_checks: u64,
    /// Zero-checks that failed (attacks caught).
    pub zero_check_failures: u64,
    /// Token validations performed (paper §III-C3).
    pub token_validations: u64,
    /// Token validations that failed (attacks caught).
    pub token_failures: u64,
    /// TLB flush operations issued.
    pub sfences: u64,
    /// Cross-hart TLB-shootdown broadcasts (one per mapping change that had
    /// to reach remote harts; always 0 on single-hart machines).
    pub tlb_shootdowns: u64,
    /// Individual shootdown IPIs delivered to (and acked by) remote harts.
    pub shootdown_ipis: u64,
    /// Deferred-shootdown queue drains: batched IPI rounds that replaced a
    /// run of per-page broadcasts (0 unless `deferred_shootdowns` is on).
    pub deferred_drains: u64,
    /// Page invalidations coalesced into those drains (each would have been
    /// its own broadcast on the eager path).
    pub deferred_pages_coalesced: u64,
    /// Of those drains, how many a `Watermark` drain policy triggered early
    /// (queue depth reached the configured watermark before any boundary).
    pub watermark_drains: u64,
    /// Drains forced by the ASID lifecycle: a recycled (or, under the
    /// `AsidRecycle` policy, any newly allocated) ASID found invalidations
    /// still queued and flushed them before going live.
    pub asid_recycle_drains: u64,
    /// High-water mark of any hart's deferred-shootdown queue depth (the
    /// statistic watermark policies exist to bound).
    pub deferred_queue_peak: u64,
    /// Cross-hart mailbox messages merged (in logical-time order) at hart
    /// activation; always 0 on single-hart machines.
    pub hart_msgs_merged: u64,
    /// Generational-handle resolutions rejected because the slot's
    /// generation moved on (the ABA detection of the slot-array table).
    pub stale_handle_rejects: u64,
    /// Page-table pages currently allocated.
    pub pt_pages_live: u64,
    /// High-water mark of live page-table pages.
    pub pt_pages_peak: u64,
}

impl KernelStats {
    /// Difference against an earlier snapshot.
    #[deprecated(note = "use `Snapshot::delta`")]
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        self.delta(earlier)
    }
}

impl Snapshot for KernelStats {
    /// Field-wise difference; the `pt_pages_live`/`pt_pages_peak`/
    /// `deferred_queue_peak` gauges keep their current (absolute) values
    /// rather than subtracting.
    fn delta(&self, earlier: &Self) -> Self {
        KernelStats {
            syscalls: self.syscalls - earlier.syscalls,
            forks: self.forks - earlier.forks,
            execs: self.execs - earlier.execs,
            exits: self.exits - earlier.exits,
            context_switches: self.context_switches - earlier.context_switches,
            page_faults: self.page_faults - earlier.page_faults,
            cow_faults: self.cow_faults - earlier.cow_faults,
            demand_faults: self.demand_faults - earlier.demand_faults,
            adjustments: self.adjustments - earlier.adjustments,
            migrated_pages: self.migrated_pages - earlier.migrated_pages,
            zero_checks: self.zero_checks - earlier.zero_checks,
            zero_check_failures: self.zero_check_failures - earlier.zero_check_failures,
            token_validations: self.token_validations - earlier.token_validations,
            token_failures: self.token_failures - earlier.token_failures,
            sfences: self.sfences - earlier.sfences,
            tlb_shootdowns: self.tlb_shootdowns - earlier.tlb_shootdowns,
            shootdown_ipis: self.shootdown_ipis - earlier.shootdown_ipis,
            deferred_drains: self.deferred_drains - earlier.deferred_drains,
            deferred_pages_coalesced: self.deferred_pages_coalesced
                - earlier.deferred_pages_coalesced,
            watermark_drains: self.watermark_drains - earlier.watermark_drains,
            asid_recycle_drains: self.asid_recycle_drains - earlier.asid_recycle_drains,
            deferred_queue_peak: self.deferred_queue_peak,
            hart_msgs_merged: self.hart_msgs_merged - earlier.hart_msgs_merged,
            stale_handle_rejects: self.stale_handle_rejects - earlier.stale_handle_rejects,
            pt_pages_live: self.pt_pages_live,
            pt_pages_peak: self.pt_pages_peak,
        }
    }
}

/// Security-relevant events the kernel logged (defense firings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecurityEvent {
    /// A `switch_mm` token validation rejected a page-table pointer.
    TokenRejected {
        /// Victim process.
        pid: Pid,
        /// Why validation failed.
        err: TokenError,
    },
    /// A candidate page-table page was not all-zero at allocation.
    PtPageNotZero {
        /// The dirty page.
        ppn: PhysPageNum,
    },
    /// The PCB's token pointer did not point into the secure region.
    TokenPointerOutsideRegion {
        /// Victim process.
        pid: Pid,
        /// The bogus pointer.
        ptr: PhysAddr,
    },
}

impl fmt::Display for SecurityEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityEvent::TokenRejected { pid, err } => {
                write!(f, "pid {pid}: token rejected ({err})")
            }
            SecurityEvent::PtPageNotZero { ppn } => {
                write!(f, "page-table page {ppn} not zero at allocation")
            }
            SecurityEvent::TokenPointerOutsideRegion { pid, ptr } => {
                write!(f, "pid {pid}: token pointer {ptr} outside secure region")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_counters() {
        let a = KernelStats {
            forks: 10,
            syscalls: 100,
            ..Default::default()
        };
        let mut b = a.snapshot();
        b.forks = 25;
        b.syscalls = 180;
        let d = b.delta(&a);
        assert_eq!(d.forks, 15);
        assert_eq!(d.syscalls, 80);
    }

    #[test]
    fn security_events_display() {
        let e = SecurityEvent::TokenRejected {
            pid: 7,
            err: TokenError::UserPointerMismatch,
        };
        assert!(e.to_string().contains("pid 7"));
        let e = SecurityEvent::PtPageNotZero {
            ppn: PhysPageNum::new(0x123),
        };
        assert!(e.to_string().contains("0x123"));
    }
}
