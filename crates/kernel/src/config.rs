//! Kernel and machine configuration.

use core::fmt;

use ptstore_core::{PagingScheme, GIB, MIB, PAGE_SIZE};
use serde::{Deserialize, Serialize};

use crate::drain::DrainPolicy;

/// Which page-table defense the kernel deploys. The paper's related-work
/// taxonomy (§VI) maps onto these baselines; PTStore is the contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DefenseMode {
    /// No page-table protection (the unmodified kernel).
    #[default]
    None,
    /// PT-Rand-style randomisation of page-table virtual addresses (§VI-1):
    /// page tables are reachable only through a randomised offset and the
    /// direct-map alias is removed.
    PtRand,
    /// Virtual isolation (§VI-3): page-table pages are mapped read-only in
    /// the kernel address space; legitimate writers briefly lift the
    /// protection through a trampoline.
    VirtualIsolation,
    /// PTStore: PMP secure region + `ld.pt`/`sd.pt` + PTW origin check +
    /// tokens.
    PtStore,
}

impl DefenseMode {
    /// True when the kernel stores page tables in the PMP secure region.
    pub const fn is_ptstore(self) -> bool {
        matches!(self, DefenseMode::PtStore)
    }
}

impl fmt::Display for DefenseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DefenseMode::None => "none",
            DefenseMode::PtRand => "pt-rand",
            DefenseMode::VirtualIsolation => "virtual-isolation",
            DefenseMode::PtStore => "ptstore",
        })
    }
}

/// Upper bound on modelled harts (the IPI fabric is a full broadcast; the
/// paper's prototype is a single Rocket core, real SoCs stay far below).
pub const MAX_HARTS: usize = 64;

/// Full kernel configuration (the model's `defconfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Deployed page-table defense.
    pub defense: DefenseMode,
    /// Clang CFI instrumentation on the kernel (the paper's threat model
    /// requires it; benchmarks compare with and without).
    pub cfi: bool,
    /// Physical memory size in bytes (prototype: 4 GiB DDR3, Table II).
    pub mem_size: u64,
    /// Initial secure-region / PTStore-zone size (paper §IV-C1: 64 MiB).
    pub initial_secure_size: u64,
    /// Granule by which the secure region grows during dynamic adjustment.
    pub adjust_chunk: u64,
    /// Disable dynamic adjustment (the paper's `CFI+PTStore-Adj`
    /// configuration boots with a 1 GiB region instead).
    pub adjustment_enabled: bool,
    /// Ablation switch: disable the token mechanism while keeping the secure
    /// region and PTW origin check (isolates which layer stops which attack;
    /// always true in the paper's full design).
    pub token_checks: bool,
    /// Ablation switch: disable the PMP S-bit enforcement — regular loads and
    /// stores reach the secure region subject only to the entry's ordinary
    /// R/W permissions. Always true in the paper's full design; the fault
    /// campaign uses `false` to prove the invariant oracle catches landed
    /// page-table corruption.
    pub pmp_s_bit_check: bool,
    /// Ablation switch: disable the PTW origin check — `satp.S` is left
    /// clear, so the walker may fetch page tables from anywhere. Always true
    /// in the paper's full design.
    pub ptw_origin_check: bool,
    /// I-TLB capacity in entries (prototype: 32, paper Table II).
    pub itlb_entries: usize,
    /// D-TLB capacity in entries (prototype: 8, paper Table II).
    pub dtlb_entries: usize,
    /// Number of harts (cores). Each hart owns its MMU/TLBs, current
    /// process, run queue, and cycle counter; everything else — bus, PMP,
    /// zones, process table — is machine-wide. `1` reproduces the paper's
    /// single-hart prototype cycle-for-cycle.
    pub harts: usize,
    /// Paging scheme the kernel programs into `satp.MODE` (Sv39/Sv48/Sv57).
    /// The walker reads the scheme back out of `satp` at translation time,
    /// so this single knob switches the whole machine. The paper's prototype
    /// (and every golden trace) uses Sv39.
    pub scheme: PagingScheme,
    /// Batch remote TLB shootdowns: per-page invalidations queue on the
    /// issuing hart (the local `sfence.vma` still happens eagerly) and a
    /// single IPI round drains the queue at the end of the unmap/protect
    /// operation — and, forced, at every security-relevant boundary
    /// (secure-region adjust, context switch, hart handoff). Off by
    /// default: the paper's prototype and every golden trace model the
    /// literal one-IPI-per-page kernel.
    pub deferred_shootdowns: bool,
    /// Front the slab caches and the PT-page allocator with per-hart
    /// magazines (LIFO caches of recently freed objects/pages), so fork/exit
    /// storms stop round-tripping the buddy allocator. Off by default:
    /// magazines reorder address reuse, which the golden traces pin.
    pub alloc_magazines: bool,
    /// When, beyond the mandatory security boundaries, deferred-shootdown
    /// queues drain early (see [`crate::drain`] for the policy × event
    /// matrix). Irrelevant unless `deferred_shootdowns` is on; the default
    /// [`DrainPolicy::Boundary`] reproduces the PR 8 behaviour exactly.
    pub drain_policy: DrainPolicy,
}

/// Why a [`KernelConfigBuilder`] refused to produce a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// `mem_size` below the 64 MiB floor or not page-aligned.
    BadMemSize,
    /// `initial_secure_size` empty, not page-aligned, or at least half of
    /// `mem_size` (the normal zone needs the rest).
    BadSecureSize,
    /// `adjust_chunk` empty or not page-aligned.
    BadAdjustChunk,
    /// A TLB capacity of zero entries.
    BadTlbCapacity,
    /// A hart count of zero, or beyond the modelled IPI fabric (64).
    BadHartCount,
    /// A watermark drain policy with a depth of zero (it would drain on
    /// every queued page, i.e. be the eager path at deferred prices).
    BadDrainWatermark,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConfigError::BadMemSize => "mem_size must be a page-aligned size of at least 64 MiB",
            ConfigError::BadSecureSize => {
                "initial_secure_size must be page-aligned, non-empty, and below mem_size/2"
            }
            ConfigError::BadAdjustChunk => "adjust_chunk must be page-aligned and non-empty",
            ConfigError::BadTlbCapacity => "tlb capacities must be non-zero",
            ConfigError::BadHartCount => "harts must be between 1 and 64",
            ConfigError::BadDrainWatermark => "watermark drain depth must be non-zero",
        })
    }
}

impl std::error::Error for ConfigError {}

/// Checked builder for [`KernelConfig`].
///
/// Starts from a preset (default: [`KernelConfig::baseline`]) and validates
/// the geometry once in [`build`](Self::build) — the same invariants
/// [`Kernel::boot`](crate::Kernel::boot) would otherwise assert on.
///
/// ```
/// use ptstore_core::MIB;
/// use ptstore_kernel::{DefenseMode, KernelConfig};
///
/// let cfg = KernelConfig::builder()
///     .defense(DefenseMode::PtStore)
///     .cfi(true)
///     .mem_size(256 * MIB)
///     .initial_secure_size(16 * MIB)
///     .dtlb_entries(16)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.label(), "CFI+PTStore");
/// assert_eq!(cfg.dtlb_entries, 16);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KernelConfigBuilder {
    cfg: KernelConfig,
}

impl KernelConfigBuilder {
    /// Deployed page-table defense.
    pub fn defense(mut self, defense: DefenseMode) -> Self {
        self.cfg.defense = defense;
        self
    }

    /// Clang CFI instrumentation.
    pub fn cfi(mut self, cfi: bool) -> Self {
        self.cfg.cfi = cfi;
        self
    }

    /// Physical memory size in bytes.
    pub fn mem_size(mut self, bytes: u64) -> Self {
        self.cfg.mem_size = bytes;
        self
    }

    /// Initial secure-region / PTStore-zone size in bytes.
    pub fn initial_secure_size(mut self, bytes: u64) -> Self {
        self.cfg.initial_secure_size = bytes;
        self
    }

    /// Dynamic-adjustment growth granule in bytes.
    pub fn adjust_chunk(mut self, bytes: u64) -> Self {
        self.cfg.adjust_chunk = bytes;
        self
    }

    /// Enables or disables dynamic secure-region adjustment.
    pub fn adjustment_enabled(mut self, enabled: bool) -> Self {
        self.cfg.adjustment_enabled = enabled;
        self
    }

    /// Enables or disables token validation (ablation switch).
    pub fn token_checks(mut self, enabled: bool) -> Self {
        self.cfg.token_checks = enabled;
        self
    }

    /// Enables or disables PMP S-bit enforcement (ablation switch).
    pub fn pmp_s_bit_check(mut self, enabled: bool) -> Self {
        self.cfg.pmp_s_bit_check = enabled;
        self
    }

    /// Enables or disables the PTW origin check (ablation switch).
    pub fn ptw_origin_check(mut self, enabled: bool) -> Self {
        self.cfg.ptw_origin_check = enabled;
        self
    }

    /// I-TLB capacity in entries.
    pub fn itlb_entries(mut self, entries: usize) -> Self {
        self.cfg.itlb_entries = entries;
        self
    }

    /// D-TLB capacity in entries.
    pub fn dtlb_entries(mut self, entries: usize) -> Self {
        self.cfg.dtlb_entries = entries;
        self
    }

    /// Number of harts.
    pub fn harts(mut self, harts: usize) -> Self {
        self.cfg.harts = harts;
        self
    }

    /// Paging scheme (Sv39/Sv48/Sv57).
    pub fn scheme(mut self, scheme: PagingScheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Enables or disables batched remote TLB shootdowns.
    pub fn deferred_shootdowns(mut self, enabled: bool) -> Self {
        self.cfg.deferred_shootdowns = enabled;
        self
    }

    /// Enables or disables per-hart allocation magazines.
    pub fn alloc_magazines(mut self, enabled: bool) -> Self {
        self.cfg.alloc_magazines = enabled;
        self
    }

    /// Selects the deferred-shootdown drain policy.
    pub fn drain_policy(mut self, policy: DrainPolicy) -> Self {
        self.cfg.drain_policy = policy;
        self
    }

    /// Validates the geometry and produces the configuration.
    ///
    /// # Errors
    /// A [`ConfigError`] naming the first invariant violated.
    pub fn build(self) -> Result<KernelConfig, ConfigError> {
        let c = &self.cfg;
        if c.mem_size < 64 * MIB || !c.mem_size.is_multiple_of(PAGE_SIZE) {
            return Err(ConfigError::BadMemSize);
        }
        if c.initial_secure_size == 0
            || !c.initial_secure_size.is_multiple_of(PAGE_SIZE)
            || c.initial_secure_size >= c.mem_size / 2
        {
            return Err(ConfigError::BadSecureSize);
        }
        if c.adjust_chunk == 0 || !c.adjust_chunk.is_multiple_of(PAGE_SIZE) {
            return Err(ConfigError::BadAdjustChunk);
        }
        if c.itlb_entries == 0 || c.dtlb_entries == 0 {
            return Err(ConfigError::BadTlbCapacity);
        }
        if c.harts == 0 || c.harts > MAX_HARTS {
            return Err(ConfigError::BadHartCount);
        }
        if c.drain_policy.watermark_depth() == Some(0) {
            return Err(ConfigError::BadDrainWatermark);
        }
        Ok(self.cfg)
    }
}

impl From<KernelConfig> for KernelConfigBuilder {
    fn from(cfg: KernelConfig) -> Self {
        Self { cfg }
    }
}

impl KernelConfig {
    /// A checked builder seeded with the baseline preset.
    pub fn builder() -> KernelConfigBuilder {
        KernelConfigBuilder::from(Self::baseline())
    }

    /// A checked builder seeded with this configuration (tweak a preset).
    pub fn to_builder(self) -> KernelConfigBuilder {
        KernelConfigBuilder::from(self)
    }

    /// The baseline kernel: no defense, no CFI.
    pub fn baseline() -> Self {
        Self {
            defense: DefenseMode::None,
            cfi: false,
            mem_size: 4 * GIB,
            initial_secure_size: 64 * MIB,
            adjust_chunk: 16 * MIB,
            adjustment_enabled: true,
            token_checks: true,
            pmp_s_bit_check: true,
            ptw_origin_check: true,
            itlb_entries: 32,
            dtlb_entries: 8,
            harts: 1,
            scheme: PagingScheme::Sv39,
            deferred_shootdowns: false,
            alloc_magazines: false,
            drain_policy: DrainPolicy::Boundary,
        }
    }

    /// The paper's `CFI` configuration: original kernel + Clang CFI.
    pub fn cfi() -> Self {
        Self {
            cfi: true,
            ..Self::baseline()
        }
    }

    /// The paper's `CFI+PTStore` configuration.
    pub fn cfi_ptstore() -> Self {
        Self {
            defense: DefenseMode::PtStore,
            cfi: true,
            ..Self::baseline()
        }
    }

    /// The paper's `CFI+PTStore-Adj` configuration: a 1 GiB region so the
    /// dynamic adjustment never triggers.
    pub fn cfi_ptstore_no_adjust() -> Self {
        Self {
            defense: DefenseMode::PtStore,
            cfi: true,
            initial_secure_size: GIB,
            adjustment_enabled: false,
            ..Self::baseline()
        }
    }

    /// PTStore without CFI (used to isolate PTStore's own overhead).
    pub fn ptstore_only() -> Self {
        Self {
            defense: DefenseMode::PtStore,
            ..Self::baseline()
        }
    }

    /// Returns a copy with a different memory size (tests use small
    /// machines).
    pub fn with_mem_size(mut self, bytes: u64) -> Self {
        self.mem_size = bytes;
        self
    }

    /// Returns a copy with a different initial secure-region size.
    pub fn with_initial_secure_size(mut self, bytes: u64) -> Self {
        self.initial_secure_size = bytes;
        self
    }

    /// Returns a copy with a different defense mode.
    pub fn with_defense(mut self, defense: DefenseMode) -> Self {
        self.defense = defense;
        self
    }

    /// Returns a copy with a different hart count.
    pub fn with_harts(mut self, harts: usize) -> Self {
        self.harts = harts;
        self
    }

    /// Returns a copy with a different paging scheme.
    pub fn with_scheme(mut self, scheme: PagingScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Returns a copy with batched remote TLB shootdowns on or off.
    pub fn with_deferred_shootdowns(mut self, enabled: bool) -> Self {
        self.deferred_shootdowns = enabled;
        self
    }

    /// Returns a copy with per-hart allocation magazines on or off.
    pub fn with_alloc_magazines(mut self, enabled: bool) -> Self {
        self.alloc_magazines = enabled;
        self
    }

    /// Returns a copy with a different deferred-shootdown drain policy.
    pub fn with_drain_policy(mut self, policy: DrainPolicy) -> Self {
        self.drain_policy = policy;
        self
    }

    /// A human-readable tag matching the paper's figure legends.
    pub fn label(&self) -> String {
        let base = match (self.cfi, self.defense) {
            (false, DefenseMode::None) => "baseline".to_string(),
            (true, DefenseMode::None) => "CFI".to_string(),
            (true, DefenseMode::PtStore) => "CFI+PTStore".to_string(),
            (false, DefenseMode::PtStore) => "PTStore".to_string(),
            (cfi, d) => format!("{}{}", if cfi { "CFI+" } else { "" }, d),
        };
        if self.defense.is_ptstore() && !self.adjustment_enabled {
            format!("{base}-Adj")
        } else {
            base
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(KernelConfig::baseline().label(), "baseline");
        assert_eq!(KernelConfig::cfi().label(), "CFI");
        assert_eq!(KernelConfig::cfi_ptstore().label(), "CFI+PTStore");
        assert_eq!(
            KernelConfig::cfi_ptstore_no_adjust().label(),
            "CFI+PTStore-Adj"
        );
        assert_eq!(KernelConfig::cfi_ptstore().initial_secure_size, 64 * MIB);
        assert_eq!(
            KernelConfig::cfi_ptstore_no_adjust().initial_secure_size,
            GIB
        );
    }

    #[test]
    fn builder_validates_geometry() {
        // The baseline preset passes untouched.
        assert_eq!(
            KernelConfig::builder().build(),
            Ok(KernelConfig::baseline())
        );
        assert_eq!(
            KernelConfig::builder().mem_size(MIB).build(),
            Err(ConfigError::BadMemSize)
        );
        assert_eq!(
            KernelConfig::builder().mem_size(64 * MIB + 1).build(),
            Err(ConfigError::BadMemSize)
        );
        // A secure region at (or above) half of memory starves the normal zone.
        assert_eq!(
            KernelConfig::builder()
                .mem_size(128 * MIB)
                .initial_secure_size(64 * MIB)
                .build(),
            Err(ConfigError::BadSecureSize)
        );
        assert_eq!(
            KernelConfig::builder().initial_secure_size(0).build(),
            Err(ConfigError::BadSecureSize)
        );
        assert_eq!(
            KernelConfig::builder().adjust_chunk(PAGE_SIZE + 1).build(),
            Err(ConfigError::BadAdjustChunk)
        );
        assert_eq!(
            KernelConfig::builder().itlb_entries(0).build(),
            Err(ConfigError::BadTlbCapacity)
        );
        assert_eq!(
            KernelConfig::builder().harts(0).build(),
            Err(ConfigError::BadHartCount)
        );
        assert_eq!(
            KernelConfig::builder().harts(MAX_HARTS + 1).build(),
            Err(ConfigError::BadHartCount)
        );
        assert!(KernelConfig::builder().harts(4).build().is_ok());
    }

    #[test]
    fn drain_policy_validates_and_composes() {
        assert_eq!(
            KernelConfig::builder()
                .drain_policy(DrainPolicy::Watermark { depth: 0 })
                .build(),
            Err(ConfigError::BadDrainWatermark)
        );
        assert_eq!(
            KernelConfig::builder()
                .drain_policy(DrainPolicy::Watermark { depth: 8 })
                .build()
                .unwrap()
                .drain_policy,
            DrainPolicy::Watermark { depth: 8 }
        );
        // Every preset defaults to the PR 8 boundary-only behaviour.
        assert_eq!(KernelConfig::baseline().drain_policy, DrainPolicy::Boundary);
        assert_eq!(
            KernelConfig::cfi_ptstore().drain_policy,
            DrainPolicy::Boundary
        );
        assert_eq!(
            KernelConfig::cfi_ptstore()
                .with_drain_policy(DrainPolicy::AsidRecycle)
                .drain_policy,
            DrainPolicy::AsidRecycle
        );
    }

    #[test]
    fn builder_round_trips_presets() {
        for preset in [
            KernelConfig::baseline(),
            KernelConfig::cfi(),
            KernelConfig::cfi_ptstore(),
            KernelConfig::cfi_ptstore_no_adjust(),
        ] {
            assert_eq!(preset.to_builder().build(), Ok(preset));
        }
    }

    #[test]
    fn builders_compose() {
        let c = KernelConfig::baseline()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
            .with_defense(DefenseMode::VirtualIsolation)
            .with_scheme(PagingScheme::Sv48);
        assert_eq!(c.mem_size, 256 * MIB);
        assert_eq!(c.initial_secure_size, 16 * MIB);
        assert_eq!(c.defense, DefenseMode::VirtualIsolation);
        assert_eq!(c.scheme, PagingScheme::Sv48);
        // Every preset defaults to the paper's Sv39 prototype.
        assert_eq!(KernelConfig::baseline().scheme, PagingScheme::Sv39);
        assert_eq!(
            KernelConfig::builder()
                .scheme(PagingScheme::Sv57)
                .build()
                .unwrap()
                .scheme,
            PagingScheme::Sv57
        );
    }
}
