//! Kernel and machine configuration.

use core::fmt;

use ptstore_core::{GIB, MIB};
use serde::{Deserialize, Serialize};

/// Which page-table defense the kernel deploys. The paper's related-work
/// taxonomy (§VI) maps onto these baselines; PTStore is the contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DefenseMode {
    /// No page-table protection (the unmodified kernel).
    #[default]
    None,
    /// PT-Rand-style randomisation of page-table virtual addresses (§VI-1):
    /// page tables are reachable only through a randomised offset and the
    /// direct-map alias is removed.
    PtRand,
    /// Virtual isolation (§VI-3): page-table pages are mapped read-only in
    /// the kernel address space; legitimate writers briefly lift the
    /// protection through a trampoline.
    VirtualIsolation,
    /// PTStore: PMP secure region + `ld.pt`/`sd.pt` + PTW origin check +
    /// tokens.
    PtStore,
}

impl DefenseMode {
    /// True when the kernel stores page tables in the PMP secure region.
    pub const fn is_ptstore(self) -> bool {
        matches!(self, DefenseMode::PtStore)
    }
}

impl fmt::Display for DefenseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DefenseMode::None => "none",
            DefenseMode::PtRand => "pt-rand",
            DefenseMode::VirtualIsolation => "virtual-isolation",
            DefenseMode::PtStore => "ptstore",
        })
    }
}

/// Full kernel configuration (the model's `defconfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Deployed page-table defense.
    pub defense: DefenseMode,
    /// Clang CFI instrumentation on the kernel (the paper's threat model
    /// requires it; benchmarks compare with and without).
    pub cfi: bool,
    /// Physical memory size in bytes (prototype: 4 GiB DDR3, Table II).
    pub mem_size: u64,
    /// Initial secure-region / PTStore-zone size (paper §IV-C1: 64 MiB).
    pub initial_secure_size: u64,
    /// Granule by which the secure region grows during dynamic adjustment.
    pub adjust_chunk: u64,
    /// Disable dynamic adjustment (the paper's `CFI+PTStore-Adj`
    /// configuration boots with a 1 GiB region instead).
    pub adjustment_enabled: bool,
    /// Ablation switch: disable the token mechanism while keeping the secure
    /// region and PTW origin check (isolates which layer stops which attack;
    /// always true in the paper's full design).
    pub token_checks: bool,
}

impl KernelConfig {
    /// The baseline kernel: no defense, no CFI.
    pub fn baseline() -> Self {
        Self {
            defense: DefenseMode::None,
            cfi: false,
            mem_size: 4 * GIB,
            initial_secure_size: 64 * MIB,
            adjust_chunk: 16 * MIB,
            adjustment_enabled: true,
            token_checks: true,
        }
    }

    /// The paper's `CFI` configuration: original kernel + Clang CFI.
    pub fn cfi() -> Self {
        Self {
            cfi: true,
            ..Self::baseline()
        }
    }

    /// The paper's `CFI+PTStore` configuration.
    pub fn cfi_ptstore() -> Self {
        Self {
            defense: DefenseMode::PtStore,
            cfi: true,
            ..Self::baseline()
        }
    }

    /// The paper's `CFI+PTStore-Adj` configuration: a 1 GiB region so the
    /// dynamic adjustment never triggers.
    pub fn cfi_ptstore_no_adjust() -> Self {
        Self {
            defense: DefenseMode::PtStore,
            cfi: true,
            initial_secure_size: GIB,
            adjustment_enabled: false,
            ..Self::baseline()
        }
    }

    /// PTStore without CFI (used to isolate PTStore's own overhead).
    pub fn ptstore_only() -> Self {
        Self {
            defense: DefenseMode::PtStore,
            ..Self::baseline()
        }
    }

    /// Returns a copy with a different memory size (tests use small
    /// machines).
    pub fn with_mem_size(mut self, bytes: u64) -> Self {
        self.mem_size = bytes;
        self
    }

    /// Returns a copy with a different initial secure-region size.
    pub fn with_initial_secure_size(mut self, bytes: u64) -> Self {
        self.initial_secure_size = bytes;
        self
    }

    /// Returns a copy with a different defense mode.
    pub fn with_defense(mut self, defense: DefenseMode) -> Self {
        self.defense = defense;
        self
    }

    /// A human-readable tag matching the paper's figure legends.
    pub fn label(&self) -> String {
        let base = match (self.cfi, self.defense) {
            (false, DefenseMode::None) => "baseline".to_string(),
            (true, DefenseMode::None) => "CFI".to_string(),
            (true, DefenseMode::PtStore) => "CFI+PTStore".to_string(),
            (false, DefenseMode::PtStore) => "PTStore".to_string(),
            (cfi, d) => format!("{}{}", if cfi { "CFI+" } else { "" }, d),
        };
        if self.defense.is_ptstore() && !self.adjustment_enabled {
            format!("{base}-Adj")
        } else {
            base
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(KernelConfig::baseline().label(), "baseline");
        assert_eq!(KernelConfig::cfi().label(), "CFI");
        assert_eq!(KernelConfig::cfi_ptstore().label(), "CFI+PTStore");
        assert_eq!(
            KernelConfig::cfi_ptstore_no_adjust().label(),
            "CFI+PTStore-Adj"
        );
        assert_eq!(KernelConfig::cfi_ptstore().initial_secure_size, 64 * MIB);
        assert_eq!(KernelConfig::cfi_ptstore_no_adjust().initial_secure_size, GIB);
    }

    #[test]
    fn builders_compose() {
        let c = KernelConfig::baseline()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB)
            .with_defense(DefenseMode::VirtualIsolation);
        assert_eq!(c.mem_size, 256 * MIB);
        assert_eq!(c.initial_secure_size, 16 * MIB);
        assert_eq!(c.defense, DefenseMode::VirtualIsolation);
    }
}
