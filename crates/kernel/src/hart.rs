//! Per-hart state for the SMP machine model.
//!
//! The PTStore prototype began life single-hart; this module carries the
//! state that is genuinely per-hardware-thread once the machine grows to
//! N harts: the MMU (both TLBs and the page-table walker), the process
//! currently executing, a private run queue, and a private cycle counter
//! used for utilization reporting. Everything else — the bus and PMP, the
//! buddy zones, the secure region, and the process table — is machine-wide
//! and stays on [`crate::Kernel`].

use std::collections::VecDeque;

use ptstore_mmu::Mmu;

use crate::cycles::CycleCounter;
use crate::process::Pid;

/// One hardware thread of the modeled machine.
///
/// Hart 0 is the boot hart; a machine configured with one hart reproduces
/// the original single-hart prototype cycle-for-cycle (no IPI or
/// shootdown costs are ever charged at `harts == 1`).
#[derive(Debug)]
pub struct Hart {
    /// Hart id (0-based).
    pub id: usize,
    /// This hart's MMU: iTLB, dTLB, and page-table walker.
    pub mmu: Mmu,
    /// The process currently running here (0 before init is spawned).
    pub current: Pid,
    /// This hart's private run queue; an idle hart steals from the others
    /// in deterministic id order.
    pub run_queue: VecDeque<Pid>,
    /// Cycles attributed to work performed on this hart.
    pub cycles: CycleCounter,
}

impl Hart {
    /// Creates an idle hart with the given TLB geometry.
    pub fn new(id: usize, itlb_entries: usize, dtlb_entries: usize) -> Self {
        let mut mmu = Mmu::with_tlb_sizes(itlb_entries, dtlb_entries);
        mmu.set_hart_id(id);
        Self {
            id,
            mmu,
            current: 0,
            run_queue: VecDeque::new(),
            cycles: CycleCounter::new(),
        }
    }

    /// Fraction of machine-wide `total` cycles spent on this hart.
    pub fn utilization(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.cycles.total() as f64 / total as f64
        }
    }
}
