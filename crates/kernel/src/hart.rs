//! Per-hart state for the SMP machine model.
//!
//! The PTStore prototype began life single-hart; this module carries the
//! state that is genuinely per-hardware-thread once the machine grows to
//! N harts: the MMU (both TLBs and the page-table walker), the process
//! currently executing, a private run queue, a private cycle counter
//! used for utilization reporting, and a **mailbox** of cross-hart
//! messages. Everything else — the bus and PMP, the buddy zones, the
//! secure region, and the process table — is machine-wide and stays on
//! [`crate::Kernel`].
//!
//! ## Cross-hart messages
//!
//! Harts never reach into each other's private state directly. Cross-hart
//! effects — shootdown IPIs and their acks, fork/exit visibility, idle
//! stealing — are expressed as [`HartMsg`] values stamped with the
//! **logical time** (the sender's machine-wide cycle total) at which they
//! were sent. A hart drains its mailbox when it becomes the active modeling
//! context, merging messages in `(time, from, seq)` order; because every
//! kernel entry point runs under the deterministic hart turnstile (see
//! [`crate::exec`]), that merge is a total order independent of how many
//! host threads carry the harts.

use std::collections::VecDeque;

use ptstore_mmu::Mmu;

use crate::cycles::CycleCounter;
use crate::process::{Pid, ProcHandle};

/// What a cross-hart message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HartMsgKind {
    /// A TLB-shootdown IPI arrived from `HartMsg::from` (the flush itself
    /// is modeled synchronously at the barrier; this is the visibility
    /// record the receiving hart merges on its next activation).
    ShootdownIpi,
    /// The remote hart acknowledged our shootdown.
    ShootdownAck,
    /// A process became visible machine-wide (fork/clone published it).
    ProcSpawned {
        /// Handle of the new process in the slot-array table.
        handle: ProcHandle,
        /// Its pid.
        pid: Pid,
    },
    /// A process was reaped; the receiving hart prunes any stale run-queue
    /// entry when it merges this message.
    ProcReaped {
        /// The reaped pid (never reused: pids are monotonic).
        pid: Pid,
    },
    /// Another hart stole a process from our run queue while we were busy.
    WorkStolen {
        /// The migrated pid.
        pid: Pid,
    },
}

/// One cross-hart message, stamped for the deterministic logical-time merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HartMsg {
    /// Machine-wide cycle total when the sender posted the message.
    pub time: u64,
    /// Sending hart.
    pub from: usize,
    /// Sender-local sequence number, breaking ties between messages posted
    /// at the same logical time.
    pub seq: u64,
    /// Payload.
    pub kind: HartMsgKind,
}

/// One hardware thread of the modeled machine.
///
/// Hart 0 is the boot hart; a machine configured with one hart reproduces
/// the original single-hart prototype cycle-for-cycle (no IPI or
/// shootdown costs are ever charged at `harts == 1`).
#[derive(Debug)]
pub struct Hart {
    /// Hart id (0-based).
    pub id: usize,
    /// This hart's MMU: iTLB, dTLB, and page-table walker.
    pub mmu: Mmu,
    /// The process currently running here (0 before init is spawned).
    pub current: Pid,
    /// This hart's private run queue; an idle hart steals from the others
    /// in deterministic id order.
    pub run_queue: VecDeque<Pid>,
    /// Cycles attributed to work performed on this hart.
    pub cycles: CycleCounter,
    /// Pending cross-hart messages, drained (in logical-time order) when
    /// this hart next becomes the active modeling context.
    pub mailbox: VecDeque<HartMsg>,
    /// Next sequence number for messages *sent* by this hart.
    pub msg_seq: u64,
    /// Messages this hart has merged over its lifetime.
    pub msgs_merged: u64,
    /// Deferred-shootdown queue: `(vpn, asid)` pairs whose *local* TLB
    /// invalidation already happened eagerly but whose remote broadcast is
    /// postponed until the next drain (operation end or security boundary).
    /// Empty unless `deferred_shootdowns` is configured and `harts > 1`.
    pub flush_queue: Vec<(u64, u16)>,
    /// LIFO magazine of zeroed page-table pages cached for this hart;
    /// populated only when `alloc_magazines` is configured.
    pub pt_magazine: Vec<ptstore_core::PhysPageNum>,
}

impl Hart {
    /// Creates an idle hart with the given TLB geometry.
    pub fn new(id: usize, itlb_entries: usize, dtlb_entries: usize) -> Self {
        let mut mmu = Mmu::with_tlb_sizes(itlb_entries, dtlb_entries);
        mmu.set_hart_id(id);
        Self {
            id,
            mmu,
            current: 0,
            run_queue: VecDeque::new(),
            cycles: CycleCounter::new(),
            mailbox: VecDeque::new(),
            msg_seq: 0,
            msgs_merged: 0,
            flush_queue: Vec::new(),
            pt_magazine: Vec::new(),
        }
    }

    /// Fraction of machine-wide `total` cycles spent on this hart.
    pub fn utilization(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.cycles.total() as f64 / total as f64
        }
    }

    /// Takes every pending message, sorted into the canonical
    /// `(time, from, seq)` merge order.
    pub fn drain_mailbox(&mut self) -> Vec<HartMsg> {
        let mut msgs: Vec<HartMsg> = self.mailbox.drain(..).collect();
        msgs.sort_by_key(|m| (m.time, m.from, m.seq));
        self.msgs_merged += msgs.len() as u64;
        msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_merges_on_logical_time() {
        let mut h = Hart::new(0, 4, 4);
        // Posted out of order: a later-time message from hart 1 first.
        h.mailbox.push_back(HartMsg {
            time: 200,
            from: 1,
            seq: 0,
            kind: HartMsgKind::ShootdownIpi,
        });
        h.mailbox.push_back(HartMsg {
            time: 100,
            from: 2,
            seq: 0,
            kind: HartMsgKind::ProcReaped { pid: 5 },
        });
        h.mailbox.push_back(HartMsg {
            time: 100,
            from: 1,
            seq: 1,
            kind: HartMsgKind::ShootdownAck,
        });
        h.mailbox.push_back(HartMsg {
            time: 100,
            from: 1,
            seq: 0,
            kind: HartMsgKind::ShootdownIpi,
        });
        let merged = h.drain_mailbox();
        let keys: Vec<(u64, usize, u64)> = merged.iter().map(|m| (m.time, m.from, m.seq)).collect();
        assert_eq!(keys, [(100, 1, 0), (100, 1, 1), (100, 2, 0), (200, 1, 0)]);
        assert_eq!(h.msgs_merged, 4);
        assert!(h.mailbox.is_empty());
    }
}
