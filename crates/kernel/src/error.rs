//! Kernel-level error types.

use core::fmt;

use ptstore_core::{AccessError, RegionError, TokenError};
use serde::{Deserialize, Serialize};

use crate::zones::AllocError;

/// Errors surfaced by the kernel model's public operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelError {
    /// Physical memory exhausted (after any secure-region adjustment
    /// attempts).
    OutOfMemory,
    /// A page-table pointer failed token validation in `switch_mm` — the
    /// PT-Reuse defense firing (paper §III-C3).
    TokenInvalid(TokenError),
    /// A memory access was denied (usually PTStore intercepting an illegal
    /// access).
    Access(AccessError),
    /// Secure-region geometry error.
    Region(RegionError),
    /// Buddy allocator error that is not plain OOM.
    Alloc(AllocError),
    /// A fresh page-table page was not all-zero — the allocator-metadata
    /// defense firing (paper §V-E3).
    PageNotZero,
    /// Unknown process id.
    NoSuchProcess,
    /// Bad file descriptor.
    BadFd,
    /// No such file.
    NoSuchFile,
    /// Address range is invalid for the requested VM operation.
    BadAddress,
    /// A page fault could not be resolved (genuine segfault).
    SegFault,
    /// Pipe would block (reader/writer model is synchronous).
    WouldBlock,
    /// Operation invalid in the current state (e.g. wait with no children).
    InvalidState,
    /// A process with this pid already exists in the process table.
    DuplicatePid(crate::process::Pid),
    /// The process table has no free slot (all live or awaiting hart
    /// quiescence).
    ProcessTableFull,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::OutOfMemory => f.write_str("out of memory"),
            KernelError::TokenInvalid(e) => write!(f, "token validation failed: {e}"),
            KernelError::Access(e) => write!(f, "access denied: {e}"),
            KernelError::Region(e) => write!(f, "secure region error: {e}"),
            KernelError::Alloc(e) => write!(f, "allocator error: {e}"),
            KernelError::PageNotZero => f.write_str("page-table page not zero (overlap attack?)"),
            KernelError::NoSuchProcess => f.write_str("no such process"),
            KernelError::BadFd => f.write_str("bad file descriptor"),
            KernelError::NoSuchFile => f.write_str("no such file"),
            KernelError::BadAddress => f.write_str("bad address"),
            KernelError::SegFault => f.write_str("segmentation fault"),
            KernelError::WouldBlock => f.write_str("operation would block"),
            KernelError::InvalidState => f.write_str("invalid state"),
            KernelError::DuplicatePid(pid) => write!(f, "duplicate pid {pid}"),
            KernelError::ProcessTableFull => f.write_str("process table full"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<crate::process::TableError> for KernelError {
    fn from(e: crate::process::TableError) -> Self {
        match e {
            crate::process::TableError::DuplicatePid(pid) => KernelError::DuplicatePid(pid),
            crate::process::TableError::Full => KernelError::ProcessTableFull,
        }
    }
}

impl From<TokenError> for KernelError {
    fn from(e: TokenError) -> Self {
        KernelError::TokenInvalid(e)
    }
}

impl From<AccessError> for KernelError {
    fn from(e: AccessError) -> Self {
        KernelError::Access(e)
    }
}

impl From<RegionError> for KernelError {
    fn from(e: RegionError) -> Self {
        KernelError::Region(e)
    }
}

impl From<AllocError> for KernelError {
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::OutOfMemory => KernelError::OutOfMemory,
            other => KernelError::Alloc(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: KernelError = TokenError::Cleared.into();
        assert_eq!(e, KernelError::TokenInvalid(TokenError::Cleared));
        let e: KernelError = AllocError::OutOfMemory.into();
        assert_eq!(e, KernelError::OutOfMemory);
        let e: KernelError = AllocError::BadFree {
            ppn: ptstore_core::PhysPageNum::new(3),
        }
        .into();
        assert!(matches!(e, KernelError::Alloc(_)));
        let e: KernelError = crate::process::TableError::DuplicatePid(9).into();
        assert_eq!(e, KernelError::DuplicatePid(9));
        let e: KernelError = crate::process::TableError::Full.into();
        assert_eq!(e, KernelError::ProcessTableFull);
    }

    #[test]
    fn display_nonempty() {
        assert!(!KernelError::PageNotZero.to_string().is_empty());
        assert!(!KernelError::OutOfMemory.to_string().is_empty());
    }
}
