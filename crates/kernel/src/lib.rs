//! # ptstore-kernel
//!
//! A miniature Unix-like kernel — the software half of the PTStore co-design
//! (paper §IV-B, §IV-C) — running against the simulated machine from
//! `ptstore-mem`/`ptstore-mmu`:
//!
//! * **Zones & buddy allocator** ([`zones`]): a `Normal` zone plus the
//!   **PTStore zone** at high physical addresses, reached via the
//!   `GFP_PTSTORE` flag (§IV-C1).
//! * **Dynamic secure-region adjustment** ([`Kernel::adjust_secure_region`]):
//!   `alloc_contig_range` next to the boundary, migrate, release to the
//!   PTStore zone, move the PMP boundary through the SBI (§IV-C1).
//! * **Slab allocator** ([`slab`]): including the token cache whose
//!   constructor zero-initialises tokens (§IV-C3).
//! * **Page-table manipulation** through the defense-appropriate channel —
//!   `sd.pt`/`ld.pt` under PTStore (§IV-C2) — plus a zero-check on fresh
//!   page-table pages (§V-E3).
//! * **Process management & tokens** ([`proc_mgmt`], `token_*` on
//!   [`Kernel`]): tokens are issued at creation, copied on legitimate
//!   page-table-pointer copies, cleared at destruction, and validated before
//!   every `satp` update (§III-C3, §IV-C4).
//! * **Syscalls** ([`syscall`]) with Clang-CFI cost accounting, a tiny VFS
//!   ([`fs`]), demand paging with CoW, and a round-robin scheduler.
//! * **SMP harts** ([`hart`]): N-hart machines with per-hart MMU/TLBs, run
//!   queues with idle stealing, per-hart mailboxes of logical-time-stamped
//!   cross-hart messages, and a modeled IPI/TLB-shootdown path
//!   (`Kernel::shootdown`) charged to the cycle model; `harts = 1`
//!   reproduces the single-hart prototype cycle-for-cycle.
//! * **Generational process table** ([`process::ProcessTable`]): a
//!   fixed-capacity slot array with lock-free handle validation
//!   ([`ProcHandle`]/[`TableReader`]) and epoch-based slot reclamation,
//!   letting hart loops run on real OS threads ([`exec`]) without
//!   perturbing the deterministic cycle model.
//! * **Baseline defenses** for comparison: PT-Rand-style randomisation and
//!   virtual isolation ([`config::DefenseMode`]).
//! * **An attacker API** ([`introspect`]) implementing the §III-A threat
//!   model: arbitrary kernel-VA read/write via regular instructions.
//!
//! ```
//! use ptstore_kernel::{Kernel, KernelConfig};
//! use ptstore_core::MIB;
//!
//! # fn main() -> Result<(), ptstore_kernel::KernelError> {
//! let mut k = Kernel::boot(
//!     KernelConfig::cfi_ptstore()
//!         .with_mem_size(256 * MIB)
//!         .with_initial_secure_size(16 * MIB),
//! )?;
//! let child = k.sys_fork()?;
//! assert!(child > 1);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod config;
pub mod cycles;
pub mod drain;
pub mod error;
pub mod exec;
pub mod fs;
pub mod hart;
pub mod introspect;
pub mod kernel;
pub mod pagetable;
pub mod proc_mgmt;
pub mod process;
pub mod sbi;
pub mod slab;
pub mod stats;
pub mod syscall;
pub mod zones;

pub use config::{ConfigError, DefenseMode, KernelConfig, KernelConfigBuilder};
pub use cycles::{cost, CostKind, CycleCounter};
pub use drain::{DrainFault, DrainPolicy, DrainPolicyParseError, DEFAULT_WATERMARK_DEPTH};
pub use error::KernelError;
pub use hart::{Hart, HartMsg, HartMsgKind};
pub use introspect::AttackerFault;
pub use kernel::{IpiFault, Kernel};
pub use proc_mgmt::FaultResolution;
pub use process::{Pid, ProcHandle, ProcState, ProcessTable, TableError, TableReader};
pub use ptstore_trace::Snapshot;
pub use sbi::{SbiCall, SbiError, SbiFirmware, SbiResult};
pub use stats::{KernelStats, SecurityEvent};
pub use syscall::{profile, SyscallProfile};
pub use zones::GfpFlags;
