//! The cycle cost model.
//!
//! The evaluation reports *relative* overheads between kernel configurations
//! running the same workload; absolute cycle counts therefore only need to be
//! internally consistent. Costs are grouped per [`CostKind`] so experiments
//! can attribute where time went (e.g. how much of the fork-stress overhead
//! is secure-region adjustment). Constants were calibrated so the harness
//! lands near the paper's anchors: CFI ≈ 2.8 % on fork-heavy microbenchmarks,
//! PTStore-without-adjustment ≈ +1 %, adjustment under the 30 000-process
//! stress ≈ +3 % (paper §V-D1), and kernel-bound macro overheads < 0.9 % for
//! PTStore alone (§V-D2).

use std::collections::BTreeMap;

use core::fmt;

use serde::{Deserialize, Serialize};

/// Where cycles were spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// User-mode computation.
    User,
    /// Kernel entry/exit and generic kernel path work.
    Kernel,
    /// Memory accesses through the bus (1 cycle each, L1-hit model).
    MemAccess,
    /// Page-table walks on TLB misses.
    TlbMiss,
    /// Clang CFI indirect-call checks.
    CfiCheck,
    /// Page allocator work.
    PageAlloc,
    /// Page-table writes (the `set_pXd` path; same cost for `sd`/`sd.pt`).
    PtWrite,
    /// Token issue/copy/clear/validate.
    Token,
    /// Secure-region dynamic adjustment (scan, migrate, SBI).
    Adjustment,
    /// SBI calls (M-mode round trip).
    Sbi,
    /// Permission-switch trampolines of the virtual-isolation baseline.
    VirtIsolationSwitch,
    /// TLB shootdowns / sfence.vma.
    TlbFlush,
    /// Context switch machinery.
    ContextSwitch,
    /// Page-fault handling.
    PageFault,
    /// Cross-hart IPIs: TLB-shootdown broadcast, acks, and remote-walker
    /// quiescence during secure-region adjustment.
    Ipi,
    /// Block/char I/O and networking stand-ins.
    Io,
}

impl CostKind {
    /// Every kind, in declaration (and `Ord`) order. The discriminant is
    /// the index into [`CycleCounter`]'s accumulator array.
    pub const ALL: [CostKind; 16] = [
        CostKind::User,
        CostKind::Kernel,
        CostKind::MemAccess,
        CostKind::TlbMiss,
        CostKind::CfiCheck,
        CostKind::PageAlloc,
        CostKind::PtWrite,
        CostKind::Token,
        CostKind::Adjustment,
        CostKind::Sbi,
        CostKind::VirtIsolationSwitch,
        CostKind::TlbFlush,
        CostKind::ContextSwitch,
        CostKind::PageFault,
        CostKind::Ipi,
        CostKind::Io,
    ];
}

/// Tunable cost constants (cycles).
pub mod cost {
    /// One L1-hit memory access.
    pub const MEM_ACCESS: u64 = 1;
    /// One page-table fetch during a walk (L2/DRAM-ish).
    pub const PTW_FETCH: u64 = 18;
    /// Syscall entry (trap, save, dispatch).
    pub const SYSCALL_ENTRY: u64 = 140;
    /// Syscall exit (restore, sret).
    pub const SYSCALL_EXIT: u64 = 110;
    /// One Clang CFI indirect-call check (jump-table clamp + branch).
    pub const CFI_CHECK: u64 = 7;
    /// Buddy allocator single-page alloc fast path.
    pub const PAGE_ALLOC: u64 = 90;
    /// Buddy allocator free fast path.
    pub const PAGE_FREE: u64 = 60;
    /// Extra cost of allocating from the PTStore zone instead of the normal
    /// zone (separate zone lists, GFP_PTSTORE routing).
    pub const PTSTORE_ZONE_EXTRA: u64 = 4;
    /// Zeroing a fresh 4 KiB page (512 store-words, write-combined).
    pub const ZERO_PAGE: u64 = 512;
    /// PTStore zero-check of a candidate page-table page; on an already-zero
    /// page this replaces the zeroing pass, so only the *check* residual is
    /// charged (paper §V-E3).
    pub const ZERO_CHECK_RESIDUAL: u64 = 8;
    /// Token issue (slab alloc + two `sd.pt` + PCB store).
    pub const TOKEN_ISSUE: u64 = 14;
    /// Token copy on fork.
    pub const TOKEN_COPY: u64 = 28;
    /// Token clear at exit.
    pub const TOKEN_CLEAR: u64 = 6;
    /// Token validation before a `satp` switch (two `ld.pt` + compares).
    pub const TOKEN_VALIDATE: u64 = 22;
    /// Base cost of one secure-region adjustment (boundary math, zone
    /// bookkeeping, retry).
    pub const ADJUST_BASE: u64 = 205_000;
    /// Migrating one in-use page out of the about-to-be-absorbed range
    /// during `alloc_contig_range`.
    pub const ADJUST_MIGRATE_PAGE: u64 = 150;
    /// Scanning one free page while assembling the contiguous range.
    pub const ADJUST_SCAN_PAGE: u64 = 41;
    /// One SBI ecall round trip to M-mode.
    pub const SBI_CALL: u64 = 700;
    /// Virtual-isolation write-window open+close (trampoline, permission
    /// flip, local TLB maintenance) around a batch of page-table writes.
    pub const VIRT_ISO_WINDOW: u64 = 260;
    /// sfence.vma (full).
    pub const SFENCE_ALL: u64 = 80;
    /// sfence.vma (page).
    pub const SFENCE_PAGE: u64 = 30;
    /// Context-switch base (register file, kernel stack, scheduler
    /// bookkeeping, cache warmup share).
    pub const CONTEXT_SWITCH: u64 = 2_400;
    /// Page-fault trap overhead (besides servicing).
    pub const PAGE_FAULT: u64 = 420;
    /// Process-creation base cost besides paging (PCB, fds, accounting).
    pub const FORK_BASE: u64 = 2_600;
    /// exec() base cost.
    pub const EXEC_BASE: u64 = 3_400;
    /// exit()/wait() base cost.
    pub const EXIT_BASE: u64 = 1_400;
    /// Copying one byte between user and kernel buffers (amortised).
    pub const COPY_BYTE_X8: u64 = 1; // per 8 bytes
    /// Sending one IPI to one remote hart (CLINT MSIP write + fabric).
    pub const IPI_SEND: u64 = 320;
    /// The initiator's wait for one remote hart's acknowledgement
    /// (interrupt delivery + remote trap entry, pipelined across harts).
    pub const IPI_ACK_WAIT: u64 = 180;
    /// A remote hart's cost to take the IPI trap and return.
    pub const IPI_RECV: u64 = 450;
}

/// A cycle accumulator with a per-kind breakdown.
///
/// `charge` sits on the hot path of every modeled memory access, so the
/// per-kind accumulators are a flat array indexed by the `CostKind`
/// discriminant rather than a map.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleCounter {
    total: u64,
    by_kind: [u64; CostKind::ALL.len()],
}

impl CycleCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` under `kind`.
    #[inline]
    pub fn charge(&mut self, kind: CostKind, cycles: u64) {
        self.total += cycles;
        self.by_kind[kind as usize] += cycles;
    }

    /// Total cycles.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cycles attributed to `kind`.
    pub fn of(&self, kind: CostKind) -> u64 {
        self.by_kind[kind as usize]
    }

    /// Full breakdown: the kinds charged so far, sorted, with their totals.
    pub fn breakdown(&self) -> BTreeMap<CostKind, u64> {
        CostKind::ALL
            .iter()
            .zip(self.by_kind)
            .filter(|&(_, v)| v != 0)
            .map(|(&k, v)| (k, v))
            .collect()
    }

    /// Cycles elapsed since an earlier snapshot total.
    pub fn since(&self, earlier_total: u64) -> u64 {
        self.total - earlier_total
    }
}

impl fmt::Display for CycleCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.total)?;
        let charged = self.breakdown();
        if !charged.is_empty() {
            write!(f, " (")?;
            let mut first = true;
            for (k, v) in charged {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{k:?}={v}")?;
                first = false;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_kind() {
        let mut c = CycleCounter::new();
        c.charge(CostKind::Kernel, 100);
        c.charge(CostKind::Kernel, 50);
        c.charge(CostKind::Token, 22);
        assert_eq!(c.total(), 172);
        assert_eq!(c.of(CostKind::Kernel), 150);
        assert_eq!(c.of(CostKind::Token), 22);
        assert_eq!(c.of(CostKind::Io), 0);
    }

    #[test]
    fn since_snapshot() {
        let mut c = CycleCounter::new();
        c.charge(CostKind::User, 10);
        let snap = c.total();
        c.charge(CostKind::User, 32);
        assert_eq!(c.since(snap), 32);
    }

    #[test]
    fn display_contains_total() {
        let mut c = CycleCounter::new();
        c.charge(CostKind::Sbi, 700);
        assert!(c.to_string().contains("700"));
    }
}
