//! The attacker-facing surface and experiment introspection.
//!
//! Under the paper's threat model (§III-A) the attacker owns a user process
//! and wields a kernel memory-corruption primitive: repeated arbitrary reads
//! and writes of kernel *virtual* addresses using regular instructions. The
//! primitive therefore goes through the kernel address-space translation and
//! the regular-channel bus path — which is exactly where each defense does or
//! does not stop it:
//!
//! * **PTStore**: translation succeeds (page tables are mapped in the direct
//!   map like any memory) but the physical access faults in the PMP.
//! * **Virtual isolation**: translation fails on write (PT pages read-only).
//! * **PT-Rand**: translation fails (no direct-map alias); with the leaked
//!   offset, the randomised window translates fine and the write lands.
//! * **None**: everything works.

use ptstore_core::{
    AccessError, AccessKind, Channel, PhysAddr, PhysPageNum, PrivilegeMode, VirtAddr,
};
use ptstore_mmu::{PageTableWalker, Satp, TranslateError};

use crate::config::DefenseMode;
use crate::error::KernelError;
use crate::kernel::{Kernel, PT_RAND_GLOBAL_PA, PT_RAND_WINDOW_BASE};
#[cfg(test)]
use crate::pagetable::direct_map_pa;
use crate::process::Pid;

/// Why an attacker memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerFault {
    /// The kernel page tables provided no (or insufficient) mapping.
    PageFault,
    /// The physical access was denied (PTStore's PMP firing).
    AccessFault(AccessError),
}

impl AttackerFault {
    /// True when the denial came from PTStore hardware checks.
    pub fn is_ptstore(&self) -> bool {
        matches!(self, AttackerFault::AccessFault(e) if e.is_ptstore_fault())
    }
}

impl Kernel {
    /// Translates a kernel virtual address the way the attacker's corrupted
    /// kernel code path would: through the *kernel* address space (identity
    /// satp root = kernel root), honouring PTE permissions, including the
    /// PT-Rand randomised window.
    fn attacker_translate(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<PhysAddr, AttackerFault> {
        // PT-Rand window: a software-managed alias the kernel uses for page
        // tables; translation is a fixed offset (the secret).
        if self.cfg.defense == DefenseMode::PtRand {
            let base = PT_RAND_WINDOW_BASE + self.pt_rand_offset;
            if va.as_u64() >= base && va.as_u64() < base + self.cfg.mem_size {
                return Ok(PhysAddr::new(va.as_u64() - base));
            }
        }
        let satp = Satp::new(self.cfg.scheme, self.kernel_root(), 0, self.satp_s_bit());
        PageTableWalker::new()
            .translate(&mut self.bus, satp, va, kind, PrivilegeMode::Supervisor)
            .map(|o| o.pa)
            .map_err(|e| match e {
                TranslateError::PageFault { .. } => AttackerFault::PageFault,
                TranslateError::AccessFault(ae) => AttackerFault::AccessFault(ae),
            })
    }

    /// The attacker's arbitrary 8-byte read (regular load).
    pub fn attacker_read_u64(&mut self, va: VirtAddr) -> Result<u64, AttackerFault> {
        let pa = self.attacker_translate(va, AccessKind::Read)?;
        let ctx = self.kctx();
        // ptstore-lint: allow(channel-confinement) — the §III-A attacker's
        // regular load; the PMP adjudicates it, which is the point.
        self.bus
            .read::<u64>(pa, Channel::Regular, ctx)
            .map_err(AttackerFault::AccessFault)
    }

    /// The attacker's arbitrary 8-byte write (regular store).
    pub fn attacker_write_u64(&mut self, va: VirtAddr, value: u64) -> Result<(), AttackerFault> {
        let pa = self.attacker_translate(va, AccessKind::Write)?;
        let ctx = self.kctx();
        // ptstore-lint: allow(channel-confinement) — the §III-A attacker's
        // regular store; must hit the PMP S-bit, not the kernel channel.
        self.bus
            .write::<u64>(pa, value, Channel::Regular, ctx)
            .map_err(AttackerFault::AccessFault)
    }

    /// The attacker's arbitrary write at a **physical** address through a
    /// *stale D-TLB translation* — the §V-E5 TLB-inconsistency scenario. The
    /// translation step is bypassed (the stale TLB already produced `pa`);
    /// only the physical-access checks remain.
    pub fn attacker_write_phys_via_stale_tlb(
        &mut self,
        pa: PhysAddr,
        value: u64,
    ) -> Result<(), AttackerFault> {
        let ctx = self.kctx();
        // ptstore-lint: allow(channel-confinement) — §V-E5 stale-TLB store:
        // the attacker bypasses translation, never the physical checks.
        self.bus
            .write::<u64>(pa, value, Channel::Regular, ctx)
            .map_err(AttackerFault::AccessFault)
    }

    /// Leaks the PT-Rand secret offset by reading the kernel global that
    /// stores it (information disclosure, §VI-1). Returns the randomised
    /// window base.
    pub fn attacker_leak_pt_rand_window(&mut self) -> Result<u64, AttackerFault> {
        let global_va = self.direct_map(PhysAddr::new(PT_RAND_GLOBAL_PA));
        let offset = self.attacker_read_u64(global_va)?;
        Ok(PT_RAND_WINDOW_BASE + offset)
    }

    // ------------------------------------------------------------------
    // Experiment introspection (addresses the attacker "knows" — the threat
    // model grants knowledge of kernel data-structure locations)
    // ------------------------------------------------------------------

    /// Physical address of `pid`'s PCB.
    pub fn pcb_addr(&self, pid: Pid) -> Option<PhysAddr> {
        self.procs.get(pid).map(|p| p.pcb_addr)
    }

    /// Physical address of `pid`'s PCB page-table-pointer field.
    pub fn pcb_pt_ptr_slot(&self, pid: Pid) -> Option<PhysAddr> {
        self.procs.get(pid).map(|p| p.pt_ptr_slot())
    }

    /// Physical address of `pid`'s PCB token-pointer field.
    pub fn pcb_token_slot(&self, pid: Pid) -> Option<PhysAddr> {
        self.procs.get(pid).map(|p| p.token_slot())
    }

    /// `pid`'s root page-table page.
    pub fn process_root(&self, pid: Pid) -> Option<PhysPageNum> {
        self.procs.get(pid).map(|p| p.aspace.root)
    }

    /// The physical address of the leaf PTE mapping `va` in `pid`'s address
    /// space (what PT-Tampering wants to overwrite).
    pub fn pte_phys_addr(&mut self, pid: Pid, va: VirtAddr) -> Result<PhysAddr, KernelError> {
        let root = self
            .procs
            .get(pid)
            .ok_or(KernelError::NoSuchProcess)?
            .aspace
            .root;
        self.leaf_slot(root, va)?.ok_or(KernelError::BadAddress)
    }

    /// The physical address and level of the PTE actually mapping `va` in
    /// `pid`'s address space, superpage leaves included — what the
    /// huge-page tampering attack wants to overwrite (a level-1 slot whose
    /// corruption redirects a whole 2 MiB of translations at once).
    pub fn leaf_pte_phys_addr(
        &mut self,
        pid: Pid,
        va: VirtAddr,
    ) -> Result<(PhysAddr, usize), KernelError> {
        let root = self
            .procs
            .get(pid)
            .ok_or(KernelError::NoSuchProcess)?
            .aspace
            .root;
        self.find_leaf(root, va)?.ok_or(KernelError::BadAddress)
    }

    /// The shared user text physical page (a tampering target).
    pub fn shared_text_page(&self) -> PhysPageNum {
        self.shared_text_ppn
    }

    /// Reads kernel memory through the kernel's own regular channel (tests
    /// and experiment verification).
    pub fn mem_read_public(&mut self, pa: PhysAddr) -> Result<u64, KernelError> {
        self.mem_read(pa)
    }

    /// Reads a PTE through the kernel's own (legitimate) channel — used by
    /// tests to verify attack side effects.
    pub fn read_pte_raw(&mut self, slot: PhysAddr) -> Result<u64, KernelError> {
        self.pt_read(slot)
    }

    /// Whether `pa` currently falls in the PMP secure region.
    pub fn is_secure_phys(&self, pa: PhysAddr) -> bool {
        self.secure_region().is_some_and(|r| r.contains(pa))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use ptstore_core::MIB;

    fn small(cfg: KernelConfig) -> Kernel {
        Kernel::boot(
            cfg.with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot")
    }

    #[test]
    fn attacker_reads_kernel_memory_via_direct_map() {
        let mut k = small(KernelConfig::cfi_ptstore());
        let pcb = k.pcb_addr(1).unwrap();
        let va = k.direct_map(pcb + crate::process::PCB_OFF_PID);
        assert_eq!(k.attacker_read_u64(va).unwrap(), 1, "pid readable");
    }

    #[test]
    fn attacker_write_to_pte_blocked_only_by_ptstore() {
        // PTStore: blocked by PMP.
        let mut k = small(KernelConfig::cfi_ptstore());
        let pte = k
            .pte_phys_addr(1, VirtAddr::new(crate::pagetable::USER_TEXT_BASE))
            .unwrap();
        let va = k.direct_map(pte);
        let err = k.attacker_write_u64(va, 0xdead).unwrap_err();
        assert!(err.is_ptstore());

        // Baseline: succeeds.
        let mut k = small(KernelConfig::cfi());
        let pte = k
            .pte_phys_addr(1, VirtAddr::new(crate::pagetable::USER_TEXT_BASE))
            .unwrap();
        let va = k.direct_map(pte);
        k.attacker_write_u64(va, 0xdead).unwrap();
    }

    #[test]
    fn virtual_isolation_blocks_via_page_permissions() {
        let mut k = small(KernelConfig::cfi().with_defense(DefenseMode::VirtualIsolation));
        let pte = k
            .pte_phys_addr(1, VirtAddr::new(crate::pagetable::USER_TEXT_BASE))
            .unwrap();
        let va = k.direct_map(pte);
        // Reads are fine (RO mapping), writes page-fault.
        k.attacker_read_u64(va).unwrap();
        assert_eq!(
            k.attacker_write_u64(va, 0xdead).unwrap_err(),
            AttackerFault::PageFault
        );
    }

    #[test]
    fn pt_rand_blocks_direct_map_but_leaks() {
        let mut k = small(KernelConfig::cfi().with_defense(DefenseMode::PtRand));
        let pte = k
            .pte_phys_addr(1, VirtAddr::new(crate::pagetable::USER_TEXT_BASE))
            .unwrap();
        let dm = k.direct_map(pte);
        // Direct-map alias removed: page fault.
        assert_eq!(
            k.attacker_write_u64(dm, 0xdead).unwrap_err(),
            AttackerFault::PageFault
        );
        // Leak the secret, then write through the randomised window.
        let window = k.attacker_leak_pt_rand_window().unwrap();
        let via_window = VirtAddr::new(window + pte.as_u64());
        k.attacker_write_u64(via_window, 0xdead).unwrap();
    }

    #[test]
    fn direct_map_helpers_round_trip() {
        let k = small(KernelConfig::baseline());
        let pa = PhysAddr::new(0x123000);
        assert_eq!(direct_map_pa(k.direct_map(pa)), Some(pa));
    }
}
