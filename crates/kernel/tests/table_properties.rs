//! Property and concurrency tests for the generational process table.
//!
//! The table's whole point is that a handle to a reaped process *detects*
//! its staleness instead of silently resolving to whatever reused the
//! slot. The proptest half drives random insert/reap/quiesce schedules
//! and asserts that no retired handle ever resolves again — through the
//! owning-hart API or the lock-free [`TableReader`] — even as slots are
//! reclaimed and reused. The threaded half runs a real reader thread
//! against an owner performing reap/reuse churn: any interleaving the
//! host scheduler produces must show each handle either its original pid
//! or nothing.

use proptest::prelude::*;
use ptstore_core::PhysAddr;
use ptstore_kernel::pagetable::AddressSpace;
use ptstore_kernel::process::{FdTable, Process, SignalTable};
use ptstore_kernel::{Pid, ProcHandle, ProcState, ProcessTable};

fn proc(pid: Pid) -> Process {
    Process {
        pid,
        parent: None,
        state: ProcState::Running,
        pcb_addr: PhysAddr::new(0x1000),
        aspace: AddressSpace::default(),
        vmas: Vec::new(),
        brk: 0,
        mmap_cursor: 0,
        fds: FdTable::with_std(),
        signals: SignalTable::default(),
        exit_code: 0,
        children: Vec::new(),
        mm_owner: None,
        threads: Vec::new(),
    }
}

/// One step of a random table schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(Pid),
    Remove(Pid),
    Quiesce(usize),
}

fn op_strategy(harts: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..24u32).prop_map(Op::Insert),
        (1..24u32).prop_map(Op::Remove),
        (0..harts).prop_map(Op::Quiesce),
    ]
}

proptest! {
    /// A reaped pid's handle never resolves again — not through
    /// `resolve`, not through the reader — no matter how slots are
    /// quiesced, reclaimed, and reused afterwards.
    #[test]
    fn retired_handles_never_resolve(ops in proptest::collection::vec(op_strategy(2), 1..80)) {
        let mut t = ProcessTable::with_harts(2);
        let reader = t.reader();
        let mut retired: Vec<(Pid, ProcHandle)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(pid) => {
                    // Duplicate pids are a clean error, never a panic.
                    let _ = t.insert(proc(pid));
                }
                Op::Remove(pid) => {
                    if let Some(h) = t.lookup(pid) {
                        prop_assert!(t.remove(pid).is_some());
                        retired.push((pid, h));
                    }
                }
                Op::Quiesce(hart) => t.quiesce(hart),
            }
            for &(pid, h) in &retired {
                prop_assert!(t.resolve(h).is_none(), "pid {pid} resolved after reap");
                prop_assert!(!reader.live(h), "reader saw pid {pid} live after reap");
                prop_assert!(reader.pid_of(h).is_none());
            }
            // Live entries keep round-tripping exactly.
            for pid in t.pids() {
                let h = t.lookup(pid).expect("live pid has a handle");
                prop_assert_eq!(t.resolve(h).map(|p| p.pid), Some(pid));
                prop_assert_eq!(reader.pid_of(h), Some(pid));
            }
        }
    }

    /// Slot reuse never resurrects an old generation: any two handles the
    /// table ever issued for the same slot have distinct generations.
    #[test]
    fn generations_never_repeat_per_slot(rounds in 1..40usize) {
        let mut t = ProcessTable::with_harts(1);
        let mut seen: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for r in 0..rounds {
            let pid = (r + 1) as Pid;
            let h = t.insert(proc(pid)).expect("insert");
            let gens = seen.entry(h.slot).or_default();
            prop_assert!(!gens.contains(&h.gen), "slot {} repeated gen {}", h.slot, h.gen);
            gens.push(h.gen);
            t.remove(pid);
            t.quiesce(0); // harts = 1: the slot is immediately reusable
        }
        prop_assert!(t.slots_reclaimed() > 0 || rounds == 0);
    }
}

/// A real reader thread races the owning hart through reap/reuse churn:
/// every `pid_of` observation must be the handle's original pid or
/// nothing, under whatever interleaving the host scheduler produces. The
/// churn schedule is seeded so failures replay.
#[test]
fn concurrent_reader_during_reap_sees_old_pid_or_nothing() {
    for seed in 1..=4u64 {
        let mut t = ProcessTable::with_harts(2);
        let reader = t.reader();
        let handles: Vec<(Pid, ProcHandle)> = (1..=32)
            .map(|pid| (pid, t.insert(proc(pid)).expect("insert")))
            .collect();
        let watched = handles.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for _ in 0..2_000 {
                    for &(pid, h) in &watched {
                        if let Some(seen) = reader.pid_of(h) {
                            assert_eq!(seen, pid, "reader resolved a reused slot");
                        } else {
                            assert!(!reader.live(h), "dead handle reported live");
                        }
                    }
                }
            });
            // The owner reaps and reuses slots while the reader runs. A
            // multiplicative LCG picks victims; quiescing both harts lets
            // limbo drain so slots genuinely get reused mid-race.
            let mut state = seed;
            let mut next_pid: Pid = 33;
            for _ in 0..400 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pid = (state >> 33) as Pid % 32 + 1;
                if t.lookup(pid).is_some() {
                    t.remove(pid).expect("reap");
                    t.quiesce(0);
                    t.quiesce(1);
                    t.insert(proc(next_pid)).expect("reuse slot");
                    next_pid += 1;
                }
            }
        });
        // Every original handle whose pid was reaped is stale for good.
        for (pid, h) in handles {
            match t.resolve(h) {
                Some(p) => assert_eq!(p.pid, pid),
                None => assert!(t.lookup(pid).is_none() || t.lookup(pid) != Some(h)),
            }
        }
        assert!(t.slots_reclaimed() > 0, "churn must actually reuse slots");
    }
}
