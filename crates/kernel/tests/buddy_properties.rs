//! Property-based tests for the buddy allocator: random operation sequences
//! must preserve the zone invariants, never double-allocate, and always
//! coalesce back to the initial free count.

use proptest::prelude::*;
use ptstore_core::PhysPageNum;
use ptstore_kernel::zones::{AllocError, BuddyZone, MAX_ORDER};
use std::collections::HashSet;

/// An operation in a random allocator workload.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        order: u8,
        movable: bool,
    },
    /// Free the i-th live allocation (modulo the live set size).
    Free {
        index: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=4, any::<bool>()).prop_map(|(order, movable)| Op::Alloc { order, movable }),
        (0usize..64).prop_map(|index| Op::Free { index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free sequences: blocks never overlap, invariants hold
    /// throughout, and freeing everything restores the zone.
    #[test]
    fn random_workload_preserves_invariants(
        base in 1u64..10_000,
        pages in 32u64..512,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut zone = BuddyZone::new("prop", PhysPageNum::new(base), pages);
        let initial_free = zone.free_pages();
        prop_assert_eq!(initial_free, pages);

        let mut live: Vec<(PhysPageNum, u8)> = Vec::new();
        let mut owned_pages: HashSet<u64> = HashSet::new();

        for op in ops {
            match op {
                Op::Alloc { order, movable } => {
                    match zone.alloc(order, movable) {
                        Ok(start) => {
                            // Claimed pages must be fresh and inside the zone.
                            for p in start.as_u64()..start.as_u64() + (1 << order) {
                                prop_assert!(
                                    owned_pages.insert(p),
                                    "page {p:#x} double-allocated"
                                );
                                prop_assert!(zone.contains(PhysPageNum::new(p)));
                            }
                            // Natural alignment of buddy blocks.
                            prop_assert_eq!(start.as_u64() % (1 << order), 0);
                            live.push((start, order));
                        }
                        Err(AllocError::OutOfMemory) => {
                            // Acceptable: the zone may genuinely be full for
                            // this order.
                        }
                        Err(e) => prop_assert!(false, "unexpected alloc error {e:?}"),
                    }
                }
                Op::Free { index } => {
                    if !live.is_empty() {
                        let (start, order) = live.swap_remove(index % live.len());
                        zone.free(start).expect("free of live block");
                        for p in start.as_u64()..start.as_u64() + (1 << order) {
                            owned_pages.remove(&p);
                        }
                    }
                }
            }
            prop_assert!(zone.check_invariants(), "invariants violated mid-run");
            prop_assert_eq!(
                zone.free_pages(),
                pages - owned_pages.len() as u64,
                "free-page accounting drifted"
            );
        }

        // Drain: free everything, the zone must fully coalesce.
        for (start, _) in live {
            zone.free(start).expect("final free");
        }
        prop_assert_eq!(zone.free_pages(), initial_free);
        prop_assert!(zone.check_invariants());
    }

    /// reserve_range on ranges of free pages always claims exactly the range
    /// and never disturbs surrounding allocations.
    #[test]
    fn reserve_range_is_exact(
        pages in 64u64..512,
        pre_allocs in 0usize..20,
        range_len in 1u64..32,
    ) {
        let base = 0x100u64;
        let mut zone = BuddyZone::new("prop", PhysPageNum::new(base), pages);
        // Pin some low allocations (they must survive untouched).
        let mut pinned = Vec::new();
        for _ in 0..pre_allocs {
            if let Ok(p) = zone.alloc(0, false) {
                pinned.push(p);
            }
        }
        let range_len = range_len.min(pages / 4);
        let start = PhysPageNum::new(base + pages - range_len);
        // Top of the zone stays free under low-first allocation.
        let before_free = zone.free_pages();
        let r = zone.reserve_range(start, range_len).expect("top range free");
        prop_assert_eq!(r.claimed_free, range_len);
        prop_assert!(r.to_migrate.is_empty());
        prop_assert_eq!(zone.free_pages(), before_free - range_len);
        // Pinned allocations still free cleanly.
        for p in pinned {
            zone.free(p).expect("pinned free");
        }
        prop_assert!(zone.check_invariants());
    }

    /// Orders beyond MAX_ORDER are rejected by construction (panic = bug),
    /// and alloc at MAX_ORDER works when the zone is big enough.
    #[test]
    fn max_order_allocations(extra in 0u64..3) {
        let pages = (1u64 << MAX_ORDER) * (1 + extra);
        let mut zone = BuddyZone::new("prop", PhysPageNum::new(0), pages);
        let got = zone.alloc(MAX_ORDER, false).expect("fits");
        prop_assert_eq!(got.as_u64() % (1 << MAX_ORDER), 0);
        zone.free(got).expect("free");
        prop_assert_eq!(zone.free_pages(), pages);
    }
}
