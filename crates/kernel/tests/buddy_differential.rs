//! Differential property test: the bitmap-backed [`BuddyZone`] must be
//! behavior-identical to the original `BTreeSet` implementation preserved
//! in [`reference::BTreeBuddyZone`] — the same alloc/free/coalesce traces
//! (every returned address), the same `AllocError`s, and the same free-page
//! accounting after every step of a random workload that also exercises
//! `split_allocation`, `reserve_range`/`complete_migration`, and the
//! `shrink_top`/`grow_bottom` boundary moves used by secure-region
//! adjustment.

use proptest::prelude::*;
use ptstore_core::PhysPageNum;
use ptstore_kernel::zones::{reference::BTreeBuddyZone, BuddyZone, MAX_ORDER};

/// One step of the differential workload.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        order: u8,
        movable: bool,
    },
    /// Free the i-th live allocation (modulo the live-set size).
    Free {
        index: usize,
    },
    /// Split the i-th live allocation into order-0 pages.
    Split {
        index: usize,
    },
    /// Reserve a range near the top of the zone, migrate the movable
    /// occupants it reports, and shrink the top edge over it.
    ReserveTop {
        pages: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..=MAX_ORDER, any::<bool>())
            .prop_map(|(order, movable)| Op::Alloc { order, movable }),
        4 => (0usize..128).prop_map(|index| Op::Free { index }),
        1 => (0usize..128).prop_map(|index| Op::Split { index }),
        1 => (1u64..16).prop_map(|pages| Op::ReserveTop { pages }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bitmap_zone_matches_btree_reference(
        base in 1u64..10_000,
        pages in 32u64..512,
        ops in proptest::collection::vec(arb_op(), 1..250),
    ) {
        let mut new = BuddyZone::new("diff", PhysPageNum::new(base), pages);
        let mut old = BTreeBuddyZone::new(PhysPageNum::new(base), pages);
        // Live allocation starts, identical for both sides by induction.
        let mut live: Vec<PhysPageNum> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { order, movable } => {
                    let a = new.alloc(order, movable);
                    let b = old.alloc(order, movable);
                    prop_assert_eq!(a, b, "alloc(order {}) diverged", order);
                    if let Ok(start) = a {
                        live.push(start);
                    }
                }
                Op::Free { index } => {
                    // Also exercise the BadFree path on an empty live set.
                    let target = if live.is_empty() {
                        PhysPageNum::new(base + 1)
                    } else {
                        live.swap_remove(index % live.len())
                    };
                    prop_assert_eq!(new.free(target), old.free(target));
                }
                Op::Split { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let target = live.swap_remove(index % live.len());
                    let a = new.split_allocation(target);
                    prop_assert_eq!(a, old.split_allocation(target));
                    if let Ok(n) = a {
                        for i in 0..n {
                            live.push(target + i);
                        }
                    }
                }
                Op::ReserveTop { pages } => {
                    if new.total_pages() <= pages + 1 {
                        continue;
                    }
                    let start = PhysPageNum::new(new.end().as_u64() - pages);
                    // Probe on a clone first: a migrated block straddling the
                    // range bottom leaves its below-boundary pages untracked
                    // (in both implementations alike), which a later
                    // reservation over them rejects as inconsistent state.
                    // The kernel never reserves over such leftovers; skip.
                    let probe = new.clone().reserve_range(start, pages);
                    if matches!(&probe, Ok(r) if r.to_migrate.iter().any(|(b, _)| *b < start)) {
                        continue;
                    }
                    let a = new.reserve_range(start, pages);
                    let b = old.reserve_range(start, pages);
                    prop_assert_eq!(&a, &b, "reserve_range diverged");
                    if let Ok(r) = a {
                        for (block, _) in &r.to_migrate {
                            prop_assert_eq!(
                                new.complete_migration(*block),
                                old.complete_migration(*block)
                            );
                            live.retain(|p| {
                                // Migrated blocks leave the live set (their
                                // pages now belong to the reservation).
                                p != block
                            });
                        }
                        prop_assert_eq!(new.shrink_top(pages), old.shrink_top(pages));
                        // Pages above the new end are off the table; drop any
                        // stale live entries (split pages of migrated blocks).
                        let end = new.end();
                        live.retain(|p| *p < end);
                    }
                }
            }
            prop_assert_eq!(new.free_pages(), old.free_pages());
            prop_assert!(new.check_invariants(), "bitmap invariants broken");
            prop_assert!(old.check_invariants(), "reference invariants broken");
        }

        // Drain both sides to empty the same way: every remaining live block
        // frees identically and the final accounting matches.
        live.sort_unstable();
        live.dedup();
        for p in live {
            prop_assert_eq!(new.free(p), old.free(p));
        }
        prop_assert_eq!(new.free_pages(), old.free_pages());
        prop_assert_eq!(new.alloc(0, false), old.alloc(0, false));
    }
}
