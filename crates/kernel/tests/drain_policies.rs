//! Drain-policy differentials and the ASID-rollover regression.
//!
//! Early drains are pure *placement*: every entry a `Watermark` policy
//! drains ahead of time would otherwise ride the next mandatory security
//! boundary, so at 1, 2 and 4 harts the final TLB state and the work done
//! (faults, forks) must be byte-identical across policies — only the IPI
//! round-trip counts and the queue-depth high-water mark may move. The
//! rollover half pins the one drain no policy may skip: an ASID handed
//! out *after* the 15-bit allocator wraps is a reuse, and the new address
//! space must never observe a deferred invalidation queued against its
//! previous life.

use ptstore_core::{AccessKind, PrivilegeMode, VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::{DrainPolicy, Kernel, KernelConfig};

fn boot(harts: usize, deferred: bool, policy: DrainPolicy) -> Kernel {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(128 * MIB)
        .with_initial_secure_size(8 * MIB)
        .with_harts(harts)
        .with_deferred_shootdowns(deferred)
        .with_drain_policy(policy);
    Kernel::boot(cfg).expect("kernel boots")
}

/// Every TLB entry of every hart, as a sorted canonical listing.
fn tlb_state(k: &Kernel) -> Vec<String> {
    let mut v = Vec::new();
    for h in &k.harts {
        for e in h.mmu.itlb().entries() {
            v.push(format!("hart{} itlb {e:?}", h.id));
        }
        for e in h.mmu.dtlb().entries() {
            v.push(format!("hart{} dtlb {e:?}", h.id));
        }
    }
    v.sort();
    v
}

/// Fork/exit storm: each child dirties `pages` CoW pages, and its exit
/// tears them down page-by-page — the deepest queue the kernel builds.
fn fork_stress(k: &mut Kernel, rounds: usize, pages: u64) {
    let heap_base = k.procs.get(1).expect("init").brk;
    k.sys_brk(heap_base + pages * PAGE_SIZE).expect("brk");
    for i in 0..pages {
        k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
            .expect("touch parent heap");
    }
    for _ in 0..rounds {
        let child = k.sys_fork().expect("fork");
        k.do_yield().expect("switch to child");
        assert_eq!(k.current_pid(), child);
        for i in 0..pages {
            k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
                .expect("child CoW write");
        }
        k.sys_exit(0).expect("child exits");
    }
}

#[test]
fn watermark_bounds_queue_depth_with_identical_state() {
    for harts in [2usize, 4] {
        let mut boundary = boot(harts, true, DrainPolicy::Boundary);
        let mut watermark = boot(harts, true, DrainPolicy::Watermark { depth: 2 });
        fork_stress(&mut boundary, 3, 8);
        fork_stress(&mut watermark, 3, 8);

        // Identical work, identical final translation state...
        assert_eq!(boundary.stats.forks, watermark.stats.forks);
        assert_eq!(boundary.stats.page_faults, watermark.stats.page_faults);
        assert_eq!(
            tlb_state(&boundary),
            tlb_state(&watermark),
            "{harts} harts: policies diverged"
        );
        // ...but the watermark capped the queue at its depth while the
        // boundary policy let the teardown batch build up.
        assert!(
            watermark.stats.deferred_queue_peak < boundary.stats.deferred_queue_peak,
            "{harts} harts: watermark peak {} !< boundary peak {}",
            watermark.stats.deferred_queue_peak,
            boundary.stats.deferred_queue_peak
        );
        assert_eq!(watermark.stats.deferred_queue_peak, 2);
        assert!(watermark.stats.watermark_drains > 0);
        assert_eq!(boundary.stats.watermark_drains, 0);
        // Early drains cost extra IPI rounds — the trade-off the policy
        // matrix documents.
        assert!(watermark.stats.deferred_drains > boundary.stats.deferred_drains);
    }
}

#[test]
fn single_hart_policies_are_cycle_identical() {
    let mut machines = [
        boot(1, true, DrainPolicy::Boundary),
        boot(1, true, DrainPolicy::Watermark { depth: 2 }),
        boot(1, true, DrainPolicy::AsidRecycle),
    ];
    for k in &mut machines {
        fork_stress(k, 3, 8);
    }
    let [a, b, c] = machines;
    assert_eq!(a.cycles.total(), b.cycles.total());
    assert_eq!(a.cycles.total(), c.cycles.total());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats, c.stats);
    assert_eq!(a.stats.watermark_drains, 0);
    assert_eq!(a.stats.asid_recycle_drains, 0);
}

/// Warms `hart`'s D-TLB at `va` through init's address space, then parks
/// the hart's satp back on its own root.
fn warm_remote_and_park(k: &mut Kernel, hart: usize, va: VirtAddr) {
    let parked = k.harts[hart].mmu.satp;
    k.harts[hart].mmu.satp = k.harts[0].mmu.satp;
    k.harts[hart]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("remote warm resolves");
    k.harts[hart].mmu.satp = parked;
}

/// True when any hart's TLB still holds an entry for `(asid, vpn)`.
fn any_tlb_holds(k: &Kernel, asid: u16, vpn: u64) -> bool {
    k.harts.iter().any(|h| {
        h.mmu
            .itlb()
            .entries()
            .chain(h.mmu.dtlb().entries())
            .any(|e| e.asid == asid && e.covers(ptstore_core::VirtPageNum::new(vpn)))
    })
}

/// The regression the `AsidRecycle` mandatory drain exists for: fast-
/// forward the allocator to its wrap point, manufacture a queued deferred
/// invalidation plus a still-cached remote translation against the ASID
/// about to be recycled, then allocate. The new address space must come
/// up with zero pending flushes and no stale entry, at every hart count,
/// under both eager and deferred shootdowns, under every policy.
#[test]
fn recycled_asid_never_observes_stale_deferred_invalidations() {
    for harts in [1usize, 2, 4] {
        for deferred in [false, true] {
            for policy in [
                DrainPolicy::Boundary,
                DrainPolicy::Watermark { depth: 64 },
                DrainPolicy::AsidRecycle,
            ] {
                let mut k = boot(harts, deferred, policy);
                let heap_base = k.procs.get(1).expect("init").brk;
                k.sys_brk(heap_base + PAGE_SIZE).expect("brk");
                k.sys_touch(VirtAddr::new(heap_base), true).expect("touch");

                // First wrap the allocator: the next fork takes 0x7fff and
                // rolls over, marking every later allocation a reuse.
                k.set_next_asid(0x7fff);
                let child = k.sys_fork().expect("fork at wrap point");
                assert!(k.asid_rollover_happened());

                // Manufacture the hazard against init's ASID (1) — the
                // value the wrapped allocator hands out next: a queued
                // invalidation plus a remote hart still caching the page.
                let va = VirtAddr::new(heap_base);
                if harts > 1 {
                    warm_remote_and_park(&mut k, harts - 1, va);
                    assert!(any_tlb_holds(&k, 1, va.as_u64() >> 12));
                }
                k.inject_deferred_flush(va, 1);
                let was_pending = k.pending_deferred_flushes();
                assert_eq!(was_pending > 0, deferred && harts > 1);

                // The reuse allocation must force the drain...
                let grandchild = k.sys_fork().expect("fork over recycled asid");
                assert_ne!(child, grandchild);
                assert_eq!(k.pending_deferred_flushes(), 0);
                if was_pending > 0 {
                    assert!(
                        k.stats.asid_recycle_drains > 0,
                        "{harts} harts {policy}: reuse drain not recorded"
                    );
                }
                // ...and no hart may still translate through the ASID's
                // previous life.
                assert!(
                    !any_tlb_holds(&k, 1, va.as_u64() >> 12),
                    "{harts} harts deferred={deferred} {policy}: stale entry survived recycle"
                );
            }
        }
    }
}

/// `AsidRecycle` drains at *every* allocation, not only post-rollover —
/// the paranoid generation-hygiene variant of the matrix.
#[test]
fn asid_recycle_policy_drains_pre_rollover_allocations_too() {
    let mut strict = boot(2, true, DrainPolicy::AsidRecycle);
    let mut lax = boot(2, true, DrainPolicy::Boundary);
    for k in [&mut strict, &mut lax] {
        let heap_base = k.procs.get(1).expect("init").brk;
        k.sys_brk(heap_base + PAGE_SIZE).expect("brk");
        k.sys_touch(VirtAddr::new(heap_base), true).expect("touch");
        k.inject_deferred_flush(VirtAddr::new(heap_base), 1);
        k.sys_fork().expect("fork");
    }
    assert_eq!(strict.stats.asid_recycle_drains, 1);
    assert_eq!(strict.pending_deferred_flushes(), 0);
    // Boundary leaves the (benign) queue for the next boundary drain: the
    // fresh ASID is not a reuse, so nothing forces it.
    assert_eq!(lax.stats.asid_recycle_drains, 0);
    assert!(lax.pending_deferred_flushes() > 0);
}
