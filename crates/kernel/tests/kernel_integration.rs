//! Integration tests across the kernel's subsystems.

use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::pagetable::{USER_MMAP_BASE, USER_TEXT_BASE};
use ptstore_kernel::{DefenseMode, Kernel, KernelConfig, KernelError};

fn boot(cfg: KernelConfig) -> Kernel {
    Kernel::boot(
        cfg.with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB),
    )
    .expect("kernel boots")
}

fn boot_small_region(chunk: u64) -> Kernel {
    let mut cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(MIB);
    cfg.adjust_chunk = chunk;
    Kernel::boot(cfg).expect("kernel boots")
}

#[test]
fn boots_in_every_defense_mode() {
    for defense in [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
        DefenseMode::PtStore,
    ] {
        let k = boot(KernelConfig::baseline().with_defense(defense));
        assert_eq!(k.current_pid(), 1, "{defense}: init is current");
        assert_eq!(
            k.secure_region().is_some(),
            defense.is_ptstore(),
            "{defense}: secure region present iff ptstore"
        );
    }
}

#[test]
fn ptstore_kernel_issues_secure_channel_traffic() {
    let k = boot(KernelConfig::cfi_ptstore());
    let stats = k.bus.stats();
    assert!(
        stats.secure_writes > 100,
        "boot builds the direct map with sd.pt: {stats}"
    );
    assert_eq!(stats.faults, 0, "no PTStore faults during legitimate boot");
}

#[test]
fn baseline_kernel_never_touches_secure_channel() {
    let k = boot(KernelConfig::cfi());
    assert_eq!(k.bus.stats().secure_total(), 0);
}

#[test]
fn fork_wait_exit_lifecycle() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let child = k.sys_fork().expect("fork");
    assert_ne!(child, 1);
    // Switch to the child and have it exit; exit schedules back to init.
    k.do_switch_to(child).expect("switch to child");
    assert_eq!(k.current_pid(), child);
    k.sys_exit(42).expect("exit");
    assert_eq!(k.current_pid(), 1);
    let (reaped, code) = k.sys_wait().expect("wait");
    assert_eq!(reaped, child);
    assert_eq!(code, 42);
    assert!(k.procs.get(child).is_none(), "child fully reaped");
}

#[test]
fn fork_exit_cycle_leaks_nothing() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let free_before = k.pt_area_free_pages().unwrap();
    let normal_before = k.normal_free_pages();
    for _ in 0..50 {
        let child = k.sys_fork().expect("fork");
        k.do_switch_to(child).expect("switch");
        k.sys_exit(0).expect("exit");
        k.sys_wait().expect("wait");
    }
    assert_eq!(
        k.pt_area_free_pages().unwrap(),
        free_before,
        "secure pages all returned"
    );
    assert_eq!(
        k.normal_free_pages(),
        normal_before,
        "normal pages all returned"
    );
    assert_eq!(k.stats.forks, 50);
    assert_eq!(k.stats.exits, 50);
}

#[test]
fn cow_sharing_and_break() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    // Touch a heap page in init: demand map.
    k.sys_brk(ptstore_kernel::pagetable::USER_HEAP_BASE + PAGE_SIZE)
        .expect("brk");
    let heap_va = VirtAddr::new(ptstore_kernel::pagetable::USER_HEAP_BASE);
    k.sys_touch(heap_va, true).expect("demand map heap");
    let faults_before = k.stats.page_faults;

    let child = k.sys_fork().expect("fork");
    // Parent writes the shared heap page: CoW break.
    k.sys_touch(heap_va, true).expect("cow break");
    assert_eq!(k.stats.cow_faults, 1);
    assert!(k.stats.page_faults > faults_before);
    // Child's mapping is untouched and still read-only shared.
    k.do_switch_to(child).expect("switch");
    k.sys_touch(heap_va, false).expect("child reads fine");
}

#[test]
fn demand_paging_via_mmap() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let addr = k.sys_mmap(4 * PAGE_SIZE).expect("mmap");
    assert_eq!(addr.as_u64(), USER_MMAP_BASE);
    let faults_before = k.stats.demand_faults;
    for i in 0..4 {
        k.sys_touch(VirtAddr::new(addr.as_u64() + i * PAGE_SIZE), true)
            .expect("touch");
    }
    assert_eq!(k.stats.demand_faults, faults_before + 4);
    // Second touches hit the TLB / existing mappings: no new faults.
    for i in 0..4 {
        k.sys_touch(VirtAddr::new(addr.as_u64() + i * PAGE_SIZE), true)
            .expect("retouch");
    }
    assert_eq!(k.stats.demand_faults, faults_before + 4);
    k.sys_munmap(addr, 4 * PAGE_SIZE).expect("munmap");
    // After munmap the pages are gone; touching again demand-maps anew
    // only if a VMA still covers it — it does not.
    assert!(matches!(
        k.sys_touch(addr, true),
        Err(KernelError::SegFault)
    ));
}

#[test]
fn secure_region_adjustment_triggers_and_grows() {
    let mut k = boot_small_region(MIB);
    let region0 = k.secure_region().unwrap();
    // Burn through the 1 MiB region with forks (each needs several PT pages).
    let mut children = Vec::new();
    for _ in 0..200 {
        children.push(k.sys_fork().expect("fork under adjustment"));
    }
    assert!(k.stats.adjustments > 0, "adjustment must have triggered");
    let region1 = k.secure_region().unwrap();
    assert!(region1.size() > region0.size());
    assert_eq!(region1.end(), region0.end(), "grows downward");
    // The PMP sees the same region the kernel does.
    assert_eq!(k.bus.secure_region(), Some(region1));
    // Everything still works: new PT pages in the grown range are usable.
    for c in children {
        k.do_switch_to(c).expect("switch");
        k.sys_exit(0).expect("exit");
    }
}

#[test]
fn adjustment_disabled_runs_out_of_memory() {
    let mut cfg = KernelConfig::cfi_ptstore_no_adjust()
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(MIB);
    cfg.adjustment_enabled = false;
    let mut k = Kernel::boot(cfg).expect("boot");
    let mut result = Ok(0);
    for _ in 0..2000 {
        result = k.sys_fork();
        if result.is_err() {
            break;
        }
    }
    assert_eq!(result.unwrap_err(), KernelError::OutOfMemory);
}

#[test]
fn token_validation_passes_for_legitimate_switches() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let a = k.sys_fork().expect("fork");
    let b = k.sys_fork().expect("fork");
    for _ in 0..10 {
        k.do_switch_to(a).expect("switch a");
        k.do_switch_to(b).expect("switch b");
        k.do_switch_to(1).expect("switch init");
    }
    assert_eq!(k.stats.token_failures, 0);
    assert!(k.stats.token_validations >= 30);
}

#[test]
fn syscall_battery_behaves() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    // null
    assert_eq!(k.sys_null().expect("null"), 0);
    // open/read/close
    let fd = k.sys_open("/etc/passwd").expect("open");
    let data = k.sys_read(fd, 4).expect("read");
    assert_eq!(&data, b"root");
    k.sys_close(fd).expect("close");
    assert!(matches!(
        k.sys_open("/nonexistent"),
        Err(KernelError::NoSuchFile)
    ));
    // stat/fstat
    let st = k.sys_stat("/etc/passwd").expect("stat");
    assert_eq!(st.size, 30);
    // write to a file
    let fd = k.sys_open("/tmp/XXX").expect("open tmp");
    assert_eq!(k.sys_write(fd, b"hello").expect("write"), 5);
    k.sys_close(fd).expect("close");
    assert_eq!(k.fs.read("/tmp/XXX", 0, 5).unwrap(), b"hello");
    // pipes
    let (r, w) = k.sys_pipe().expect("pipe");
    assert_eq!(k.sys_write(w, b"ping").expect("pipe write"), 4);
    assert_eq!(k.sys_read(r, 16).expect("pipe read"), b"ping");
    assert!(matches!(k.sys_read(r, 1), Err(KernelError::WouldBlock)));
    // signals
    k.sys_signal_install(10).expect("install");
    k.sys_signal_catch(10).expect("catch");
    assert_eq!(k.procs.get(1).unwrap().signals.caught, 1);
    // select
    assert_eq!(k.sys_select(10).expect("select"), 10);
    // sockets
    let sfd = k.sys_accept(128).expect("accept");
    assert_eq!(k.sys_recv(sfd, 128).expect("recv"), 128);
    assert_eq!(k.sys_send(sfd, 1024).expect("send"), 1024);
    k.sys_close(sfd).expect("close sock");
}

#[test]
fn exec_replaces_address_space() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let addr = k.sys_mmap(2 * PAGE_SIZE).expect("mmap");
    k.sys_touch(addr, true).expect("touch");
    let pages_before = k.procs.get(1).unwrap().aspace.user_page_count();
    assert!(pages_before >= 4); // text + 2 stack + mmap page
    k.sys_exec().expect("exec");
    let p = k.procs.get(1).unwrap();
    assert_eq!(p.aspace.user_page_count(), 3, "text + 2 stack only");
    assert!(p.vma_for(addr).is_none(), "mmap vma gone");
    // Text is mapped and executable again.
    k.sys_touch(VirtAddr::new(USER_TEXT_BASE), false)
        .expect("text readable");
}

#[test]
fn cfi_costs_are_visible() {
    let mut with = boot(KernelConfig::cfi());
    let mut without = boot(KernelConfig::baseline());
    for k in [&mut with, &mut without] {
        for _ in 0..100 {
            k.sys_null().expect("null");
        }
    }
    let cfi_cycles = with.cycles.of(ptstore_kernel::CostKind::CfiCheck);
    assert!(cfi_cycles > 0);
    assert_eq!(without.cycles.of(ptstore_kernel::CostKind::CfiCheck), 0);
    assert!(with.cycles.total() > without.cycles.total());
}

#[test]
fn user_read_write_round_trip() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let addr = k.sys_mmap(PAGE_SIZE).expect("mmap");
    k.user_write_u64(addr, 0xfeed_f00d).expect("write");
    assert_eq!(k.user_read_u64(addr).expect("read"), 0xfeed_f00d);
}

#[test]
fn touch_charges_tlb_misses() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let addr = k.sys_mmap(PAGE_SIZE).expect("mmap");
    k.sys_touch(addr, true).expect("fault in");
    let tlb_cycles = k.cycles.of(ptstore_kernel::CostKind::TlbMiss);
    assert!(tlb_cycles > 0, "walks charge TLB-miss cycles");
}

#[test]
fn secure_region_objects_are_physically_inside_region() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    let region = k.secure_region().unwrap();
    // Every process root PT must be inside the region.
    let child = k.sys_fork().expect("fork");
    for pid in [1, child] {
        let root = k.process_root(pid).unwrap();
        assert!(
            region.contains(root.base_addr()),
            "pid {pid} root {root} inside secure region"
        );
    }
    // And a translated user access still works end to end.
    k.sys_touch(VirtAddr::new(USER_TEXT_BASE), false)
        .expect("PTW fetches from secure region succeed");
}

#[test]
fn page_fault_on_unmapped_address_is_segfault() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    assert!(matches!(
        k.sys_touch(VirtAddr::new(0x6000_0000), true),
        Err(KernelError::SegFault)
    ));
}

#[test]
fn threads_share_memory_with_copied_tokens() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    // Owner maps and stamps a page.
    let addr = k.sys_mmap(PAGE_SIZE).expect("mmap");
    k.user_write_u64(addr, 0xBEEF).expect("stamp");

    let t1 = k.sys_clone_thread().expect("clone");
    let t2 = k.sys_clone_thread().expect("clone");
    assert_ne!(t1, t2);

    // Each thread has its own PCB and its own token, but the same pt ptr.
    let owner_pt = k.pcb_pt_ptr_slot(1).unwrap();
    let t1_pt = k.pcb_pt_ptr_slot(t1).unwrap();
    let owner_root = k.mem_read_public(owner_pt).expect("read");
    let t1_root = k.mem_read_public(t1_pt).expect("read");
    assert_eq!(owner_root, t1_root, "shared page-table pointer");
    let owner_token = k
        .mem_read_public(k.pcb_token_slot(1).unwrap())
        .expect("read");
    let t1_token = k
        .mem_read_public(k.pcb_token_slot(t1).unwrap())
        .expect("read");
    assert_ne!(owner_token, t1_token, "distinct (copied) tokens");

    // Token validation passes when switching to threads (the copied token
    // binds the shared pt ptr to the thread's own PCB slot).
    k.do_switch_to(t1).expect("switch to t1");
    assert_eq!(k.stats.token_failures, 0);
    // The thread sees the owner's memory and can write it.
    assert_eq!(k.user_read_u64(addr).expect("read"), 0xBEEF);
    k.user_write_u64(addr, 0xCAFE).expect("write");
    // Visible from the other thread and the owner (no CoW between threads).
    k.do_switch_to(t2).expect("switch to t2");
    assert_eq!(k.user_read_u64(addr).expect("read"), 0xCAFE);
    k.do_switch_to(1).expect("switch to owner");
    assert_eq!(k.user_read_u64(addr).expect("read"), 0xCAFE);

    // Owner cannot exit while threads are alive.
    assert_eq!(k.sys_exit(0).unwrap_err(), KernelError::InvalidState);

    // Threads exit; their tokens are cleared, the mm survives.
    for t in [t1, t2] {
        k.do_switch_to(t).expect("switch");
        k.sys_exit(0).expect("thread exit");
    }
    k.do_switch_to(1).expect("switch owner");
    assert_eq!(k.user_read_u64(addr).expect("mm intact"), 0xCAFE);
    k.sys_wait().expect("reap t1");
    k.sys_wait().expect("reap t2");
    assert_eq!(k.stats.token_failures, 0);
}

#[test]
fn thread_token_is_not_transferable() {
    // A thread's copied token binds the shared pt pointer to THAT thread's
    // PCB: planting it in another PCB still fails validation.
    let mut k = boot(KernelConfig::cfi_ptstore());
    let t1 = k.sys_clone_thread().expect("clone");
    let victim = k.sys_fork().expect("fork victim");
    // Attacker copies the thread's pt_ptr AND token_ptr into the victim.
    let t1_pt = k
        .mem_read_public(k.pcb_pt_ptr_slot(t1).unwrap())
        .expect("read");
    let t1_token = k
        .mem_read_public(k.pcb_token_slot(t1).unwrap())
        .expect("read");
    let vic_pt_slot = k.pcb_pt_ptr_slot(victim).unwrap();
    let vic_token_slot = k.pcb_token_slot(victim).unwrap();
    let dm_pt = k.direct_map(vic_pt_slot);
    let dm_tok = k.direct_map(vic_token_slot);
    k.attacker_write_u64(dm_pt, t1_pt).expect("pcb writable");
    k.attacker_write_u64(dm_tok, t1_token)
        .expect("pcb writable");
    let err = k.do_switch_to(victim).unwrap_err();
    assert!(matches!(err, KernelError::TokenInvalid(_)));
    assert!(k.stats.token_failures >= 1);
}

#[test]
fn mprotect_downgrades_and_restores() {
    use ptstore_kernel::process::VmPerms;
    let mut k = boot(KernelConfig::cfi_ptstore());
    let addr = k.sys_mmap(2 * PAGE_SIZE).expect("mmap");
    k.sys_touch(addr, true).expect("fault in rw");
    k.user_write_u64(addr, 7).expect("writable");

    // Downgrade to read-only: writes now fault as protection violations.
    k.sys_mprotect(addr, 2 * PAGE_SIZE, VmPerms::RO)
        .expect("mprotect ro");
    assert_eq!(k.user_read_u64(addr).expect("still readable"), 7);
    assert!(matches!(
        k.sys_touch(addr, true),
        Err(KernelError::SegFault)
    ));

    // Restore RW: writes work again (fresh PTE via the defense channel).
    k.sys_mprotect(addr, 2 * PAGE_SIZE, VmPerms::RW)
        .expect("mprotect rw");
    k.user_write_u64(addr, 9).expect("writable again");
    assert_eq!(k.user_read_u64(addr).expect("read"), 9);
}

#[test]
fn mprotect_inner_range_splits_vma() {
    use ptstore_kernel::process::VmPerms;
    let mut k = boot(KernelConfig::cfi_ptstore());
    let addr = k.sys_mmap(4 * PAGE_SIZE).expect("mmap");
    for i in 0..4 {
        k.sys_touch(VirtAddr::new(addr.as_u64() + i * PAGE_SIZE), true)
            .expect("touch");
    }
    // Protect only the middle two pages.
    let mid = VirtAddr::new(addr.as_u64() + PAGE_SIZE);
    k.sys_mprotect(mid, 2 * PAGE_SIZE, VmPerms::RO)
        .expect("mprotect");
    // Outer pages stay writable, inner pages do not.
    k.sys_touch(addr, true).expect("first page rw");
    k.sys_touch(VirtAddr::new(addr.as_u64() + 3 * PAGE_SIZE), true)
        .expect("last page rw");
    assert!(matches!(k.sys_touch(mid, true), Err(KernelError::SegFault)));
    assert!(matches!(
        k.sys_touch(VirtAddr::new(addr.as_u64() + 2 * PAGE_SIZE), true),
        Err(KernelError::SegFault)
    ));
    // VMA count grew by the split.
    let p = k.procs.get(1).unwrap();
    assert!(
        p.vmas.len() >= 5,
        "split produced extra vmas: {}",
        p.vmas.len()
    );
}

#[test]
fn mmap_churn_recycles_va_space() {
    let mut k = boot(KernelConfig::cfi_ptstore());
    // Far more map/unmap cycles than the mmap window could hold without
    // recycling (window ~1 GiB; 20k × 16 MiB = 320 GiB of cumulative VA).
    for _ in 0..20_000 {
        let a = k.sys_mmap(4096 * PAGE_SIZE).expect("mmap keeps working");
        k.sys_munmap(a, 4096 * PAGE_SIZE).expect("munmap");
    }
    // And mapping while fragmented still works.
    let pinned = k.sys_mmap(PAGE_SIZE).expect("pin");
    for _ in 0..1_000 {
        let a = k.sys_mmap(64 * PAGE_SIZE).expect("mmap");
        k.sys_munmap(a, 64 * PAGE_SIZE).expect("munmap");
    }
    k.sys_touch(pinned, true).expect("pinned region intact");
}
